// E9 — served throughput/latency and client-observed restart downtime.
//
// The paper's instant-restart claim, measured from where it matters: the
// client side of a TCP connection. A server process is forked, loaded
// with rows over the wire, killed with SIGKILL mid-serving, and
// restarted; the client's reconnect loop measures the downtime window
// (last successful request → first successful request on the restarted
// server). Under NVM the window is dominated by process start + mmap and
// stays flat as rows grow; the log-based baseline replays its WAL and
// scales with data size.
//
// The restart leg also compares log-recovery policies (PAPER.md §V:
// MM-DIRECT-style on-demand restore): the WAL mode restarts twice, once
// with eager replay and once serving degraded while a background drain
// restores values on demand. Time-to-first-successful-query (ttfq_ms,
// kill -9 → first answered point scan on the restarted server) is the
// headline: eager pays the full replay before answering, on-demand
// answers after log analysis only and should sit within a small factor
// of NVM's instant restart.
//
// Emits BENCH_JSON lines:
//   {"bench":"e9","mode":...,"policy":...,"rows":N,"serve_tput_rps":...,
//    "p50_us":...,"p99_us":...,"downtime_ms":...,"ttfq_ms":...,
//    "drain_s":...,"recovery_s":...}
//
// The server runs in a forked child (it must be SIGKILL-able without
// taking the bench down); the parent is a pure wire client and never
// opens the database itself.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/net_util.h"
#include "net/server.h"

namespace hyrise_nv::bench {
namespace {

using Clock = std::chrono::steady_clock;
using storage::Value;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Picks a free port: bind(0), read it back, close. SO_REUSEADDR on the
/// server side makes the immediate re-bind reliable, and the bench needs
/// a stable port across the kill/restart cycle.
uint16_t PickPort() {
  auto listener = Unwrap(net::CreateListener("127.0.0.1", 0), "pick port");
  return Unwrap(net::LocalPort(listener.get()), "pick port");
}

/// Child process: open (or create) the database and serve until killed
/// or told to drain. Writes the recovery seconds to `ready_fd` once the
/// server is accepting — the parent blocks on that, so "ready" includes
/// the full recovery cost (for an on-demand open: the analysis pass; the
/// drain keeps running while serving).
[[noreturn]] void RunServerChild(core::DurabilityMode mode,
                                 core::LogRecoveryPolicy policy,
                                 const std::string& dir, uint16_t port,
                                 bool create, int ready_fd) {
  core::DatabaseOptions options = EngineOptions(mode, dir, 512u << 20);
  options.log_recovery = policy;
  // The crash here is a real SIGKILL of a real process — no simulation
  // needed, so skip the shadow image and its per-store overhead.
  options.tracking = nvm::TrackingMode::kNone;
  auto db = Unwrap(create ? core::Database::Create(options)
                          : core::Database::Open(options),
                   "open database in server child");
  net::ServerOptions server_options;
  server_options.port = port;
  server_options.num_workers = 2;
  auto server =
      Unwrap(net::Server::Start(db.get(), server_options), "start server");
  const double recovery_s = db->last_recovery_report().total_seconds;
  // Hand the parent the recovery cost along with readiness.
  (void)!write(ready_fd, &recovery_s, sizeof(recovery_s));
  server->Wait();  // runs until SIGKILL (or a drain request)
  Die(db->Close(), "close");
  std::exit(0);
}

struct ChildHandle {
  pid_t pid = -1;
  double recovery_s = 0;
};

ChildHandle SpawnServer(core::DurabilityMode mode,
                        core::LogRecoveryPolicy policy,
                        const std::string& dir, uint16_t port, bool create) {
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) Die(Status::IOError("pipe"), "pipe");
  const pid_t pid = fork();
  if (pid < 0) Die(Status::IOError("fork"), "fork");
  if (pid == 0) {
    close(pipe_fds[0]);
    RunServerChild(mode, policy, dir, port, create, pipe_fds[1]);
  }
  close(pipe_fds[1]);
  ChildHandle child;
  child.pid = pid;
  if (read(pipe_fds[0], &child.recovery_s, sizeof(child.recovery_s)) !=
      static_cast<ssize_t>(sizeof(child.recovery_s))) {
    Die(Status::IOError("server child died before becoming ready"),
        "spawn server");
  }
  close(pipe_fds[0]);
  return child;
}

void KillServer(pid_t pid) {
  kill(pid, SIGKILL);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
}

struct ServeStats {
  double tput_rps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Serves a short mixed workload (insert + point read) and measures
/// client-observed throughput and latency percentiles.
ServeStats MeasureServing(net::Client& client, uint64_t ops) {
  std::vector<double> latencies_us;
  latencies_us.reserve(ops);
  const auto start = Clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    const auto op_start = Clock::now();
    if (i % 4 == 3) {
      auto scan = client.ScanEqual("kv", 0,
                                   Value(static_cast<int64_t>(i % 1000)),
                                   /*in_txn=*/false, /*limit=*/8);
      Die(scan.status(), "serve scan");
    } else {
      Die(client.Begin().status(), "serve begin");
      Die(client
              .Insert("kv", {Value(static_cast<int64_t>(1'000'000 + i)),
                             Value(std::string("serve-payload"))})
              .status(),
          "serve insert");
      Die(client.Commit().status(), "serve commit");
    }
    latencies_us.push_back(SecondsSince(op_start) * 1e6);
  }
  ServeStats stats;
  stats.tput_rps = static_cast<double>(ops) / SecondsSince(start);
  std::sort(latencies_us.begin(), latencies_us.end());
  stats.p50_us = latencies_us[latencies_us.size() / 2];
  stats.p99_us = latencies_us[latencies_us.size() * 99 / 100];
  return stats;
}

/// Loads `rows` over the wire in batches.
void Load(net::Client& client, uint64_t rows) {
  constexpr uint64_t kBatch = 256;
  for (uint64_t i = 0; i < rows;) {
    Die(client.Begin().status(), "load begin");
    for (uint64_t j = 0; j < kBatch && i < rows; ++j, ++i) {
      Die(client
              .Insert("kv", {Value(static_cast<int64_t>(i % 1000)),
                             Value(std::string("row-payload-") +
                                   std::to_string(i))})
              .status(),
          "load insert");
    }
    Die(client.Commit().status(), "load commit");
  }
}

void RunMode(core::DurabilityMode mode, core::LogRecoveryPolicy policy,
             uint64_t rows) {
  const std::string dir = MakeBenchDir("bench_e9");
  const uint16_t port = PickPort();

  // The initial (create) run always opens eagerly; the policy only
  // matters for the post-kill restart.
  ChildHandle child = SpawnServer(mode, core::LogRecoveryPolicy::kEagerReplay,
                                  dir, port, /*create=*/true);

  net::ClientOptions client_options;
  client_options.port = port;
  client_options.max_retries = 400;
  client_options.retry_base_ms = 5;
  client_options.retry_cap_ms = 50;
  net::Client client(client_options);
  Die(client.Connect(), "connect");
  Die(client.CreateTable("kv", {{"k", storage::DataType::kInt64},
                                {"v", storage::DataType::kString}})
          .status(),
      "create table");
  Die(client.CreateIndex("kv", 0), "create index");
  Load(client, rows);

  const ServeStats stats = MeasureServing(client, Scaled(2000));

  // kill -9 mid-serving, restart, and measure the client-observed
  // downtime: last success before the kill to first success after.
  // ttfq_ms is the availability headline — kill to the first answered
  // point query. Under on-demand recovery the scan lands while the
  // drain is still running and restores just the touched key's rows.
  const auto down_start = Clock::now();
  KillServer(child.pid);
  child = SpawnServer(mode, policy, dir, port, /*create=*/false);
  net::Client reconnect_client(client_options);
  Die(reconnect_client.Connect(), "reconnect after kill -9");
  const double downtime_ms = SecondsSince(down_start) * 1e3;
  auto first_scan = reconnect_client.ScanEqual(
      "kv", 0, Value(static_cast<int64_t>(7)), /*in_txn=*/false, /*limit=*/8);
  Die(first_scan.status(), "first query after restart");
  const double ttfq_ms = SecondsSince(down_start) * 1e3;

  // Wait out the background drain (no-op for eager/NVM restarts), then
  // audit durability on the fully restored store.
  const auto drain_start = Clock::now();
  Die(reconnect_client.WaitUntilReady(/*timeout_ms=*/300'000), "wait ready");
  const double drain_s = SecondsSince(drain_start);
  auto count = reconnect_client.Count("kv");
  Die(count.status(), "count after restart");

  if (*count < rows) {
    std::fprintf(stderr,
                 "mode %s lost committed rows: %llu < %llu\n",
                 core::DurabilityModeName(mode),
                 static_cast<unsigned long long>(*count),
                 static_cast<unsigned long long>(rows));
    std::exit(1);
  }

  std::printf(
      "BENCH_JSON {\"bench\":\"e9\",\"mode\":\"%s\",\"policy\":\"%s\","
      "\"rows\":%llu,"
      "\"serve_tput_rps\":%.0f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
      "\"downtime_ms\":%.1f,\"ttfq_ms\":%.1f,\"drain_s\":%.4f,"
      "\"recovery_s\":%.4f,"
      "\"reconnect_attempts\":%d}\n",
      core::DurabilityModeName(mode), core::LogRecoveryPolicyName(policy),
      static_cast<unsigned long long>(rows), stats.tput_rps, stats.p50_us,
      stats.p99_us, downtime_ms, ttfq_ms, drain_s, child.recovery_s,
      reconnect_client.last_connect_attempts());
  std::fflush(stdout);

  Die(reconnect_client.Drain(), "drain");
  int wstatus = 0;
  waitpid(child.pid, &wstatus, 0);
  RemoveBenchDir(dir);
}

}  // namespace
}  // namespace hyrise_nv::bench

int main() {
  using hyrise_nv::bench::RunMode;
  using hyrise_nv::bench::Scaled;
  using hyrise_nv::core::DurabilityMode;
  using hyrise_nv::core::LogRecoveryPolicy;
  // Downtime vs rows: under kNvm the client-observed window stays flat;
  // kWalValue with eager replay scales with the row count; kWalValue
  // with on-demand recovery answers after log analysis and drains the
  // rest in the background (ttfq_ms near-flat, drain_s scaling).
  for (const uint64_t rows : {uint64_t{5'000}, uint64_t{20'000},
                              uint64_t{80'000}}) {
    RunMode(DurabilityMode::kNvm, LogRecoveryPolicy::kEagerReplay,
            Scaled(rows));
    RunMode(DurabilityMode::kWalValue, LogRecoveryPolicy::kEagerReplay,
            Scaled(rows));
    RunMode(DurabilityMode::kWalValue, LogRecoveryPolicy::kServeOnDemand,
            Scaled(rows));
  }
  return 0;
}
