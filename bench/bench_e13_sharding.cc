// E13 — multi-shard scaling and partial-failure availability.
//
// The router front door (DESIGN.md §16) claims two things worth
// numbers: (1) single-shard transactions scale with the shard count
// because they commit by passthrough, while a cross-shard mix pays the
// two-phase-commit tax (an extra prepare round trip per participant
// plus the coordinator's decision fsync); (2) kill -9 of one shard out
// of N leaves the other shards serving — the blast radius of a crash is
// one shard's key range, and the client-observed downtime for the
// killed range is the shard's own restart, not a cluster outage.
//
// The sweep runs 1/2/4 shards, each with a pure single-shard workload
// and a 10% cross-shard mix (shards=1 has no second participant, so
// only "single" is emitted). The 2-shard cluster then takes a kill -9
// of shard 1 while a cross-shard loader is running: the bench measures
// the surviving shard's availability through the outage, the
// client-observed downtime of the killed key range, and how long the
// resolver takes to converge the in-doubt transactions the kill left
// behind.
//
// Emits BENCH_JSON lines:
//   {"bench":"e13","shards":N,"mix":"single"|"cross10",
//    "tput_tps":...,"p50_us":...,"p99_us":...}
//   {"bench":"e13","shards":2,"phase":1,"downtime_ms":...,
//    "survivor_ok":...,"survivor_failed":...,"in_doubt_converge_ms":...,
//    "restart_recovery_s":...}
//
// Shard servers run in forked children (they must be SIGKILL-able); the
// router runs in-process in the parent, which is otherwise a pure wire
// client.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/router.h"
#include "net/client.h"
#include "net/net_util.h"
#include "net/server.h"

namespace hyrise_nv::bench {
namespace {

using Clock = std::chrono::steady_clock;
using storage::Value;

// Range partitioning with a wide fixed stripe keeps the key→shard map
// obvious: key = shard * kKeysPerShard + j.
constexpr int64_t kKeysPerShard = 1'000'000;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

uint16_t PickPort() {
  auto listener = Unwrap(net::CreateListener("127.0.0.1", 0), "pick port");
  return Unwrap(net::LocalPort(listener.get()), "pick port");
}

/// Child process: open (or create) one shard's database and serve until
/// killed. Reports readiness (plus the recovery cost) over `ready_fd`.
[[noreturn]] void RunShardChild(const std::string& dir, uint16_t port,
                                bool create, int ready_fd) {
  core::DatabaseOptions options =
      EngineOptions(core::DurabilityMode::kWalValue, dir, 64u << 20);
  options.tracking = nvm::TrackingMode::kNone;  // real SIGKILL, no shadow
  auto db = Unwrap(create ? core::Database::Create(options)
                          : core::Database::Open(options),
                   "open shard database");
  net::ServerOptions server_options;
  server_options.port = port;
  server_options.num_workers = 2;
  auto server =
      Unwrap(net::Server::Start(db.get(), server_options), "start shard");
  const double recovery_s = db->last_recovery_report().total_seconds;
  (void)!write(ready_fd, &recovery_s, sizeof(recovery_s));
  server->Wait();  // until SIGKILL
  Die(db->Close(), "close shard");
  std::exit(0);
}

struct ShardHandle {
  pid_t pid = -1;
  double recovery_s = 0;
};

ShardHandle SpawnShard(const std::string& dir, uint16_t port, bool create) {
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) Die(Status::IOError("pipe"), "pipe");
  const pid_t pid = fork();
  if (pid < 0) Die(Status::IOError("fork"), "fork");
  if (pid == 0) {
    close(pipe_fds[0]);
    RunShardChild(dir, port, create, pipe_fds[1]);
  }
  close(pipe_fds[1]);
  ShardHandle shard;
  shard.pid = pid;
  if (read(pipe_fds[0], &shard.recovery_s, sizeof(shard.recovery_s)) !=
      static_cast<ssize_t>(sizeof(shard.recovery_s))) {
    Die(Status::IOError("shard child died before becoming ready"),
        "spawn shard");
  }
  close(pipe_fds[0]);
  return shard;
}

void KillShard(pid_t pid) {
  kill(pid, SIGKILL);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
}

int64_t ShardKey(size_t shard, uint64_t j) {
  // Cycle within a small window so the index stays compact.
  return static_cast<int64_t>(shard) * kKeysPerShard +
         static_cast<int64_t>(j % 4096);
}

/// One transaction through the router: two inserts, both on `shard` for
/// a single-shard commit (passthrough) or split across `shard` and the
/// next one for a cross-shard 2PC. Returns false on any failure (the
/// caller aborts and moves on).
bool RunTxn(net::Client& client, size_t shard, size_t num_shards,
            bool cross, uint64_t j) {
  if (!client.Begin().ok()) return false;
  const size_t second = cross ? (shard + 1) % num_shards : shard;
  if (!client.Insert("kv", {Value(ShardKey(shard, j)),
                            Value(std::string("e13-payload"))})
           .ok() ||
      !client.Insert("kv", {Value(ShardKey(second, j + 1)),
                            Value(std::string("e13-payload"))})
           .ok() ||
      !client.Commit().ok()) {
    (void)client.Abort();
    return false;
  }
  return true;
}

struct MixStats {
  double tput_tps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Runs `txns` transactions round-robin over the shards; every tenth is
/// cross-shard when `cross_pct` says so.
MixStats MeasureMix(net::Client& client, size_t num_shards, uint64_t txns,
                    int cross_pct) {
  std::vector<double> latencies_us;
  latencies_us.reserve(txns);
  const auto start = Clock::now();
  for (uint64_t i = 0; i < txns; ++i) {
    const bool cross =
        num_shards > 1 && cross_pct > 0 &&
        (i % 100) < static_cast<uint64_t>(cross_pct);
    const auto op_start = Clock::now();
    if (!RunTxn(client, i % num_shards, num_shards, cross, i)) {
      Die(Status::IOError("transaction failed during steady state"),
          "measure mix");
    }
    latencies_us.push_back(SecondsSince(op_start) * 1e6);
  }
  MixStats stats;
  stats.tput_tps = static_cast<double>(txns) / SecondsSince(start);
  std::sort(latencies_us.begin(), latencies_us.end());
  stats.p50_us = latencies_us[latencies_us.size() / 2];
  stats.p99_us = latencies_us[latencies_us.size() * 99 / 100];
  return stats;
}

/// kill -9 one shard of two while a cross-shard loader runs, then
/// measure: surviving shard availability during the outage, downtime of
/// the killed range, and in-doubt convergence after restart.
void RunKillPhase(net::Client& client, uint16_t router_port,
                  const std::string& dir, uint16_t killed_port,
                  pid_t killed_pid) {
  std::atomic<bool> loader_stop{false};
  std::thread loader([&] {
    net::ClientOptions opts;
    opts.port = router_port;
    net::Client cross_client(opts);
    if (!cross_client.Connect().ok()) return;
    uint64_t j = 0;
    while (!loader_stop.load()) {
      // Expected to fail while shard 1 is down; keep pushing so the
      // kill lands mid-2PC and leaves in-doubt work behind.
      (void)RunTxn(cross_client, 0, 2, /*cross=*/true, j);
      j += 2;
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto kill_start = Clock::now();
  KillShard(killed_pid);

  // Surviving shard keeps answering through the outage.
  uint64_t survivor_ok = 0;
  uint64_t survivor_failed = 0;
  while (SecondsSince(kill_start) < 0.2) {
    if (RunTxn(client, 0, 2, /*cross=*/false, survivor_ok)) {
      ++survivor_ok;
    } else {
      ++survivor_failed;
    }
  }

  const ShardHandle restarted =
      SpawnShard(dir + "/shard1", killed_port, /*create=*/false);

  // Client-observed downtime of the killed key range: first committed
  // transaction routed to shard 1 after the kill.
  double downtime_ms = 0;
  for (uint64_t j = 0;; ++j) {
    if (RunTxn(client, 1, 2, /*cross=*/false, j)) {
      downtime_ms = SecondsSince(kill_start) * 1e3;
      break;
    }
    if (SecondsSince(kill_start) > 60) {
      Die(Status::IOError("killed shard never came back"), "kill phase");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  loader_stop.store(true);
  loader.join();

  // The kill left prepared-but-undecided transactions on the restarted
  // shard; the router's resolver converges them against the decision
  // log. Measure how long until the shard's in-doubt list is empty.
  const auto converge_start = Clock::now();
  net::ClientOptions probe_opts;
  probe_opts.port = killed_port;
  net::Client probe(probe_opts);
  Die(probe.Connect(), "probe killed shard");
  double converge_ms = 0;
  for (;;) {
    auto in_doubt = probe.InDoubt();
    if (in_doubt.ok() && in_doubt->empty()) {
      converge_ms = SecondsSince(converge_start) * 1e3;
      break;
    }
    if (SecondsSince(converge_start) > 30) {
      Die(Status::IOError("in-doubt transactions never converged"),
          "kill phase");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  std::printf(
      "BENCH_JSON {\"bench\":\"e13\",\"shards\":2,\"phase\":1,"
      "\"downtime_ms\":%.1f,\"survivor_ok\":%llu,"
      "\"survivor_failed\":%llu,\"in_doubt_converge_ms\":%.1f,"
      "\"restart_recovery_s\":%.4f}\n",
      downtime_ms, static_cast<unsigned long long>(survivor_ok),
      static_cast<unsigned long long>(survivor_failed), converge_ms,
      restarted.recovery_s);
  std::fflush(stdout);
  KillShard(restarted.pid);
}

void RunClusterSize(size_t num_shards) {
  const std::string dir = MakeBenchDir("bench_e13");
  std::vector<uint16_t> ports(num_shards);
  std::vector<ShardHandle> shards(num_shards);
  cluster::RouterOptions router_options;
  for (size_t s = 0; s < num_shards; ++s) {
    ports[s] = PickPort();
    std::filesystem::create_directories(dir + "/shard" + std::to_string(s));
    shards[s] = SpawnShard(dir + "/shard" + std::to_string(s), ports[s],
                           /*create=*/true);
    router_options.shards.push_back({"127.0.0.1", ports[s]});
  }
  router_options.data_dir = dir + "/router";
  std::filesystem::create_directories(router_options.data_dir);
  router_options.partitioning = cluster::Partitioning::kRange;
  router_options.range_width = kKeysPerShard;
  router_options.resolver_interval_ms = 50;
  auto router =
      Unwrap(cluster::Router::Start(router_options), "start router");

  net::ClientOptions client_options;
  client_options.port = router->port();
  net::Client client(client_options);
  Die(client.Connect(), "connect to router");
  Die(client
          .CreateTable("kv", {{"k", storage::DataType::kInt64},
                              {"v", storage::DataType::kString}})
          .status(),
      "create table");
  Die(client.CreateIndex("kv", 0), "create index");

  const uint64_t txns = Scaled(1'500);
  for (const int cross_pct : {0, 10}) {
    if (cross_pct > 0 && num_shards == 1) continue;  // no second shard
    const MixStats stats = MeasureMix(client, num_shards, txns, cross_pct);
    std::printf(
        "BENCH_JSON {\"bench\":\"e13\",\"shards\":%zu,\"mix\":\"%s\","
        "\"tput_tps\":%.0f,\"p50_us\":%.1f,\"p99_us\":%.1f}\n",
        num_shards, cross_pct > 0 ? "cross10" : "single", stats.tput_tps,
        stats.p50_us, stats.p99_us);
    std::fflush(stdout);
  }

  if (num_shards == 2) {
    RunKillPhase(client, router->port(), dir, ports[1], shards[1].pid);
    shards[1].pid = -1;  // RunKillPhase reaped both incarnations
  }

  router->Stop();
  router.reset();
  for (const ShardHandle& shard : shards) {
    if (shard.pid > 0) KillShard(shard.pid);
  }
  RemoveBenchDir(dir);
}

}  // namespace
}  // namespace hyrise_nv::bench

int main() {
  for (const size_t num_shards : {size_t{1}, size_t{2}, size_t{4}}) {
    hyrise_nv::bench::RunClusterSize(num_shards);
  }
  return 0;
}
