// Experiment E5 — where recovery time goes. Log-based recovery splits
// into checkpoint load + log replay + index rebuild (each scales with
// data); instant restart splits into map + in-flight fixup + volatile
// attach (none scale with data). All numbers come from the recovery
// span trace the engine records (RecoveryReport::trace), not from
// stopwatches in this benchmark.

#include <cstdio>

#include "bench_util.h"
#include "obs/trace.h"
#include "workload/enterprise.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

std::unique_ptr<core::Database> BuildAndCrash(core::DurabilityMode mode,
                                              uint64_t rows,
                                              const std::string& dir,
                                              bool with_checkpoint) {
  auto options = bench::EngineOptions(mode, dir, size_t{512} << 20);
  auto db = bench::Unwrap(core::Database::Create(options), "create");
  workload::EnterpriseConfig config;
  const uint64_t first_half = with_checkpoint ? rows / 2 : rows;
  (void)bench::Unwrap(workload::LoadEnterpriseTable(db.get(), "enterprise",
                                                    first_half, config),
                      "load");
  bench::Die(db->CreateIndex("enterprise", 0), "index");
  if (with_checkpoint) {
    bench::Die(db->Checkpoint(), "checkpoint");
    // Second half lands in the log tail only.
    storage::Table* table =
        bench::Unwrap(db->GetTable("enterprise"), "table");
    auto tx = bench::Unwrap(db->Begin(), "begin");
    workload::EnterpriseConfig tail = config;
    tail.seed += 17;
    for (uint64_t r = first_half; r < rows; ++r) {
      std::vector<storage::Value> row = table->GetRow({false, 0});
      auto insert = db->Insert(tx, table, row);
      bench::Die(insert.status(), "tail insert");
      if ((r + 1) % 1024 == 0) {
        bench::Die(db->Commit(tx), "tail commit");
        tx = bench::Unwrap(db->Begin(), "begin");
      }
    }
    bench::Die(db->Commit(tx), "tail commit");
  }
  return bench::Unwrap(core::Database::CrashAndRecover(std::move(db)),
                       "recover");
}

/// Seconds of a named span in the recovery trace (0 when the phase did
/// not run, e.g. checkpoint_load without a checkpoint).
double Phase(const obs::SpanNode& trace, const char* name) {
  const obs::SpanNode* span = trace.Find(name);
  return span != nullptr ? span->seconds : 0;
}

void PrintJson(const char* config, const obs::SpanNode& trace,
               uint64_t replayed_records) {
  std::printf(
      "BENCH_JSON {\"bench\":\"e5\",\"config\":\"%s\","
      "\"total_ms\":%.3f,\"checkpoint_load_ms\":%.3f,\"replay_ms\":%.3f,"
      "\"index_rebuild_ms\":%.3f,\"map_ms\":%.3f,\"fixup_ms\":%.3f,"
      "\"attach_ms\":%.3f,\"replayed_records\":%llu}\n",
      config, trace.seconds * 1e3, Phase(trace, "checkpoint_load") * 1e3,
      Phase(trace, "replay") * 1e3, Phase(trace, "index_rebuild") * 1e3,
      Phase(trace, "map") * 1e3, Phase(trace, "fixup") * 1e3,
      Phase(trace, "attach") * 1e3,
      static_cast<unsigned long long>(replayed_records));
}

}  // namespace

int main() {
  const uint64_t rows = bench::Scaled(20000);
  std::printf("E5 — recovery phase breakdown, %llu-row dataset\n\n",
              static_cast<unsigned long long>(rows));

  // Log engine, checkpoint + tail replay.
  {
    const std::string dir = bench::MakeBenchDir("e5");
    auto db = BuildAndCrash(core::DurabilityMode::kWalValue, rows, dir,
                            /*with_checkpoint=*/true);
    const auto& report = db->last_recovery_report();
    std::printf("log-based (checkpoint at 50%% of data), %llu records "
                "replayed:\n%s",
                static_cast<unsigned long long>(
                    report.log.replayed_records),
                report.trace.Render().c_str());
    PrintJson("wal-checkpoint", report.trace,
              report.log.replayed_records);
    bench::RemoveBenchDir(dir);
  }

  // Log engine without a checkpoint (pure replay).
  {
    const std::string dir = bench::MakeBenchDir("e5");
    auto db = BuildAndCrash(core::DurabilityMode::kWalValue, rows, dir,
                            /*with_checkpoint=*/false);
    const auto& report = db->last_recovery_report();
    std::printf("\nlog-based (no checkpoint, full replay), %llu records "
                "replayed:\n%s",
                static_cast<unsigned long long>(
                    report.log.replayed_records),
                report.trace.Render().c_str());
    PrintJson("wal-full-replay", report.trace,
              report.log.replayed_records);
    bench::RemoveBenchDir(dir);
  }

  // Instant restart.
  {
    const std::string dir = bench::MakeBenchDir("e5");
    auto db = BuildAndCrash(core::DurabilityMode::kNvm, rows, dir,
                            /*with_checkpoint=*/false);
    const auto& report = db->last_recovery_report();
    std::printf("\nhyrise-nv (instant restart):\n%s",
                report.trace.Render().c_str());
    PrintJson("nvm-instant-restart", report.trace, 0);
    bench::RemoveBenchDir(dir);
  }

  std::printf("\npaper shape check: every log-recovery phase scales with "
              "data; every instant-restart phase is constant or "
              "delta-bounded\n");
  return 0;
}
