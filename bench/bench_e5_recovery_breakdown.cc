// Experiment E5 — where recovery time goes. Log-based recovery splits
// into checkpoint load + log replay + index rebuild (each scales with
// data); instant restart splits into map + in-flight fixup + volatile
// attach (none scale with data).

#include <cstdio>

#include "bench_util.h"
#include "workload/enterprise.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

std::unique_ptr<core::Database> BuildAndCrash(core::DurabilityMode mode,
                                              uint64_t rows,
                                              const std::string& dir,
                                              bool with_checkpoint) {
  auto options = bench::EngineOptions(mode, dir, size_t{512} << 20);
  auto db = bench::Unwrap(core::Database::Create(options), "create");
  workload::EnterpriseConfig config;
  const uint64_t first_half = with_checkpoint ? rows / 2 : rows;
  (void)bench::Unwrap(workload::LoadEnterpriseTable(db.get(), "enterprise",
                                                    first_half, config),
                      "load");
  bench::Die(db->CreateIndex("enterprise", 0), "index");
  if (with_checkpoint) {
    bench::Die(db->Checkpoint(), "checkpoint");
    // Second half lands in the log tail only.
    storage::Table* table =
        bench::Unwrap(db->GetTable("enterprise"), "table");
    auto tx = bench::Unwrap(db->Begin(), "begin");
    workload::EnterpriseConfig tail = config;
    tail.seed += 17;
    for (uint64_t r = first_half; r < rows; ++r) {
      std::vector<storage::Value> row = table->GetRow({false, 0});
      auto insert = db->Insert(tx, table, row);
      bench::Die(insert.status(), "tail insert");
      if ((r + 1) % 1024 == 0) {
        bench::Die(db->Commit(tx), "tail commit");
        tx = bench::Unwrap(db->Begin(), "begin");
      }
    }
    bench::Die(db->Commit(tx), "tail commit");
  }
  return bench::Unwrap(core::Database::CrashAndRecover(std::move(db)),
                       "recover");
}

}  // namespace

int main() {
  const uint64_t rows = bench::Scaled(20000);
  std::printf("E5 — recovery phase breakdown, %llu-row dataset\n\n",
              static_cast<unsigned long long>(rows));

  // Log engine, checkpoint + tail replay.
  {
    const std::string dir = bench::MakeBenchDir("e5");
    auto db = BuildAndCrash(core::DurabilityMode::kWalValue, rows, dir,
                            /*with_checkpoint=*/true);
    const auto& report = db->last_recovery_report().log;
    std::printf("log-based (checkpoint at 50%% of data):\n");
    std::printf("  %-22s %10.2f ms\n", "checkpoint load",
                report.checkpoint_load_seconds * 1e3);
    std::printf("  %-22s %10.2f ms  (%llu records)\n", "log replay",
                report.replay_seconds * 1e3,
                static_cast<unsigned long long>(report.replayed_records));
    std::printf("  %-22s %10.2f ms\n", "index rebuild",
                report.index_rebuild_seconds * 1e3);
    std::printf("  %-22s %10.2f ms\n", "total",
                report.total_seconds * 1e3);
    bench::RemoveBenchDir(dir);
  }

  // Log engine without a checkpoint (pure replay).
  {
    const std::string dir = bench::MakeBenchDir("e5");
    auto db = BuildAndCrash(core::DurabilityMode::kWalValue, rows, dir,
                            /*with_checkpoint=*/false);
    const auto& report = db->last_recovery_report().log;
    std::printf("\nlog-based (no checkpoint, full replay):\n");
    std::printf("  %-22s %10.2f ms  (%llu records)\n", "log replay",
                report.replay_seconds * 1e3,
                static_cast<unsigned long long>(report.replayed_records));
    std::printf("  %-22s %10.2f ms\n", "index rebuild",
                report.index_rebuild_seconds * 1e3);
    std::printf("  %-22s %10.2f ms\n", "total",
                report.total_seconds * 1e3);
    bench::RemoveBenchDir(dir);
  }

  // Instant restart.
  {
    const std::string dir = bench::MakeBenchDir("e5");
    auto db = BuildAndCrash(core::DurabilityMode::kNvm, rows, dir,
                            /*with_checkpoint=*/false);
    const auto& report = db->last_recovery_report().nvm;
    std::printf("\nhyrise-nv (instant restart):\n");
    std::printf("  %-22s %10.3f ms\n", "map + header check",
                report.map_seconds * 1e3);
    std::printf("  %-22s %10.3f ms\n", "in-flight fixup",
                report.fixup_seconds * 1e3);
    std::printf("  %-22s %10.3f ms\n", "volatile attach",
                report.attach_seconds * 1e3);
    std::printf("  %-22s %10.3f ms\n", "total",
                report.total_seconds * 1e3);
    bench::RemoveBenchDir(dir);
  }

  std::printf("\npaper shape check: every log-recovery phase scales with "
              "data; every instant-restart phase is constant or "
              "delta-bounded\n");
  return 0;
}
