// Ablation A1 — index structures (design choices from DESIGN.md §4.3):
// point-lookup and range-scan cost with no index, the persistent hash
// index, and the persistent skip list, over main-resident and
// delta-resident data.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/query.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

enum class IndexChoice { kNone, kHash, kSkipList };

const char* ChoiceName(IndexChoice choice) {
  switch (choice) {
    case IndexChoice::kNone:
      return "no index";
    case IndexChoice::kHash:
      return "hash";
    case IndexChoice::kSkipList:
      return "skip list";
  }
  return "?";
}

struct Sample {
  double point_us;
  double range_us;  // <0: not supported by this configuration
};

Sample Run(IndexChoice choice, uint64_t rows, bool merged,
           uint64_t lookups) {
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = size_t{512} << 20;
  options.tracking = nvm::TrackingMode::kNone;
  options.nvm_latency = nvm::NvmLatencyModel::DefaultNvm();
  auto db = bench::Unwrap(core::Database::Create(options), "create");
  auto schema = *storage::Schema::Make({{"k", storage::DataType::kInt64},
                                        {"v", storage::DataType::kString}});
  storage::Table* table =
      bench::Unwrap(db->CreateTable("kv", schema), "table");
  if (choice == IndexChoice::kHash) {
    bench::Die(db->CreateIndex("kv", 0), "index");
  } else if (choice == IndexChoice::kSkipList) {
    bench::Die(db->CreateOrderedIndex("kv", 0), "index");
  }
  Rng rng(7);
  auto tx = bench::Unwrap(db->Begin(), "begin");
  for (uint64_t k = 0; k < rows; ++k) {
    bench::Die(db->Insert(*&tx, table,
                          {storage::Value(static_cast<int64_t>(k)),
                           storage::Value(rng.NextString(16))})
                   .status(),
               "insert");
    if ((k + 1) % 1024 == 0) {
      bench::Die(db->Commit(tx), "commit");
      tx = bench::Unwrap(db->Begin(), "begin");
    }
  }
  bench::Die(db->Commit(tx), "commit");
  if (merged) {
    bench::Die(db->Merge("kv").status(), "merge");
  }

  const storage::Cid snapshot = db->ReadSnapshot();
  Sample sample;
  {
    Stopwatch timer;
    uint64_t hits = 0;
    for (uint64_t i = 0; i < lookups; ++i) {
      const int64_t key = static_cast<int64_t>(rng.Uniform(rows));
      auto result = db->ScanEqual(table, 0, storage::Value(key), snapshot,
                                  storage::kTidNone);
      bench::Die(result.status(), "scan");
      hits += result->size();
    }
    sample.point_us = timer.ElapsedMicros() / lookups;
    if (hits != lookups) {
      std::fprintf(stderr, "A1: lookup miss\n");
      std::exit(1);
    }
  }
  {
    Stopwatch timer;
    const uint64_t span = 100;
    for (uint64_t i = 0; i < lookups / 10 + 1; ++i) {
      const int64_t lo = static_cast<int64_t>(rng.Uniform(rows - span));
      auto result = core::ScanRange(
          table, 0, storage::Value(lo),
          storage::Value(lo + static_cast<int64_t>(span) - 1), snapshot,
          storage::kTidNone, db->indexes(table));
      bench::Die(result.status(), "range");
    }
    sample.range_us = timer.ElapsedMicros() / (lookups / 10 + 1);
  }
  return sample;
}

}  // namespace

int main() {
  const uint64_t rows = bench::Scaled(20000);
  const uint64_t lookups = bench::Scaled(2000);
  std::printf("A1 — index ablation: lookup cost by index structure "
              "(%llu rows, %llu lookups)\n\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(lookups));
  for (const bool merged : {false, true}) {
    std::printf("%s data:\n", merged ? "main-resident (merged)"
                                     : "delta-resident (unmerged)");
    std::printf("  %-12s %14s %16s\n", "index", "point [µs]",
                "range-100 [µs]");
    for (const auto choice : {IndexChoice::kNone, IndexChoice::kHash,
                              IndexChoice::kSkipList}) {
      const Sample sample = Run(choice, rows, merged, lookups);
      std::printf("  %-12s %14.2f %16.2f\n", ChoiceName(choice),
                  sample.point_us, sample.range_us);
    }
    std::printf("\n");
  }
  std::printf("notes: point lookups on merged data use the group-key CSR "
              "for any index kind; the skip list additionally serves "
              "delta-side ranges that otherwise fall back to scans\n");
  return 0;
}
