// Experiment E7 — delta→main merge performance: throughput vs delta
// size, on DRAM-speed vs NVM-latency regions, and the effect of dead
// versions. Merge is the background cost that keeps the delta (and
// therefore restart-time volatile rebuild work) small.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "workload/enterprise.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

struct MergeSample {
  uint64_t delta_rows;
  double seconds;
  double rows_per_second;
};

MergeSample RunMerge(uint64_t rows, bool nvm_latency,
                     double delete_fraction) {
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = std::max<size_t>(size_t{256} << 20, rows * 512);
  options.tracking = nvm::TrackingMode::kNone;
  options.nvm_latency = nvm_latency ? nvm::NvmLatencyModel::DefaultNvm()
                                    : nvm::NvmLatencyModel::DramSpeed();
  auto db = bench::Unwrap(core::Database::Create(options), "create");
  workload::EnterpriseConfig config;
  storage::Table* table = bench::Unwrap(
      workload::LoadEnterpriseTable(db.get(), "enterprise", rows, config),
      "load");

  if (delete_fraction > 0) {
    Rng rng(3);
    auto tx = bench::Unwrap(db->Begin(), "begin");
    uint64_t in_batch = 0;
    for (uint64_t r = 0; r < rows; ++r) {
      if (!rng.Bernoulli(delete_fraction)) continue;
      bench::Die(db->Delete(tx, table, {false, r}), "delete");
      if (++in_batch >= 512) {
        bench::Die(db->Commit(tx), "commit");
        tx = bench::Unwrap(db->Begin(), "begin");
        in_batch = 0;
      }
    }
    bench::Die(db->Commit(tx), "commit");
  }

  auto stats = bench::Unwrap(db->Merge("enterprise"), "merge");
  MergeSample sample;
  sample.delta_rows = rows;
  sample.seconds = stats.seconds;
  sample.rows_per_second = rows / stats.seconds;
  return sample;
}

}  // namespace

int main() {
  std::printf("E7 — delta→main merge performance\n\n");
  std::printf("merge throughput vs delta size (DRAM vs NVM latency):\n");
  std::printf("%12s %14s %14s %10s\n", "delta rows", "dram[Mrow/s]",
              "nvm[Mrow/s]", "nvm/dram");
  for (uint64_t base : {5000, 10000, 20000}) {
    const uint64_t rows = bench::Scaled(base);
    const MergeSample dram = RunMerge(rows, false, 0);
    const MergeSample nvm = RunMerge(rows, true, 0);
    std::printf("%12llu %14.2f %14.2f %9.2fx\n",
                static_cast<unsigned long long>(rows),
                dram.rows_per_second / 1e6, nvm.rows_per_second / 1e6,
                dram.rows_per_second / nvm.rows_per_second);
    std::printf("BENCH_JSON {\"bench\":\"e7\",\"phase\":\"size\","
                "\"delta_rows\":%llu,\"dram_rows_per_s\":%.0f,"
                "\"nvm_rows_per_s\":%.0f}\n",
                static_cast<unsigned long long>(rows),
                dram.rows_per_second, nvm.rows_per_second);
  }

  std::printf("\nmerge with dead versions (NVM, %llu rows):\n",
              static_cast<unsigned long long>(bench::Scaled(20000)));
  std::printf("%16s %12s\n", "deleted rows", "merge[ms]");
  for (double fraction : {0.0, 0.25, 0.5}) {
    const MergeSample sample =
        RunMerge(bench::Scaled(20000), true, fraction);
    std::printf("%15.0f%% %12.2f\n", fraction * 100,
                sample.seconds * 1e3);
    std::printf("BENCH_JSON {\"bench\":\"e7\",\"phase\":\"dead_versions\","
                "\"delete_fraction\":%.2f,\"merge_ms\":%.3f}\n", fraction,
                sample.seconds * 1e3);
  }
  std::printf("\npaper shape check: merge cost is linear in delta size; "
              "NVM latency adds a bounded slowdown (bulk persists "
              "amortise the barriers)\n");
  return 0;
}
