// Experiment E1 — recovery time vs dataset size (the paper's headline
// figure: 92.2 GB took ~53 s with log-based recovery, <1 s with
// Hyrise-NV). Reproduces the *shape*: log-based recovery grows linearly
// with the dataset, instant restart stays flat.
//
//   ./bench_e1_recovery_scaling            # CI-sized sweep
//   HYRISE_NV_SCALE=10 ./bench_e1_...      # bigger datasets

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/query.h"
#include "workload/enterprise.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

struct Sample {
  uint64_t rows;
  double data_mb;
  double seconds;
};

Sample MeasureRecovery(core::DurabilityMode mode, uint64_t rows) {
  const std::string dir = bench::MakeBenchDir("e1");
  auto options = bench::EngineOptions(
      mode, dir, std::max<size_t>(size_t{256} << 20, rows * 256));
  auto db = bench::Unwrap(core::Database::Create(options), "create");

  workload::EnterpriseConfig config;
  (void)bench::Unwrap(
      workload::LoadEnterpriseTable(db.get(), "enterprise", rows, config),
      "load");
  bench::Die(db->CreateIndex("enterprise", 0), "index");

  auto recovered = bench::Unwrap(
      core::Database::CrashAndRecover(std::move(db)), "recover");
  Sample sample;
  sample.rows = rows;
  sample.data_mb =
      rows * workload::EnterpriseRowBytes(config) / (1024.0 * 1024.0);
  sample.seconds = recovered->last_recovery_report().total_seconds;

  // Sanity: the recovered database must hold every committed row.
  const uint64_t back =
      core::CountRows(*recovered->GetTable("enterprise"),
                      recovered->ReadSnapshot(), storage::kTidNone);
  if (back != rows) {
    std::fprintf(stderr, "E1: lost rows (%llu of %llu)\n",
                 static_cast<unsigned long long>(back),
                 static_cast<unsigned long long>(rows));
    std::exit(1);
  }
  bench::RemoveBenchDir(dir);
  return sample;
}

double FitSlopeUsPerRow(const std::vector<Sample>& samples) {
  // Least-squares slope of seconds over rows, reported in µs/row.
  double n = samples.size(), sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& s : samples) {
    const double x = static_cast<double>(s.rows);
    sx += x;
    sy += s.seconds;
    sxx += x * x;
    sxy += x * s.seconds;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx) * 1e6;
}

}  // namespace

int main() {
  std::vector<uint64_t> row_counts;
  for (uint64_t base : {2000, 5000, 10000, 20000, 40000}) {
    row_counts.push_back(bench::Scaled(base));
  }

  std::printf("E1 — recovery time vs dataset size\n");
  std::printf("%10s %9s %14s %14s %12s\n", "rows", "data[MB]",
              "wal-value[s]", "wal-dict[s]", "nvm[s]");

  std::vector<Sample> wal_value, wal_dict, nvm;
  for (const uint64_t rows : row_counts) {
    wal_value.push_back(
        MeasureRecovery(core::DurabilityMode::kWalValue, rows));
    wal_dict.push_back(
        MeasureRecovery(core::DurabilityMode::kWalDict, rows));
    nvm.push_back(MeasureRecovery(core::DurabilityMode::kNvm, rows));
    std::printf("%10llu %9.1f %14.4f %14.4f %12.4f\n",
                static_cast<unsigned long long>(rows),
                wal_value.back().data_mb, wal_value.back().seconds,
                wal_dict.back().seconds, nvm.back().seconds);
    std::printf(
        "BENCH_JSON {\"bench\":\"e1\",\"rows\":%llu,\"data_mb\":%.1f,"
        "\"wal_value_s\":%.4f,\"wal_dict_s\":%.4f,\"nvm_s\":%.4f}\n",
        static_cast<unsigned long long>(rows), wal_value.back().data_mb,
        wal_value.back().seconds, wal_dict.back().seconds,
        nvm.back().seconds);
  }

  std::printf("\nfitted growth [µs per row]: wal-value %.2f, wal-dict "
              "%.2f, nvm %.4f\n",
              FitSlopeUsPerRow(wal_value), FitSlopeUsPerRow(wal_dict),
              FitSlopeUsPerRow(nvm));
  std::printf("paper shape check: log-based grows linearly, instant "
              "restart is flat (ratio at largest size: %.0fx)\n",
              wal_value.back().seconds /
                  std::max(nvm.back().seconds, 1e-9));
  return 0;
}
