// Experiment E4 — throughput sensitivity to NVM write latency. The
// paper's emulation platform swept the injected latency; we sweep the
// same knob (flush/fence delay scaling) on a write-heavy YCSB mix.

#include <cstdio>

#include "bench_util.h"
#include "workload/ycsb.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

double RunWithLatency(double factor, uint64_t rows, uint64_t txns) {
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = size_t{512} << 20;
  options.tracking = nvm::TrackingMode::kNone;
  options.nvm_latency = factor == 0 ? nvm::NvmLatencyModel::DramSpeed()
                                    : nvm::NvmLatencyModel::Scaled(factor);
  auto db = bench::Unwrap(core::Database::Create(options), "create");

  workload::YcsbConfig config;
  config.initial_rows = rows;
  config.read_fraction = 0.1;  // write-heavy: persists dominate
  config.update_fraction = 0.6;
  workload::YcsbRunner runner(db.get(), config);
  bench::Die(runner.Load(), "load");
  (void)bench::Unwrap(runner.Run(txns / 10 + 1), "warmup");
  auto stats = bench::Unwrap(runner.Run(txns), "run");
  return stats.TxnPerSecond();
}

}  // namespace

int main() {
  const uint64_t rows = bench::Scaled(10000);
  const uint64_t txns = bench::Scaled(5000);
  std::printf("E4 — NVM engine throughput vs injected persist latency "
              "(write-heavy YCSB, %llu txns)\n",
              static_cast<unsigned long long>(txns));
  std::printf("%-22s %12s %12s\n", "latency profile", "txn/s",
              "vs DRAM");

  const double dram = RunWithLatency(0, rows, txns);
  std::printf("%-22s %12.0f %11.0f%%\n", "DRAM (0 ns)", dram, 100.0);
  std::printf("BENCH_JSON {\"bench\":\"e4\",\"latency_factor\":0,"
              "\"flush_ns\":0,\"txn_per_s\":%.0f,\"vs_dram\":1.0}\n",
              dram);
  for (const double factor : {1.0, 2.0, 4.0, 8.0}) {
    const auto model = nvm::NvmLatencyModel::Scaled(factor);
    const double tps = RunWithLatency(factor, rows, txns);
    char label[64];
    std::snprintf(label, sizeof(label), "%.0fx (flush %u ns)", factor,
                  model.flush_ns);
    std::printf("%-22s %12.0f %11.0f%%\n", label, tps,
                100.0 * tps / dram);
    std::printf("BENCH_JSON {\"bench\":\"e4\",\"latency_factor\":%.0f,"
                "\"flush_ns\":%u,\"txn_per_s\":%.0f,\"vs_dram\":%.3f}\n",
                factor, model.flush_ns, tps, tps / dram);
  }
  std::printf("\npaper shape check: throughput degrades smoothly with NVM "
              "write latency; the write path, not reads, pays the cost\n");
  return 0;
}
