// Experiment E2 — restart timeline (the demo's live figure): transaction
// throughput over time around a crash. The log-based engine shows a
// visible unavailability window while it replays; Hyrise-NV's gap is too
// small to see at the same resolution.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "workload/ycsb.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

struct Timeline {
  double pre_crash_tps = 0;
  double downtime_seconds = 0;
  double post_crash_tps = 0;
};

Timeline RunTimeline(core::DurabilityMode mode, uint64_t rows,
                     uint64_t txns_per_phase) {
  const std::string dir = bench::MakeBenchDir("e2");
  auto options = bench::EngineOptions(mode, dir, size_t{512} << 20);
  auto db = bench::Unwrap(core::Database::Create(options), "create");

  workload::YcsbConfig config;
  config.initial_rows = rows;
  config.read_fraction = 0.5;
  config.update_fraction = 0.3;
  workload::YcsbRunner runner(db.get(), config);
  bench::Die(runner.Load(), "load");
  // Merge the load into the main partition: steady-state operation keeps
  // the delta small (and with it the restart-time volatile rebuild).
  bench::Die(db->Merge("ycsb").status(), "merge");

  Timeline timeline;
  auto pre = bench::Unwrap(runner.Run(txns_per_phase), "pre run");
  timeline.pre_crash_tps = pre.TxnPerSecond();

  auto recovered = bench::Unwrap(
      core::Database::CrashAndRecover(std::move(db)), "recover");
  timeline.downtime_seconds =
      recovered->last_recovery_report().total_seconds;

  // Fresh runner over the recovered database (same table).
  workload::YcsbConfig post_config = config;
  post_config.seed += 1000;
  workload::YcsbRunner post_runner(recovered.get(), post_config);
  // Reuse the existing table: run ad-hoc transactions directly.
  storage::Table* table =
      bench::Unwrap(recovered->GetTable("ycsb"), "table");
  Stopwatch timer;
  uint64_t done = 0;
  Rng rng(99);
  for (uint64_t t = 0; t < txns_per_phase; ++t) {
    auto tx = bench::Unwrap(recovered->Begin(), "begin");
    const int64_t key = static_cast<int64_t>(rng.Uniform(rows));
    auto scan = recovered->ScanEqual(table, 0, storage::Value(key),
                                     tx.snapshot(), tx.tid());
    bench::Die(scan.status(), "scan");
    if (!scan->empty() && rng.Bernoulli(0.4)) {
      auto update = recovered->Update(
          tx, table, scan->front(),
          {storage::Value(key), storage::Value(rng.NextString(64))});
      if (!update.ok()) {
        bench::Die(recovered->Abort(tx), "abort");
        continue;
      }
    }
    bench::Die(recovered->Commit(tx), "commit");
    ++done;
  }
  timeline.post_crash_tps = done / timer.ElapsedSeconds();
  bench::RemoveBenchDir(dir);
  return timeline;
}

}  // namespace

int main() {
  const uint64_t rows = bench::Scaled(20000);
  const uint64_t txns = bench::Scaled(5000);

  std::printf("E2 — restart timeline (throughput around a crash), "
              "%llu-row table\n",
              static_cast<unsigned long long>(rows));
  std::printf("%-12s %16s %16s %16s\n", "engine", "pre-crash[tx/s]",
              "downtime[ms]", "post-crash[tx/s]");
  for (const auto mode :
       {core::DurabilityMode::kWalValue, core::DurabilityMode::kNvm}) {
    const Timeline t = RunTimeline(mode, rows, txns);
    std::printf("%-12s %16.0f %16.3f %16.0f\n",
                core::DurabilityModeName(mode), t.pre_crash_tps,
                t.downtime_seconds * 1e3, t.post_crash_tps);
    std::printf(
        "BENCH_JSON {\"bench\":\"e2\",\"engine\":\"%s\","
        "\"pre_crash_tps\":%.1f,\"downtime_ms\":%.3f,"
        "\"post_crash_tps\":%.1f}\n",
        core::DurabilityModeName(mode), t.pre_crash_tps,
        t.downtime_seconds * 1e3, t.post_crash_tps);
  }
  std::printf("\npaper shape check: the log engine is unavailable for the "
              "replay window; Hyrise-NV answers queries immediately\n");
  return 0;
}
