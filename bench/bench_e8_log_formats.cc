// Experiment E8 — logging-format ablation (design choice called out in
// DESIGN.md): full-value logging vs dictionary-encoded logging. Measures
// log volume, insert-path throughput, and recovery time for the same
// workload.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "workload/enterprise.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

struct FormatSample {
  double load_seconds;
  uint64_t log_bytes;
  double recovery_seconds;
};

FormatSample RunFormat(core::DurabilityMode mode, uint64_t rows,
                       uint64_t cardinality) {
  const std::string dir = bench::MakeBenchDir("e8");
  auto options = bench::EngineOptions(mode, dir, size_t{512} << 20);
  options.tracking = nvm::TrackingMode::kNone;
  auto db = bench::Unwrap(core::Database::Create(options), "create");

  workload::EnterpriseConfig config;
  config.cardinality = cardinality;
  Stopwatch load_timer;
  (void)bench::Unwrap(
      workload::LoadEnterpriseTable(db.get(), "enterprise", rows, config),
      "load");
  FormatSample sample;
  sample.load_seconds = load_timer.ElapsedSeconds();
  sample.log_bytes = db->log_manager()->device().size();

  auto recovered = bench::Unwrap(
      core::Database::CrashAndRecover(std::move(db)), "recover");
  sample.recovery_seconds =
      recovered->last_recovery_report().total_seconds;
  bench::RemoveBenchDir(dir);
  return sample;
}

}  // namespace

int main() {
  const uint64_t rows = bench::Scaled(20000);
  std::printf("E8 — logging-format ablation, %llu inserted rows\n\n",
              static_cast<unsigned long long>(rows));

  for (const uint64_t cardinality : {100, 10000}) {
    std::printf("column cardinality %llu (%s dictionaries):\n",
                static_cast<unsigned long long>(cardinality),
                cardinality <= 100 ? "small" : "large");
    std::printf("  %-12s %12s %12s %14s\n", "format", "log[MB]",
                "load[s]", "recovery[s]");
    const FormatSample value =
        RunFormat(core::DurabilityMode::kWalValue, rows, cardinality);
    std::printf("  %-12s %12.2f %12.3f %14.4f\n", "value",
                value.log_bytes / 1e6, value.load_seconds,
                value.recovery_seconds);
    const FormatSample dict =
        RunFormat(core::DurabilityMode::kWalDict, rows, cardinality);
    std::printf("  %-12s %12.2f %12.3f %14.4f\n", "dict-encoded",
                dict.log_bytes / 1e6, dict.load_seconds,
                dict.recovery_seconds);
    std::printf("BENCH_JSON {\"bench\":\"e8\",\"format\":\"value\","
                "\"cardinality\":%llu,\"log_bytes\":%llu,"
                "\"load_s\":%.4f,\"recovery_s\":%.4f}\n",
                static_cast<unsigned long long>(cardinality),
                static_cast<unsigned long long>(value.log_bytes),
                value.load_seconds, value.recovery_seconds);
    std::printf("BENCH_JSON {\"bench\":\"e8\",\"format\":\"dict\","
                "\"cardinality\":%llu,\"log_bytes\":%llu,"
                "\"load_s\":%.4f,\"recovery_s\":%.4f}\n",
                static_cast<unsigned long long>(cardinality),
                static_cast<unsigned long long>(dict.log_bytes),
                dict.load_seconds, dict.recovery_seconds);
    std::printf("  log volume ratio: %.2fx\n\n",
                static_cast<double>(value.log_bytes) /
                    static_cast<double>(dict.log_bytes));
  }
  std::printf("paper shape check: dictionary-encoded logging shrinks the "
              "log most when dictionaries are small (high value reuse); "
              "both formats recover the same state\n");
  return 0;
}
