// E11 — served load knee: connections vs throughput/latency under a
// fixed open-loop arrival rate.
//
// An in-process server (NVM mode) is driven by the open-loop generator
// (src/net/loadgen) across a connection-count sweep. The offered rate is
// identical at every point, so throughput differences isolate what the
// connection count itself costs (epoll fan-out, per-connection
// buffering, admission control) and latency differences show queueing:
// with too few connections the open-loop backlog queues due operations
// and their intended-time latency explodes — the coordinated-omission
// accounting makes that visible instead of silently forgiving it.
//
// The "knee" reported is the first sweep point whose throughput gain
// over the previous point falls below 10% — past it, more connections
// buy latency, not throughput.
//
// Four phases (EXPERIMENTS.md E11 + E14):
//   depth  — ONE connection, pipeline depth {1,4,16,64}, offered rate
//            far past what a single depth-1 connection can deliver; the
//            capacity curve is the pipelining win in isolation (runs
//            first, on the pristine table, before mixed phases pollute
//            the zipf hot keys with duplicate rows)
//   serial — the classic connection sweep at depth 1 (call-and-response)
//   piped  — the same sweep at depth 16, same rate, point-for-point
//            comparable with serial
//   hot    — saturating pure-read sweep over {1,2,8} connections at
//            depth 1 then depth 16; the depth-16 peak should match or
//            beat serial's with a fraction of the sockets
//
// Emits BENCH_JSON lines:
//   {"bench":"e11","phase":"depth","connections":1,"depth":D,...}
//   {"bench":"e11","phase":"serial","connections":N,"depth":1,...}
//   {"bench":"e11","phase":"piped","connections":N,"depth":16,...}
//   {"bench":"e11","phase":"serial_hot"|"piped_hot",...}
//   {"bench":"e11_knee","phase":P,"connections":N}  (detected knees)
//   {"bench":"e11_depth_speedup","speedup_16x":R}   (capacity ratio)
//   {"bench":"e11_peak","serial_hot_rps":X,"piped_hot_rps":Y}
//   {"bench":"e11_timeline","second":S,...}         (final serial point)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "net/net_util.h"
#include "net/server.h"

namespace hyrise_nv::bench {
namespace {

using storage::Value;

constexpr uint64_t kKeys = 20'000;
constexpr double kRate = 8'000;     // offered ops/s, fixed across sweep
constexpr double kDepthRate = 250'000;  // depth phase: saturate 1 socket
constexpr double kHotRate = 120'000;    // hot pair: saturate small sweeps
constexpr double kDepthDrain = 1.0;     // cap drain: capacity probe, not wait
constexpr double kDuration = 3.0;   // measure seconds per point
constexpr double kWarmup = 1.0;

void Preload(uint16_t port, uint64_t keys) {
  net::ClientOptions options;
  options.port = port;
  net::Client client(options);
  Die(client.Connect(), "preload connect");
  Unwrap(client.CreateTable("kv", {{"k", storage::DataType::kInt64},
                                   {"v", storage::DataType::kString}}),
         "create table");
  Die(client.CreateIndex("kv", 0), "create index");
  const std::string value(16, 'x');
  for (uint64_t key = 0; key < keys;) {
    Unwrap(client.Begin(), "preload begin");
    for (uint64_t i = 0; i < 512 && key < keys; ++i, ++key) {
      Unwrap(client.Insert(
                 "kv", {Value(static_cast<int64_t>(key)), Value(value)}),
             "preload insert");
    }
    Unwrap(client.Commit(), "preload commit");
  }
}

net::LoadgenReport RunPoint(uint16_t port, int connections, int depth,
                            double rate, bool timeline,
                            double read_pct = -1, double drain_s = -1) {
  net::LoadgenOptions options;
  options.port = port;
  options.connections = connections;
  options.pipeline_depth = depth;
  options.rate_rps = Scale() * rate;
  options.duration_s = kDuration;
  options.warmup_s = kWarmup;
  options.keys = Scaled(kKeys);
  options.timeline = timeline;
  if (read_pct >= 0) options.read_pct = read_pct;
  if (drain_s >= 0) options.drain_timeout_s = drain_s;
  return Unwrap(net::RunOpenLoopLoad(options), "load run");
}

void PrintPoint(const char* phase, int connections, int depth, double rate,
                const net::LoadgenReport& report) {
  std::printf(
      "BENCH_JSON {\"bench\":\"e11\",\"phase\":\"%s\",\"connections\":%d,"
      "\"depth\":%d,"
      "\"rate_rps\":%.0f,\"ops_offered\":%llu,\"ops_completed\":%llu,"
      "\"tput_rps\":%.1f,\"capacity_rps\":%.1f,\"p50_us\":%.1f,"
      "\"p99_us\":%.1f,"
      "\"p999_us\":%.1f,\"max_us\":%.1f,\"errors\":%llu,\"shed\":%llu,"
      "\"backlog_peak\":%llu}\n",
      phase, connections, depth, Scale() * rate,
      static_cast<unsigned long long>(report.ops_offered),
      static_cast<unsigned long long>(report.ops_completed),
      report.tput_rps, report.capacity_rps, report.p50_us, report.p99_us,
      report.p999_us,
      report.max_us, static_cast<unsigned long long>(report.errors),
      static_cast<unsigned long long>(report.shed),
      static_cast<unsigned long long>(report.backlog_peak));
  std::fflush(stdout);
}

/// Runs the connection sweep at `depth`, prints each point, returns the
/// detected knee (first point whose gain over the previous is < 10%).
int SweepConnections(const char* phase, uint16_t port,
                     const std::vector<int>& sweep, int depth,
                     bool timeline_last,
                     net::LoadgenReport* last_report = nullptr) {
  double prev_tput = 0;
  int knee = sweep.front();
  bool knee_found = false;
  for (size_t i = 0; i < sweep.size(); ++i) {
    const bool last = i + 1 == sweep.size();
    const net::LoadgenReport report =
        RunPoint(port, sweep[i], depth, kRate, timeline_last && last);
    PrintPoint(phase, sweep[i], depth, kRate, report);
    if (i > 0 && !knee_found && report.tput_rps < prev_tput * 1.10) {
      knee = sweep[i];
      knee_found = true;
    }
    prev_tput = report.tput_rps;
    if (last && last_report != nullptr) *last_report = report;
  }
  if (!knee_found) knee = sweep.back();
  std::printf(
      "BENCH_JSON {\"bench\":\"e11_knee\",\"phase\":\"%s\","
      "\"connections\":%d}\n",
      phase, knee);
  std::fflush(stdout);
  return knee;
}

void Run() {
  const std::string dir = MakeBenchDir("e11_loadknee");
  core::DatabaseOptions options =
      EngineOptions(core::DurabilityMode::kNvm, dir, 512u << 20);
  options.tracking = nvm::TrackingMode::kNone;
  auto db = Unwrap(core::Database::Create(options), "create database");

  net::ServerOptions server_options;
  server_options.num_workers = 4;
  server_options.max_connections = 1'200;
  server_options.max_inflight = 512;
  auto server =
      Unwrap(net::Server::Start(db.get(), server_options), "start server");
  const uint16_t port = server->port();

  net::RaiseFdLimit(4'096);
  Preload(port, Scaled(kKeys));

  const std::vector<int> sweep = {8, 32, 128, 512, 1'024};

  // Phase 1 — depth: ONE connection, offered rate deliberately past
  // what a single call-and-response connection can complete. At depth 1
  // throughput saturates at 1/RTT; deeper windows amortise the
  // syscall+wake cost across a batch of frames, so capacity(depth) is
  // the pipelining win in isolation. Runs FIRST, on the pristine
  // preloaded table: the later mixed-workload phases insert duplicate
  // zipfian hot keys whose version chains inflate every subsequent
  // scan, which would compress the depth ratio. Pure reads: a write's
  // commit fsync is sequential per connection regardless of depth (each
  // DML is its own single-op batch here), so a write mix would measure
  // fsync latency, not the wire. capacity_rps (all completions over
  // wall time) is the honest metric past saturation — tput_rps gates
  // completions on intended times the run may never reach.
  double depth1_cap = 0;
  double depth16_cap = 0;
  for (int depth : {1, 4, 16, 64}) {
    const net::LoadgenReport report =
        RunPoint(port, /*connections=*/1, depth, kDepthRate, false,
                 /*read_pct=*/1.0, /*drain_s=*/kDepthDrain);
    PrintPoint("depth", 1, depth, kDepthRate, report);
    if (depth == 1) depth1_cap = report.capacity_rps;
    if (depth == 16) depth16_cap = report.capacity_rps;
  }
  std::printf(
      "BENCH_JSON {\"bench\":\"e11_depth_speedup\",\"speedup_16x\":%.2f}\n",
      depth1_cap > 0 ? depth16_cap / depth1_cap : 0.0);
  std::fflush(stdout);

  // Phase 2 — serial: depth-1 connection sweep (the original E11).
  net::LoadgenReport serial_last;
  SweepConnections("serial", port, sweep, /*depth=*/1,
                   /*timeline_last=*/true, &serial_last);
  for (size_t second = 0; second < serial_last.timeline.size(); ++second) {
    const net::LoadgenTimelineBucket& bucket = serial_last.timeline[second];
    if (bucket.completed == 0) continue;
    std::printf(
        "BENCH_JSON {\"bench\":\"e11_timeline\",\"second\":%zu,"
        "\"completed\":%llu,\"mean_us\":%.1f,\"max_us\":%.1f}\n",
        second, static_cast<unsigned long long>(bucket.completed),
        bucket.sum_us / static_cast<double>(bucket.completed),
        bucket.max_us);
  }

  // Phase 3 — piped: the connection sweep again at depth 16, same
  // offered rate as serial so the two sweeps are point-for-point
  // comparable (at a sub-saturating rate both complete everything; the
  // latency columns show what the window costs or saves per point).
  SweepConnections("piped", port, sweep, /*depth=*/16,
                   /*timeline_last=*/false);

  // Phase 4 — hot pair: a saturating pure-read sweep over small
  // connection counts, once at depth 1 and once at depth 16. This is
  // where "the peak rises": serial needs many sockets to approach the
  // server's read capacity, the piped sweep gets there with one.
  double hot_peak[2] = {0, 0};
  for (int pass = 0; pass < 2; ++pass) {
    const int depth = pass == 0 ? 1 : 16;
    const char* phase = pass == 0 ? "serial_hot" : "piped_hot";
    for (int connections : {1, 2, 8}) {
      const net::LoadgenReport report =
          RunPoint(port, connections, depth, kHotRate, false,
                   /*read_pct=*/1.0, /*drain_s=*/kDepthDrain);
      PrintPoint(phase, connections, depth, kHotRate, report);
      if (report.capacity_rps > hot_peak[pass]) {
        hot_peak[pass] = report.capacity_rps;
      }
    }
  }
  std::printf(
      "BENCH_JSON {\"bench\":\"e11_peak\",\"serial_hot_rps\":%.1f,"
      "\"piped_hot_rps\":%.1f}\n",
      hot_peak[0], hot_peak[1]);
  std::fflush(stdout);

  server->Drain();
  server->Wait();
  server.reset();
  Die(db->Close(), "close");
  RemoveBenchDir(dir);
}

}  // namespace
}  // namespace hyrise_nv::bench

int main() {
  hyrise_nv::bench::Run();
  return 0;
}
