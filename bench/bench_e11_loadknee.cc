// E11 — served load knee: connections vs throughput/latency under a
// fixed open-loop arrival rate.
//
// An in-process server (NVM mode) is driven by the open-loop generator
// (src/net/loadgen) across a connection-count sweep. The offered rate is
// identical at every point, so throughput differences isolate what the
// connection count itself costs (epoll fan-out, per-connection
// buffering, admission control) and latency differences show queueing:
// with too few connections the open-loop backlog queues due operations
// and their intended-time latency explodes — the coordinated-omission
// accounting makes that visible instead of silently forgiving it.
//
// The "knee" reported is the first sweep point whose throughput gain
// over the previous point falls below 10% — past it, more connections
// buy latency, not throughput.
//
// Emits BENCH_JSON lines:
//   {"bench":"e11","connections":N,"rate_rps":...,"tput_rps":...,
//    "p50_us":...,"p99_us":...,"p999_us":...,"backlog_peak":N,...}
//   {"bench":"e11_knee","connections":N}           (the detected knee)
//   {"bench":"e11_timeline","second":S,...}        (final sweep point)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/loadgen.h"
#include "net/net_util.h"
#include "net/server.h"

namespace hyrise_nv::bench {
namespace {

using storage::Value;

constexpr uint64_t kKeys = 20'000;
constexpr double kRate = 8'000;     // offered ops/s, fixed across sweep
constexpr double kDuration = 3.0;   // measure seconds per point
constexpr double kWarmup = 1.0;

void Preload(uint16_t port, uint64_t keys) {
  net::ClientOptions options;
  options.port = port;
  net::Client client(options);
  Die(client.Connect(), "preload connect");
  Unwrap(client.CreateTable("kv", {{"k", storage::DataType::kInt64},
                                   {"v", storage::DataType::kString}}),
         "create table");
  Die(client.CreateIndex("kv", 0), "create index");
  const std::string value(16, 'x');
  for (uint64_t key = 0; key < keys;) {
    Unwrap(client.Begin(), "preload begin");
    for (uint64_t i = 0; i < 512 && key < keys; ++i, ++key) {
      Unwrap(client.Insert(
                 "kv", {Value(static_cast<int64_t>(key)), Value(value)}),
             "preload insert");
    }
    Unwrap(client.Commit(), "preload commit");
  }
}

net::LoadgenReport RunPoint(uint16_t port, int connections, bool timeline) {
  net::LoadgenOptions options;
  options.port = port;
  options.connections = connections;
  options.rate_rps = Scale() * kRate;
  options.duration_s = kDuration;
  options.warmup_s = kWarmup;
  options.keys = Scaled(kKeys);
  options.timeline = timeline;
  return Unwrap(net::RunOpenLoopLoad(options), "load run");
}

void PrintPoint(int connections, const net::LoadgenReport& report) {
  std::printf(
      "BENCH_JSON {\"bench\":\"e11\",\"connections\":%d,"
      "\"rate_rps\":%.0f,\"ops_offered\":%llu,\"ops_completed\":%llu,"
      "\"tput_rps\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
      "\"p999_us\":%.1f,\"max_us\":%.1f,\"errors\":%llu,\"shed\":%llu,"
      "\"backlog_peak\":%llu}\n",
      connections, Scale() * kRate,
      static_cast<unsigned long long>(report.ops_offered),
      static_cast<unsigned long long>(report.ops_completed),
      report.tput_rps, report.p50_us, report.p99_us, report.p999_us,
      report.max_us, static_cast<unsigned long long>(report.errors),
      static_cast<unsigned long long>(report.shed),
      static_cast<unsigned long long>(report.backlog_peak));
  std::fflush(stdout);
}

void Run() {
  const std::string dir = MakeBenchDir("e11_loadknee");
  core::DatabaseOptions options =
      EngineOptions(core::DurabilityMode::kNvm, dir, 512u << 20);
  options.tracking = nvm::TrackingMode::kNone;
  auto db = Unwrap(core::Database::Create(options), "create database");

  net::ServerOptions server_options;
  server_options.num_workers = 4;
  server_options.max_connections = 1'200;
  server_options.max_inflight = 512;
  auto server =
      Unwrap(net::Server::Start(db.get(), server_options), "start server");
  const uint16_t port = server->port();

  net::RaiseFdLimit(4'096);
  Preload(port, Scaled(kKeys));

  const std::vector<int> sweep = {8, 32, 128, 512, 1'024};
  double prev_tput = 0;
  int knee = sweep.front();
  bool knee_found = false;
  for (size_t i = 0; i < sweep.size(); ++i) {
    const bool last = i + 1 == sweep.size();
    const net::LoadgenReport report = RunPoint(port, sweep[i], last);
    PrintPoint(sweep[i], report);
    if (i > 0 && !knee_found && report.tput_rps < prev_tput * 1.10) {
      knee = sweep[i];
      knee_found = true;
    }
    prev_tput = report.tput_rps;
    if (last) {
      for (size_t second = 0; second < report.timeline.size(); ++second) {
        const net::LoadgenTimelineBucket& bucket = report.timeline[second];
        if (bucket.completed == 0) continue;
        std::printf(
            "BENCH_JSON {\"bench\":\"e11_timeline\",\"second\":%zu,"
            "\"completed\":%llu,\"mean_us\":%.1f,\"max_us\":%.1f}\n",
            second, static_cast<unsigned long long>(bucket.completed),
            bucket.sum_us / static_cast<double>(bucket.completed),
            bucket.max_us);
      }
    }
  }
  if (!knee_found) knee = sweep.back();
  std::printf("BENCH_JSON {\"bench\":\"e11_knee\",\"connections\":%d}\n",
              knee);
  std::fflush(stdout);

  server->Drain();
  server->Wait();
  server.reset();
  Die(db->Close(), "close");
  RemoveBenchDir(dir);
}

}  // namespace
}  // namespace hyrise_nv::bench

int main() {
  hyrise_nv::bench::Run();
  return 0;
}
