// Experiment E6 — microbenchmarks of the NVM write path: persist
// primitives, persistent-vector appends, engine inserts and commits,
// including the flush/fence counts each operation issues (the quantities
// the injected latency multiplies).

#include <benchmark/benchmark.h>

#include "alloc/pheap.h"
#include "alloc/pvector.h"
#include "core/database.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

std::unique_ptr<alloc::PHeap> MakeHeap(const nvm::NvmLatencyModel& model) {
  nvm::PmemRegionOptions options;
  options.tracking = nvm::TrackingMode::kNone;
  options.latency = model;
  auto result = alloc::PHeap::Create(size_t{64} << 20, options);
  return std::move(result).ValueUnsafe();
}

void BM_PersistLine(benchmark::State& state) {
  auto heap = MakeHeap(nvm::NvmLatencyModel::Scaled(
      static_cast<double>(state.range(0))));
  auto* slot =
      heap->Resolve<uint64_t>(alloc::PAllocator::HeapBegin() + 64);
  uint64_t v = 0;
  for (auto _ : state) {
    heap->region().AtomicPersist64(slot, ++v);
  }
  state.SetLabel("latency factor " + std::to_string(state.range(0)));
}
BENCHMARK(BM_PersistLine)->Arg(0)->Arg(1)->Arg(4);

void BM_PersistRange(benchmark::State& state) {
  auto heap = MakeHeap(nvm::NvmLatencyModel::DefaultNvm());
  const size_t bytes = static_cast<size_t>(state.range(0));
  auto alloc_result = heap->allocator().Alloc(bytes);
  auto* data = heap->Resolve<uint8_t>(*alloc_result);
  for (auto _ : state) {
    data[0]++;
    heap->region().Persist(data, bytes);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_PersistRange)->Arg(64)->Arg(1024)->Arg(65536);

void BM_PVectorAppend(benchmark::State& state) {
  auto heap = MakeHeap(nvm::NvmLatencyModel::Scaled(
      static_cast<double>(state.range(0))));
  auto desc_off = heap->allocator().Alloc(sizeof(alloc::PVectorDesc));
  auto* desc = heap->Resolve<alloc::PVectorDesc>(*desc_off);
  alloc::PVector<uint64_t>::Format(heap->region(), desc);
  alloc::PVector<uint64_t> vec(&heap->region(), &heap->allocator(), desc);
  (void)vec.Reserve(1 << 20);
  uint64_t v = 0;
  heap->region().stats().Reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec.Append(++v));
  }
  state.counters["flushes/op"] = benchmark::Counter(
      static_cast<double>(heap->region().stats().flush_lines.load()),
      benchmark::Counter::kAvgIterations);
  state.counters["fences/op"] = benchmark::Counter(
      static_cast<double>(heap->region().stats().fences.load()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PVectorAppend)->Arg(0)->Arg(1);

std::unique_ptr<core::Database> MakeDb(bool nvm_latency) {
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = size_t{256} << 20;
  options.tracking = nvm::TrackingMode::kNone;
  options.nvm_latency = nvm_latency ? nvm::NvmLatencyModel::DefaultNvm()
                                    : nvm::NvmLatencyModel::DramSpeed();
  return std::move(core::Database::Create(options)).ValueUnsafe();
}

void BM_EngineInsertCommit(benchmark::State& state) {
  auto db = MakeDb(state.range(0) != 0);
  auto schema = *storage::Schema::Make({{"k", storage::DataType::kInt64},
                                        {"v", storage::DataType::kString}});
  storage::Table* table = *db->CreateTable("t", schema);
  int64_t k = 0;
  db->nvm_stats().Reset();
  for (auto _ : state) {
    auto tx = *db->Begin();
    benchmark::DoNotOptimize(
        db->Insert(tx, table, {storage::Value(k++),
                               storage::Value(std::string("payload"))}));
    (void)db->Commit(tx);
  }
  state.counters["flushes/txn"] = benchmark::Counter(
      static_cast<double>(db->nvm_stats().flush_lines.load()),
      benchmark::Counter::kAvgIterations);
  state.counters["fences/txn"] = benchmark::Counter(
      static_cast<double>(db->nvm_stats().fences.load()),
      benchmark::Counter::kAvgIterations);
  state.SetLabel(state.range(0) ? "NVM latency" : "DRAM speed");
}
BENCHMARK(BM_EngineInsertCommit)->Arg(0)->Arg(1);

void BM_EngineBatchedCommit(benchmark::State& state) {
  // Amortisation: N inserts per commit.
  auto db = MakeDb(true);
  auto schema = *storage::Schema::Make({{"k", storage::DataType::kInt64}});
  storage::Table* table = *db->CreateTable("t", schema);
  const int64_t batch = state.range(0);
  int64_t k = 0;
  for (auto _ : state) {
    auto tx = *db->Begin();
    for (int64_t i = 0; i < batch; ++i) {
      benchmark::DoNotOptimize(
          db->Insert(tx, table, {storage::Value(k++)}));
    }
    (void)db->Commit(tx);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EngineBatchedCommit)->Arg(1)->Arg(16)->Arg(256);

/// Console output plus one machine-readable BENCH_JSON line per run,
/// matching the other experiment binaries.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::string counters;
      for (const auto& [name, counter] : run.counters) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), ",\"%s\":%.3f", name.c_str(),
                      static_cast<double>(counter));
        counters += buf;
      }
      std::printf(
          "BENCH_JSON {\"bench\":\"e6\",\"name\":\"%s\","
          "\"ns_per_op\":%.1f,\"iterations\":%lld%s}\n",
          run.benchmark_name().c_str(),
          run.GetAdjustedRealTime(),
          static_cast<long long>(run.iterations), counters.c_str());
    }
    std::fflush(stdout);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
