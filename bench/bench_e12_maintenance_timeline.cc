// Experiment E12 — online maintenance under live load, measured through
// the timeline recorder. Mixed read/write load runs against a WAL-mode
// engine while the bench forces merge and checkpoint cycles; the
// timeline samples per-interval commit throughput and latency
// percentiles and splices the maintenance phases in from the flight
// recorder, so the stop-the-world cost of each cycle is visible as a
// labeled span over the tput/p99 series. This is the measurement side of
// the ROADMAP "online-maintenance scenarios" item: how much does the
// baseline stop-the-world merge actually cost a serving system?
//
// Merge and checkpoint require quiescence, so the bench coordinates the
// stop-the-world window itself: load threads hold a shared lock per
// transaction, the maintenance thread takes it uniquely — exactly the
// quiesce protocol a serving deployment would run.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "obs/timeline.h"
#include "storage/schema.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

struct PhaseAgg {
  double sample_count = 0;
  double commits = 0;
  double elapsed_ms = 0;
  double max_p99_ns = 0;

  double commits_per_sec() const {
    return elapsed_ms > 0 ? commits * 1000.0 / elapsed_ms : 0;
  }
};

}  // namespace

int main() {
  const uint64_t initial_rows = bench::Scaled(20'000);
  const double duration_s = 9.0;
  const int num_load_threads = 3;

  const std::string dir = bench::MakeBenchDir("bench_e12");
  core::DatabaseOptions options = bench::EngineOptions(
      core::DurabilityMode::kWalValue, dir, size_t{256} << 20);
  options.enable_timeline = true;
  options.timeline_interval_ms = 500;
  options.timeline_capacity = 600;
  auto db = bench::Unwrap(core::Database::Create(options), "create");

  storage::Schema schema = bench::Unwrap(
      storage::Schema::Make({{"id", storage::DataType::kInt64},
                             {"val", storage::DataType::kInt64}}),
      "schema");
  storage::Table* table =
      bench::Unwrap(db->CreateTable("orders", schema), "create table");
  bench::Die(db->CreateIndex("orders", 0), "create index");

  {
    auto tx = bench::Unwrap(db->Begin(), "begin");
    uint64_t in_batch = 0;
    for (uint64_t r = 0; r < initial_rows; ++r) {
      bench::Unwrap(
          db->Insert(tx, table,
                     {storage::Value(static_cast<int64_t>(r)),
                      storage::Value(static_cast<int64_t>(r % 97))}),
          "load insert");
      if (++in_batch >= 1024) {
        bench::Die(db->Commit(tx), "load commit");
        tx = bench::Unwrap(db->Begin(), "begin");
        in_batch = 0;
      }
    }
    bench::Die(db->Commit(tx), "load commit");
  }

  std::printf("E12 — maintenance timeline: %d load threads over %llu rows, "
              "merge + checkpoint cycles for %.0fs\n\n",
              num_load_threads,
              static_cast<unsigned long long>(initial_rows), duration_s);

  // Quiesce protocol: load threads take the lock shared per transaction,
  // maintenance takes it uniquely around merge/checkpoint. The explicit
  // request flag makes new readers back off while a writer waits —
  // glibc's rwlock prefers readers, so without it the maintenance
  // thread starves behind the tight reader loop.
  std::shared_mutex quiesce;
  std::atomic<bool> quiesce_requested{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> next_id{initial_rows};
  std::atomic<uint64_t> total_txns{0};

  std::vector<std::thread> load_threads;
  for (int t = 0; t < num_load_threads; ++t) {
    load_threads.emplace_back([&, t] {
      Rng rng(42 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        if (quiesce_requested.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        std::shared_lock<std::shared_mutex> guard(quiesce);
        auto tx_result = db->Begin();
        if (!tx_result.ok()) continue;
        auto tx = std::move(tx_result).ValueUnsafe();
        // Mixed transaction: one insert, one indexed point read.
        const int64_t id =
            static_cast<int64_t>(next_id.fetch_add(1, std::memory_order_relaxed));
        bool ok = db->Insert(tx, table,
                             {storage::Value(id),
                              storage::Value(id % 97)})
                      .ok();
        if (ok) {
          const int64_t probe = static_cast<int64_t>(
              rng.Uniform(static_cast<uint64_t>(id > 0 ? id : 1)));
          ok = db->ScanEqual(table, 0, storage::Value(probe), tx.snapshot(),
                             tx.tid())
                   .ok();
        }
        if (ok && db->Commit(tx).ok()) {
          total_txns.fetch_add(1, std::memory_order_relaxed);
        } else if (!ok) {
          (void)db->Abort(tx);
        }
      }
    });
  }

  // Maintenance schedule (seconds from start). A WAL-mode merge writes a
  // checkpoint immediately after (logged positions reference the
  // pre-merge layout), so merge windows contain a nested checkpoint
  // span; the standalone checkpoint shows the cheaper cycle alone.
  struct Maintenance {
    double at_s;
    bool merge;  // false = checkpoint only
  };
  const Maintenance schedule[] = {{2.0, true}, {4.5, false}, {6.5, true}};

  const auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  size_t next_maintenance = 0;
  while (elapsed_s() < duration_s) {
    if (next_maintenance < std::size(schedule) &&
        elapsed_s() >= schedule[next_maintenance].at_s) {
      const bool merge = schedule[next_maintenance].merge;
      quiesce_requested.store(true, std::memory_order_relaxed);
      std::unique_lock<std::shared_mutex> guard(quiesce);
      if (merge) {
        auto stats = bench::Unwrap(db->Merge("orders"), "merge");
        std::printf("  t=%.1fs merge: %llu delta rows in %.1fms\n",
                    elapsed_s(),
                    static_cast<unsigned long long>(stats.delta_rows_before),
                    stats.seconds * 1e3);
      } else {
        bench::Die(db->Checkpoint(), "checkpoint");
        std::printf("  t=%.1fs checkpoint written\n", elapsed_s());
      }
      guard.unlock();
      quiesce_requested.store(false, std::memory_order_relaxed);
      ++next_maintenance;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& thread : load_threads) thread.join();

  // Final synchronous tick so the tail of the run (and the last
  // maintenance events) land in the sample ring.
  obs::TimelineRecorder* timeline = db->timeline();
  timeline->TickOnce();

  // --- Render the phase-annotated series -------------------------------
  const obs::TimelineConfig& config = timeline->config();
  size_t commit_idx = config.counters.size();
  for (size_t i = 0; i < config.counters.size(); ++i) {
    if (config.counters[i] == "txn.commit.count") commit_idx = i;
  }
  size_t latency_idx = config.histograms.size();
  for (size_t i = 0; i < config.histograms.size(); ++i) {
    if (config.histograms[i] == "txn.commit.latency_ns") latency_idx = i;
  }

  const std::vector<obs::TimelineSample> samples = timeline->Samples();
  std::printf("\n%8s %12s %12s  %s\n", "t[s]", "commits/s", "p99[us]",
              "phases");
  PhaseAgg steady;
  PhaseAgg merge_agg;
  PhaseAgg checkpoint_agg;
  uint64_t t0 = samples.empty() ? 0 : samples.front().epoch_ms;
  for (const obs::TimelineSample& s : samples) {
    const double elapsed = s.elapsed_ms > 0 ? s.elapsed_ms : 1;
    const double commits =
        commit_idx < s.counter_deltas.size() ? s.counter_deltas[commit_idx]
                                             : 0;
    const double p99 = latency_idx < s.hist_stats.size()
                           ? s.hist_stats[latency_idx].p99
                           : 0;
    std::string phases;
    for (const std::string& phase : s.active_phases) {
      if (!phases.empty()) phases += ",";
      phases += phase;
    }
    std::printf("%8.1f %12.0f %12.1f  %s\n", (s.epoch_ms - t0) / 1000.0,
                commits * 1000.0 / elapsed, p99 / 1e3,
                phases.empty() ? "-" : phases.c_str());

    bool in_merge = false;
    bool in_checkpoint = false;
    for (const std::string& phase : s.active_phases) {
      if (phase == "merge") in_merge = true;
      if (phase == "checkpoint") in_checkpoint = true;
    }
    PhaseAgg& agg = in_merge ? merge_agg
                             : (in_checkpoint ? checkpoint_agg : steady);
    agg.sample_count += 1;
    agg.commits += commits;
    agg.elapsed_ms += elapsed;
    if (p99 > agg.max_p99_ns) agg.max_p99_ns = p99;
  }

  std::printf("\n%llu transactions total\n",
              static_cast<unsigned long long>(total_txns.load()));
  std::printf("steady:     %.0f commits/s over %.0f samples\n",
              steady.commits_per_sec(), steady.sample_count);
  std::printf("merge:      %.0f commits/s over %.0f samples (max p99 "
              "%.1fus)\n",
              merge_agg.commits_per_sec(), merge_agg.sample_count,
              merge_agg.max_p99_ns / 1e3);
  std::printf("checkpoint: %.0f commits/s over %.0f samples (max p99 "
              "%.1fus)\n",
              checkpoint_agg.commits_per_sec(), checkpoint_agg.sample_count,
              checkpoint_agg.max_p99_ns / 1e3);

  std::printf("BENCH_JSON {\"bench\":\"e12\",\"phase\":\"steady\","
              "\"commits_per_sec\":%.0f,\"max_p99_us\":%.1f}\n",
              steady.commits_per_sec(), steady.max_p99_ns / 1e3);
  std::printf("BENCH_JSON {\"bench\":\"e12\",\"phase\":\"merge\","
              "\"commits_per_sec\":%.0f,\"max_p99_us\":%.1f,"
              "\"windows\":%zu}\n",
              merge_agg.commits_per_sec(), merge_agg.max_p99_ns / 1e3,
              size_t{2});
  std::printf("BENCH_JSON {\"bench\":\"e12\",\"phase\":\"checkpoint\","
              "\"commits_per_sec\":%.0f,\"max_p99_us\":%.1f}\n",
              checkpoint_agg.commits_per_sec(),
              checkpoint_agg.max_p99_ns / 1e3);

  // Full phase-annotated series for offline tooling (one line).
  std::printf("TIMELINE_JSON %s\n", timeline->ToJson().c_str());

  const bool merge_seen = merge_agg.sample_count > 0;
  std::printf("\npaper shape check: merge/checkpoint windows appear as "
              "labeled spans over the live tput/p99 series%s\n",
              merge_seen ? "" : " [WARN: no merge-phase sample captured]");

  bench::Die(db->Close(), "close");
  bench::RemoveBenchDir(dir);
  return 0;
}
