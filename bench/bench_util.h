#ifndef HYRISE_NV_BENCH_BENCH_UTIL_H_
#define HYRISE_NV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/database.h"
#include "nvm/nvm_env.h"

namespace hyrise_nv::bench {

/// Row-count multiplier for all experiment binaries. The defaults finish
/// in seconds; set HYRISE_NV_SCALE=10 (or more) for a full-size sweep.
inline double Scale() {
  static const double scale = nvm::EnvScale("HYRISE_NV_SCALE", 1.0);
  return scale;
}

inline uint64_t Scaled(uint64_t base) {
  return static_cast<uint64_t>(static_cast<double>(base) * Scale());
}

/// Creates a unique scratch directory for a benchmark run.
inline std::string MakeBenchDir(const std::string& prefix) {
  const std::string dir = nvm::TempPath(prefix);
  std::filesystem::create_directories(dir);
  return dir;
}

inline void RemoveBenchDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

/// A plausible SATA-SSD-class device model for the log-based baselines.
inline wal::BlockDeviceOptions SsdDevice() {
  wal::BlockDeviceOptions device;
  device.write_mbps = 500;
  device.read_mbps = 500;
  device.sync_latency_us = 20;
  return device;
}

/// Standard engine configuration per durability mode.
inline core::DatabaseOptions EngineOptions(core::DurabilityMode mode,
                                           const std::string& dir,
                                           size_t region_size) {
  core::DatabaseOptions options;
  options.mode = mode;
  options.region_size = region_size;
  options.data_dir = dir;
  // Benchmarks run without the shadow (kNone): CrashAndRecover for WAL
  // modes works via device truncation; for kNvm the benchmarks that need
  // in-process crashes opt back into kShadow explicitly.
  options.tracking = nvm::TrackingMode::kShadow;
  options.nvm_latency = mode == core::DurabilityMode::kNvm
                            ? nvm::NvmLatencyModel::DefaultNvm()
                            : nvm::NvmLatencyModel::DramSpeed();
  options.device = SsdDevice();
  return options;
}

inline void Die(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueUnsafe();
}

}  // namespace hyrise_nv::bench

#endif  // HYRISE_NV_BENCH_BENCH_UTIL_H_
