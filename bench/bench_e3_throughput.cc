// Experiment E3 — steady-state OLTP throughput per durability mode
// (TPC-C-style mix). The NVM engine pays persist barriers on the write
// path; the log engines pay WAL appends + commit syncs; kNone is the
// no-durability ceiling. Besides throughput, each mode reports commit
// tail latencies from the engine's own metrics registry (the same
// histograms `dbinspect stats` exports).
//
// Part two sweeps client threads (1/2/4/8) over the concurrent commit
// pipeline for the NVM and WAL engines: per-thread TpccRunners bound to
// one shared database, committed-txn throughput measured in wall-clock
// time, plus the commit-group-size distribution the ordered publisher
// and the WAL group commit produced.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "workload/tpcc.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

struct ModeResult {
  double tps = 0;
  obs::MetricsSnapshot metrics;
};

ModeResult RunMode(core::DurabilityMode mode, uint64_t txns) {
  const std::string dir = bench::MakeBenchDir("e3");
  auto options = bench::EngineOptions(mode, dir, size_t{512} << 20);
  // Throughput benches skip the crash shadow (2x memory + copy costs that
  // real NVM does not pay).
  options.tracking = nvm::TrackingMode::kNone;
  if (mode == core::DurabilityMode::kNone) options.data_dir.clear();
  auto db = bench::Unwrap(core::Database::Create(options), "create");

  workload::TpccConfig config;
  config.warehouses = 2;
  config.items = 500;
  workload::TpccRunner runner(db.get(), config);
  bench::Die(runner.Load(), "load");
  // Warm-up.
  (void)bench::Unwrap(runner.Run(txns / 10 + 1), "warmup");
  // Measure only the timed run: load + warm-up samples would skew the
  // latency percentiles.
  obs::MetricsRegistry::Instance().ResetAll();
  auto stats = bench::Unwrap(runner.Run(txns), "run");
  ModeResult result;
  result.tps = stats.TxnPerSecond();
  result.metrics = db->MetricsSnapshot();
  bench::RemoveBenchDir(dir);
  return result;
}

void PrintMode(const char* name, const ModeResult& result,
               double baseline_tps) {
  const obs::HistogramSnapshot* commit =
      result.metrics.FindHistogram("txn.commit.latency_ns");
  const double p50 = commit != nullptr ? commit->p50 / 1e3 : 0;
  const double p95 = commit != nullptr ? commit->p95 / 1e3 : 0;
  const double p99 = commit != nullptr ? commit->p99 / 1e3 : 0;
  const uint64_t persists =
      result.metrics.CounterValue("nvm.persist.count");
  const uint64_t fsyncs = result.metrics.CounterValue("wal.fsync.count");
  std::printf("%-12s %12.0f %9.0f%% %10.1f %10.1f %10.1f %12llu %9llu\n",
              name, result.tps, 100.0 * result.tps / baseline_tps, p50,
              p95, p99, static_cast<unsigned long long>(persists),
              static_cast<unsigned long long>(fsyncs));
  std::printf(
      "BENCH_JSON {\"bench\":\"e3\",\"engine\":\"%s\",\"txn_per_sec\":%.1f,"
      "\"commit_p50_us\":%.2f,\"commit_p95_us\":%.2f,"
      "\"commit_p99_us\":%.2f,\"persist_barriers\":%llu,"
      "\"wal_fsyncs\":%llu}\n",
      name, result.tps, p50, p95, p99,
      static_cast<unsigned long long>(persists),
      static_cast<unsigned long long>(fsyncs));
}

// --- thread sweep over the concurrent commit pipeline -----------------

struct SweepResult {
  double tps = 0;
  uint64_t committed = 0;
  uint64_t aborts = 0;
  obs::MetricsSnapshot metrics;
};

/// One shared database, `threads` TpccRunners bound to it (distinct seed
/// + history-id range per thread), committed-txn/s over wall-clock time.
SweepResult RunSweep(core::DurabilityMode mode, unsigned threads,
                     uint64_t total_txns) {
  const std::string dir = bench::MakeBenchDir("e3s");
  auto options = bench::EngineOptions(mode, dir, size_t{512} << 20);
  options.tracking = nvm::TrackingMode::kNone;
  if (mode == core::DurabilityMode::kNone) options.data_dir.clear();
  auto db = bench::Unwrap(core::Database::Create(options), "create");

  workload::TpccConfig base_config;
  base_config.warehouses = 8;  // enough districts to spread contention
  base_config.items = 500;
  workload::TpccRunner loader(db.get(), base_config);
  bench::Die(loader.Load(), "load");

  std::vector<std::unique_ptr<workload::TpccRunner>> runners;
  for (unsigned t = 0; t < threads; ++t) {
    workload::TpccConfig config = base_config;
    config.seed = 1000 + 77 * t;
    runners.push_back(
        std::make_unique<workload::TpccRunner>(db.get(), config));
    bench::Die(
        runners.back()->Bind((static_cast<int64_t>(t) + 1) << 40),
        "bind");
  }

  const uint64_t per_thread = total_txns / threads + 1;
  auto run_all = [&](uint64_t txns_each,
                     std::vector<workload::TpccStats>* stats_out) {
    std::vector<std::thread> workers;
    stats_out->assign(threads, {});
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        (*stats_out)[t] =
            bench::Unwrap(runners[t]->Run(txns_each), "sweep run");
      });
    }
    for (auto& w : workers) w.join();
  };

  std::vector<workload::TpccStats> stats;
  run_all(per_thread / 10 + 1, &stats);  // warm-up
  obs::MetricsRegistry::Instance().ResetAll();
  const auto start = std::chrono::steady_clock::now();
  run_all(per_thread, &stats);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  SweepResult result;
  for (const auto& s : stats) {
    result.committed += s.transactions();
    result.aborts += s.aborts;
  }
  result.tps = seconds > 0 ? result.committed / seconds : 0;
  result.metrics = db->MetricsSnapshot();
  bench::RemoveBenchDir(dir);
  return result;
}

void PrintSweep(const char* engine, unsigned threads,
                const SweepResult& result, double one_thread_tps) {
  const obs::HistogramSnapshot* group =
      result.metrics.FindHistogram("txn.commit.group_size");
  const obs::HistogramSnapshot* wait =
      result.metrics.FindHistogram("txn.commit.queue_wait_ns");
  const double group_mean = group != nullptr ? group->mean : 0;
  const double wait_p95_us = wait != nullptr ? wait->p95 / 1e3 : 0;
  const uint64_t fsyncs = result.metrics.CounterValue("wal.fsync.count");
  std::printf("%-12s %7u %12.0f %8.2fx %10.2f %12.1f %9llu %9llu\n",
              engine, threads, result.tps,
              one_thread_tps > 0 ? result.tps / one_thread_tps : 0,
              group_mean, wait_p95_us,
              static_cast<unsigned long long>(fsyncs),
              static_cast<unsigned long long>(result.aborts));
  std::printf(
      "BENCH_JSON {\"bench\":\"e3\",\"engine\":\"%s\",\"threads\":%u,"
      "\"txn_per_sec\":%.1f,\"speedup_vs_1t\":%.3f,"
      "\"commit_group_mean\":%.2f,\"queue_wait_p95_us\":%.2f,"
      "\"wal_fsyncs\":%llu,\"aborts\":%llu}\n",
      engine, threads, result.tps,
      one_thread_tps > 0 ? result.tps / one_thread_tps : 0, group_mean,
      wait_p95_us, static_cast<unsigned long long>(fsyncs),
      static_cast<unsigned long long>(result.aborts));
}

void DumpGroupSizeHistogram(const char* engine,
                            const obs::MetricsSnapshot& metrics,
                            const char* histogram_name) {
  const obs::HistogramSnapshot* h = metrics.FindHistogram(histogram_name);
  if (h == nullptr || h->count == 0) return;
  std::printf("  %s %s: count=%llu mean=%.2f max=%llu\n", engine,
              histogram_name, static_cast<unsigned long long>(h->count),
              h->mean, static_cast<unsigned long long>(h->max));
  uint64_t prev = 0;
  for (const auto& [upper, cumulative] : h->cumulative_buckets) {
    std::printf("    le=%-8llu %llu\n",
                static_cast<unsigned long long>(upper),
                static_cast<unsigned long long>(cumulative - prev));
    prev = cumulative;
  }
}

}  // namespace

int main() {
  const uint64_t txns = bench::Scaled(4000);
  std::printf("E3 — OLTP throughput by durability mode (TPC-C-style mix, "
              "%llu txns)\n",
              static_cast<unsigned long long>(txns));
  std::printf("%-12s %12s %10s %10s %10s %10s %12s %9s\n", "engine",
              "txn/s", "vs none", "p50 us", "p95 us", "p99 us",
              "persists", "fsyncs");

  const ModeResult baseline = RunMode(core::DurabilityMode::kNone, txns);
  PrintMode("none", baseline, baseline.tps);
  for (const auto mode :
       {core::DurabilityMode::kWalValue, core::DurabilityMode::kWalDict,
        core::DurabilityMode::kNvm}) {
    const ModeResult result = RunMode(mode, txns);
    PrintMode(core::DurabilityModeName(mode), result, baseline.tps);
  }
  std::printf("\npaper shape check: the NVM engine lands between the "
              "volatile ceiling and the log-based baselines — it pays "
              "persist barriers but no logging I/O, and is the only one "
              "with instant restart\n");

  std::printf("\nE3b — thread sweep over the concurrent commit pipeline "
              "(shared db, %llu txns total per point)\n",
              static_cast<unsigned long long>(txns));
  std::printf("%-12s %7s %12s %9s %10s %12s %9s %9s\n", "engine",
              "threads", "txn/s", "speedup", "grp mean", "wait p95 us",
              "fsyncs", "aborts");
  const unsigned kThreadCounts[] = {1, 2, 4, 8};
  struct SweepMode {
    core::DurabilityMode mode;
    const char* name;
    const char* group_histogram;
  };
  const SweepMode kSweepModes[] = {
      {core::DurabilityMode::kNvm, "nvm", "txn.commit.group_size"},
      {core::DurabilityMode::kWalValue, "wal-value",
       "wal.group_commit.size"},
  };
  for (const SweepMode& sweep : kSweepModes) {
    double one_thread_tps = 0;
    obs::MetricsSnapshot last_metrics;
    for (const unsigned threads : kThreadCounts) {
      const SweepResult result = RunSweep(sweep.mode, threads, txns);
      if (threads == 1) one_thread_tps = result.tps;
      PrintSweep(sweep.name, threads, result, one_thread_tps);
      last_metrics = result.metrics;
    }
    std::printf("  commit-group-size distribution at 8 threads:\n");
    DumpGroupSizeHistogram(sweep.name, last_metrics,
                           sweep.group_histogram);
    if (std::string_view(sweep.group_histogram) !=
        "txn.commit.group_size") {
      DumpGroupSizeHistogram(sweep.name, last_metrics,
                             "txn.commit.group_size");
    }
  }
  return 0;
}
