// Experiment E3 — steady-state OLTP throughput per durability mode
// (TPC-C-style mix). The NVM engine pays persist barriers on the write
// path; the log engines pay WAL appends + commit syncs; kNone is the
// no-durability ceiling. Besides throughput, each mode reports commit
// tail latencies from the engine's own metrics registry (the same
// histograms `dbinspect stats` exports).

#include <cstdio>

#include "bench_util.h"
#include "obs/metrics.h"
#include "workload/tpcc.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

struct ModeResult {
  double tps = 0;
  obs::MetricsSnapshot metrics;
};

ModeResult RunMode(core::DurabilityMode mode, uint64_t txns) {
  const std::string dir = bench::MakeBenchDir("e3");
  auto options = bench::EngineOptions(mode, dir, size_t{512} << 20);
  // Throughput benches skip the crash shadow (2x memory + copy costs that
  // real NVM does not pay).
  options.tracking = nvm::TrackingMode::kNone;
  if (mode == core::DurabilityMode::kNone) options.data_dir.clear();
  auto db = bench::Unwrap(core::Database::Create(options), "create");

  workload::TpccConfig config;
  config.warehouses = 2;
  config.items = 500;
  workload::TpccRunner runner(db.get(), config);
  bench::Die(runner.Load(), "load");
  // Warm-up.
  (void)bench::Unwrap(runner.Run(txns / 10 + 1), "warmup");
  // Measure only the timed run: load + warm-up samples would skew the
  // latency percentiles.
  obs::MetricsRegistry::Instance().ResetAll();
  auto stats = bench::Unwrap(runner.Run(txns), "run");
  ModeResult result;
  result.tps = stats.TxnPerSecond();
  result.metrics = db->MetricsSnapshot();
  bench::RemoveBenchDir(dir);
  return result;
}

void PrintMode(const char* name, const ModeResult& result,
               double baseline_tps) {
  const obs::HistogramSnapshot* commit =
      result.metrics.FindHistogram("txn.commit.latency_ns");
  const double p50 = commit != nullptr ? commit->p50 / 1e3 : 0;
  const double p95 = commit != nullptr ? commit->p95 / 1e3 : 0;
  const double p99 = commit != nullptr ? commit->p99 / 1e3 : 0;
  const uint64_t persists =
      result.metrics.CounterValue("nvm.persist.count");
  const uint64_t fsyncs = result.metrics.CounterValue("wal.fsync.count");
  std::printf("%-12s %12.0f %9.0f%% %10.1f %10.1f %10.1f %12llu %9llu\n",
              name, result.tps, 100.0 * result.tps / baseline_tps, p50,
              p95, p99, static_cast<unsigned long long>(persists),
              static_cast<unsigned long long>(fsyncs));
  std::printf(
      "BENCH_JSON {\"bench\":\"e3\",\"engine\":\"%s\",\"txn_per_sec\":%.1f,"
      "\"commit_p50_us\":%.2f,\"commit_p95_us\":%.2f,"
      "\"commit_p99_us\":%.2f,\"persist_barriers\":%llu,"
      "\"wal_fsyncs\":%llu}\n",
      name, result.tps, p50, p95, p99,
      static_cast<unsigned long long>(persists),
      static_cast<unsigned long long>(fsyncs));
}

}  // namespace

int main() {
  const uint64_t txns = bench::Scaled(4000);
  std::printf("E3 — OLTP throughput by durability mode (TPC-C-style mix, "
              "%llu txns)\n",
              static_cast<unsigned long long>(txns));
  std::printf("%-12s %12s %10s %10s %10s %10s %12s %9s\n", "engine",
              "txn/s", "vs none", "p50 us", "p95 us", "p99 us",
              "persists", "fsyncs");

  const ModeResult baseline = RunMode(core::DurabilityMode::kNone, txns);
  PrintMode("none", baseline, baseline.tps);
  for (const auto mode :
       {core::DurabilityMode::kWalValue, core::DurabilityMode::kWalDict,
        core::DurabilityMode::kNvm}) {
    const ModeResult result = RunMode(mode, txns);
    PrintMode(core::DurabilityModeName(mode), result, baseline.tps);
  }
  std::printf("\npaper shape check: the NVM engine lands between the "
              "volatile ceiling and the log-based baselines — it pays "
              "persist barriers but no logging I/O, and is the only one "
              "with instant restart\n");
  return 0;
}
