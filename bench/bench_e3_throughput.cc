// Experiment E3 — steady-state OLTP throughput per durability mode
// (TPC-C-style mix). The NVM engine pays persist barriers on the write
// path; the log engines pay WAL appends + commit syncs; kNone is the
// no-durability ceiling.

#include <cstdio>

#include "bench_util.h"
#include "workload/tpcc.h"

using namespace hyrise_nv;  // NOLINT: benchmark brevity

namespace {

double RunMode(core::DurabilityMode mode, uint64_t txns) {
  const std::string dir = bench::MakeBenchDir("e3");
  auto options = bench::EngineOptions(mode, dir, size_t{512} << 20);
  // Throughput benches skip the crash shadow (2x memory + copy costs that
  // real NVM does not pay).
  options.tracking = nvm::TrackingMode::kNone;
  if (mode == core::DurabilityMode::kNone) options.data_dir.clear();
  auto db = bench::Unwrap(core::Database::Create(options), "create");

  workload::TpccConfig config;
  config.warehouses = 2;
  config.items = 500;
  workload::TpccRunner runner(db.get(), config);
  bench::Die(runner.Load(), "load");
  // Warm-up.
  (void)bench::Unwrap(runner.Run(txns / 10 + 1), "warmup");
  auto stats = bench::Unwrap(runner.Run(txns), "run");
  bench::RemoveBenchDir(dir);
  return stats.TxnPerSecond();
}

}  // namespace

int main() {
  const uint64_t txns = bench::Scaled(4000);
  std::printf("E3 — OLTP throughput by durability mode (TPC-C-style mix, "
              "%llu txns)\n",
              static_cast<unsigned long long>(txns));
  std::printf("%-12s %12s %12s\n", "engine", "txn/s", "vs none");

  const double baseline = RunMode(core::DurabilityMode::kNone, txns);
  std::printf("%-12s %12.0f %11.0f%%\n", "none", baseline, 100.0);
  for (const auto mode :
       {core::DurabilityMode::kWalValue, core::DurabilityMode::kWalDict,
        core::DurabilityMode::kNvm}) {
    const double tps = RunMode(mode, txns);
    std::printf("%-12s %12.0f %11.0f%%\n", core::DurabilityModeName(mode),
                tps, 100.0 * tps / baseline);
  }
  std::printf("\npaper shape check: the NVM engine lands between the "
              "volatile ceiling and the log-based baselines — it pays "
              "persist barriers but no logging I/O, and is the only one "
              "with instant restart\n");
  return 0;
}
