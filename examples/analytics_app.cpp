// Analytical queries on a Hyrise-NV table: dictionary-compressed scans,
// range predicates through the ordered index, and aggregates — before
// and after merging the delta into the main partition, showing why the
// merged, bit-packed main is the analytics-friendly representation.
//
//   ./build/examples/example_analytics_app [rows]

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "core/database.h"
#include "core/query.h"
#include "workload/enterprise.h"

using namespace hyrise_nv;  // NOLINT: example brevity

namespace {

void RunQueries(core::Database& db, storage::Table* table,
                const char* phase) {
  const storage::Cid snapshot = db.ReadSnapshot();

  Stopwatch timer;
  const uint64_t count = core::CountRows(table, snapshot,
                                         storage::kTidNone);
  const double count_ms = timer.ElapsedMillis();

  timer.Restart();
  const auto sum = core::SumInt64(table, 0, snapshot, storage::kTidNone);
  const double sum_ms = timer.ElapsedMillis();

  timer.Restart();
  auto range = core::ScanRange(table, 0, storage::Value(int64_t{100}),
                               storage::Value(int64_t{400}), snapshot,
                               storage::kTidNone, db.indexes(table));
  const double range_ms = timer.ElapsedMillis();

  std::printf("%-22s count=%8llu (%6.2f ms)   sum(i0)=%12lld (%6.2f ms)   "
              "range hits=%7zu (%6.2f ms)\n",
              phase, static_cast<unsigned long long>(count), count_ms,
              static_cast<long long>(sum.ok() ? *sum : -1), sum_ms,
              range.ok() ? range->size() : 0, range_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t rows =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 256 << 20;
  // Shadow tracking enables the in-process crash at the end.
  options.tracking = nvm::TrackingMode::kShadow;
  options.nvm_latency = nvm::NvmLatencyModel::DefaultNvm();
  auto db = std::move(core::Database::Create(options)).ValueUnsafe();

  workload::EnterpriseConfig config;
  config.cardinality = 1000;
  std::printf("loading %llu rows (~%.1f MB logical)...\n",
              static_cast<unsigned long long>(rows),
              rows * workload::EnterpriseRowBytes(config) / 1e6);
  auto table_result =
      workload::LoadEnterpriseTable(db.get(), "facts", rows, config);
  if (!table_result.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  storage::Table* table = *table_result;
  if (Status s = db->CreateOrderedIndex("facts", 0); !s.ok()) {
    std::fprintf(stderr, "index failed: %s\n", s.ToString().c_str());
    return 1;
  }

  RunQueries(*db, table, "delta-resident:");

  Stopwatch merge_timer;
  auto stats = db->Merge("facts");
  if (!stats.ok()) {
    std::fprintf(stderr, "merge failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("merged %llu rows into main in %.1f ms "
              "(sorted dictionaries, %u-bit packed ids, group-key index)\n",
              static_cast<unsigned long long>(stats->rows_after),
              stats->seconds * 1e3,
              table->main().column(0).attr().bits());

  RunQueries(*db, table, "main-resident:");

  // The analytical state survives an instant restart unchanged.
  auto recovered_result = core::Database::CrashAndRecover(std::move(db));
  if (!recovered_result.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered_result.status().ToString().c_str());
    return 1;
  }
  auto recovered = std::move(recovered_result).ValueUnsafe();
  std::printf("instant restart: %.3f ms\n",
              recovered->last_recovery_report().nvm.total_seconds * 1e3);
  RunQueries(*recovered, *recovered->GetTable("facts"),
             "after restart:");
  return 0;
}
