// Crash-forensics workload: runs a multi-threaded insert/update mix on
// an NVM-backed database with the full observability stack switched on
// (flight recorder, sampled transaction tracing, history sampler, crash
// handler) until it is killed or a duration elapses.
//
// Intended use (also what CI's crash-forensics smoke does):
//
//   ./example_crash_workload /tmp/fdb 30 4 &   # dir, seconds, threads
//   sleep 3 && kill -9 $!
//   ./dbinspect blackbox /tmp/fdb              # decode the last seconds
//
// The recorder lives inside the image (MAP_SHARED), so a SIGKILL loses
// nothing: the decoded timeline shows exactly what every thread was
// doing when the process died.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/database.h"

using namespace hyrise_nv;  // NOLINT: example brevity

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <data-dir> [seconds=30] [threads=4]\n",
                 argv[0]);
    return 1;
  }
  const std::string dir = argv[1];
  const double seconds = argc > 2 ? std::atof(argv[2]) : 30.0;
  unsigned threads = argc > 3
                         ? static_cast<unsigned>(std::atoi(argv[3]))
                         : 4;
  if (threads == 0) threads = 1;
  if (threads > 8) threads = 8;
  std::filesystem::create_directories(dir);

  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = size_t{128} << 20;
  options.data_dir = dir;
  // File-backed region: kill -9 forensics needs the real MAP_SHARED
  // page-cache durability, not the shadow simulation.
  options.tracking = nvm::TrackingMode::kNone;
  options.txn_sample_every = 64;
  options.enable_history_sampler = true;
  options.history_interval_ms = 250;
  options.install_crash_handler = true;

  auto db_result = core::Database::Create(options);
  if (!db_result.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_result).ValueUnsafe();

  auto schema =
      *storage::Schema::Make({{"id", storage::DataType::kInt64},
                              {"payload", storage::DataType::kString}});
  storage::Table* table = *db->CreateTable("events", schema);

  std::printf("crash_workload: pid %d, %u threads, %.0fs — kill -9 me "
              "and run 'dbinspect blackbox %s'\n",
              static_cast<int>(::getpid()), threads, seconds,
              dir.c_str());
  std::fflush(stdout);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(1234 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        auto tx_result = db->Begin();
        if (!tx_result.ok()) break;
        auto tx = std::move(tx_result).ValueUnsafe();
        const int64_t key =
            static_cast<int64_t>(rng.Uniform(1'000'000));
        auto insert = db->Insert(
            tx, table,
            {storage::Value(key), storage::Value(rng.NextString(48))});
        if (!insert.ok()) {
          (void)db->Abort(tx);
          continue;
        }
        if (db->Commit(tx).ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();

  std::printf("crash_workload: clean finish, %llu commits\n",
              static_cast<unsigned long long>(committed.load()));
  std::printf("history: %s\n", db->HistoryJson().c_str());
  return db->Close().ok() ? 0 : 1;
}
