// The oltp_app loop, rebuilt as a *remote* application: an
// order-processing client that talks to a hyrise_nv_server over the wire
// protocol instead of embedding the engine. It creates the schema, runs
// an order/payment-style mix of multi-statement transactions, then shows
// the serving-layer version of instant restart: kill the server
// (kill -9), restart it, and this client reconnects and keeps processing
// with all committed orders intact.
//
// Start a server first:
//   ./build/tools/hyrise_nv_server --data-dir=/tmp/remote_oltp --create &
//   ./build/examples/example_remote_oltp [transactions] [port]
//
// While it runs, try `kill -9 <server pid>` and restart the server
// without --create: the client rides out the outage via its reconnect
// loop and verifies no committed order was lost.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/client.h"
#include "storage/types.h"

using namespace hyrise_nv;  // NOLINT: example brevity

namespace {

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t txns =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  net::ClientOptions options;
  options.port =
      argc > 2 ? static_cast<uint16_t>(std::atoi(argv[2])) : 5543;
  // Generous retry budget: this is what rides out a server kill -9 +
  // restart without the application noticing more than a latency blip.
  options.max_retries = 200;
  options.retry_base_ms = 10;
  options.retry_cap_ms = 250;
  net::Client client(options);
  if (Status status = client.Connect(); !status.ok()) {
    return Fail("connect (is hyrise_nv_server running?)", status);
  }
  std::printf("connected: protocol v%u, server mode %u, session %llu\n",
              client.protocol_version(), client.server_mode(),
              static_cast<unsigned long long>(client.session_id()));

  // Schema: orders + payments. CreateTable is idempotent-ish for the
  // demo — AlreadyExists just means a previous run set it up.
  auto orders = client.CreateTable(
      "orders", {{"customer", storage::DataType::kInt64},
                 {"amount", storage::DataType::kDouble},
                 {"item", storage::DataType::kString}});
  if (!orders.ok() && orders.status().code() != StatusCode::kAlreadyExists) {
    return Fail("create orders", orders.status());
  }
  auto payments = client.CreateTable(
      "payments", {{"customer", storage::DataType::kInt64},
                   {"amount", storage::DataType::kDouble}});
  if (!payments.ok() &&
      payments.status().code() != StatusCode::kAlreadyExists) {
    return Fail("create payments", payments.status());
  }
  if (orders.ok()) {
    if (Status status = client.CreateIndex("orders", 0); !status.ok()) {
      return Fail("create index", status);
    }
  }

  auto count0 = client.Count("orders");
  if (!count0.ok()) return Fail("count", count0.status());
  const uint64_t orders_before_run = *count0;

  // The oltp_app mix, as multi-statement wire transactions: a "new
  // order" inserts an order row and a payment row atomically; an "order
  // status" reads the customer's orders through the open snapshot.
  Rng rng(42);
  uint64_t committed = 0, aborted = 0, status_checks = 0;
  for (uint64_t i = 0; i < txns; ++i) {
    const int64_t customer = static_cast<int64_t>(rng.Uniform(100));
    if (i % 10 == 9) {
      // Order-status: snapshot read, no transaction needed.
      auto scan = client.ScanEqual("orders", 0, storage::Value(customer),
                                   /*in_txn=*/false, /*limit=*/16);
      if (!scan.ok()) return Fail("order-status scan", scan.status());
      ++status_checks;
      continue;
    }
    auto begin = client.Begin();
    if (!begin.ok()) return Fail("begin", begin.status());
    const double amount = 1.0 + static_cast<double>(rng.Uniform(9900)) / 100;
    auto order = client.Insert(
        "orders",
        {storage::Value(customer), storage::Value(amount),
         storage::Value(std::string("item-") +
                        std::to_string(rng.Uniform(500)))});
    if (!order.ok()) {
      (void)client.Abort();
      ++aborted;
      continue;
    }
    auto payment = client.Insert(
        "payments", {storage::Value(customer), storage::Value(amount)});
    if (!payment.ok()) {
      (void)client.Abort();
      ++aborted;
      continue;
    }
    auto cid = client.Commit();
    if (!cid.ok()) {
      // A commit lost to a server crash is indistinguishable from an
      // abort out here; the engine guarantees atomicity either way.
      ++aborted;
      continue;
    }
    ++committed;
    if ((i + 1) % 500 == 0) {
      std::printf("  %llu/%llu transactions...\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(txns));
    }
  }
  std::printf("ran %llu txns: %llu committed, %llu aborted, "
              "%llu status checks\n",
              static_cast<unsigned long long>(txns),
              static_cast<unsigned long long>(committed),
              static_cast<unsigned long long>(aborted),
              static_cast<unsigned long long>(status_checks));

  auto count1 = client.Count("orders");
  if (!count1.ok()) return Fail("count", count1.status());
  std::printf("orders on server: %llu (was %llu before this run)\n",
              static_cast<unsigned long long>(*count1),
              static_cast<unsigned long long>(orders_before_run));
  if (*count1 != orders_before_run + committed) {
    std::fprintf(stderr,
                 "MISMATCH: expected %llu committed orders, server has "
                 "%llu\n",
                 static_cast<unsigned long long>(orders_before_run +
                                                 committed),
                 static_cast<unsigned long long>(*count1));
    return 1;
  }

  auto recovery = client.RecoveryInfo();
  if (recovery.ok()) {
    std::printf("server's last recovery: %s\n", recovery->c_str());
  }
  std::printf("every committed order is accounted for\n");
  return 0;
}
