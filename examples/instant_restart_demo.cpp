// The paper's demonstration, scaled to laptop size: load the same dataset
// into the log-based engine and into Hyrise-NV, kill both, and compare
// recovery. The log engine replays checkpoint + log and rebuilds indexes
// (time grows with data); Hyrise-NV maps its NVM region and fixes up
// in-flight transactions (time is flat).
//
//   ./build/examples/example_instant_restart_demo [rows]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/database.h"
#include "core/query.h"
#include "nvm/nvm_env.h"
#include "workload/enterprise.h"

using namespace hyrise_nv;  // NOLINT: example brevity

namespace {

struct Outcome {
  double recovery_seconds;
  uint64_t rows;
};

Outcome RunEngine(core::DurabilityMode mode, uint64_t rows) {
  const std::string dir = nvm::TempPath("restart_demo");
  std::filesystem::create_directories(dir);

  core::DatabaseOptions options;
  options.mode = mode;
  options.region_size = 512 << 20;
  options.data_dir = dir;
  options.tracking = nvm::TrackingMode::kShadow;
  options.nvm_latency = nvm::NvmLatencyModel::DefaultNvm();
  // A plausible SATA-SSD-class device for the baseline.
  options.device.write_mbps = 500;
  options.device.read_mbps = 500;
  options.device.sync_latency_us = 20;

  auto db = std::move(core::Database::Create(options)).ValueUnsafe();
  workload::EnterpriseConfig config;
  auto table_result =
      workload::LoadEnterpriseTable(db.get(), "enterprise", rows, config);
  if (!table_result.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 table_result.status().ToString().c_str());
    std::exit(1);
  }
  (void)db->CreateIndex("enterprise", 0);

  auto recovered_result = core::Database::CrashAndRecover(std::move(db));
  if (!recovered_result.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered_result.status().ToString().c_str());
    std::exit(1);
  }
  auto recovered = std::move(recovered_result).ValueUnsafe();
  Outcome outcome;
  outcome.recovery_seconds =
      recovered->last_recovery_report().total_seconds;
  outcome.rows = core::CountRows(*recovered->GetTable("enterprise"),
                                 recovered->ReadSnapshot(),
                                 storage::kTidNone);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 50000;
  workload::EnterpriseConfig config;
  std::printf("dataset: %llu rows (~%.1f MB logical)\n\n",
              static_cast<unsigned long long>(rows),
              rows * workload::EnterpriseRowBytes(config) / 1e6);

  std::printf("%-12s %15s %12s\n", "engine", "recovery [s]", "rows back");
  const Outcome log_outcome =
      RunEngine(core::DurabilityMode::kWalValue, rows);
  std::printf("%-12s %15.4f %12llu\n", "log-based",
              log_outcome.recovery_seconds,
              static_cast<unsigned long long>(log_outcome.rows));
  const Outcome nvm_outcome = RunEngine(core::DurabilityMode::kNvm, rows);
  std::printf("%-12s %15.4f %12llu\n", "hyrise-nv",
              nvm_outcome.recovery_seconds,
              static_cast<unsigned long long>(nvm_outcome.rows));

  std::printf("\nspeedup: %.0fx — and it stays flat as the dataset grows "
              "(the paper's 92.2 GB: 53 s vs <1 s)\n",
              log_outcome.recovery_seconds /
                  std::max(nvm_outcome.recovery_seconds, 1e-9));
  return log_outcome.rows == nvm_outcome.rows ? 0 : 1;
}
