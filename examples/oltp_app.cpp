// An order-processing application on Hyrise-NV: loads a TPC-C-style
// schema, runs a NewOrder/Payment/OrderStatus mix, merges the delta into
// the main partition, survives a crash, and keeps processing.
//
//   ./build/examples/example_oltp_app [transactions]

#include <cstdio>
#include <cstdlib>

#include "core/database.h"
#include "core/query.h"
#include "workload/tpcc.h"

using namespace hyrise_nv;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const uint64_t txns =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 256 << 20;
  options.nvm_latency = nvm::NvmLatencyModel::DefaultNvm();
  auto db = std::move(core::Database::Create(options)).ValueUnsafe();

  workload::TpccConfig config;
  config.warehouses = 2;
  config.items = 500;
  workload::TpccRunner runner(db.get(), config);
  if (Status status = runner.Load(); !status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("loaded %u warehouses, %u items\n", config.warehouses,
              config.items);

  auto stats_result = runner.Run(txns);
  if (!stats_result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 stats_result.status().ToString().c_str());
    return 1;
  }
  const auto& stats = *stats_result;
  std::printf("ran %llu txns in %.2f s (%.0f txn/s): %llu new-orders, "
              "%llu payments, %llu order-status, %llu aborts\n",
              static_cast<unsigned long long>(stats.transactions()),
              stats.seconds, stats.TxnPerSecond(),
              static_cast<unsigned long long>(stats.new_orders),
              static_cast<unsigned long long>(stats.payments),
              static_cast<unsigned long long>(stats.order_statuses),
              static_cast<unsigned long long>(stats.aborts));

  // Merge the accumulated delta into a fresh main generation. Updates in
  // TPC-C churn district/stock rows, so merge retires many dead versions.
  auto merge_stats = db->Merge("order_line");
  if (merge_stats.ok()) {
    std::printf("merged order_line: %llu rows -> main, %llu versions "
                "retired, %.1f ms\n",
                static_cast<unsigned long long>(merge_stats->rows_after),
                static_cast<unsigned long long>(merge_stats->dropped_rows),
                merge_stats->seconds * 1e3);
  }

  const uint64_t orders_before = core::CountRows(
      *db->GetTable("orders"), db->ReadSnapshot(), storage::kTidNone);

  // Crash + instant restart, then keep going.
  auto recovered_result = core::Database::CrashAndRecover(std::move(db));
  if (!recovered_result.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered_result.status().ToString().c_str());
    return 1;
  }
  auto recovered = std::move(recovered_result).ValueUnsafe();
  std::printf("crash + instant restart: %.3f ms\n",
              recovered->last_recovery_report().nvm.total_seconds * 1e3);
  const uint64_t orders_after =
      core::CountRows(*recovered->GetTable("orders"),
                      recovered->ReadSnapshot(), storage::kTidNone);
  std::printf("orders before crash: %llu, after recovery: %llu\n",
              static_cast<unsigned long long>(orders_before),
              static_cast<unsigned long long>(orders_after));
  return orders_before == orders_after ? 0 : 1;
}
