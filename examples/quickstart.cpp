// Quickstart: create a Hyrise-NV database on (simulated) NVM, run
// transactions, crash it, and watch instant recovery bring back exactly
// the committed state.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart [data-dir]

#include <cstdio>
#include <filesystem>

#include "core/database.h"
#include "core/query.h"

using namespace hyrise_nv;  // NOLINT: example brevity

int main(int argc, char** argv) {
  // 1. Configure an NVM-backed engine. With no data_dir the region lives
  //    in process memory with full crash simulation (shadow tracking).
  //    Pass a directory to keep the image on disk instead — after a clean
  //    exit it can be reopened or fed to `dbinspect`.
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  options.nvm_latency = nvm::NvmLatencyModel::DefaultNvm();
  if (argc > 1) {
    options.data_dir = argv[1];
    std::filesystem::create_directories(options.data_dir);
  }

  auto db_result = core::Database::Create(options);
  if (!db_result.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_result).ValueUnsafe();

  // 2. DDL: a table and a secondary index.
  auto schema = *storage::Schema::Make({{"id", storage::DataType::kInt64},
                                        {"city", storage::DataType::kString},
                                        {"revenue", storage::DataType::kDouble}});
  storage::Table* table = *db->CreateTable("accounts", schema);
  (void)db->CreateIndex("accounts", 1);

  // 3. Transactions.
  auto tx = *db->Begin();
  (void)db->Insert(tx, table, {storage::Value(int64_t{1}),
                               storage::Value(std::string("berlin")),
                               storage::Value(1200.0)});
  (void)db->Insert(tx, table, {storage::Value(int64_t{2}),
                               storage::Value(std::string("potsdam")),
                               storage::Value(800.0)});
  (void)db->Commit(tx);

  auto doomed = *db->Begin();  // this one will die with the crash
  (void)db->Insert(doomed, table, {storage::Value(int64_t{3}),
                                   storage::Value(std::string("ghost")),
                                   storage::Value(1e9)});

  // 4. Query through the index.
  auto rows = *db->ScanEqual(table, 1, storage::Value(std::string("berlin")),
                             db->ReadSnapshot(), storage::kTidNone);
  std::printf("rows in berlin before crash: %zu\n", rows.size());

  // 5. Power failure + instant restart.
  auto recovered_result = core::Database::CrashAndRecover(std::move(db));
  if (!recovered_result.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered_result.status().ToString().c_str());
    return 1;
  }
  auto recovered = std::move(recovered_result).ValueUnsafe();
  const auto& report = recovered->last_recovery_report().nvm;
  std::printf("instant restart took %.3f ms (map %.3f ms, fixup %.3f ms, "
              "attach %.3f ms)\n",
              report.total_seconds * 1e3, report.map_seconds * 1e3,
              report.fixup_seconds * 1e3, report.attach_seconds * 1e3);

  storage::Table* rtable = *recovered->GetTable("accounts");
  const uint64_t count = core::CountRows(rtable, recovered->ReadSnapshot(),
                                         storage::kTidNone);
  auto revenue = *core::SumDouble(rtable, 2, recovered->ReadSnapshot(),
                                  storage::kTidNone);
  std::printf("after recovery: %llu rows, total revenue %.2f "
              "(uncommitted 'ghost' row is gone)\n",
              static_cast<unsigned long long>(count), revenue);

  // 6. With a data dir, shut down cleanly and leave the image behind for
  //    `dbinspect` / a later instant restart.
  if (argc > 1) {
    Status close_status = recovered->Close();
    if (!close_status.ok()) {
      std::fprintf(stderr, "close failed: %s\n",
                   close_status.ToString().c_str());
      return 1;
    }
    std::printf("image kept at %s/nvm.img\n", argv[1]);
  }
  return count == 2 ? 0 : 1;
}
