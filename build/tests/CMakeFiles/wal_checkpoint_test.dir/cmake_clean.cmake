file(REMOVE_RECURSE
  "CMakeFiles/wal_checkpoint_test.dir/wal_checkpoint_test.cc.o"
  "CMakeFiles/wal_checkpoint_test.dir/wal_checkpoint_test.cc.o.d"
  "wal_checkpoint_test"
  "wal_checkpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
