file(REMOVE_RECURSE
  "CMakeFiles/storage_schema_test.dir/storage_schema_test.cc.o"
  "CMakeFiles/storage_schema_test.dir/storage_schema_test.cc.o.d"
  "storage_schema_test"
  "storage_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
