file(REMOVE_RECURSE
  "CMakeFiles/index_skiplist_test.dir/index_skiplist_test.cc.o"
  "CMakeFiles/index_skiplist_test.dir/index_skiplist_test.cc.o.d"
  "index_skiplist_test"
  "index_skiplist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_skiplist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
