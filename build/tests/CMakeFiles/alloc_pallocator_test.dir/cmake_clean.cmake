file(REMOVE_RECURSE
  "CMakeFiles/alloc_pallocator_test.dir/alloc_pallocator_test.cc.o"
  "CMakeFiles/alloc_pallocator_test.dir/alloc_pallocator_test.cc.o.d"
  "alloc_pallocator_test"
  "alloc_pallocator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_pallocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
