# Empty dependencies file for alloc_pallocator_test.
# This may be replaced when dependencies are built.
