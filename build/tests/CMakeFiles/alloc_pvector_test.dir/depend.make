# Empty dependencies file for alloc_pvector_test.
# This may be replaced when dependencies are built.
