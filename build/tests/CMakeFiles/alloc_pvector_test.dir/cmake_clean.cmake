file(REMOVE_RECURSE
  "CMakeFiles/alloc_pvector_test.dir/alloc_pvector_test.cc.o"
  "CMakeFiles/alloc_pvector_test.dir/alloc_pvector_test.cc.o.d"
  "alloc_pvector_test"
  "alloc_pvector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_pvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
