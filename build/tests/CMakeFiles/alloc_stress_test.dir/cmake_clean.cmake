file(REMOVE_RECURSE
  "CMakeFiles/alloc_stress_test.dir/alloc_stress_test.cc.o"
  "CMakeFiles/alloc_stress_test.dir/alloc_stress_test.cc.o.d"
  "alloc_stress_test"
  "alloc_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
