# Empty dependencies file for alloc_stress_test.
# This may be replaced when dependencies are built.
