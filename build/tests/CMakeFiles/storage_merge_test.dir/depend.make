# Empty dependencies file for storage_merge_test.
# This may be replaced when dependencies are built.
