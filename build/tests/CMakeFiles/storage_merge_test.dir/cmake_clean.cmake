file(REMOVE_RECURSE
  "CMakeFiles/storage_merge_test.dir/storage_merge_test.cc.o"
  "CMakeFiles/storage_merge_test.dir/storage_merge_test.cc.o.d"
  "storage_merge_test"
  "storage_merge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
