file(REMOVE_RECURSE
  "CMakeFiles/storage_dictionary_test.dir/storage_dictionary_test.cc.o"
  "CMakeFiles/storage_dictionary_test.dir/storage_dictionary_test.cc.o.d"
  "storage_dictionary_test"
  "storage_dictionary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
