# Empty dependencies file for storage_dictionary_test.
# This may be replaced when dependencies are built.
