file(REMOVE_RECURSE
  "CMakeFiles/common_crc32_test.dir/common_crc32_test.cc.o"
  "CMakeFiles/common_crc32_test.dir/common_crc32_test.cc.o.d"
  "common_crc32_test"
  "common_crc32_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_crc32_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
