# Empty dependencies file for wal_crash_test.
# This may be replaced when dependencies are built.
