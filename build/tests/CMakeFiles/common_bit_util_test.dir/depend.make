# Empty dependencies file for common_bit_util_test.
# This may be replaced when dependencies are built.
