file(REMOVE_RECURSE
  "CMakeFiles/core_recovery_test.dir/core_recovery_test.cc.o"
  "CMakeFiles/core_recovery_test.dir/core_recovery_test.cc.o.d"
  "core_recovery_test"
  "core_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
