# Empty dependencies file for nvm_pmem_region_test.
# This may be replaced when dependencies are built.
