file(REMOVE_RECURSE
  "CMakeFiles/nvm_pmem_region_test.dir/nvm_pmem_region_test.cc.o"
  "CMakeFiles/nvm_pmem_region_test.dir/nvm_pmem_region_test.cc.o.d"
  "nvm_pmem_region_test"
  "nvm_pmem_region_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_pmem_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
