# Empty dependencies file for example_instant_restart_demo.
# This may be replaced when dependencies are built.
