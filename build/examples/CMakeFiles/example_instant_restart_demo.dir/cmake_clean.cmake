file(REMOVE_RECURSE
  "CMakeFiles/example_instant_restart_demo.dir/instant_restart_demo.cpp.o"
  "CMakeFiles/example_instant_restart_demo.dir/instant_restart_demo.cpp.o.d"
  "example_instant_restart_demo"
  "example_instant_restart_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_instant_restart_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
