# Empty dependencies file for example_analytics_app.
# This may be replaced when dependencies are built.
