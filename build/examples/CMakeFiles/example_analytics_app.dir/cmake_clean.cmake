file(REMOVE_RECURSE
  "CMakeFiles/example_analytics_app.dir/analytics_app.cpp.o"
  "CMakeFiles/example_analytics_app.dir/analytics_app.cpp.o.d"
  "example_analytics_app"
  "example_analytics_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_analytics_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
