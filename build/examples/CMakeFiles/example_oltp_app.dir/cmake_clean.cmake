file(REMOVE_RECURSE
  "CMakeFiles/example_oltp_app.dir/oltp_app.cpp.o"
  "CMakeFiles/example_oltp_app.dir/oltp_app.cpp.o.d"
  "example_oltp_app"
  "example_oltp_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_oltp_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
