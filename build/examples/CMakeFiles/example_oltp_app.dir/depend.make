# Empty dependencies file for example_oltp_app.
# This may be replaced when dependencies are built.
