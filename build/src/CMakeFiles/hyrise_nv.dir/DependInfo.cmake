
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/pallocator.cc" "src/CMakeFiles/hyrise_nv.dir/alloc/pallocator.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/alloc/pallocator.cc.o.d"
  "/root/repo/src/alloc/pheap.cc" "src/CMakeFiles/hyrise_nv.dir/alloc/pheap.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/alloc/pheap.cc.o.d"
  "/root/repo/src/alloc/region_header.cc" "src/CMakeFiles/hyrise_nv.dir/alloc/region_header.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/alloc/region_header.cc.o.d"
  "/root/repo/src/common/bit_util.cc" "src/CMakeFiles/hyrise_nv.dir/common/bit_util.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/common/bit_util.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/hyrise_nv.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/hyrise_nv.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/hyrise_nv.dir/common/status.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/common/status.cc.o.d"
  "/root/repo/src/core/database.cc" "src/CMakeFiles/hyrise_nv.dir/core/database.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/core/database.cc.o.d"
  "/root/repo/src/core/options.cc" "src/CMakeFiles/hyrise_nv.dir/core/options.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/core/options.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/hyrise_nv.dir/core/query.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/core/query.cc.o.d"
  "/root/repo/src/index/delta_index.cc" "src/CMakeFiles/hyrise_nv.dir/index/delta_index.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/index/delta_index.cc.o.d"
  "/root/repo/src/index/group_key_index.cc" "src/CMakeFiles/hyrise_nv.dir/index/group_key_index.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/index/group_key_index.cc.o.d"
  "/root/repo/src/index/index_set.cc" "src/CMakeFiles/hyrise_nv.dir/index/index_set.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/index/index_set.cc.o.d"
  "/root/repo/src/index/pskiplist.cc" "src/CMakeFiles/hyrise_nv.dir/index/pskiplist.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/index/pskiplist.cc.o.d"
  "/root/repo/src/nvm/latency_model.cc" "src/CMakeFiles/hyrise_nv.dir/nvm/latency_model.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/nvm/latency_model.cc.o.d"
  "/root/repo/src/nvm/nvm_env.cc" "src/CMakeFiles/hyrise_nv.dir/nvm/nvm_env.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/nvm/nvm_env.cc.o.d"
  "/root/repo/src/nvm/pmem_region.cc" "src/CMakeFiles/hyrise_nv.dir/nvm/pmem_region.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/nvm/pmem_region.cc.o.d"
  "/root/repo/src/recovery/log_recovery.cc" "src/CMakeFiles/hyrise_nv.dir/recovery/log_recovery.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/recovery/log_recovery.cc.o.d"
  "/root/repo/src/recovery/nvm_recovery.cc" "src/CMakeFiles/hyrise_nv.dir/recovery/nvm_recovery.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/recovery/nvm_recovery.cc.o.d"
  "/root/repo/src/storage/attribute_vector.cc" "src/CMakeFiles/hyrise_nv.dir/storage/attribute_vector.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/storage/attribute_vector.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/hyrise_nv.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/delta_partition.cc" "src/CMakeFiles/hyrise_nv.dir/storage/delta_partition.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/storage/delta_partition.cc.o.d"
  "/root/repo/src/storage/dictionary.cc" "src/CMakeFiles/hyrise_nv.dir/storage/dictionary.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/storage/dictionary.cc.o.d"
  "/root/repo/src/storage/main_partition.cc" "src/CMakeFiles/hyrise_nv.dir/storage/main_partition.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/storage/main_partition.cc.o.d"
  "/root/repo/src/storage/merge.cc" "src/CMakeFiles/hyrise_nv.dir/storage/merge.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/storage/merge.cc.o.d"
  "/root/repo/src/storage/mvcc.cc" "src/CMakeFiles/hyrise_nv.dir/storage/mvcc.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/storage/mvcc.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/hyrise_nv.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/hyrise_nv.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/storage/table.cc.o.d"
  "/root/repo/src/txn/commit_table.cc" "src/CMakeFiles/hyrise_nv.dir/txn/commit_table.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/txn/commit_table.cc.o.d"
  "/root/repo/src/txn/txn_manager.cc" "src/CMakeFiles/hyrise_nv.dir/txn/txn_manager.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/txn/txn_manager.cc.o.d"
  "/root/repo/src/wal/block_device.cc" "src/CMakeFiles/hyrise_nv.dir/wal/block_device.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/wal/block_device.cc.o.d"
  "/root/repo/src/wal/checkpoint.cc" "src/CMakeFiles/hyrise_nv.dir/wal/checkpoint.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/wal/checkpoint.cc.o.d"
  "/root/repo/src/wal/log_manager.cc" "src/CMakeFiles/hyrise_nv.dir/wal/log_manager.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/wal/log_manager.cc.o.d"
  "/root/repo/src/wal/log_reader.cc" "src/CMakeFiles/hyrise_nv.dir/wal/log_reader.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/wal/log_reader.cc.o.d"
  "/root/repo/src/wal/log_record.cc" "src/CMakeFiles/hyrise_nv.dir/wal/log_record.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/wal/log_record.cc.o.d"
  "/root/repo/src/wal/log_writer.cc" "src/CMakeFiles/hyrise_nv.dir/wal/log_writer.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/wal/log_writer.cc.o.d"
  "/root/repo/src/workload/enterprise.cc" "src/CMakeFiles/hyrise_nv.dir/workload/enterprise.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/workload/enterprise.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/CMakeFiles/hyrise_nv.dir/workload/tpcc.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/workload/tpcc.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/hyrise_nv.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/workload/ycsb.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/hyrise_nv.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/hyrise_nv.dir/workload/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
