# Empty dependencies file for hyrise_nv.
# This may be replaced when dependencies are built.
