file(REMOVE_RECURSE
  "libhyrise_nv.a"
)
