file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_merge.dir/bench_e7_merge.cc.o"
  "CMakeFiles/bench_e7_merge.dir/bench_e7_merge.cc.o.d"
  "bench_e7_merge"
  "bench_e7_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
