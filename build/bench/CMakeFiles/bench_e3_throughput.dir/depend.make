# Empty dependencies file for bench_e3_throughput.
# This may be replaced when dependencies are built.
