# Empty compiler generated dependencies file for bench_e2_restart_timeline.
# This may be replaced when dependencies are built.
