file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_restart_timeline.dir/bench_e2_restart_timeline.cc.o"
  "CMakeFiles/bench_e2_restart_timeline.dir/bench_e2_restart_timeline.cc.o.d"
  "bench_e2_restart_timeline"
  "bench_e2_restart_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_restart_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
