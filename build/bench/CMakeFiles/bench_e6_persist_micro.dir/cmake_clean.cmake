file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_persist_micro.dir/bench_e6_persist_micro.cc.o"
  "CMakeFiles/bench_e6_persist_micro.dir/bench_e6_persist_micro.cc.o.d"
  "bench_e6_persist_micro"
  "bench_e6_persist_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_persist_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
