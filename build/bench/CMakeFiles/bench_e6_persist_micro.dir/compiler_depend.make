# Empty compiler generated dependencies file for bench_e6_persist_micro.
# This may be replaced when dependencies are built.
