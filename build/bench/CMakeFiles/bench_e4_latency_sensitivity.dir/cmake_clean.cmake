file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_latency_sensitivity.dir/bench_e4_latency_sensitivity.cc.o"
  "CMakeFiles/bench_e4_latency_sensitivity.dir/bench_e4_latency_sensitivity.cc.o.d"
  "bench_e4_latency_sensitivity"
  "bench_e4_latency_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_latency_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
