file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_log_formats.dir/bench_e8_log_formats.cc.o"
  "CMakeFiles/bench_e8_log_formats.dir/bench_e8_log_formats.cc.o.d"
  "bench_e8_log_formats"
  "bench_e8_log_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_log_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
