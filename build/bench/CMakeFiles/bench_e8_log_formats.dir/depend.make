# Empty dependencies file for bench_e8_log_formats.
# This may be replaced when dependencies are built.
