file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_recovery_breakdown.dir/bench_e5_recovery_breakdown.cc.o"
  "CMakeFiles/bench_e5_recovery_breakdown.dir/bench_e5_recovery_breakdown.cc.o.d"
  "bench_e5_recovery_breakdown"
  "bench_e5_recovery_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_recovery_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
