# Empty dependencies file for bench_e5_recovery_breakdown.
# This may be replaced when dependencies are built.
