# Empty compiler generated dependencies file for bench_e1_recovery_scaling.
# This may be replaced when dependencies are built.
