// hyrise_nv_router — multi-shard front door for hyrise_nv_server
// backends (DESIGN.md §16).
//
//   hyrise_nv_router --data-dir=DIR --shard=HOST:PORT [--shard=...] [options]
//
//   --data-dir=DIR          coordinator decision-log directory (required)
//   --shard=HOST:PORT       backend shard endpoint; repeat per shard
//                           (bare "PORT" means 127.0.0.1:PORT)
//   --host=ADDR             listen address                  [127.0.0.1]
//   --port=N                listen port (0 = ephemeral)     [5542]
//   --partitioning=KIND     hash | range                    [hash]
//   --range-width=N         keys per shard for range mode   [1]
//   --resolver-interval-ms=N  in-doubt sweep interval       [200]
//   --shard-retries=N       per-op shard reconnect budget   [12]
//   --quiet                 log warnings and errors only
//
// Speaks the same NVQL wire protocol as a single server, so nvql and
// nvload point at it unchanged. Transactions that touch one shard commit
// by passthrough; cross-shard transactions run two-phase commit with the
// decision log making outcomes survive router restarts. kill -9 of a
// shard mid-2PC is converged by the background resolver once the shard
// is back.
//
// Prints "READY port=<port>" once serving (same contract as the server).

#include <signal.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "cluster/router.h"
#include "common/logging.h"

using namespace hyrise_nv;  // NOLINT: tool brevity

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true); }

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

bool ParseFlag(const char* arg, const char* name, long long* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  *out = std::atoll(text.c_str());
  return true;
}

bool ParseShard(const std::string& text, cluster::ShardEndpoint* out) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    out->host = "127.0.0.1";
    out->port = static_cast<uint16_t>(std::atoi(text.c_str()));
  } else {
    out->host = text.substr(0, colon);
    out->port = static_cast<uint16_t>(std::atoi(text.c_str() + colon + 1));
  }
  return !out->host.empty() && out->port != 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: hyrise_nv_router --data-dir=DIR --shard=HOST:PORT "
               "[--shard=...] [--host=ADDR] [--port=N] "
               "[--partitioning=hash|range] [--range-width=N] "
               "[--resolver-interval-ms=N] [--shard-retries=N] [--quiet]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  cluster::RouterOptions options;
  options.port = 5542;
  std::string partitioning = "hash";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long long n = 0;
    std::string shard_text;
    if (ParseFlag(arg, "--data-dir", &options.data_dir) ||
        ParseFlag(arg, "--host", &options.host) ||
        ParseFlag(arg, "--partitioning", &partitioning)) {
      continue;
    }
    if (ParseFlag(arg, "--shard", &shard_text)) {
      cluster::ShardEndpoint endpoint;
      if (!ParseShard(shard_text, &endpoint)) {
        std::fprintf(stderr, "bad --shard endpoint: %s\n",
                     shard_text.c_str());
        return Usage();
      }
      options.shards.push_back(endpoint);
    } else if (ParseFlag(arg, "--port", &n)) {
      options.port = static_cast<uint16_t>(n);
    } else if (ParseFlag(arg, "--range-width", &n)) {
      options.range_width = n;
    } else if (ParseFlag(arg, "--resolver-interval-ms", &n)) {
      options.resolver_interval_ms = static_cast<int>(n);
    } else if (ParseFlag(arg, "--shard-retries", &n)) {
      options.shard_max_retries = static_cast<int>(n);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      SetLogLevel(LogLevel::kWarn);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage();
    }
  }
  if (options.data_dir.empty() || options.shards.empty()) return Usage();

  if (partitioning == "hash") {
    options.partitioning = cluster::Partitioning::kHash;
  } else if (partitioning == "range") {
    options.partitioning = cluster::Partitioning::kRange;
  } else {
    std::fprintf(stderr, "unknown partitioning: %s\n", partitioning.c_str());
    return Usage();
  }

  std::error_code ec;
  std::filesystem::create_directories(options.data_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create data dir %s: %s\n",
                 options.data_dir.c_str(), ec.message().c_str());
    return 2;
  }

  auto router_result = cluster::Router::Start(options);
  if (!router_result.ok()) {
    std::fprintf(stderr, "cannot start router: %s\n",
                 router_result.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<cluster::Router> router = std::move(*router_result);

  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::printf("READY port=%u\n", router->port());
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("stopping router...\n");
  router->Stop();
  std::printf("clean shutdown\n");
  return 0;
}
