// nvql — command-line client for a running hyrise_nv_server.
//
//   nvql [--host=ADDR] [--port=N] [--retries=N] <command> [args...]
//   nvql ... -            read newline-separated commands from stdin
//
// Commands (values are typed: bare integers are int64, values with a
// '.' are double, everything else is a string):
//
//   ping
//   stats
//   recovery
//   wait-ready [TIMEOUT_MS]    block until the server finished its
//                              recovery drain (prints drain progress)
//   checkpoint
//   drain
//   create-table NAME COL:TYPE [COL:TYPE...]     TYPE = int|double|string
//   create-index TABLE COLUMN [hash|skiplist]
//   insert TABLE V1 [V2...]          (autocommit)
//   batch-insert TABLE ROW [ROW...]  each ROW is V1,V2,... — all rows go
//                                    out as ONE wire-v2 dml_batch frame,
//                                    applied atomically under a single
//                                    commit (one fsync for the lot)
//   protocol                         negotiated wire version, pipeline
//                                    window, server mode, session id
//   count TABLE
//   scan TABLE COLUMN VALUE [LIMIT]
//   range TABLE COLUMN LO HI [LIMIT]
//   begin / commit / abort           (script mode: one session spans stdin)
//   \timing                          toggle per-command wall time + last
//                                    wire round-trip (script mode)
//   \watch SECONDS [COUNT]           re-issue the previous command every
//                                    SECONDS (fractional ok) until COUNT
//                                    runs or Ctrl-C (script mode)
//   \shards                          shard map + per-shard serving state
//                                    (when pointed at hyrise_nv_router)
//   sql-like one-shot: "insert" outside a begin/commit runs autocommit.
//
// Exit codes: 0 success, 1 usage, 2 connection failure, 3 server error.

#include <signal.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "storage/types.h"

using namespace hyrise_nv;  // NOLINT: tool brevity

namespace {

volatile std::sig_atomic_t g_watch_stop = 0;

void OnWatchInterrupt(int) { g_watch_stop = 1; }

int Usage() {
  std::fprintf(stderr,
               "usage: nvql [--host=ADDR] [--port=N] [--retries=N] "
               "<command> [args...] | -\n"
               "commands: ping stats recovery wait-ready [TIMEOUT_MS] "
               "checkpoint drain\n"
               "          create-table NAME COL:TYPE...\n"
               "          create-index TABLE COLUMN [hash|skiplist]\n"
               "          insert TABLE V1 [V2...]\n"
               "          batch-insert TABLE V1,V2 [V1,V2...] | protocol\n"
               "          count TABLE | scan TABLE COL VALUE [LIMIT] |\n"
               "          range TABLE COL LO HI [LIMIT]\n"
                    "          begin | commit | abort (script mode)\n"
               "          \\timing | \\watch SECONDS [COUNT] (script mode)\n"
               "          \\shards (router only: shard map + states)\n");
  return 1;
}

storage::Value ParseValue(const std::string& text) {
  if (!text.empty() &&
      text.find_first_not_of("-0123456789") == std::string::npos) {
    return storage::Value(
        static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10)));
  }
  if (!text.empty() &&
      text.find_first_not_of("-0123456789.eE+") == std::string::npos &&
      text.find('.') != std::string::npos) {
    return storage::Value(std::strtod(text.c_str(), nullptr));
  }
  return storage::Value(text);
}

std::string ValueToString(const storage::Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

void PrintScan(const net::ScanResult& result) {
  for (const net::WireRow& row : result.rows) {
    std::string line = row.loc.in_main ? "main:" : "delta:";
    line += std::to_string(row.loc.row);
    for (const auto& v : row.values) {
      line += "\t";
      line += ValueToString(v);
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("(%zu row(s)%s)\n", result.rows.size(),
              result.truncated ? ", truncated" : "");
}

/// Runs one command; returns 0/3, or -1 for "unknown command".
int RunCommand(net::Client& client, const std::vector<std::string>& args,
               bool* in_txn) {
  const std::string& cmd = args[0];
  auto fail = [](const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 3;
  };

  if (cmd == "ping") {
    Status status = client.Ping();
    if (!status.ok()) return fail(status);
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "stats" || cmd == "recovery") {
    auto json_result =
        cmd == "stats" ? client.Stats() : client.RecoveryInfo();
    if (!json_result.ok()) return fail(json_result.status());
    std::printf("%s\n", json_result->c_str());
    return 0;
  }
  if (cmd == "\\shards" || cmd == "shards") {
    auto json_result = client.Stats();
    if (!json_result.ok()) return fail(json_result.status());
    const std::string& json = *json_result;
    const size_t cluster = json.find("\"cluster\":");
    if (cluster == std::string::npos) {
      std::printf("not a router (no cluster section in stats)\n");
      return 0;
    }
    const size_t map_at = json.find("\"shard_map\":", cluster);
    if (map_at != std::string::npos) {
      const size_t open = json.find('{', map_at);
      const size_t close = json.find('}', open);
      if (open != std::string::npos && close != std::string::npos) {
        std::printf("shard map: %s\n",
                    json.substr(open, close - open + 1).c_str());
      }
    }
    // One line per {"id":N,"host":"H","port":P,"state":"S"} entry.
    size_t at = json.find("\"shards\":[", cluster);
    while (at != std::string::npos) {
      at = json.find("{\"id\":", at);
      if (at == std::string::npos) break;
      const long long id = std::atoll(json.c_str() + at + 6);
      std::string host = "?";
      const size_t host_at = json.find("\"host\":\"", at);
      if (host_at != std::string::npos) {
        const size_t end = json.find('"', host_at + 8);
        host = json.substr(host_at + 8, end - host_at - 8);
      }
      long long port = 0;
      const size_t port_at = json.find("\"port\":", at);
      if (port_at != std::string::npos) {
        port = std::atoll(json.c_str() + port_at + 7);
      }
      std::string state = "?";
      const size_t state_at = json.find("\"state\":\"", at);
      if (state_at != std::string::npos) {
        const size_t end = json.find('"', state_at + 9);
        state = json.substr(state_at + 9, end - state_at - 9);
      }
      std::printf("shard %lld: %s:%lld state=%s\n", id, host.c_str(), port,
                  state.c_str());
      at = json.find('}', at);
    }
    return 0;
  }
  if (cmd == "wait-ready") {
    const long long timeout_ms =
        args.size() >= 2 ? std::atoll(args[1].c_str()) : 60'000;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
      auto info_result = client.RecoveryInfo();
      if (!info_result.ok()) return fail(info_result.status());
      if (info_result->find("\"serving_state\":\"degraded\"") ==
          std::string::npos) {
        std::printf("ready\n");
        return 0;
      }
      double percent = 0;
      const size_t at = info_result->find("\"percent\":");
      if (at != std::string::npos) {
        percent = std::strtod(info_result->c_str() + at + 10, nullptr);
      }
      std::fprintf(stderr, "server warming, %.0f%% drained\n", percent);
      if (std::chrono::steady_clock::now() >= deadline) {
        return fail(
            Status::Aborted("timed out waiting for the recovery drain"));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  if (cmd == "checkpoint") {
    Status status = client.Checkpoint();
    if (!status.ok()) return fail(status);
    std::printf("checkpoint written\n");
    return 0;
  }
  if (cmd == "drain") {
    Status status = client.Drain();
    if (!status.ok()) return fail(status);
    std::printf("drain requested\n");
    return 0;
  }
  if (cmd == "begin") {
    auto begin_result = client.Begin();
    if (!begin_result.ok()) return fail(begin_result.status());
    *in_txn = true;
    std::printf("begin tid=%llu snapshot=%llu\n",
                static_cast<unsigned long long>(begin_result->tid),
                static_cast<unsigned long long>(begin_result->snapshot));
    return 0;
  }
  if (cmd == "commit") {
    auto cid_result = client.Commit();
    *in_txn = false;
    if (!cid_result.ok()) return fail(cid_result.status());
    std::printf("committed cid=%llu\n",
                static_cast<unsigned long long>(*cid_result));
    return 0;
  }
  if (cmd == "abort") {
    Status status = client.Abort();
    *in_txn = false;
    if (!status.ok()) return fail(status);
    std::printf("aborted\n");
    return 0;
  }
  if (cmd == "create-table" && args.size() >= 3) {
    std::vector<std::pair<std::string, storage::DataType>> columns;
    for (size_t i = 2; i < args.size(); ++i) {
      const size_t colon = args[i].find(':');
      if (colon == std::string::npos) return Usage();
      const std::string type = args[i].substr(colon + 1);
      storage::DataType data_type;
      if (type == "int") {
        data_type = storage::DataType::kInt64;
      } else if (type == "double") {
        data_type = storage::DataType::kDouble;
      } else if (type == "string") {
        data_type = storage::DataType::kString;
      } else {
        std::fprintf(stderr, "unknown column type: %s\n", type.c_str());
        return 1;
      }
      columns.emplace_back(args[i].substr(0, colon), data_type);
    }
    auto id_result = client.CreateTable(args[1], columns);
    if (!id_result.ok()) return fail(id_result.status());
    std::printf("created table %s (id %llu)\n", args[1].c_str(),
                static_cast<unsigned long long>(*id_result));
    return 0;
  }
  if (cmd == "create-index" && args.size() >= 3) {
    const uint8_t kind =
        args.size() >= 4 && args[3] == "skiplist" ? 1 : 0;
    Status status = client.CreateIndex(
        args[1], static_cast<uint32_t>(std::atoi(args[2].c_str())), kind);
    if (!status.ok()) return fail(status);
    std::printf("created index\n");
    return 0;
  }
  if (cmd == "insert" && args.size() >= 3) {
    std::vector<storage::Value> row;
    for (size_t i = 2; i < args.size(); ++i) {
      row.push_back(ParseValue(args[i]));
    }
    const bool autocommit = !*in_txn;
    if (autocommit) {
      auto begin_result = client.Begin();
      if (!begin_result.ok()) return fail(begin_result.status());
    }
    auto loc_result = client.Insert(args[1], row);
    if (!loc_result.ok()) {
      if (autocommit) (void)client.Abort();
      return fail(loc_result.status());
    }
    if (autocommit) {
      auto cid_result = client.Commit();
      if (!cid_result.ok()) return fail(cid_result.status());
    }
    std::printf("inserted at %s:%llu\n",
                loc_result->in_main ? "main" : "delta",
                static_cast<unsigned long long>(loc_result->row));
    return 0;
  }
  if (cmd == "protocol") {
    std::printf("protocol v%u window %u mode %u session %llu\n",
                client.protocol_version(), client.pipeline_window(),
                client.server_mode(),
                static_cast<unsigned long long>(client.session_id()));
    return 0;
  }
  if (cmd == "batch-insert" && args.size() >= 3) {
    std::vector<net::Client::DmlOp> ops;
    for (size_t a = 2; a < args.size(); ++a) {
      net::Client::DmlOp op;
      op.kind = net::Client::DmlOp::kInsert;
      op.table = args[1];
      const std::string& row_text = args[a];
      size_t pos = 0;
      while (pos <= row_text.size()) {
        size_t comma = row_text.find(',', pos);
        if (comma == std::string::npos) comma = row_text.size();
        op.row.push_back(ParseValue(row_text.substr(pos, comma - pos)));
        pos = comma + 1;
      }
      ops.push_back(std::move(op));
    }
    auto batch_result = client.DmlBatch(ops);
    if (!batch_result.ok()) return fail(batch_result.status());
    for (const storage::RowLocation& loc : batch_result->locs) {
      std::printf("inserted at %s:%llu\n", loc.in_main ? "main" : "delta",
                  static_cast<unsigned long long>(loc.row));
    }
    std::printf("batch committed cid=%llu (%zu row(s), one frame)\n",
                static_cast<unsigned long long>(batch_result->cid),
                batch_result->locs.size());
    return 0;
  }
  if (cmd == "count" && args.size() >= 2) {
    auto count_result = client.Count(args[1], *in_txn);
    if (!count_result.ok()) return fail(count_result.status());
    std::printf("%llu\n", static_cast<unsigned long long>(*count_result));
    return 0;
  }
  if (cmd == "scan" && args.size() >= 4) {
    const uint32_t limit =
        args.size() >= 5 ? static_cast<uint32_t>(std::atoi(args[4].c_str()))
                         : 0;
    auto scan_result = client.ScanEqual(
        args[1], static_cast<uint32_t>(std::atoi(args[2].c_str())),
        ParseValue(args[3]), *in_txn, limit);
    if (!scan_result.ok()) return fail(scan_result.status());
    PrintScan(*scan_result);
    return 0;
  }
  if (cmd == "range" && args.size() >= 5) {
    const uint32_t limit =
        args.size() >= 6 ? static_cast<uint32_t>(std::atoi(args[5].c_str()))
                         : 0;
    auto scan_result = client.ScanRange(
        args[1], static_cast<uint32_t>(std::atoi(args[2].c_str())),
        ParseValue(args[3]), ParseValue(args[4]), *in_txn, limit);
    if (!scan_result.ok()) return fail(scan_result.status());
    PrintScan(*scan_result);
    return 0;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  net::ClientOptions options;
  options.port = 5543;
  int i = 1;
  for (; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--host=", 7) == 0) {
      options.host = arg + 7;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      options.port = static_cast<uint16_t>(std::atoi(arg + 7));
    } else if (std::strncmp(arg, "--retries=", 10) == 0) {
      options.max_retries = std::atoi(arg + 10);
    } else {
      break;
    }
  }
  if (i >= argc) return Usage();

  net::Client client(options);
  Status status = client.Connect();
  if (!status.ok()) {
    std::fprintf(stderr, "cannot connect to %s:%u: %s\n",
                 options.host.c_str(), options.port,
                 status.ToString().c_str());
    return 2;
  }

  bool in_txn = false;
  if (std::strcmp(argv[i], "-") == 0) {
    // Script mode: one session, newline-separated commands from stdin.
    std::string line;
    int last_rc = 0;
    bool timing = false;
    std::vector<std::string> last_args;
    while (std::getline(std::cin, line)) {
      std::istringstream stream(line);
      std::vector<std::string> args;
      std::string token;
      while (stream >> token) args.push_back(std::move(token));
      if (args.empty() || args[0][0] == '#') continue;
      if (args[0] == "\\timing") {
        timing = !timing;
        std::printf("timing %s\n", timing ? "on" : "off");
        continue;
      }
      if (args[0] == "\\watch") {
        if (last_args.empty()) {
          std::fprintf(stderr, "\\watch: no previous command to repeat\n");
          last_rc = 1;
          continue;
        }
        double seconds =
            args.size() >= 2 ? std::strtod(args[1].c_str(), nullptr) : 2.0;
        if (seconds <= 0) seconds = 2.0;
        const long long count =
            args.size() >= 3 ? std::atoll(args[2].c_str()) : 0;
        std::string repeated = last_args[0];
        for (size_t a = 1; a < last_args.size(); ++a) {
          repeated += " " + last_args[a];
        }
        // Ctrl-C ends the watch, not the session; the previous handler
        // comes back once the loop exits.
        g_watch_stop = 0;
        struct sigaction watch_action {};
        struct sigaction saved_action {};
        watch_action.sa_handler = OnWatchInterrupt;
        sigaction(SIGINT, &watch_action, &saved_action);
        long long iterations = 0;
        while (g_watch_stop == 0) {
          std::printf("-- watch #%lld (%s, every %gs)\n", iterations + 1,
                      repeated.c_str(), seconds);
          const int watch_rc = RunCommand(client, last_args, &in_txn);
          std::fflush(stdout);
          if (watch_rc != 0) {
            last_rc = watch_rc == -1 ? 1 : watch_rc;
            break;
          }
          ++iterations;
          if (count > 0 && iterations >= count) break;
          for (double waited = 0; waited < seconds && g_watch_stop == 0;
               waited += 0.05) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
        }
        sigaction(SIGINT, &saved_action, nullptr);
        continue;
      }
      const auto cmd_start = std::chrono::steady_clock::now();
      const int rc = RunCommand(client, args, &in_txn);
      if (rc == -1) {
        std::fprintf(stderr, "unknown command: %s\n", args[0].c_str());
        last_rc = 1;
      } else {
        last_args = args;
        if (rc != 0) last_rc = rc;
      }
      if (timing && rc != -1) {
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - cmd_start)
                .count();
        // Wall time covers the whole command (an autocommit insert is
        // three round trips); last_rtt_ns is the final wire round trip.
        std::printf("Time: %.3f ms (last rtt %.3f ms)\n", wall_ms,
                    static_cast<double>(client.last_rtt_ns()) / 1e6);
      }
    }
    return last_rc;
  }

  std::vector<std::string> args(argv + i, argv + argc);
  const int rc = RunCommand(client, args, &in_txn);
  if (rc == -1) return Usage();
  return rc;
}
