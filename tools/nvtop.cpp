// nvtop — live terminal dashboard for a running nvserve instance.
//
// Polls the stats opcode and renders, in place: commit/request
// throughput and p99 latency sparklines from the server-side timeline
// (phase-annotated, so merge/checkpoint/recovery windows show up as the
// dips they cause), per-stage latency attribution bars aggregated from
// the net.op.*.stage.* histograms, serving state, and the maintenance
// phases active right now.
//
//   nvtop --port P [--host H] [--interval-ms N] [--once] [--raw]
//
// --once prints a single frame and exits (no escape codes beyond color:
// scripts and CI smoke tests use it); --raw dumps the stats JSON
// verbatim. Requires the server to run with observability on
// (--timeline) for the sparkline section; everything else works
// regardless.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "net/client.h"
#include "obs/request_stats.h"

using namespace hyrise_nv;  // NOLINT: tool brevity

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

/// Unicode block sparkline of `values` scaled to the window maximum.
std::string Sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇",
                                  "█"};
  double max = 0;
  for (double v : values) max = v > max ? v : max;
  std::string out;
  for (double v : values) {
    size_t level = max <= 0 ? 0
                            : static_cast<size_t>(v / max * 8.0 + 0.5);
    if (level > 8) level = 8;
    out += kLevels[level];
  }
  return out;
}

std::string Bar(double fraction, size_t width) {
  if (fraction < 0) fraction = 0;
  if (fraction > 1) fraction = 1;
  size_t filled = static_cast<size_t>(fraction * width + 0.5);
  std::string out;
  for (size_t i = 0; i < width; ++i) out += i < filled ? "█" : "·";
  return out;
}

std::string HumanRate(double per_sec) {
  char buf[64];
  if (per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM/s", per_sec / 1e6);
  } else if (per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk/s", per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f/s", per_sec);
  }
  return buf;
}

std::string HumanNanos(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

std::string HumanBytes(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2fGiB",
                  bytes / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", bytes / 1024.0);
  }
  return buf;
}

double NumAt(const common::JsonValue* obj, std::string_view key) {
  if (obj == nullptr) return 0;
  const common::JsonValue* v = obj->Find(key);
  return v == nullptr ? 0 : v->AsDouble();
}

/// root[group][key] (or root[group][key][field]) as a number. Metric
/// names contain dots, so the levels must be separate Find calls, not a
/// FindPath.
double GroupNum(const common::JsonValue* root, std::string_view group,
                std::string_view key, std::string_view field = {}) {
  if (root == nullptr) return 0;
  const common::JsonValue* g = root->Find(group);
  if (g == nullptr) return 0;
  const common::JsonValue* v = g->Find(key);
  if (v == nullptr) return 0;
  if (!field.empty()) {
    v = v->Find(field);
    if (v == nullptr) return 0;
  }
  return v->AsDouble();
}

/// One dashboard frame rendered from a parsed stats payload.
void RenderFrame(const common::JsonValue& stats, const std::string& target,
                 size_t window) {
  const common::JsonValue* server = stats.Find("server");
  const common::JsonValue* metrics = stats.Find("metrics");
  const common::JsonValue* timeline = stats.Find("timeline");

  std::string serving = "?";
  if (server != nullptr) {
    const common::JsonValue* state = server->Find("serving_state");
    if (state != nullptr && state->is_string()) serving = state->AsString();
    if (server->Find("draining") != nullptr &&
        server->Find("draining")->AsBool()) {
      serving += " (draining)";
    }
  }
  std::printf("nvtop — %s   serving: %s%s%s\n", target.c_str(),
              serving == "ready" ? "\x1b[32m" : "\x1b[33m", serving.c_str(),
              "\x1b[0m");
  std::printf(
      "conns %-5.0f reqs %-10.0f active txns %-5.0f overload rej %-6.0f "
      "proto errs %.0f\n",
      NumAt(server, "connections"), NumAt(server, "requests"),
      NumAt(server, "active_txns"), NumAt(server, "overload_rejected"),
      NumAt(server, "protocol_errors"));
  std::printf(
      "heap %s   rss %s   nvm region %s / %s\n",
      HumanBytes(GroupNum(metrics, "gauges", "alloc.heap_used.bytes"))
          .c_str(),
      HumanBytes(GroupNum(metrics, "gauges", "process.rss_bytes")).c_str(),
      HumanBytes(GroupNum(metrics, "gauges", "nvm.region.used_bytes"))
          .c_str(),
      HumanBytes(GroupNum(metrics, "gauges", "nvm.region.capacity_bytes"))
          .c_str());

  // --- Timeline sparklines (server-side per-interval samples) ----------
  const common::JsonValue* samples =
      timeline == nullptr ? nullptr : timeline->Find("samples");
  if (samples != nullptr && samples->is_array() && samples->size() > 0) {
    size_t begin = samples->size() > window ? samples->size() - window : 0;
    std::vector<double> commit_rate;
    std::vector<double> req_p99;
    std::string active;
    for (size_t i = begin; i < samples->size(); ++i) {
      const common::JsonValue& s = samples->at(i);
      double elapsed = NumAt(&s, "elapsed_ms");
      if (elapsed <= 0) elapsed = 1000;
      commit_rate.push_back(GroupNum(&s, "counters", "txn.commit.count") *
                            1000.0 / elapsed);
      req_p99.push_back(
          GroupNum(&s, "histograms", "net.request.latency_ns", "p99"));
    }
    const common::JsonValue& last = samples->at(samples->size() - 1);
    const common::JsonValue* phases = last.Find("active_phases");
    if (phases != nullptr && phases->is_array()) {
      for (const auto& p : phases->items()) {
        if (!active.empty()) active += ",";
        active += p.AsString();
      }
    }
    std::printf("\ncommit tput %-10s %s\n",
                HumanRate(commit_rate.back()).c_str(),
                Sparkline(commit_rate).c_str());
    std::printf("req p99     %-10s %s\n", HumanNanos(req_p99.back()).c_str(),
                Sparkline(req_p99).c_str());
    std::printf("phase: %s\n",
                active.empty() ? "-" : ("\x1b[35m" + active + "\x1b[0m").c_str());
  } else {
    std::printf("\n(timeline off — start the server with --timeline for "
                "sparklines)\n");
  }

  // --- Per-stage latency attribution -----------------------------------
  // Aggregate net.op.<op>.stage.<stage>.latency_ns sums across ops.
  const common::JsonValue* hists =
      metrics == nullptr ? nullptr : metrics->Find("histograms");
  if (hists != nullptr && hists->is_object()) {
    double stage_sum[obs::kNumRequestStages] = {};
    double total = 0;
    for (const auto& [name, hist] : hists->members()) {
      size_t marker = name.find(".stage.");
      if (name.rfind("net.op.", 0) != 0 || marker == std::string::npos) {
        continue;
      }
      std::string stage = name.substr(marker + 7);
      size_t suffix = stage.find(".latency_ns");
      if (suffix != std::string::npos) stage = stage.substr(0, suffix);
      for (size_t i = 0; i < obs::kNumRequestStages; ++i) {
        if (stage == obs::RequestStageName(i)) {
          double sum = NumAt(&hist, "sum");
          stage_sum[i] += sum;
          total += sum;
          break;
        }
      }
    }
    if (total > 0) {
      std::printf("\nstage time share (lifetime)\n");
      for (size_t i = 0; i < obs::kNumRequestStages; ++i) {
        std::printf("  %-15s %s %5.1f%%\n", obs::RequestStageName(i),
                    Bar(stage_sum[i] / total, 30).c_str(),
                    100.0 * stage_sum[i] / total);
      }
    }
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: nvtop --port P [--host H] [--interval-ms N] "
               "[--window N] [--once] [--raw]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  net::ClientOptions options;
  uint64_t interval_ms = 1000;
  size_t window = 60;
  bool once = false;
  bool raw = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--port 5543" and "--port=5543" (the other tools use
    // the '=' form).
    std::string value;
    const size_t eq = arg.find('=');
    bool has_value = false;
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto next_value = [&]() -> const char* {
      if (has_value) return value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next_value();
      if (v == nullptr) return Usage();
      options.host = v;
    } else if (arg == "--port") {
      const char* v = next_value();
      if (v == nullptr) return Usage();
      options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--interval-ms") {
      const char* v = next_value();
      if (v == nullptr) return Usage();
      interval_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--window") {
      const char* v = next_value();
      if (v == nullptr) return Usage();
      window = std::strtoull(v, nullptr, 10);
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--raw") {
      raw = true;
    } else {
      return Usage();
    }
  }
  if (options.port == 0) return Usage();
  if (interval_ms == 0) interval_ms = 1000;
  if (window == 0) window = 60;

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  net::Client client(options);
  Status status = client.Connect();
  if (!status.ok()) {
    std::fprintf(stderr, "nvtop: connect failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  const std::string target =
      options.host + ":" + std::to_string(options.port);

  while (g_stop == 0) {
    Result<std::string> stats_result = client.Stats();
    if (!stats_result.ok()) {
      std::fprintf(stderr, "nvtop: stats failed: %s\n",
                   stats_result.status().ToString().c_str());
      return 1;
    }
    if (raw) {
      std::printf("%s\n", stats_result->c_str());
    } else {
      auto parsed = common::JsonParse(*stats_result);
      if (!parsed.ok()) {
        std::fprintf(stderr, "nvtop: bad stats payload: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      if (!once) std::fputs("\x1b[H\x1b[2J", stdout);  // home + clear
      RenderFrame(*parsed, target, window);
      std::fflush(stdout);
    }
    if (once) break;
    for (uint64_t waited = 0; waited < interval_ms && g_stop == 0;
         waited += 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return 0;
}
