// dbinspect — offline inspection of a Hyrise-NV persistent image.
//
// Prints the region header, allocator occupancy, transaction state,
// catalog, per-table partition/dictionary/index statistics, and MVCC
// health counters — without modifying the image (the file is copied into
// an anonymous region first).
//
//   dbinspect <path-to-nvm.img> [--verbose]

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "alloc/pheap.h"
#include "alloc/region_header.h"
#include "index/index_set.h"
#include "storage/catalog.h"
#include "txn/commit_table.h"

using namespace hyrise_nv;  // NOLINT: tool brevity

namespace {

const char* IndexKindName(uint64_t kind) {
  switch (kind) {
    case storage::kIndexHash:
      return "hash";
    case storage::kIndexSkipList:
      return "skip-list";
  }
  return "?";
}

void PrintTable(storage::Table& table, bool verbose) {
  std::printf("\ntable '%s' (id %" PRIu64 ")\n", table.name().c_str(),
              table.id());
  std::printf("  columns: %zu  |  main rows: %" PRIu64
              "  |  delta rows: %" PRIu64 "\n",
              table.schema().num_columns(), table.main_row_count(),
              table.delta_row_count());

  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    const auto& def = table.schema().column(c);
    const auto& main_col = table.main().column(c);
    const auto& delta_col = table.delta().column(c);
    std::printf("  col %2zu %-18s %-7s  main dict %8" PRIu64
                " (%2u bits)   delta dict %8" PRIu64 "\n",
                c, def.name.c_str(), storage::DataTypeName(def.type),
                main_col.dictionary().size(), main_col.attr().bits(),
                delta_col.dictionary().size());
  }

  storage::PTableGroup* group = table.group();
  for (uint64_t s = 0; s < storage::kMaxIndexesPerTable; ++s) {
    const storage::PIndexMeta& idx = group->indexes[s];
    if (idx.state != 1) continue;
    std::printf("  index on col %" PRIu64 ": %s", idx.column,
                IndexKindName(idx.kind));
    const auto& main_meta = *group->main_col(idx.column);
    const bool has_gk = main_meta.gk_offsets.size > 0;
    std::printf("  (group-key on main: %s)\n", has_gk ? "yes" : "no");
  }

  // MVCC health: committed / deleted / claimed / never-committed rows.
  uint64_t committed = 0, deleted = 0, claimed = 0, garbage = 0;
  auto classify = [&](const storage::MvccEntry* entry) {
    if (entry->begin == storage::kCidInfinity) {
      ++garbage;  // uncommitted or aborted insert
    } else if (entry->end != storage::kCidInfinity) {
      ++deleted;
    } else {
      ++committed;
    }
    if (entry->tid != storage::kTidNone) ++claimed;
  };
  for (uint64_t r = 0; r < table.main_row_count(); ++r) {
    classify(table.main().mvcc(r));
  }
  for (uint64_t r = 0; r < table.delta_row_count(); ++r) {
    classify(table.delta().mvcc(r));
  }
  std::printf("  mvcc: %" PRIu64 " live, %" PRIu64 " deleted, %" PRIu64
              " in-flight/aborted, %" PRIu64 " claims\n",
              committed, deleted, garbage, claimed);

  if (verbose && table.main_row_count() + table.delta_row_count() > 0) {
    std::printf("  first rows:\n");
    uint64_t shown = 0;
    const storage::Cid snapshot = storage::kCidInfinity - 1;
    table.ForEachVisibleRow(snapshot, storage::kTidNone,
                            [&](storage::RowLocation loc) {
                              if (shown >= 5) return;
                              std::printf("    [%s %" PRIu64 "]",
                                          loc.in_main ? "main" : "delta",
                                          loc.row);
                              for (const auto& value :
                                   table.GetRow(loc)) {
                                if (const auto* i =
                                        std::get_if<int64_t>(&value)) {
                                  std::printf(" %" PRId64, *i);
                                } else if (const auto* d =
                                               std::get_if<double>(
                                                   &value)) {
                                  std::printf(" %g", *d);
                                } else {
                                  std::printf(" '%s'",
                                              std::get<std::string>(value)
                                                  .c_str());
                                }
                              }
                              std::printf("\n");
                              ++shown;
                            });
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <nvm-image> [--verbose]\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const bool verbose = argc > 2 && std::strcmp(argv[2], "--verbose") == 0;

  nvm::PmemRegionOptions options;
  options.file_path = path;
  options.tracking = nvm::TrackingMode::kNone;
  auto heap_result = alloc::PHeap::Open(options);
  if (!heap_result.ok()) {
    std::fprintf(stderr, "cannot open image: %s\n",
                 heap_result.status().ToString().c_str());
    return 1;
  }
  auto heap = std::move(heap_result).ValueUnsafe();

  const auto* header = alloc::HeaderOf(heap->region());
  std::printf("region: %s\n", path.c_str());
  std::printf("  size: %.1f MiB  |  format v%u  |  last shutdown: %s\n",
              heap->region().size() / (1024.0 * 1024.0),
              header->format_version,
              heap->was_clean_shutdown() ? "clean" : "crash");
  std::printf("  heap used: %.1f MiB (%.1f%%)\n",
              heap->allocator().HeapUsedBytes() / (1024.0 * 1024.0),
              100.0 * heap->allocator().HeapUsedBytes() /
                  heap->region().size());
  std::printf("  roots:");
  for (const auto& slot : header->roots) {
    if (slot.name[0] != '\0') {
      std::printf(" %s@%" PRIu64, slot.name, slot.offset);
    }
  }
  std::printf("\n");

  auto commit_result = txn::CommitTable::Attach(*heap);
  if (commit_result.ok()) {
    const auto* block = (*commit_result)->block();
    uint64_t in_flight = 0;
    for (const auto& slot : block->slots) {
      if (slot.state == txn::PCommitSlot::kCommitting) ++in_flight;
    }
    std::printf("  txn state: watermark %" PRIu64 ", next tid block %"
                PRIu64 ", next cid block %" PRIu64
                ", in-flight commits %" PRIu64 "\n",
                block->commit_watermark, block->tid_block,
                block->cid_block, in_flight);
  }

  auto catalog_result = storage::Catalog::Attach(*heap);
  if (!catalog_result.ok()) {
    std::fprintf(stderr, "cannot attach catalog: %s\n",
                 catalog_result.status().ToString().c_str());
    return 1;
  }
  std::printf("  tables: %zu\n", (*catalog_result)->num_tables());
  for (const auto& table : (*catalog_result)->tables()) {
    PrintTable(*table, verbose);
  }
  return 0;
}
