// dbinspect — offline inspection and verification of a Hyrise-NV
// persistent image.
//
// Prints the region header, allocator occupancy, transaction state,
// catalog, per-table partition/dictionary/index statistics, and MVCC
// health counters — without modifying the image (the file is copied into
// an anonymous region first).
//
//   dbinspect [--verify[=deep]] <data-dir | nvm-image> [--verbose]
//   dbinspect stats [--metrics-json | --prometheus] <data-dir | nvm-image>
//   dbinspect blackbox [--json] [--limit=N] <data-dir | nvm-image>
//   dbinspect timeline [--json] <data-dir | nvm-image>
//
// --verify        fast integrity check (region header + magic/CRC)
// --verify=deep   walk every persistent structure: allocator free lists,
//                 commit table, catalog, dictionaries, attribute
//                 vectors, MVCC vectors, indexes (advisory findings —
//                 e.g. a quarantined flight recorder — do not fail)
// stats           image summary + engine metrics snapshot (text table,
//                 --metrics-json for JSON, --prometheus for exposition
//                 format)
// blackbox        decode the NVM-persisted flight recorder into a crash
//                 timeline; works on corrupt images (geometry comes from
//                 the file size, every event slot carries its own CRC)
// timeline        reconstruct maintenance phase spans (merge /
//                 checkpoint / recovery-drain windows, fault and crash
//                 points) from the same flight recorder
//
// Exit codes: 0 = image is clean, 1 = usage error, 2 = corruption
// found, 3 = the image cannot be opened at all.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>

#include "alloc/pheap.h"
#include "alloc/region_header.h"
#include "index/index_set.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "recovery/verify.h"
#include "storage/catalog.h"
#include "txn/commit_table.h"

using namespace hyrise_nv;  // NOLINT: tool brevity

namespace {

const char* IndexKindName(uint64_t kind) {
  switch (kind) {
    case storage::kIndexHash:
      return "hash";
    case storage::kIndexSkipList:
      return "skip-list";
  }
  return "?";
}

const char* SeverityName(recovery::FindingSeverity severity) {
  switch (severity) {
    case recovery::FindingSeverity::kFatal:
      return "FATAL";
    case recovery::FindingSeverity::kTable:
      return "TABLE";
    case recovery::FindingSeverity::kWriteHazard:
      return "WRITE-HAZARD";
    case recovery::FindingSeverity::kAdvisory:
      return "ADVISORY";
  }
  return "?";
}

int RunVerify(const std::string& image_path, bool deep) {
  nvm::PmemRegionOptions options;
  options.file_path = image_path;
  options.tracking = nvm::TrackingMode::kNone;
  auto region_result = nvm::PmemRegion::Open(options);
  if (!region_result.ok()) {
    std::fprintf(stderr, "cannot open image: %s\n",
                 region_result.status().ToString().c_str());
    return 3;
  }
  auto region = std::move(region_result).ValueUnsafe();

  if (!deep) {
    Status status = alloc::ValidateRegionHeader(*region);
    if (!status.ok()) {
      std::printf("verify: FAILED — %s\n", status.ToString().c_str());
      return 2;
    }
    std::printf(
        "verify: header OK (%s shutdown; use --verify=deep for a full "
        "structure walk)\n",
        alloc::WasCleanShutdown(*region) ? "clean" : "crash");
    return 0;
  }

  recovery::VerifyReport report = recovery::DeepVerify(*region);
  std::printf("deep verify: %" PRIu64 " tables, %" PRIu64
              " structures checked, %zu finding(s)%s\n",
              report.tables_checked, report.structures_checked,
              report.findings.size(),
              report.sealed_image ? "" : " (crash image: close-time "
                                         "checksums not authoritative)");
  for (const auto& finding : report.findings) {
    std::printf("  [%s] %s%s%s%s: %s\n", SeverityName(finding.severity),
                finding.structure.c_str(),
                finding.table.empty() ? "" : " (table '",
                finding.table.c_str(), finding.table.empty() ? "" : "')",
                finding.detail.c_str());
  }
  if (report.blocking()) {
    std::printf("verify: FAILED\n");
    return 2;
  }
  if (!report.clean()) {
    std::printf("verify: OK (advisory findings only)\n");
  } else {
    std::printf("verify: OK\n");
  }
  return 0;
}

int RunBlackbox(const std::string& image_path, bool json, size_t limit) {
  // Open the raw region, not the heap: the recorder must decode even
  // when the region header, allocator, or catalog are trash.
  nvm::PmemRegionOptions options;
  options.file_path = image_path;
  options.tracking = nvm::TrackingMode::kNone;
  auto region_result = nvm::PmemRegion::Open(options);
  if (!region_result.ok()) {
    std::fprintf(stderr, "cannot open image: %s\n",
                 region_result.status().ToString().c_str());
    return 3;
  }
  auto region = std::move(region_result).ValueUnsafe();
  const obs::BlackboxDecodeResult result =
      obs::DecodeBlackbox(region->base(), region->size());
  if (json) {
    std::printf("%s\n", obs::BlackboxTimelineJson(result, limit).c_str());
    return result.present ? 0 : 2;
  }
  // Correlate with the region header when it is still readable: whether
  // the last shutdown was clean tells the reader if the newest events
  // describe a crash or a normal close.
  if (alloc::ValidateRegionHeader(*region).ok()) {
    std::printf("image: %s (last shutdown: %s)\n", image_path.c_str(),
                alloc::WasCleanShutdown(*region) ? "clean" : "crash");
  } else {
    std::printf("image: %s (region header corrupt — recorder decoded "
                "from file geometry alone)\n",
                image_path.c_str());
  }
  std::fputs(obs::RenderBlackboxTimeline(result, limit).c_str(), stdout);
  return result.present ? 0 : 2;
}

int RunTimeline(const std::string& image_path, bool json) {
  nvm::PmemRegionOptions options;
  options.file_path = image_path;
  options.tracking = nvm::TrackingMode::kNone;
  auto region_result = nvm::PmemRegion::Open(options);
  if (!region_result.ok()) {
    std::fprintf(stderr, "cannot open image: %s\n",
                 region_result.status().ToString().c_str());
    return 3;
  }
  auto region = std::move(region_result).ValueUnsafe();
  const obs::BlackboxDecodeResult decoded =
      obs::DecodeBlackbox(region->base(), region->size());
  const std::vector<obs::PhaseSpan> spans =
      obs::PhaseSpansFromBlackbox(decoded);
  if (json) {
    std::printf("%s\n", obs::PhaseSpansJson(spans).c_str());
    return decoded.present ? 0 : 2;
  }
  if (!decoded.present) {
    std::printf("no flight recorder found in %s\n", image_path.c_str());
    return 2;
  }
  std::printf("image: %s\n", image_path.c_str());
  std::fputs(obs::RenderPhaseSpans(spans).c_str(), stdout);
  return 0;
}

void PrintTable(storage::Table& table, bool verbose) {
  std::printf("\ntable '%s' (id %" PRIu64 ")\n", table.name().c_str(),
              table.id());
  std::printf("  columns: %zu  |  main rows: %" PRIu64
              "  |  delta rows: %" PRIu64 "\n",
              table.schema().num_columns(), table.main_row_count(),
              table.delta_row_count());

  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    const auto& def = table.schema().column(c);
    const auto& main_col = table.main().column(c);
    const auto& delta_col = table.delta().column(c);
    std::printf("  col %2zu %-18s %-7s  main dict %8" PRIu64
                " (%2u bits)   delta dict %8" PRIu64 "\n",
                c, def.name.c_str(), storage::DataTypeName(def.type),
                main_col.dictionary().size(), main_col.attr().bits(),
                delta_col.dictionary().size());
  }

  storage::PTableGroup* group = table.group();
  for (uint64_t s = 0; s < storage::kMaxIndexesPerTable; ++s) {
    const storage::PIndexMeta& idx = group->indexes[s];
    if (idx.state != 1) continue;
    std::printf("  index on col %" PRIu64 ": %s", idx.column,
                IndexKindName(idx.kind));
    const auto& main_meta = *group->main_col(idx.column);
    const bool has_gk = main_meta.gk_offsets.size > 0;
    std::printf("  (group-key on main: %s)\n", has_gk ? "yes" : "no");
  }

  // MVCC health: committed / deleted / claimed / never-committed rows.
  uint64_t committed = 0, deleted = 0, claimed = 0, garbage = 0;
  auto classify = [&](const storage::MvccEntry* entry) {
    if (entry->begin == storage::kCidInfinity) {
      ++garbage;  // uncommitted or aborted insert
    } else if (entry->end != storage::kCidInfinity) {
      ++deleted;
    } else {
      ++committed;
    }
    if (entry->tid != storage::kTidNone) ++claimed;
  };
  for (uint64_t r = 0; r < table.main_row_count(); ++r) {
    classify(table.main().mvcc(r));
  }
  for (uint64_t r = 0; r < table.delta_row_count(); ++r) {
    classify(table.delta().mvcc(r));
  }
  std::printf("  mvcc: %" PRIu64 " live, %" PRIu64 " deleted, %" PRIu64
              " in-flight/aborted, %" PRIu64 " claims\n",
              committed, deleted, garbage, claimed);

  if (verbose && table.main_row_count() + table.delta_row_count() > 0) {
    std::printf("  first rows:\n");
    uint64_t shown = 0;
    const storage::Cid snapshot = storage::kCidInfinity - 1;
    table.ForEachVisibleRow(snapshot, storage::kTidNone,
                            [&](storage::RowLocation loc) {
                              if (shown >= 5) return;
                              std::printf("    [%s %" PRIu64 "]",
                                          loc.in_main ? "main" : "delta",
                                          loc.row);
                              for (const auto& value :
                                   table.GetRow(loc)) {
                                if (const auto* i =
                                        std::get_if<int64_t>(&value)) {
                                  std::printf(" %" PRId64, *i);
                                } else if (const auto* d =
                                               std::get_if<double>(
                                                   &value)) {
                                  std::printf(" %g", *d);
                                } else {
                                  std::printf(" '%s'",
                                              std::get<std::string>(value)
                                                  .c_str());
                                }
                              }
                              std::printf("\n");
                              ++shown;
                            });
  }
}

void PrintUsage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--verify[=deep]] <data-dir | nvm-image> "
               "[--verbose]\n"
               "       %s stats [--metrics-json | --prometheus] "
               "<data-dir | nvm-image>\n"
               "       %s blackbox [--json] [--limit=N] "
               "<data-dir | nvm-image>\n"
               "       %s timeline [--json] <data-dir | nvm-image>\n",
               prog, prog, prog, prog);
}

/// JSON string escape for the image block (paths, root names).
std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

enum class StatsFormat { kText, kJson, kPrometheus };

/// Whether walking catalog/table structures of this image is safe. A
/// crash image may hold torn in-flight state (e.g. a dictionary size
/// bumped before its payload landed), which the unguarded attach path
/// would chase into unmapped memory. Deep verify bounds-checks every
/// structure, so a crash image that verifies without blocking findings
/// is safe to walk.
bool StructureWalkIsSafe(alloc::PHeap& heap) {
  if (heap.was_clean_shutdown()) return true;
  return !recovery::DeepVerify(heap.region()).blocking();
}

int RunStats(const std::string& image_path, StatsFormat format) {
  nvm::PmemRegionOptions options;
  options.file_path = image_path;
  options.tracking = nvm::TrackingMode::kNone;
  auto heap_result = alloc::PHeap::OpenForInspection(options);
  if (!heap_result.ok()) {
    std::fprintf(stderr, "cannot open image: %s\n",
                 heap_result.status().ToString().c_str());
    return 3;
  }
  auto heap = std::move(heap_result).ValueUnsafe();

  // Offline process: the registry holds only what this inspection did,
  // plus the image-derived values synced here. The full metric name set
  // (persist/fsync histograms included) is pre-registered, so every
  // export surface is complete even with zero samples.
  auto& registry = obs::MetricsRegistry::Instance();
  const auto& stats = heap->region().stats();
  registry.GetCounter("nvm.persist.count")
      .Store(stats.persist_calls.load(std::memory_order_relaxed));
  registry.GetCounter("nvm.fence.count")
      .Store(stats.fences.load(std::memory_order_relaxed));
  registry.GetCounter("nvm.flush.lines")
      .Store(stats.flush_lines.load(std::memory_order_relaxed));
  registry.GetCounter("nvm.flush.bytes")
      .Store(stats.flushed_bytes.load(std::memory_order_relaxed));
  registry.GetGauge("alloc.heap_used.bytes")
      .Set(static_cast<int64_t>(heap->allocator().HeapUsedBytes()));
  const obs::MetricsSnapshot snapshot = registry.Snapshot();

  const auto* header = alloc::HeaderOf(heap->region());
  size_t num_tables = 0;
  if (StructureWalkIsSafe(*heap)) {
    auto catalog_result = storage::Catalog::Attach(*heap);
    if (catalog_result.ok()) num_tables = (*catalog_result)->num_tables();
  }

  switch (format) {
    case StatsFormat::kJson:
      std::printf(
          "{\"image\":{\"path\":%s,\"size_bytes\":%" PRIu64
          ",\"format_version\":%u,\"clean_shutdown\":%s,"
          "\"heap_used_bytes\":%" PRIu64 ",\"tables\":%zu},"
          "\"metrics\":%s}\n",
          JsonQuote(image_path).c_str(),
          static_cast<uint64_t>(heap->region().size()),
          header->format_version,
          heap->was_clean_shutdown() ? "true" : "false",
          heap->allocator().HeapUsedBytes(), num_tables,
          snapshot.ToJson().c_str());
      break;
    case StatsFormat::kPrometheus:
      std::fputs(snapshot.ToPrometheusText().c_str(), stdout);
      break;
    case StatsFormat::kText:
      std::printf("image: %s\n", image_path.c_str());
      std::printf("  size: %.1f MiB  |  format v%u  |  last shutdown: %s\n",
                  heap->region().size() / (1024.0 * 1024.0),
                  header->format_version,
                  heap->was_clean_shutdown() ? "clean" : "crash");
      std::printf("  heap used: %.1f MiB  |  tables: %zu\n\n",
                  heap->allocator().HeapUsedBytes() / (1024.0 * 1024.0),
                  num_tables);
      std::fputs(snapshot.ToText().c_str(), stdout);
      break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool verbose = false;
  bool verify = false;
  bool deep = false;
  bool stats = false;
  bool blackbox = false;
  bool timeline = false;
  bool blackbox_json = false;
  size_t blackbox_limit = 0;
  StatsFormat stats_format = StatsFormat::kText;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "stats" && !stats && !blackbox && !timeline && path.empty()) {
      stats = true;
    } else if (arg == "blackbox" && !stats && !blackbox && !timeline &&
               path.empty()) {
      blackbox = true;
    } else if (arg == "timeline" && !stats && !blackbox && !timeline &&
               path.empty()) {
      timeline = true;
    } else if (arg == "--json" && (blackbox || timeline)) {
      blackbox_json = true;
    } else if (arg.rfind("--limit=", 0) == 0 && blackbox) {
      blackbox_limit = static_cast<size_t>(
          std::strtoull(arg.c_str() + 8, nullptr, 10));
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--verify=deep") {
      verify = true;
      deep = true;
    } else if (arg == "--metrics-json") {
      stats_format = StatsFormat::kJson;
    } else if (arg == "--prometheus") {
      stats_format = StatsFormat::kPrometheus;
    } else if (!arg.empty() && arg[0] == '-') {
      PrintUsage(argv[0]);
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      PrintUsage(argv[0]);
      return 1;
    }
  }
  if (path.empty() || (!stats && stats_format != StatsFormat::kText)) {
    PrintUsage(argv[0]);
    return 1;
  }
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    path += "/nvm.img";
  }

  if (blackbox) return RunBlackbox(path, blackbox_json, blackbox_limit);
  if (timeline) return RunTimeline(path, blackbox_json);
  if (stats) return RunStats(path, stats_format);
  if (verify) return RunVerify(path, deep);

  nvm::PmemRegionOptions options;
  options.file_path = path;
  options.tracking = nvm::TrackingMode::kNone;
  // OpenForInspection skips the dirty-marking a writer open performs, so
  // inspecting an image never flips its clean-shutdown flag.
  auto heap_result = alloc::PHeap::OpenForInspection(options);
  if (!heap_result.ok()) {
    std::fprintf(stderr, "cannot open image: %s\n",
                 heap_result.status().ToString().c_str());
    return 3;
  }
  auto heap = std::move(heap_result).ValueUnsafe();

  const auto* header = alloc::HeaderOf(heap->region());
  std::printf("region: %s\n", path.c_str());
  std::printf("  size: %.1f MiB  |  format v%u  |  last shutdown: %s\n",
              heap->region().size() / (1024.0 * 1024.0),
              header->format_version,
              heap->was_clean_shutdown() ? "clean" : "crash");
  std::printf("  heap used: %.1f MiB (%.1f%%)\n",
              heap->allocator().HeapUsedBytes() / (1024.0 * 1024.0),
              100.0 * heap->allocator().HeapUsedBytes() /
                  heap->region().size());
  std::printf("  roots:");
  for (const auto& slot : header->roots) {
    if (slot.name[0] != '\0') {
      std::printf(" %s@%" PRIu64, slot.name, slot.offset);
    }
  }
  std::printf("\n");

  auto commit_result = txn::CommitTable::Attach(*heap);
  if (commit_result.ok()) {
    const auto* block = (*commit_result)->block();
    uint64_t in_flight = 0;
    for (const auto& slot : block->slots) {
      if (slot.state == txn::PCommitSlot::kCommitting) ++in_flight;
    }
    std::printf("  txn state: watermark %" PRIu64 ", next tid block %"
                PRIu64 ", next cid block %" PRIu64
                ", in-flight commits %" PRIu64 "\n",
                block->commit_watermark, block->tid_block,
                block->cid_block, in_flight);
  }

  if (!StructureWalkIsSafe(*heap)) {
    std::printf(
        "  crash image failed deep verification; skipping the per-table "
        "walk\n  (run '--verify=deep' for findings, 'blackbox' for the "
        "pre-crash timeline)\n");
    return 2;
  }

  auto catalog_result = storage::Catalog::Attach(*heap);
  if (!catalog_result.ok()) {
    std::fprintf(stderr, "cannot attach catalog: %s\n",
                 catalog_result.status().ToString().c_str());
    return 3;
  }
  std::printf("  tables: %zu\n", (*catalog_result)->num_tables());
  for (const auto& table : (*catalog_result)->tables()) {
    PrintTable(*table, verbose);
  }
  return 0;
}
