// hyrise_nv_server — serve a Hyrise-NV database over the binary wire
// protocol (DESIGN.md §10).
//
//   hyrise_nv_server --data-dir=DIR [options]
//
//   --data-dir=DIR        persistent image / WAL directory (required)
//   --mode=MODE           none | wal-value | wal-dict | nvm   [nvm]
//   --create              format a fresh database instead of opening
//   --host=ADDR           listen address                      [127.0.0.1]
//   --port=N              listen port (0 = ephemeral)         [5543]
//   --workers=N           epoll worker threads                [2]
//   --max-connections=N   connection admission cap            [256]
//   --max-inflight=N      concurrent request cap (503 above)  [256]
//   --idle-timeout-ms=N   close idle sessions (0 = never)     [60000]
//   --region-size=BYTES   NVM region size for --create        [256 MiB]
//   --recovery=POLICY     eager | on-demand (WAL modes)       [eager]
//   --drain-chunk-rows=N  on-demand drain rows per lock hold  [4096]
//   --drain-pause-us=N    on-demand drain pause per chunk     [0]
//   --slow-request-us=N   slow-request capture threshold, 0=off [100000]
//   --timeline            run the phase-annotated timeline recorder
//                         (exported via the stats opcode; nvtop's data)
//   --timeline-interval-ms=N  timeline sample interval          [1000]
//   --timeline-capacity=N     timeline ring size                [600]
//   --quiet               log warnings and errors only
//
// Lifecycle: opens (or creates) the database — printing the recovery
// report, where the NVM mode's instant restart is visible — then serves
// until SIGTERM/SIGINT triggers a graceful drain: open transactions are
// aborted, connections close, and the image is sealed clean. kill -9 is
// survivable by design: the next start recovers through the engine's
// normal restart path.
//
// Readiness: once serving, a line "READY port=<port>" goes to stdout
// (scripts and the e9 bench wait for it). An on-demand WAL open that
// still has a recovery drain in flight prints
// "RECOVERING-SERVING port=<port> pending_rows=<n>" first — the server
// already answers queries (degraded, on-demand restoration) — and the
// READY line follows when the drain completes.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "common/logging.h"
#include "core/database.h"
#include "net/server.h"

using namespace hyrise_nv;  // NOLINT: tool brevity

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true); }

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

bool ParseFlag(const char* arg, const char* name, long long* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  *out = std::atoll(text.c_str());
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: hyrise_nv_server --data-dir=DIR [--mode=nvm] "
               "[--create] [--host=ADDR] [--port=N] [--workers=N] "
               "[--max-connections=N] [--max-inflight=N] "
               "[--idle-timeout-ms=N] [--region-size=BYTES] "
               "[--recovery=eager|on-demand] [--drain-chunk-rows=N] "
               "[--drain-pause-us=N] [--slow-request-us=N] [--timeline] "
               "[--timeline-interval-ms=N] [--timeline-capacity=N] "
               "[--quiet]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  core::DatabaseOptions db_options;
  net::ServerOptions server_options;
  server_options.port = 5543;
  bool create = false;
  std::string mode = "nvm";
  std::string recovery = "eager";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long long n = 0;
    if (ParseFlag(arg, "--data-dir", &db_options.data_dir) ||
        ParseFlag(arg, "--mode", &mode) ||
        ParseFlag(arg, "--recovery", &recovery) ||
        ParseFlag(arg, "--host", &server_options.host)) {
      continue;
    }
    if (ParseFlag(arg, "--port", &n)) {
      server_options.port = static_cast<uint16_t>(n);
    } else if (ParseFlag(arg, "--workers", &n)) {
      server_options.num_workers = static_cast<int>(n);
    } else if (ParseFlag(arg, "--max-connections", &n)) {
      server_options.max_connections = static_cast<int>(n);
    } else if (ParseFlag(arg, "--max-inflight", &n)) {
      server_options.max_inflight = static_cast<int>(n);
    } else if (ParseFlag(arg, "--idle-timeout-ms", &n)) {
      server_options.idle_timeout_ms = static_cast<int>(n);
    } else if (ParseFlag(arg, "--region-size", &n)) {
      db_options.region_size = static_cast<uint64_t>(n);
    } else if (ParseFlag(arg, "--drain-chunk-rows", &n)) {
      db_options.drain_chunk_rows = static_cast<uint64_t>(n);
    } else if (ParseFlag(arg, "--drain-pause-us", &n)) {
      db_options.drain_pause_us = static_cast<uint64_t>(n);
    } else if (ParseFlag(arg, "--slow-request-us", &n)) {
      server_options.slow_request_us = static_cast<uint64_t>(n);
    } else if (ParseFlag(arg, "--timeline-interval-ms", &n)) {
      db_options.timeline_interval_ms = static_cast<uint64_t>(n);
    } else if (ParseFlag(arg, "--timeline-capacity", &n)) {
      db_options.timeline_capacity = static_cast<size_t>(n);
    } else if (std::strcmp(arg, "--timeline") == 0) {
      db_options.enable_timeline = true;
    } else if (std::strcmp(arg, "--create") == 0) {
      create = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      SetLogLevel(LogLevel::kWarn);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage();
    }
  }
  if (db_options.data_dir.empty()) return Usage();
  if (create) {
    std::error_code ec;
    std::filesystem::create_directories(db_options.data_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create data dir %s: %s\n",
                   db_options.data_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }

  if (mode == "none") {
    db_options.mode = core::DurabilityMode::kNone;
  } else if (mode == "wal-value") {
    db_options.mode = core::DurabilityMode::kWalValue;
  } else if (mode == "wal-dict") {
    db_options.mode = core::DurabilityMode::kWalDict;
  } else if (mode == "nvm") {
    db_options.mode = core::DurabilityMode::kNvm;
  } else {
    std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
    return Usage();
  }

  if (recovery == "eager") {
    db_options.log_recovery = core::LogRecoveryPolicy::kEagerReplay;
  } else if (recovery == "on-demand") {
    db_options.log_recovery = core::LogRecoveryPolicy::kServeOnDemand;
  } else {
    std::fprintf(stderr, "unknown recovery policy: %s\n", recovery.c_str());
    return Usage();
  }

  const auto open_start = std::chrono::steady_clock::now();
  auto db_result = create ? core::Database::Create(db_options)
                          : core::Database::Open(db_options);
  if (!db_result.ok()) {
    std::fprintf(stderr, "cannot %s database: %s\n",
                 create ? "create" : "open",
                 db_result.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<core::Database> db = std::move(*db_result);
  const double open_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    open_start)
          .count();
  if (!create) {
    std::printf("RECOVERY %s\n", db->last_recovery_report().ToJson().c_str());
  }
  std::printf("opened %s database at %s in %.3fs\n",
              core::DurabilityModeName(db_options.mode),
              db_options.data_dir.c_str(), open_seconds);

  auto server_result = net::Server::Start(db.get(), server_options);
  if (!server_result.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 server_result.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<net::Server> server = std::move(*server_result);

  struct sigaction action {};
  action.sa_handler = HandleStopSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  bool announced_ready = false;
  if (db->serving_state() == core::ServingState::kServingDegraded) {
    const auto progress = db->recovery_progress();
    std::printf("RECOVERING-SERVING port=%u pending_rows=%llu\n",
                server->port(),
                static_cast<unsigned long long>(progress.total_rows -
                                                progress.restored_rows));
  } else {
    std::printf("READY port=%u\n", server->port());
    announced_ready = true;
  }
  std::fflush(stdout);

  while (!g_stop.load() && !server->draining()) {
    if (!announced_ready &&
        db->serving_state() == core::ServingState::kReady) {
      // The recovery drain finished while serving: promote to READY so
      // scripts waiting on the line see the flip.
      std::printf("READY port=%u\n", server->port());
      std::fflush(stdout);
      announced_ready = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("draining...\n");
  std::fflush(stdout);
  server->Drain();
  server->Wait();
  const net::ServerCounters counters = server->counters();
  server.reset();

  Status close_status = db->Close();
  if (!close_status.ok()) {
    std::fprintf(stderr, "close failed: %s\n",
                 close_status.ToString().c_str());
    return 2;
  }
  std::printf(
      "clean shutdown: served %llu requests over %llu connections "
      "(%llu overload rejections, %llu protocol errors)\n",
      static_cast<unsigned long long>(counters.requests),
      static_cast<unsigned long long>(counters.accepted),
      static_cast<unsigned long long>(counters.overload_rejected),
      static_cast<unsigned long long>(counters.protocol_errors));
  return 0;
}
