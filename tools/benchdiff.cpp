// benchdiff — capture and regression-diff BENCH_JSON streams.
//
// Every bench binary in bench/ prints one `BENCH_JSON {...}` line per
// measured configuration. This tool turns those streams into structured
// capture files and compares two captures with direction-aware noise
// thresholds (throughput regresses when it drops, latency when it
// rises). The CI bench-regression job runs a quick bench subset through
// `capture` and diffs it against the committed baseline in
// bench/baselines/.
//
//   benchdiff capture [-o FILE] [--meta k=v]... [FILE | -]
//       Reads bench output (file or stdin), extracts BENCH_JSON records,
//       writes a capture file (stdout by default).
//   benchdiff diff [--threshold PCT] [--metric-threshold NAME=PCT]...
//                  [--show-noise] BASE CURRENT
//       Diffs two captures (either form: capture file or raw output).
//
// Exit codes: 0 = no regression, 1 = regression / missing metric,
// 2 = usage or input error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_compare.h"

using namespace hyrise_nv;  // NOLINT: tool brevity

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: benchdiff capture [-o FILE] [--meta k=v]... [FILE | -]\n"
      "       benchdiff diff [--threshold PCT] "
      "[--metric-threshold NAME=PCT]...\n"
      "                      [--show-noise] BASE CURRENT\n"
      "\n"
      "capture reads bench output (BENCH_JSON lines) and writes a\n"
      "structured capture file; diff compares two captures (capture\n"
      "files or raw bench output) and exits 1 on regression.\n"
      "Metric thresholds accept bare names (commits_per_sec=20) or\n"
      "bench-scoped names (e3/commits_per_sec=20).\n");
  return 2;
}

bool ReadInput(const std::string& path, std::string* out) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int RunCapture(int argc, char** argv) {
  std::string input_path = "-";
  std::string output_path;
  std::vector<std::pair<std::string, std::string>> meta;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (arg == "--meta" && i + 1 < argc) {
      const std::string kv = argv[++i];
      size_t eq = kv.find('=');
      if (eq == std::string::npos) return Usage();
      meta.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Usage();
    } else {
      input_path = arg;
    }
  }

  std::string text;
  if (!ReadInput(input_path, &text)) return 2;
  auto records = obs::ParseBenchInput(text);
  if (!records.ok()) {
    std::fprintf(stderr, "benchdiff: %s\n",
                 records.status().ToString().c_str());
    return 2;
  }
  const std::string serialized = obs::SerializeBenchRun(*records, meta);
  if (output_path.empty()) {
    std::printf("%s\n", serialized.c_str());
  } else {
    std::ofstream out(output_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "benchdiff: cannot write %s\n",
                   output_path.c_str());
      return 2;
    }
    out << serialized << "\n";
  }
  std::fprintf(stderr, "benchdiff: captured %zu record(s)\n",
               records->size());
  return 0;
}

int RunDiff(int argc, char** argv) {
  obs::CompareOptions options;
  bool show_noise = false;
  std::vector<std::string> paths;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      options.default_threshold_pct = std::strtod(argv[++i], nullptr);
    } else if (arg == "--metric-threshold" && i + 1 < argc) {
      const std::string kv = argv[++i];
      size_t eq = kv.rfind('=');
      if (eq == std::string::npos) return Usage();
      options.metric_thresholds[kv.substr(0, eq)] =
          std::strtod(kv.c_str() + eq + 1, nullptr);
    } else if (arg == "--show-noise") {
      show_noise = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return Usage();

  std::string base_text;
  std::string current_text;
  if (!ReadInput(paths[0], &base_text) ||
      !ReadInput(paths[1], &current_text)) {
    return 2;
  }
  auto base = obs::ParseBenchInput(base_text);
  if (!base.ok()) {
    std::fprintf(stderr, "benchdiff: base: %s\n",
                 base.status().ToString().c_str());
    return 2;
  }
  auto current = obs::ParseBenchInput(current_text);
  if (!current.ok()) {
    std::fprintf(stderr, "benchdiff: current: %s\n",
                 current.status().ToString().c_str());
    return 2;
  }

  const obs::DiffReport report =
      obs::CompareBenchRuns(*base, *current, options);
  std::fputs(obs::RenderDiff(report, show_noise).c_str(), stdout);
  return report.failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "capture") return RunCapture(argc - 2, argv + 2);
  if (command == "diff") return RunDiff(argc - 2, argv + 2);
  return Usage();
}
