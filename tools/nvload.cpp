// nvload — open-loop, coordinated-omission-safe load generator for the
// Hyrise-NV wire protocol (DESIGN.md §14, EXPERIMENTS.md E11).
//
//   nvload --port=N [options]
//
//   --host=ADDR          server address                      [127.0.0.1]
//   --port=N             server port (required)
//   --connections=N      concurrent TCP connections          [64]
//   --rate=N             offered load, ops/second            [1000]
//   --duration-s=N       measurement window seconds          [5]
//   --warmup-s=N         warmup seconds (discarded)          [1]
//   --read-pct=F         fraction of ops that are point reads [0.8]
//   --keys=N             zipfian key space size              [10000]
//   --theta=F            zipfian skew (0.99 = YCSB default)  [0.99]
//   --value-bytes=N      insert payload size                 [16]
//   --scan-limit=N       read row cap                        [4]
//   --seed=N             rng seed                            [42]
//   --table=NAME         target table                        [kv]
//   --pipeline=DEPTH     requests in flight per connection   [1]
//   --protocol=V         max wire version to offer (1 or 2)  [2]
//   --create-schema      create table+index and preload keys first
//   --ramp=R1,R2,...     run once per rate in the list (same conns)
//   --timeline           print per-second latency timeline lines
//
// --pipeline DEPTH > 1 needs wire v2 (tagged frames): each connection
// keeps up to DEPTH requests outstanding, writes become one-frame
// kDmlBatch autocommit ops, and one socket amortises syscalls and group
// commits across the window. --protocol=1 forces legacy framing
// (v1-compat runs against a v2 server).
//
// The schedule is open-loop: operation i is *due* at start + i/rate no
// matter how the server behaves, and latency is measured from that
// intended time. A server stall therefore charges every operation queued
// behind it the full wait — the coordinated-omission trap of closed-loop
// "send, wait, send" harnesses is structurally avoided.
//
// Output: one BENCH_JSON line per run with offered/completed ops,
// throughput, and p50/p99/p999/max/mean latency (microseconds).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/loadgen.h"
#include "net/net_util.h"
#include "storage/types.h"

using namespace hyrise_nv;  // NOLINT: tool brevity

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

bool ParseFlag(const char* arg, const char* name, long long* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  *out = std::atoll(text.c_str());
  return true;
}

bool ParseFlag(const char* arg, const char* name, double* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  *out = std::atof(text.c_str());
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: nvload --port=N [--host=ADDR] [--connections=N] [--rate=N] "
      "[--duration-s=N] [--warmup-s=N] [--read-pct=F] [--keys=N] "
      "[--theta=F] [--value-bytes=N] [--scan-limit=N] [--seed=N] "
      "[--table=NAME] [--pipeline=DEPTH] [--protocol=V] [--create-schema] "
      "[--ramp=R1,R2,...] [--timeline]\n");
  return 1;
}

void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "nvload: %s: %s\n", what, status.ToString().c_str());
  std::exit(2);
}

/// Creates the kv table (k int64, v string), indexes column 0, and
/// preloads one row per key in batched transactions so reads hit data.
void CreateSchema(const net::LoadgenOptions& options) {
  net::ClientOptions client_options;
  client_options.host = options.host;
  client_options.port = options.port;
  net::Client client(client_options);
  Status status = client.Connect();
  if (!status.ok()) Die("connect for --create-schema", status);

  auto create = client.CreateTable(
      options.table, {{"k", storage::DataType::kInt64},
                      {"v", storage::DataType::kString}});
  if (!create.ok()) Die("create table", create.status());
  status = client.CreateIndex(options.table, 0);
  if (!status.ok()) Die("create index", status);

  const std::string value(options.value_bytes, 'x');
  constexpr uint64_t kBatch = 256;
  for (uint64_t key = 0; key < options.keys;) {
    auto begin = client.Begin();
    if (!begin.ok()) Die("preload begin", begin.status());
    for (uint64_t i = 0; i < kBatch && key < options.keys; ++i, ++key) {
      auto insert = client.Insert(
          options.table,
          {storage::Value(static_cast<int64_t>(key)), storage::Value(value)});
      if (!insert.ok()) Die("preload insert", insert.status());
    }
    auto commit = client.Commit();
    if (!commit.ok()) Die("preload commit", commit.status());
  }
  std::fprintf(stderr, "nvload: preloaded %" PRIu64 " rows into %s\n",
               options.keys, options.table.c_str());
}

void PrintReport(const net::LoadgenOptions& options,
                 const net::LoadgenReport& report, int phase,
                 bool timeline) {
  std::printf(
      "BENCH_JSON {\"bench\":\"nvload\",\"phase\":%d,"
      "\"connections\":%d,\"depth\":%d,\"protocol\":%u,"
      "\"rate_rps\":%.0f,\"duration_s\":%.1f,"
      "\"read_pct\":%.2f,\"ops_offered\":%" PRIu64
      ",\"ops_completed\":%" PRIu64 ",\"tput_rps\":%.1f,"
      "\"capacity_rps\":%.1f,"
      "\"p50_us\":%.1f,\"p99_us\":%.1f,\"p999_us\":%.1f,"
      "\"max_us\":%.1f,\"mean_us\":%.1f,\"errors\":%" PRIu64
      ",\"shed\":%" PRIu64 ",\"protocol_errors\":%" PRIu64
      ",\"abandoned\":%" PRIu64 ",\"backlog_peak\":%" PRIu64 "}\n",
      phase, options.connections, options.pipeline_depth,
      static_cast<unsigned>(options.protocol_max), options.rate_rps,
      options.duration_s, options.read_pct, report.ops_offered,
      report.ops_completed, report.tput_rps, report.capacity_rps,
      report.p50_us, report.p99_us,
      report.p999_us, report.max_us, report.mean_us, report.errors,
      report.shed, report.protocol_errors, report.abandoned,
      report.backlog_peak);
  if (timeline) {
    for (size_t second = 0; second < report.timeline.size(); ++second) {
      const net::LoadgenTimelineBucket& bucket = report.timeline[second];
      if (bucket.completed == 0 && bucket.errors == 0) continue;
      std::printf(
          "BENCH_JSON {\"bench\":\"nvload_timeline\",\"phase\":%d,"
          "\"second\":%zu,\"completed\":%" PRIu64 ",\"mean_us\":%.1f,"
          "\"max_us\":%.1f}\n",
          phase, second, bucket.completed,
          bucket.completed ? bucket.sum_us / bucket.completed : 0.0,
          bucket.max_us);
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  net::LoadgenOptions options;
  bool create_schema = false;
  std::string ramp;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long long n = 0;
    double f = 0;
    if (ParseFlag(arg, "--host", &options.host) ||
        ParseFlag(arg, "--table", &options.table) ||
        ParseFlag(arg, "--ramp", &ramp)) {
      continue;
    }
    if (ParseFlag(arg, "--port", &n)) {
      options.port = static_cast<uint16_t>(n);
    } else if (ParseFlag(arg, "--connections", &n)) {
      options.connections = static_cast<int>(n);
    } else if (ParseFlag(arg, "--rate", &f)) {
      options.rate_rps = f;
    } else if (ParseFlag(arg, "--duration-s", &f)) {
      options.duration_s = f;
    } else if (ParseFlag(arg, "--warmup-s", &f)) {
      options.warmup_s = f;
    } else if (ParseFlag(arg, "--read-pct", &f)) {
      options.read_pct = f;
    } else if (ParseFlag(arg, "--keys", &n)) {
      options.keys = static_cast<uint64_t>(n);
    } else if (ParseFlag(arg, "--theta", &f)) {
      options.zipf_theta = f;
    } else if (ParseFlag(arg, "--value-bytes", &n)) {
      options.value_bytes = static_cast<uint32_t>(n);
    } else if (ParseFlag(arg, "--scan-limit", &n)) {
      options.scan_limit = static_cast<uint32_t>(n);
    } else if (ParseFlag(arg, "--seed", &n)) {
      options.seed = static_cast<uint64_t>(n);
    } else if (ParseFlag(arg, "--pipeline", &n)) {
      options.pipeline_depth = static_cast<int>(n);
    } else if (ParseFlag(arg, "--protocol", &n)) {
      options.protocol_max = static_cast<uint16_t>(n);
    } else if (std::strcmp(arg, "--create-schema") == 0) {
      create_schema = true;
    } else if (std::strcmp(arg, "--timeline") == 0) {
      options.timeline = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage();
    }
  }
  if (options.port == 0) return Usage();

  // Each connection is one fd; leave generous headroom for epoll,
  // stdio, and the schema client.
  const uint64_t want_fds = static_cast<uint64_t>(options.connections) + 64;
  const uint64_t got_fds = net::RaiseFdLimit(want_fds);
  if (got_fds < want_fds) {
    std::fprintf(stderr,
                 "nvload: fd limit %" PRIu64 " below the %" PRIu64
                 " needed for %d connections\n",
                 got_fds, want_fds, options.connections);
    return 2;
  }

  if (create_schema) CreateSchema(options);

  std::vector<double> rates;
  if (ramp.empty()) {
    rates.push_back(options.rate_rps);
  } else {
    size_t pos = 0;
    while (pos < ramp.size()) {
      size_t comma = ramp.find(',', pos);
      if (comma == std::string::npos) comma = ramp.size();
      rates.push_back(std::atof(ramp.substr(pos, comma - pos).c_str()));
      pos = comma + 1;
    }
  }

  for (size_t phase = 0; phase < rates.size(); ++phase) {
    net::LoadgenOptions run = options;
    run.rate_rps = rates[phase];
    auto report = net::RunOpenLoopLoad(run);
    if (!report.ok()) Die("load run", report.status());
    PrintReport(run, *report, static_cast<int>(phase), run.timeline);
  }
  return 0;
}
