#include "alloc/pvector.h"

#include <gtest/gtest.h>

#include "alloc/pheap.h"
#include "common/random.h"

namespace hyrise_nv::alloc {
namespace {

class PVectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::PmemRegionOptions opts;
    opts.tracking = nvm::TrackingMode::kShadow;
    auto result = PHeap::Create(4 << 20, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    heap_ = std::move(result).ValueUnsafe();
    // Allocate the descriptor itself on NVM, as real structures do.
    auto desc_off = heap_->allocator().Alloc(sizeof(PVectorDesc));
    ASSERT_TRUE(desc_off.ok());
    desc_ = heap_->Resolve<PVectorDesc>(*desc_off);
    PVector<uint64_t>::Format(heap_->region(), desc_);
    vec_ = PVector<uint64_t>(&heap_->region(), &heap_->allocator(), desc_);
  }

  std::unique_ptr<PHeap> heap_;
  PVectorDesc* desc_ = nullptr;
  PVector<uint64_t> vec_;
};

TEST_F(PVectorTest, StartsEmpty) {
  EXPECT_EQ(vec_.size(), 0u);
  EXPECT_TRUE(vec_.empty());
  EXPECT_TRUE(vec_.Validate().ok());
}

TEST_F(PVectorTest, AppendAndGet) {
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(vec_.Append(i * 3).ok());
  }
  EXPECT_EQ(vec_.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(vec_.Get(i), i * 3);
  }
}

TEST_F(PVectorTest, GrowthPreservesContents) {
  // Force several buffer growths.
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(vec_.Append(i).ok());
  }
  EXPECT_GE(vec_.capacity(), 10000u);
  for (uint64_t i = 0; i < 10000; i += 113) {
    EXPECT_EQ(vec_.Get(i), i);
  }
}

TEST_F(PVectorTest, SetOverwrites) {
  ASSERT_TRUE(vec_.Append(1).ok());
  ASSERT_TRUE(vec_.Append(2).ok());
  vec_.Set(0, 99);
  EXPECT_EQ(vec_.Get(0), 99u);
  EXPECT_EQ(vec_.Get(1), 2u);
}

TEST_F(PVectorTest, BulkAppend) {
  std::vector<uint64_t> values(5000);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i * 7;
  ASSERT_TRUE(vec_.BulkAppend(values.data(), values.size()).ok());
  EXPECT_EQ(vec_.size(), values.size());
  for (size_t i = 0; i < values.size(); i += 499) {
    EXPECT_EQ(vec_.Get(i), i * 7);
  }
}

TEST_F(PVectorTest, AppendFill) {
  ASSERT_TRUE(vec_.AppendFill(42, 1000).ok());
  EXPECT_EQ(vec_.size(), 1000u);
  EXPECT_EQ(vec_.Get(0), 42u);
  EXPECT_EQ(vec_.Get(999), 42u);
}

TEST_F(PVectorTest, AppendsSurviveCrash) {
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(vec_.Append(i).ok());
  }
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());
  ASSERT_TRUE(vec_.Validate().ok());
  ASSERT_EQ(vec_.size(), 500u);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(vec_.Get(i), i);
  }
}

TEST_F(PVectorTest, UnpersistedSetLostOnCrash) {
  ASSERT_TRUE(vec_.AppendFill(7, 10).ok());
  vec_.SetUnpersisted(3, 1234);
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());
  EXPECT_EQ(vec_.Get(3), 7u) << "unpersisted overwrite must be lost";
}

TEST_F(PVectorTest, PersistRangeMakesBatchedSetsDurable) {
  ASSERT_TRUE(vec_.AppendFill(0, 100).ok());
  for (uint64_t i = 20; i < 40; ++i) vec_.SetUnpersisted(i, i + 1);
  vec_.PersistRange(20, 40);
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());
  for (uint64_t i = 20; i < 40; ++i) EXPECT_EQ(vec_.Get(i), i + 1);
}

TEST_F(PVectorTest, CrashDuringGrowthKeepsOldOrNewStateConsistent) {
  // Fill close to a growth boundary, crash, and verify contents intact.
  for (uint64_t round = 0; round < 8; ++round) {
    const uint64_t before = vec_.size();
    for (uint64_t i = 0; i < 16 + round * 16; ++i) {
      ASSERT_TRUE(vec_.Append(round * 1000 + i).ok());
    }
    ASSERT_TRUE(heap_->region().SimulateCrash().ok());
    PAllocator fresh(heap_->region());
    ASSERT_TRUE(fresh.Recover().ok());
    ASSERT_TRUE(vec_.Validate().ok());
    ASSERT_EQ(vec_.size(), before + 16 + round * 16);
  }
}

TEST_F(PVectorTest, TruncateToRollsBack) {
  ASSERT_TRUE(vec_.AppendFill(5, 100).ok());
  vec_.TruncateTo(60);
  EXPECT_EQ(vec_.size(), 60u);
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());
  EXPECT_EQ(vec_.size(), 60u) << "truncation must be durable";
}

TEST_F(PVectorTest, ReservePreallocates) {
  ASSERT_TRUE(vec_.Reserve(4096).ok());
  const uint64_t cap = vec_.capacity();
  EXPECT_GE(cap, 4096u);
  for (uint64_t i = 0; i < 4096; ++i) {
    ASSERT_TRUE(vec_.Append(i).ok());
  }
  EXPECT_EQ(vec_.capacity(), cap) << "no growth after reserve";
}

TEST_F(PVectorTest, ValidateDetectsCorruptSize) {
  ASSERT_TRUE(vec_.AppendFill(1, 10).ok());
  desc_->size = desc_->slots[desc_->version & 1].capacity + 1;
  EXPECT_TRUE(vec_.Validate().IsCorruption());
}

TEST_F(PVectorTest, ValidateDetectsOutOfRangeBuffer) {
  ASSERT_TRUE(vec_.AppendFill(1, 10).ok());
  desc_->slots[desc_->version & 1].data = heap_->region().size() * 2;
  EXPECT_TRUE(vec_.Validate().IsCorruption());
}

}  // namespace
}  // namespace hyrise_nv::alloc
