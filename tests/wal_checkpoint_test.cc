#include "wal/checkpoint.h"

#include <gtest/gtest.h>

#include "nvm/nvm_env.h"
#include "storage/merge.h"

namespace hyrise_nv::wal {
namespace {

using storage::DataType;
using storage::Value;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = nvm::TempPath("checkpoint_test");
    nvm::PmemRegionOptions opts;
    opts.tracking = nvm::TrackingMode::kNone;
    source_heap_ = MakeHeap();
    auto catalog = storage::Catalog::Format(*source_heap_);
    ASSERT_TRUE(catalog.ok());
    source_catalog_ = std::move(catalog).ValueUnsafe();
    auto commit = txn::CommitTable::Format(*source_heap_);
    ASSERT_TRUE(commit.ok());
    source_commit_ = std::move(commit).ValueUnsafe();
  }

  void TearDown() override { nvm::RemoveFileIfExists(path_); }

  std::unique_ptr<alloc::PHeap> MakeHeap() {
    nvm::PmemRegionOptions opts;
    opts.tracking = nvm::TrackingMode::kNone;
    auto result = alloc::PHeap::Create(32 << 20, opts);
    EXPECT_TRUE(result.ok());
    return std::move(result).ValueUnsafe();
  }

  storage::Table* MakeTable(const char* name) {
    auto schema = *storage::Schema::Make(
        {{"k", DataType::kInt64}, {"v", DataType::kString}});
    auto table = source_catalog_->CreateTable(name, schema);
    EXPECT_TRUE(table.ok());
    return *table;
  }

  void InsertCommitted(storage::Table* table, int64_t k,
                       const std::string& v, storage::Cid cid) {
    auto loc = table->AppendRow({Value(k), Value(v)}, 9);
    ASSERT_TRUE(loc.ok());
    auto* entry = table->mvcc(*loc);
    entry->begin = cid;
    entry->tid = storage::kTidNone;
    source_heap_->region().Persist(entry, sizeof(*entry));
  }

  std::string path_;
  std::unique_ptr<alloc::PHeap> source_heap_;
  std::unique_ptr<storage::Catalog> source_catalog_;
  std::unique_ptr<txn::CommitTable> source_commit_;
};

TEST_F(CheckpointTest, MissingFileIsNotFound) {
  auto heap = MakeHeap();
  auto catalog = std::move(storage::Catalog::Format(*heap)).ValueUnsafe();
  auto commit = std::move(txn::CommitTable::Format(*heap)).ValueUnsafe();
  auto info = LoadCheckpoint(path_, BlockDeviceOptions{}, *heap, *catalog,
                             *commit);
  EXPECT_TRUE(info.status().IsNotFound());
}

TEST_F(CheckpointTest, RoundTripTwoTables) {
  storage::Table* t1 = MakeTable("alpha");
  storage::Table* t2 = MakeTable("beta");
  for (int i = 0; i < 50; ++i) {
    InsertCommitted(t1, i, "a" + std::to_string(i), 5);
  }
  // Merge t1 so it has a main partition; keep t2 delta-only.
  ASSERT_TRUE(storage::MergeTable(*t1, 100).ok());
  for (int i = 0; i < 20; ++i) {
    InsertCommitted(t2, i * 10, "b", 6);
  }
  source_commit_->AdvanceWatermark(42);

  ASSERT_TRUE(WriteCheckpoint(path_, BlockDeviceOptions{},
                              *source_catalog_, *source_commit_,
                              /*log_offset=*/777)
                  .ok());

  auto heap = MakeHeap();
  auto catalog = std::move(storage::Catalog::Format(*heap)).ValueUnsafe();
  auto commit = std::move(txn::CommitTable::Format(*heap)).ValueUnsafe();
  auto info = LoadCheckpoint(path_, BlockDeviceOptions{}, *heap, *catalog,
                             *commit);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->log_offset, 777u);
  EXPECT_EQ(info->watermark, 42u);
  EXPECT_EQ(commit->watermark(), 42u);

  auto r1 = catalog->GetTable("alpha");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)->main_row_count(), 50u);
  EXPECT_EQ((*r1)->CountVisible(100, storage::kTidNone), 50u);
  EXPECT_EQ(std::get<std::string>(
                (*r1)->GetValue({true, 0}, 1)).substr(0, 1),
            "a");
  auto r2 = catalog->GetTable("beta");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->delta_row_count(), 20u);
  EXPECT_EQ((*r2)->CountVisible(100, storage::kTidNone), 20u);
  // Ids preserved.
  EXPECT_EQ((*r1)->id(), t1->id());
  EXPECT_EQ((*r2)->id(), t2->id());
}

TEST_F(CheckpointTest, CorruptFileDetected) {
  storage::Table* t1 = MakeTable("alpha");
  InsertCommitted(t1, 1, "x", 5);
  ASSERT_TRUE(WriteCheckpoint(path_, BlockDeviceOptions{},
                              *source_catalog_, *source_commit_, 0)
                  .ok());
  // Flip a byte in the middle of the file.
  {
    auto device = std::move(BlockDevice::Open(path_, BlockDeviceOptions{}))
                      .ValueUnsafe();
    char byte;
    ASSERT_TRUE(device->Read(device->size() / 2, &byte, 1).ok());
  }
  FILE* f = fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  fseek(f, 40, SEEK_SET);
  fputc(0xA5, f);
  fclose(f);

  auto heap = MakeHeap();
  auto catalog = std::move(storage::Catalog::Format(*heap)).ValueUnsafe();
  auto commit = std::move(txn::CommitTable::Format(*heap)).ValueUnsafe();
  auto info = LoadCheckpoint(path_, BlockDeviceOptions{}, *heap, *catalog,
                             *commit);
  EXPECT_TRUE(info.status().IsCorruption());
}

TEST_F(CheckpointTest, RewriteReplacesAtomically) {
  storage::Table* t1 = MakeTable("alpha");
  InsertCommitted(t1, 1, "x", 5);
  ASSERT_TRUE(WriteCheckpoint(path_, BlockDeviceOptions{},
                              *source_catalog_, *source_commit_, 10)
                  .ok());
  InsertCommitted(t1, 2, "y", 6);
  ASSERT_TRUE(WriteCheckpoint(path_, BlockDeviceOptions{},
                              *source_catalog_, *source_commit_, 20)
                  .ok());

  auto heap = MakeHeap();
  auto catalog = std::move(storage::Catalog::Format(*heap)).ValueUnsafe();
  auto commit = std::move(txn::CommitTable::Format(*heap)).ValueUnsafe();
  auto info = LoadCheckpoint(path_, BlockDeviceOptions{}, *heap, *catalog,
                             *commit);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->log_offset, 20u);
  EXPECT_EQ((*catalog->GetTable("alpha"))->delta_row_count(), 2u);
}

}  // namespace
}  // namespace hyrise_nv::wal
