#include "storage/schema.h"

#include <gtest/gtest.h>

namespace hyrise_nv::storage {
namespace {

Schema TestSchema() {
  auto result = Schema::Make({{"id", DataType::kInt64},
                              {"price", DataType::kDouble},
                              {"name", DataType::kString}});
  EXPECT_TRUE(result.ok());
  return *result;
}

TEST(SchemaTest, MakeValid) {
  const Schema schema = TestSchema();
  EXPECT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.column(0).name, "id");
  EXPECT_EQ(schema.column(2).type, DataType::kString);
}

TEST(SchemaTest, RejectsEmpty) {
  EXPECT_FALSE(Schema::Make({}).ok());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  auto result = Schema::Make(
      {{"a", DataType::kInt64}, {"a", DataType::kDouble}});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(Schema::Make({{"", DataType::kInt64}}).ok());
}

TEST(SchemaTest, RejectsBadType) {
  EXPECT_FALSE(Schema::Make({{"x", static_cast<DataType>(99)}}).ok());
}

TEST(SchemaTest, ColumnIndexLookup) {
  const Schema schema = TestSchema();
  auto idx = schema.ColumnIndex("price");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_TRUE(schema.ColumnIndex("missing").status().IsNotFound());
}

TEST(SchemaTest, CheckRowValidatesArityAndTypes) {
  const Schema schema = TestSchema();
  EXPECT_TRUE(schema
                  .CheckRow({Value(int64_t{1}), Value(2.5),
                             Value(std::string("x"))})
                  .ok());
  EXPECT_FALSE(schema.CheckRow({Value(int64_t{1})}).ok());
  EXPECT_FALSE(schema
                   .CheckRow({Value(2.5), Value(int64_t{1}),
                              Value(std::string("x"))})
                   .ok());
}

TEST(SchemaTest, SerializeRoundTrip) {
  const Schema schema = TestSchema();
  const auto bytes = schema.Serialize();
  auto back = Schema::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, schema);
}

TEST(SchemaTest, DeserializeTruncatedFails) {
  const auto bytes = TestSchema().Serialize();
  for (size_t cut : {size_t{0}, size_t{2}, bytes.size() - 1}) {
    auto result = Schema::Deserialize(bytes.data(), cut);
    EXPECT_FALSE(result.ok()) << "cut=" << cut;
  }
}

TEST(SchemaTest, ValueMatchesType) {
  EXPECT_TRUE(ValueMatchesType(Value(int64_t{5}), DataType::kInt64));
  EXPECT_TRUE(ValueMatchesType(Value(5.0), DataType::kDouble));
  EXPECT_TRUE(
      ValueMatchesType(Value(std::string("s")), DataType::kString));
  EXPECT_FALSE(ValueMatchesType(Value(int64_t{5}), DataType::kDouble));
  EXPECT_FALSE(ValueMatchesType(Value(5.0), DataType::kString));
}

TEST(SchemaTest, DataTypeNames) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "int64");
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "double");
  EXPECT_STREQ(DataTypeName(DataType::kString), "string");
}

}  // namespace
}  // namespace hyrise_nv::storage
