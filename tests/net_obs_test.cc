// End-to-end request observability (DESIGN.md §14): per-opcode stage
// histograms that tile the request, slow-request capture blaming the
// dominant stage (verified against an injected WAL sync stall), the
// client round-trip probe, and the wire→txn→WAL sampled trace stitch.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/fault_injection.h"
#include "core/database.h"
#include "net/client.h"
#include "net/server.h"
#include "nvm/nvm_env.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"
#include "obs/request_stats.h"

namespace hyrise_nv::net {
namespace {

using storage::DataType;
using storage::Value;

TEST(StageBreakdownTest, DominantPicksLargestEarliestOnTie) {
  obs::StageBreakdown stages;
  stages[obs::RequestStage::kParse] = 10;
  stages[obs::RequestStage::kExecute] = 500;
  stages[obs::RequestStage::kWalSync] = 500;
  EXPECT_EQ(stages.Dominant(), obs::RequestStage::kExecute);
  stages[obs::RequestStage::kWalSync] = 501;
  EXPECT_EQ(stages.Dominant(), obs::RequestStage::kWalSync);
  EXPECT_EQ(stages.Sum(), 10u + 500u + 501u);
}

TEST(StageBreakdownTest, StageNamesAreStable) {
  EXPECT_STREQ(obs::RequestStageName(obs::RequestStage::kParse), "parse");
  EXPECT_STREQ(obs::RequestStageName(obs::RequestStage::kWalSync),
               "wal_sync");
  EXPECT_STREQ(obs::RequestStageName(obs::RequestStage::kWriteFlush),
               "write_flush");
  EXPECT_STREQ(obs::RequestStageName(obs::kNumRequestStages), "unknown");
}

class NetObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = nvm::TempPath("net_obs_test");
    std::filesystem::create_directories(dir_);
  }

  void StartDb(core::DurabilityMode mode, ServerOptions server_options = {},
               uint64_t txn_sample_every = 0) {
    core::DatabaseOptions options;
    options.mode = mode;
    options.region_size = 64 << 20;
    options.data_dir = dir_;
    options.tracking = nvm::TrackingMode::kNone;
    options.txn_sample_every = txn_sample_every;
    auto db_result = core::Database::Create(options);
    ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
    db_ = std::move(*db_result);
    server_options.num_workers = 2;
    auto server_result = Server::Start(db_.get(), server_options);
    ASSERT_TRUE(server_result.ok()) << server_result.status().ToString();
    server_ = std::move(*server_result);
  }

  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    if (server_) {
      server_->Drain();
      server_->Wait();
      server_.reset();
    }
    if (db_) {
      ASSERT_TRUE(db_->Close().ok());
      db_.reset();
    }
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  Client MakeClient() {
    ClientOptions options;
    options.port = server_->port();
    options.max_retries = 3;
    options.retry_base_ms = 5;
    return Client(options);
  }

  /// Creates the kv table and runs a small mixed workload so every
  /// common opcode has samples.
  void RunWorkload(Client& client) {
    auto id = client.CreateTable(
        "kv", {{"k", DataType::kInt64}, {"v", DataType::kString}});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(client.CreateIndex("kv", 0).ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(client.Begin().ok());
      auto loc = client.Insert(
          "kv", {Value(int64_t{i}), Value(std::string("payload"))});
      ASSERT_TRUE(loc.ok()) << loc.status().ToString();
      auto cid = client.Commit();
      ASSERT_TRUE(cid.ok()) << cid.status().ToString();
    }
    for (int i = 0; i < 20; ++i) {
      auto scan = client.ScanEqual("kv", 0, Value(int64_t{i % 10}));
      ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    }
    ASSERT_TRUE(client.Ping().ok());
  }

  std::string dir_;
  std::unique_ptr<core::Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetObsTest, StageHistogramsTileTheRequest) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "metrics compile out in this build";
#endif
  StartDb(core::DurabilityMode::kNvm);
  obs::MetricsRegistry::Instance().ResetAll();

  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  RunWorkload(client);
  client.Close();

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Instance().Snapshot();

  // Every request is attributed: summed stage time covers at least 90%
  // of summed end-to-end request latency (the remainder is inter-stage
  // bookkeeping, by construction a few hundred nanoseconds per request).
  const obs::HistogramSnapshot* total =
      snapshot.FindHistogram("net.request.latency_ns");
  ASSERT_NE(total, nullptr);
  ASSERT_GT(total->count, 0u);
  uint64_t stage_sum = 0;
  for (const obs::HistogramSnapshot& h : snapshot.histograms) {
    if (h.name.rfind("net.op.", 0) == 0 &&
        h.name.find(".stage.") != std::string::npos) {
      stage_sum += h.sum;
    }
  }
  EXPECT_GE(static_cast<double>(stage_sum),
            0.9 * static_cast<double>(total->sum))
      << "stages " << stage_sum << " vs total " << total->sum;

  // Name-stable per-opcode per-stage export: the full matrix is
  // registered up front, and the exercised cells have samples.
  const obs::HistogramSnapshot* commit_wal =
      snapshot.FindHistogram("net.op.commit.stage.wal_sync.latency_ns");
  ASSERT_NE(commit_wal, nullptr);
  const obs::HistogramSnapshot* scan_exec =
      snapshot.FindHistogram("net.op.scan_equal.stage.execute.latency_ns");
  ASSERT_NE(scan_exec, nullptr);
  EXPECT_GT(scan_exec->count, 0u);

  // The same names surface through the Prometheus exposition.
  const std::string prom = snapshot.ToPrometheusText();
  EXPECT_NE(prom.find("net_op_scan_equal_stage_execute_latency_ns"),
            std::string::npos);
}

TEST_F(NetObsTest, CommitWalSyncStageHasSamplesUnderWal) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "metrics compile out in this build";
#endif
  StartDb(core::DurabilityMode::kWalValue);
  obs::MetricsRegistry::Instance().ResetAll();

  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  RunWorkload(client);
  client.Close();

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Instance().Snapshot();
  const obs::HistogramSnapshot* commit_wal =
      snapshot.FindHistogram("net.op.commit.stage.wal_sync.latency_ns");
  ASSERT_NE(commit_wal, nullptr);
  // WAL-mode commits spend real time in group fsync; the carve-out must
  // attribute it.
  EXPECT_GT(commit_wal->count, 0u);
  EXPECT_GT(commit_wal->sum, 0u);
}

TEST_F(NetObsTest, SlowRequestBlamesWalSync) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "metrics and the flight recorder compile out";
#endif
  ServerOptions server_options;
  server_options.slow_request_us = 2'000;  // 2ms: well under the stall
  StartDb(core::DurabilityMode::kWalValue, server_options);

  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  auto id = client.CreateTable(
      "kv", {{"k", DataType::kInt64}, {"v", DataType::kString}});
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  FaultPlan stall;
  stall.param = 20'000'000;  // 20ms per fire
  stall.max_fires = 3;
  FaultInjector::Instance().Arm(FaultPoint::kWalSyncStall, stall);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Begin().ok());
    ASSERT_TRUE(client
                    .Insert("kv", {Value(int64_t{i}),
                                   Value(std::string("payload"))})
                    .ok());
    ASSERT_TRUE(client.Commit().ok());
  }
  FaultInjector::Instance().DisarmAll();

  // The server-side capture names the guilty stage...
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("\"slow_requests\""), std::string::npos);
  EXPECT_NE(stats->find("\"dominant\":\"wal_sync\""), std::string::npos)
      << *stats;
  client.Close();

  // Stop the server before decoding: worker threads record close events
  // into the flight recorder, and the decoder reads the ring raw.
  server_->Drain();
  server_->Wait();
  server_.reset();

  // ...and the flight recorder carries the same verdict, attributed to
  // the commit opcode, so a post-crash decode still shows the stall.
  db_->heap().blackbox()->Flush();
  const obs::BlackboxDecodeResult decoded = obs::DecodeBlackbox(
      db_->heap().region().base(), db_->heap().region().size());
  ASSERT_TRUE(decoded.present);
  bool saw_slow_commit = false;
  for (const auto& event : decoded.events) {
    if (event.type ==
            static_cast<uint16_t>(obs::BlackboxEventType::kSlowRequest) &&
        event.b == static_cast<uint64_t>(obs::RequestStage::kWalSync)) {
      saw_slow_commit = true;
      EXPECT_EQ(event.a, static_cast<uint64_t>(Opcode::kCommit));
      EXPECT_GE(event.c, 2'000'000u);  // total at least the threshold
      EXPECT_GE(event.d, 1'000'000u);  // dominant stage carries the stall
    }
  }
  EXPECT_TRUE(saw_slow_commit);
}

TEST_F(NetObsTest, ClientTracksLastRoundTrip) {
  StartDb(core::DurabilityMode::kNvm);
  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.last_rtt_ns(), 0u);  // no request yet
  ASSERT_TRUE(client.Ping().ok());
  EXPECT_GT(client.last_rtt_ns(), 0u);
  client.Close();
}

TEST_F(NetObsTest, SampledTraceStitchesWireTxnAndWal) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "trace sampling compiles out in this build";
#endif
  StartDb(core::DurabilityMode::kWalValue, {}, /*txn_sample_every=*/1);

  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  auto id = client.CreateTable(
      "kv", {{"k", DataType::kInt64}, {"v", DataType::kString}});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Begin().ok());
    ASSERT_TRUE(client
                    .Insert("kv", {Value(int64_t{i}),
                                   Value(std::string("payload"))})
                    .ok());
    ASSERT_TRUE(client.Commit().ok());
  }

  // One JSON tree spans the whole story: the wire stages wrap the
  // engine's txn_commit span, which carries persist → wal_sync.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("\"last_request_trace\""), std::string::npos)
      << *stats;
  EXPECT_NE(stats->find("\"request\""), std::string::npos);
  EXPECT_NE(stats->find("\"txn_commit\""), std::string::npos);
  EXPECT_NE(stats->find("\"wal_sync\""), std::string::npos);
  client.Close();
}

}  // namespace
}  // namespace hyrise_nv::net
