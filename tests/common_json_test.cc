#include "common/json.h"

#include <gtest/gtest.h>

#include <string>

namespace hyrise_nv::common {
namespace {

TEST(JsonParseTest, Primitives) {
  EXPECT_TRUE(JsonParse("null")->is_null());
  EXPECT_TRUE(JsonParse("true")->AsBool());
  EXPECT_FALSE(JsonParse("false")->AsBool());
  EXPECT_DOUBLE_EQ(JsonParse("3.5")->AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(JsonParse("-17")->AsDouble(), -17.0);
  EXPECT_DOUBLE_EQ(JsonParse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(JsonParse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, NestedStructure) {
  auto parsed = JsonParse(
      R"({"a":[1,2,{"b":true}],"c":{"d":"x"},"empty":[],"n":null})");
  ASSERT_TRUE(parsed.ok());
  const JsonValue& v = *parsed;
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 3u);
  EXPECT_DOUBLE_EQ(a->at(0).AsDouble(), 1.0);
  EXPECT_TRUE(a->at(2).Get("b").AsBool());
  EXPECT_EQ(v.FindPath("c.d")->AsString(), "x");
  EXPECT_EQ(v.Get("empty").size(), 0u);
  EXPECT_TRUE(v.Get("n").is_null());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  auto parsed = JsonParse(R"("a\"b\\c\nd\te\u0041")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\nd\teA");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonParse("").ok());
  EXPECT_FALSE(JsonParse("{").ok());
  EXPECT_FALSE(JsonParse("[1,]").ok());          // trailing comma
  EXPECT_FALSE(JsonParse("{\"a\":1,}").ok());    // trailing comma
  EXPECT_FALSE(JsonParse("{'a':1}").ok());       // single quotes
  EXPECT_FALSE(JsonParse("\"unterminated").ok());
  EXPECT_FALSE(JsonParse("1 2").ok());           // trailing document
  EXPECT_FALSE(JsonParse("nul").ok());
  EXPECT_FALSE(JsonParse("\"bad \\u00g1\"").ok());
}

TEST(JsonDumpTest, RoundTripsThroughParse) {
  const std::string text =
      R"({"name":"x\"y","values":[1,2.5,true,null],"nested":{"k":-3}})";
  auto parsed = JsonParse(text);
  ASSERT_TRUE(parsed.ok());
  auto reparsed = JsonParse(parsed->Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), parsed->Dump());
  EXPECT_EQ(reparsed->FindPath("nested.k")->AsInt(), -3);
}

TEST(JsonDumpTest, IntegralNumbersPrintWithoutDecimalPoint) {
  JsonValue obj = JsonValue::Object();
  obj.Set("i", JsonValue::Number(42));
  obj.Set("f", JsonValue::Number(2.5));
  const std::string dumped = obj.Dump();
  EXPECT_NE(dumped.find("\"i\":42"), std::string::npos) << dumped;
  EXPECT_EQ(dumped.find("42.0"), std::string::npos) << dumped;
  EXPECT_NE(dumped.find("\"f\":2.5"), std::string::npos) << dumped;
}

TEST(JsonQuoteTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("he\"y"), "\"he\\\"y\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  // Control characters must come out as escapes, and the result must
  // parse back to the original.
  const std::string quoted = JsonQuote(std::string("x\n\t\x01y"));
  auto parsed = JsonParse(quoted);
  ASSERT_TRUE(parsed.ok()) << quoted;
  EXPECT_EQ(parsed->AsString(), std::string("x\n\t\x01y"));
}

TEST(JsonFindPathTest, SplitsOnEveryDot) {
  // FindPath treats every dot as a level separator, so keys containing
  // dots (metric names) are NOT reachable through it — consumers use
  // per-level Find instead. Pin that down so nobody "fixes" one side.
  auto parsed = JsonParse(R"({"counters":{"txn.commit.count":7}})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->FindPath("counters.txn.commit.count"), nullptr);
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("txn.commit.count"), nullptr);
  EXPECT_EQ(counters->Find("txn.commit.count")->AsInt(), 7);
}

}  // namespace
}  // namespace hyrise_nv::common
