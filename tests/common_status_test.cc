#include "common/status.h"

#include <gtest/gtest.h>

namespace hyrise_nv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad checksum");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "bad checksum");
  EXPECT_EQ(s.ToString(), "Corruption: bad checksum");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("missing");
  Status copy = s;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "missing");
  EXPECT_TRUE(s.IsNotFound());  // source unchanged
}

TEST(StatusTest, MoveTransfersState) {
  Status s = Status::IOError("disk gone");
  Status moved = std::move(s);
  EXPECT_EQ(moved.code(), StatusCode::kIOError);
  EXPECT_EQ(moved.message(), "disk gone");
}

TEST(StatusTest, AssignmentOverwrites) {
  Status s = Status::Aborted("first");
  s = Status::OK();
  EXPECT_TRUE(s.ok());
  s = Status::InvalidArgument("second");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfMemory("").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::TransactionConflict("").code(),
            StatusCode::kTransactionConflict);
  EXPECT_EQ(Status::Aborted("").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::NotSupported("").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueUnsafe(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).ValueUnsafe();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  HYRISE_NV_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hyrise_nv
