// Two-phase commit and in-doubt recovery (DESIGN.md §16), bottom up:
//
//  1. Engine level (TSan-clean, NVM + WAL): Prepare detaches the
//     transaction and keeps its rows invisible; Decide commits/aborts
//     idempotently; in-doubt transactions survive kill -9 (simulated via
//     CrashAndRecover) and stay invisible until decided; merge and
//     checkpoint are refused while anything is in doubt.
//  2. DecisionLog (TSan-clean): epoch bump per open, commit decisions
//     survive restart, retire forgets them, torn tails truncate.
//  3. In-process router (TSan-clean): routing, fan-out, cross-shard 2PC,
//     and the resolver converging in-doubt transactions both directions
//     (logged commit -> commit, dead-epoch unknown -> presumed abort).
//  4. Real SIGKILL over the wire (skipped under TSan, like
//     serving_recovery_test): a shard killed after prepare-ack restarts
//     in doubt and converges; a shard killed after decide keeps the
//     commit; a cluster under concurrent cross-shard load survives
//     kill -9 of one shard — the surviving shard keeps serving, the
//     restarted shard converges, and a snapshot-atomicity oracle audits
//     every transaction.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/decision_log.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "core/database.h"
#include "net/client.h"
#include "net/net_util.h"
#include "net/server.h"
#include "nvm/nvm_env.h"

#if defined(__SANITIZE_THREAD__)
#define HYRISE_NV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HYRISE_NV_TSAN 1
#endif
#endif

namespace hyrise_nv::cluster {
namespace {

using core::Database;
using core::DatabaseOptions;
using core::DurabilityMode;
using storage::DataType;
using storage::Value;

std::string MakeDataDir(const std::string& prefix) {
  const std::string dir = nvm::TempPath(prefix);
  std::filesystem::create_directories(dir);
  return dir;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// 1. Engine-level prepare/decide/in-doubt, parameterized over durability.
// ---------------------------------------------------------------------------

class Engine2pcTest : public ::testing::TestWithParam<DurabilityMode> {
 protected:
  DatabaseOptions MakeOptions() {
    DatabaseOptions options;
    options.mode = GetParam();
    options.region_size = 64 << 20;
    dir_ = MakeDataDir("cluster_2pc");
    options.data_dir = dir_;
    if (options.mode == DurabilityMode::kNvm) {
      options.tracking = nvm::TrackingMode::kShadow;
    }
    return options;
  }

  void TearDown() override {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  size_t VisibleCount(Database* db, storage::Table* table, int64_t key) {
    auto rows = db->ScanEqual(table, 0, Value(key), db->ReadSnapshot(),
                              storage::kTidNone);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? rows->size() : 0;
  }

  std::string dir_;
};

TEST_P(Engine2pcTest, PrepareDetachesAndDecideCommits) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto db = std::move(*db_result);
  auto table_result = db->CreateTable(
      "kv", *storage::Schema::Make(
                {{"k", DataType::kInt64}, {"v", DataType::kString}}));
  ASSERT_TRUE(table_result.ok());
  storage::Table* table = *table_result;

  auto tx = db->Begin();
  ASSERT_TRUE(tx.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        db->Insert(*tx, table, {Value(int64_t{7}), Value(std::string("x"))})
            .ok());
  }
  const uint64_t gtid = (1ull << 32) | 1;
  ASSERT_TRUE(db->Prepare(*tx, gtid).ok());
  // Prepared is not committed: nothing visible, and the transaction is
  // detached from the session handle.
  EXPECT_EQ(VisibleCount(db.get(), table, 7), 0u);
  EXPECT_FALSE(tx->active());
  EXPECT_EQ(db->InDoubtGtids(), std::vector<uint64_t>{gtid});

  ASSERT_TRUE(db->Decide(gtid, /*commit=*/true).ok());
  EXPECT_EQ(VisibleCount(db.get(), table, 7), 3u);
  EXPECT_TRUE(db->InDoubtGtids().empty());
  // Idempotence (the drive-by regression): a replayed decide for a
  // retired or unknown gtid answers OK and changes nothing.
  ASSERT_TRUE(db->Decide(gtid, /*commit=*/true).ok());
  ASSERT_TRUE(db->Decide(gtid, /*commit=*/false).ok());
  ASSERT_TRUE(db->Decide(0xdeadbeef, /*commit=*/false).ok());
  EXPECT_EQ(VisibleCount(db.get(), table, 7), 3u);
  ASSERT_TRUE(db->Close().ok());
}

TEST_P(Engine2pcTest, DecideAbortDropsPreparedRows) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto db = std::move(*db_result);
  auto table_result = db->CreateTable(
      "kv", *storage::Schema::Make(
                {{"k", DataType::kInt64}, {"v", DataType::kString}}));
  ASSERT_TRUE(table_result.ok());
  storage::Table* table = *table_result;

  auto tx = db->Begin();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(
      db->Insert(*tx, table, {Value(int64_t{1}), Value(std::string("a"))})
          .ok());
  const uint64_t gtid = (1ull << 32) | 2;
  ASSERT_TRUE(db->Prepare(*tx, gtid).ok());
  ASSERT_TRUE(db->Decide(gtid, /*commit=*/false).ok());
  EXPECT_EQ(VisibleCount(db.get(), table, 1), 0u);
  EXPECT_TRUE(db->InDoubtGtids().empty());
  // The next transaction works normally.
  auto tx2 = db->Begin();
  ASSERT_TRUE(tx2.ok());
  ASSERT_TRUE(
      db->Insert(*tx2, table, {Value(int64_t{1}), Value(std::string("b"))})
          .ok());
  ASSERT_TRUE(db->Commit(*tx2).ok());
  EXPECT_EQ(VisibleCount(db.get(), table, 1), 1u);
  ASSERT_TRUE(db->Close().ok());
}

TEST_P(Engine2pcTest, InDoubtSurvivesCrashAndConvergesBothWays) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto db = std::move(*db_result);
  auto table_result = db->CreateTable(
      "kv", *storage::Schema::Make(
                {{"k", DataType::kInt64}, {"v", DataType::kString}}));
  ASSERT_TRUE(table_result.ok());

  // Two prepared transactions in flight at the crash.
  const uint64_t commit_gtid = (1ull << 32) | 10;
  const uint64_t abort_gtid = (1ull << 32) | 11;
  for (const auto& [key, gtid] :
       {std::pair<int64_t, uint64_t>{100, commit_gtid},
        std::pair<int64_t, uint64_t>{200, abort_gtid}}) {
    auto tx = db->Begin();
    ASSERT_TRUE(tx.ok());
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(db->Insert(*tx, *table_result,
                             {Value(key), Value(std::string("p"))})
                      .ok());
    }
    ASSERT_TRUE(db->Prepare(*tx, gtid).ok());
  }

  auto recovered_result = Database::CrashAndRecover(std::move(db));
  ASSERT_TRUE(recovered_result.ok())
      << recovered_result.status().ToString();
  auto recovered = std::move(*recovered_result);
  auto rtable = recovered->GetTable("kv");
  ASSERT_TRUE(rtable.ok());

  // Both survive the crash in doubt, rows invisible.
  std::vector<uint64_t> in_doubt = recovered->InDoubtGtids();
  std::sort(in_doubt.begin(), in_doubt.end());
  EXPECT_EQ(in_doubt, (std::vector<uint64_t>{commit_gtid, abort_gtid}));
  EXPECT_EQ(VisibleCount(recovered.get(), *rtable, 100), 0u);
  EXPECT_EQ(VisibleCount(recovered.get(), *rtable, 200), 0u);

  // Converge one each way (the recovery handshake's two answers).
  ASSERT_TRUE(recovered->Decide(commit_gtid, /*commit=*/true).ok());
  ASSERT_TRUE(recovered->Decide(abort_gtid, /*commit=*/false).ok());
  EXPECT_EQ(VisibleCount(recovered.get(), *rtable, 100), 2u);
  EXPECT_EQ(VisibleCount(recovered.get(), *rtable, 200), 0u);
  EXPECT_TRUE(recovered->InDoubtGtids().empty());

  // And the outcome is durable across a second crash.
  auto again_result = Database::CrashAndRecover(std::move(recovered));
  ASSERT_TRUE(again_result.ok()) << again_result.status().ToString();
  auto again = std::move(*again_result);
  auto atable = again->GetTable("kv");
  ASSERT_TRUE(atable.ok());
  EXPECT_TRUE(again->InDoubtGtids().empty());
  EXPECT_EQ(VisibleCount(again.get(), *atable, 100), 2u);
  EXPECT_EQ(VisibleCount(again.get(), *atable, 200), 0u);
  ASSERT_TRUE(again->Close().ok());
}

TEST_P(Engine2pcTest, MergeAndCheckpointRefusedWhileInDoubt) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto db = std::move(*db_result);
  auto table_result = db->CreateTable(
      "kv", *storage::Schema::Make(
                {{"k", DataType::kInt64}, {"v", DataType::kString}}));
  ASSERT_TRUE(table_result.ok());

  auto tx = db->Begin();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(
      db->Insert(*tx, *table_result, {Value(int64_t{1}), Value(std::string("a"))})
          .ok());
  const uint64_t gtid = (1ull << 32) | 42;
  ASSERT_TRUE(db->Prepare(*tx, gtid).ok());

  // A merge would relocate rows the prepared write set points at, and a
  // checkpoint would move the replay base past an undecided transaction.
  // (In NVM mode checkpoint is a WAL-less no-op, so only merge applies.)
  EXPECT_FALSE(db->Merge("kv").ok());
  if (GetParam() != DurabilityMode::kNvm) {
    EXPECT_FALSE(db->Checkpoint().ok());
  }

  ASSERT_TRUE(db->Decide(gtid, /*commit=*/true).ok());
  EXPECT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(db->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(Modes, Engine2pcTest,
                         ::testing::Values(DurabilityMode::kNvm,
                                           DurabilityMode::kWalValue,
                                           DurabilityMode::kWalDict));

// ---------------------------------------------------------------------------
// 2. DecisionLog.
// ---------------------------------------------------------------------------

TEST(DecisionLogTest, EpochBumpsAndCommitDecisionsSurviveRestart) {
  const std::string dir = MakeDataDir("decision_log");
  const std::string path = dir + "/decisions.log";
  uint64_t gtid = 0;
  {
    auto log = DecisionLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_EQ((*log)->epoch(), 1u);
    gtid = (*log)->NextGtid();
    EXPECT_EQ(gtid >> 32, 1u);
    ASSERT_TRUE((*log)->LogCommit(gtid).ok());
    ASSERT_TRUE((*log)->LogAbort((*log)->NextGtid()).ok());
    EXPECT_TRUE((*log)->KnownCommit(gtid));
  }
  {
    // Restart: epoch bumps, the commit decision survives, the abort is
    // (correctly) indistinguishable from never-logged.
    auto log = DecisionLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_EQ((*log)->epoch(), 2u);
    EXPECT_TRUE((*log)->KnownCommit(gtid));
    EXPECT_EQ((*log)->live_commits(), 1u);
    ASSERT_TRUE((*log)->LogRetired(gtid).ok());
    EXPECT_FALSE((*log)->KnownCommit(gtid));
  }
  {
    auto log = DecisionLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    EXPECT_EQ((*log)->epoch(), 3u);
    EXPECT_FALSE((*log)->KnownCommit(gtid));
    EXPECT_EQ((*log)->live_commits(), 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(DecisionLogTest, TornTailIsTruncatedNotFatal) {
  const std::string dir = MakeDataDir("decision_log_torn");
  const std::string path = dir + "/decisions.log";
  uint64_t gtid = 0;
  {
    auto log = DecisionLog::Open(path);
    ASSERT_TRUE(log.ok());
    gtid = (*log)->NextGtid();
    ASSERT_TRUE((*log)->LogCommit(gtid).ok());
  }
  {
    // A crash mid-append leaves a partial record after the sealed one.
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    torn.write("\x01garbage", 7);
  }
  auto log = DecisionLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_TRUE((*log)->KnownCommit(gtid));
  std::filesystem::remove_all(dir);
}

TEST(ShardMapTest, RangeAndHashPartitioning) {
  const ShardMap range(4, Partitioning::kRange, /*range_width=*/10);
  EXPECT_EQ(range.ShardForKey(Value(int64_t{0})), 0u);
  EXPECT_EQ(range.ShardForKey(Value(int64_t{9})), 0u);
  EXPECT_EQ(range.ShardForKey(Value(int64_t{10})), 1u);
  EXPECT_EQ(range.ShardForKey(Value(int64_t{39})), 3u);
  // Out-of-range keys clamp instead of crashing.
  EXPECT_EQ(range.ShardForKey(Value(int64_t{1000})), 3u);
  EXPECT_EQ(range.ShardForKey(Value(int64_t{-5})), 0u);

  const ShardMap hash(4, Partitioning::kHash);
  std::vector<size_t> hits(4, 0);
  for (int64_t k = 0; k < 4000; ++k) {
    const size_t shard = hash.ShardForKey(Value(k));
    ASSERT_LT(shard, 4u);
    ++hits[shard];
  }
  for (size_t shard = 0; shard < 4; ++shard) {
    // Dense integer keys must spread: each shard within 2x of fair share.
    EXPECT_GT(hits[shard], 500u) << "shard " << shard << " starved";
    EXPECT_LT(hits[shard], 2000u) << "shard " << shard << " overloaded";
  }
  // Determinism: the same key always lands on the same shard.
  EXPECT_EQ(hash.ShardForKey(Value(int64_t{77})),
            hash.ShardForKey(Value(int64_t{77})));
}

// ---------------------------------------------------------------------------
// 3. In-process router: routing, cross-shard 2PC, resolver convergence.
// ---------------------------------------------------------------------------

class RouterTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRangeWidth = 100;  // keys <100 -> shard 0

  void SetUp() override {
    dir_ = MakeDataDir("router_test");
    for (int i = 0; i < 2; ++i) {
      DatabaseOptions options;
      options.mode = DurabilityMode::kNone;
      auto db_result = Database::Create(options);
      ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
      dbs_.push_back(std::move(*db_result));
      net::ServerOptions server_options;
      server_options.num_workers = 2;
      auto server_result = net::Server::Start(dbs_.back().get(),
                                              server_options);
      ASSERT_TRUE(server_result.ok()) << server_result.status().ToString();
      servers_.push_back(std::move(*server_result));
    }
  }

  RouterOptions MakeRouterOptions() {
    RouterOptions options;
    options.data_dir = dir_;
    options.partitioning = Partitioning::kRange;
    options.range_width = kRangeWidth;
    options.resolver_interval_ms = 50;
    options.shard_max_retries = 3;
    for (const auto& server : servers_) {
      options.shards.push_back({"127.0.0.1", server->port()});
    }
    return options;
  }

  void StartRouter() {
    auto router_result = Router::Start(MakeRouterOptions());
    ASSERT_TRUE(router_result.ok()) << router_result.status().ToString();
    router_ = std::move(*router_result);
  }

  void TearDown() override {
    router_.reset();
    for (auto& server : servers_) {
      server->Drain();
      server->Wait();
    }
    servers_.clear();
    for (auto& db : dbs_) ASSERT_TRUE(db->Close().ok());
    dbs_.clear();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  net::ClientOptions RouterClientOptions() {
    net::ClientOptions options;
    options.port = router_->port();
    options.max_retries = 3;
    return options;
  }

  std::string dir_;
  std::vector<std::unique_ptr<Database>> dbs_;
  std::vector<std::unique_ptr<net::Server>> servers_;
  std::unique_ptr<Router> router_;
};

TEST_F(RouterTest, RoutesPartitionsAndCommitsCrossShard) {
  StartRouter();
  net::Client client(RouterClientOptions());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client
                  .CreateTable("t", {{"k", DataType::kInt64},
                                     {"v", DataType::kString}})
                  .ok());

  // Cross-shard transaction: one row below the range split, one above.
  ASSERT_TRUE(client.Begin().ok());
  auto low = client.Insert("t", {Value(int64_t{5}), Value(std::string("lo"))});
  ASSERT_TRUE(low.ok()) << low.status().ToString();
  auto high = client.Insert(
      "t", {Value(int64_t{150}), Value(std::string("hi"))});
  ASSERT_TRUE(high.ok()) << high.status().ToString();
  // The shard tag in bits 56..63 routes the rows differently.
  EXPECT_EQ(low->row >> 56, 0u);
  EXPECT_EQ(high->row >> 56, 1u);
  auto cid = client.Commit();
  ASSERT_TRUE(cid.ok()) << cid.status().ToString();
  EXPECT_NE(*cid, 0u);  // the gtid doubles as the commit token

  // Each shard physically holds exactly its own row.
  for (int i = 0; i < 2; ++i) {
    auto table = dbs_[i]->GetTable("t");
    ASSERT_TRUE(table.ok());
    auto rows = dbs_[i]->ScanEqual(*table, 0, Value(int64_t{i == 0 ? 5 : 150}),
                                   dbs_[i]->ReadSnapshot(),
                                   storage::kTidNone);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 1u) << "shard " << i;
  }

  // Fan-out: count sums shards; a non-key scan merges both.
  auto count = client.Count("t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
  auto merged = client.ScanRange("t", 0, Value(int64_t{0}),
                                 Value(int64_t{1000}));
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->rows.size(), 2u);

  // Point update and delete route by the tagged location (DML needs an
  // open transaction, exactly like a single server).
  ASSERT_TRUE(client.Begin().ok());
  auto updated = client.Update(
      "t", *high, {Value(int64_t{150}), Value(std::string("hi2"))});
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(updated->row >> 56, 1u);
  // Moving the shard key across the split is refused, not mangled.
  auto moved = client.Update(
      "t", *updated, {Value(int64_t{5}), Value(std::string("no"))});
  EXPECT_FALSE(moved.ok());
  ASSERT_TRUE(client.Delete("t", *updated).ok());
  ASSERT_TRUE(client.Commit().ok());
  count = client.Count("t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);

  // Observability: the stats carry the cluster section nvql \shards
  // renders, and recovery info aggregates to ready.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"cluster\":"), std::string::npos);
  EXPECT_NE(stats->find("\"commits_cross_shard\":1"), std::string::npos);
  auto info = client.RecoveryInfo();
  ASSERT_TRUE(info.ok());
  EXPECT_NE(info->find("\"serving_state\":\"ready\""), std::string::npos);
}

TEST_F(RouterTest, ResolverConvergesInDoubtBothDirections) {
  // A dead coordinator incarnation left two in-doubt transactions on
  // shard 0: one with a logged commit decision, one never decided.
  net::Client shard_client({.port = servers_[0]->port()});
  ASSERT_TRUE(shard_client.Connect().ok());
  ASSERT_TRUE(shard_client
                  .CreateTable("t", {{"k", DataType::kInt64},
                                     {"v", DataType::kString}})
                  .ok());
  uint64_t committed_gtid = 0;
  uint64_t abandoned_gtid = 0;
  {
    auto log = DecisionLog::Open(dir_ + "/decisions.log");
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    committed_gtid = (*log)->NextGtid();
    abandoned_gtid = (*log)->NextGtid();

    ASSERT_TRUE(shard_client.Begin().ok());
    ASSERT_TRUE(shard_client
                    .Insert("t", {Value(int64_t{1}),
                                  Value(std::string("committed"))})
                    .ok());
    ASSERT_TRUE(shard_client.Prepare(committed_gtid).ok());
    ASSERT_TRUE((*log)->LogCommit(committed_gtid).ok());
    // "Crash" here: the decision never reached the participant.

    ASSERT_TRUE(shard_client.Begin().ok());
    ASSERT_TRUE(shard_client
                    .Insert("t", {Value(int64_t{2}),
                                  Value(std::string("abandoned"))})
                    .ok());
    ASSERT_TRUE(shard_client.Prepare(abandoned_gtid).ok());
    // "Crash" before the decision was even logged: presumed abort.
  }

  auto in_doubt = shard_client.InDoubt();
  ASSERT_TRUE(in_doubt.ok());
  EXPECT_EQ(in_doubt->size(), 2u);

  // The restarted router (same decision log, bumped epoch) must converge
  // both: the logged commit commits, the dead-epoch unknown aborts.
  StartRouter();
  net::Client client(RouterClientOptions());
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(WaitFor(
      [&] {
        auto remaining = shard_client.InDoubt();
        return remaining.ok() && remaining->empty();
      },
      10'000))
      << "resolver did not converge the in-doubt transactions";

  auto committed = client.ScanEqual("t", 0, Value(int64_t{1}));
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->rows.size(), 1u) << "logged commit was lost";
  auto abandoned = client.ScanEqual("t", 0, Value(int64_t{2}));
  ASSERT_TRUE(abandoned.ok());
  EXPECT_TRUE(abandoned->rows.empty()) << "presumed abort did not happen";
}

// ---------------------------------------------------------------------------
// 4. Real SIGKILL over the wire. Forked with live threads -> no TSan.
// ---------------------------------------------------------------------------

#ifndef HYRISE_NV_TSAN

uint16_t PickPort() {
  auto listener = net::CreateListener("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok());
  auto port = net::LocalPort(listener->get());
  EXPECT_TRUE(port.ok());
  return *port;
}

[[noreturn]] void ServeChild(DatabaseOptions db_options, uint16_t port,
                             bool create, const std::string& marker) {
  // Die with the test: a child that outlives an ASSERT-failed parent
  // would keep the test harness's stdout pipe open forever.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) ::_exit(5);  // parent already gone
  auto db_result =
      create ? Database::Create(db_options) : Database::Open(db_options);
  if (!db_result.ok()) ::_exit(2);
  auto db = std::move(db_result).ValueUnsafe();
  net::ServerOptions server_options;
  server_options.port = port;
  server_options.num_workers = 2;
  auto server_result = net::Server::Start(db.get(), server_options);
  if (!server_result.ok()) ::_exit(3);
  if (::creat(marker.c_str(), 0644) < 0) ::_exit(4);
  (*server_result)->Wait();
  server_result->reset();
  (void)db->Close();
  ::_exit(0);
}

pid_t SpawnShard(const DatabaseOptions& db_options, uint16_t port,
                 bool create, const std::string& marker) {
  std::filesystem::remove(marker);
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) ServeChild(db_options, port, create, marker);
  for (int i = 0; i < 2000 && !std::filesystem::exists(marker); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(std::filesystem::exists(marker)) << "shard child never ready";
  return pid;
}

void KillNine(pid_t pid) {
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
}

TEST(Cluster2pcKillTest, ShardKilledAfterPrepareAckConverges) {
  const std::string dir =
      "/tmp/hyrise-nv-2pc-prep-" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  DatabaseOptions db_options;
  db_options.mode = DurabilityMode::kWalValue;
  db_options.data_dir = dir;
  const uint16_t port = PickPort();

  const pid_t first =
      SpawnShard(db_options, port, /*create=*/true, dir + "/ready1");
  net::ClientOptions client_options;
  client_options.port = port;
  client_options.max_retries = 100;
  net::Client client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client
                  .CreateTable("t", {{"k", DataType::kInt64},
                                     {"v", DataType::kString}})
                  .ok());

  // Prepare is acked, then the participant dies before any decide.
  const uint64_t gtid = (9ull << 32) | 1;
  ASSERT_TRUE(client.Begin().ok());
  ASSERT_TRUE(
      client.Insert("t", {Value(int64_t{1}), Value(std::string("p"))}).ok());
  ASSERT_TRUE(client.Prepare(gtid).ok());
  KillNine(first);

  const pid_t second =
      SpawnShard(db_options, port, /*create=*/false, dir + "/ready2");
  // The restart surfaces it in doubt; its row stays invisible; the
  // coordinator's decide commits it (and a replayed decide is harmless).
  // The first call after the kill only re-dials (the client never
  // replays a request it cannot prove unexecuted), so retry once.
  auto in_doubt = client.InDoubt();
  if (!in_doubt.ok()) in_doubt = client.InDoubt();
  ASSERT_TRUE(in_doubt.ok()) << in_doubt.status().ToString();
  EXPECT_EQ(*in_doubt, std::vector<uint64_t>{gtid});
  auto hidden = client.ScanEqual("t", 0, Value(int64_t{1}));
  ASSERT_TRUE(hidden.ok());
  EXPECT_TRUE(hidden->rows.empty());
  ASSERT_TRUE(client.Decide(gtid, /*commit=*/true).ok());
  ASSERT_TRUE(client.Decide(gtid, /*commit=*/true).ok());
  auto visible = client.ScanEqual("t", 0, Value(int64_t{1}));
  ASSERT_TRUE(visible.ok());
  EXPECT_EQ(visible->rows.size(), 1u);

  // And the decision survives yet another kill -9.
  KillNine(second);
  const pid_t third =
      SpawnShard(db_options, port, /*create=*/false, dir + "/ready3");
  auto after = client.ScanEqual("t", 0, Value(int64_t{1}));
  if (!after.ok()) after = client.ScanEqual("t", 0, Value(int64_t{1}));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.size(), 1u);
  auto clean = client.InDoubt();
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->empty());
  KillNine(third);
  std::filesystem::remove_all(dir);
}

TEST(Cluster2pcKillTest, ClusterSurvivesShardKillNineUnderLoad) {
  const std::string dir =
      "/tmp/hyrise-nv-2pc-load-" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir + "/s0");
  std::filesystem::create_directories(dir + "/s1");
  std::filesystem::create_directories(dir + "/router");

  constexpr int64_t kSplit = 1'000;  // range partition: k/1000 = shard
  constexpr int kRowsPerTag = 4;     // 2 rows per shard per transaction

  DatabaseOptions s0_options;
  s0_options.mode = DurabilityMode::kWalValue;
  s0_options.data_dir = dir + "/s0";
  DatabaseOptions s1_options = s0_options;
  s1_options.data_dir = dir + "/s1";
  const uint16_t port0 = PickPort();
  const uint16_t port1 = PickPort();
  const pid_t shard0 =
      SpawnShard(s0_options, port0, /*create=*/true, dir + "/ready0");
  pid_t shard1 =
      SpawnShard(s1_options, port1, /*create=*/true, dir + "/ready1");

  RouterOptions router_options;
  router_options.data_dir = dir + "/router";
  router_options.partitioning = Partitioning::kRange;
  router_options.range_width = kSplit;
  router_options.resolver_interval_ms = 100;
  router_options.shards = {{"127.0.0.1", port0}, {"127.0.0.1", port1}};
  auto router_result = Router::Start(router_options);
  ASSERT_TRUE(router_result.ok()) << router_result.status().ToString();
  auto router = std::move(*router_result);

  net::ClientOptions client_options;
  client_options.port = router->port();
  client_options.max_retries = 100;
  net::Client setup(client_options);
  ASSERT_TRUE(setup.Connect().ok());
  ASSERT_TRUE(setup
                  .CreateTable("pairs", {{"k", DataType::kInt64},
                                         {"tag", DataType::kInt64},
                                         {"r", DataType::kString}})
                  .ok());
  ASSERT_TRUE(setup.CreateIndex("pairs", 1).ok());

  // Cross-shard loader: every transaction writes kRowsPerTag rows under
  // one tag, half on each shard. Acked tags must be fully visible after
  // everything converges; unacked tags must be all-or-nothing.
  std::set<int64_t> acked;
  std::atomic<bool> stop_load{false};
  std::thread cross_loader([&] {
    net::Client loader(client_options);
    if (!loader.Connect().ok()) return;
    for (int64_t tag = 0; !stop_load.load(); ++tag) {
      if (!loader.Begin().ok()) break;
      bool ok = true;
      for (int i = 0; ok && i < kRowsPerTag; ++i) {
        const int64_t key = (i % 2 == 0 ? tag % kSplit
                                        : kSplit + tag % kSplit);
        ok = loader
                 .Insert("pairs", {Value(key), Value(tag),
                                   Value(std::string("r") +
                                         std::to_string(i))})
                 .ok();
      }
      if (!ok) {
        (void)loader.Abort();
        continue;  // shard outage: the reconnecting client rides it out
      }
      if (loader.Commit().ok()) acked.insert(tag);
    }
  });

  // Shard-0-only traffic must keep working while shard 1 is down.
  std::atomic<uint64_t> survivor_ok{0};
  std::atomic<uint64_t> survivor_failed{0};
  std::atomic<bool> outage_live{false};
  std::thread survivor_loader([&] {
    net::Client loader(client_options);
    if (!loader.Connect().ok()) return;
    for (int64_t i = 0; !stop_load.load(); ++i) {
      const bool during_outage = outage_live.load();
      bool ok = loader.Begin().ok();
      ok = ok && loader
                     .Insert("pairs", {Value(int64_t{1}), Value(int64_t{-1}),
                                       Value(std::string("s"))})
                     .ok();
      ok = ok && loader.Commit().ok();
      if (!ok) {
        (void)loader.Abort();
        if (during_outage) survivor_failed.fetch_add(1);
      } else if (during_outage) {
        survivor_ok.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Let the load ramp, then kill -9 shard 1 mid-2PC traffic.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  outage_live.store(true);
  KillNine(shard1);
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  outage_live.store(false);
  shard1 = SpawnShard(s1_options, port1, /*create=*/false, dir + "/ready2");

  // Let everything recover and converge, then stop the load.
  std::this_thread::sleep_for(std::chrono::milliseconds(1'500));
  stop_load.store(true);
  cross_loader.join();
  survivor_loader.join();

  EXPECT_GT(survivor_ok.load(), 0u)
      << "surviving shard stopped serving during the outage";
  EXPECT_EQ(survivor_failed.load(), 0u)
      << "single-shard traffic on the surviving shard failed";
  ASSERT_GT(acked.size(), 5u) << "load barely ran";

  // Wait for the resolver to drain the restarted shard's in-doubt list.
  net::Client probe({.port = port1, .max_retries = 100});
  ASSERT_TRUE(probe.Connect().ok());
  ASSERT_TRUE(WaitFor(
      [&] {
        auto in_doubt = probe.InDoubt();
        return in_doubt.ok() && in_doubt->empty();
      },
      20'000))
      << "restarted shard still has in-doubt transactions";

  // Snapshot-atomicity oracle over the wire: every acked tag is fully
  // there; every other tag is all-or-nothing. (During the decide window
  // of a live 2PC a fan-out read may see one shard early — the oracle
  // audits the converged state, which is what 2PC guarantees.)
  net::Client audit(client_options);
  ASSERT_TRUE(audit.Connect().ok());
  const int64_t max_tag = acked.empty() ? 0 : *acked.rbegin();
  for (int64_t tag = 0; tag <= max_tag; ++tag) {
    auto rows = audit.ScanEqual("pairs", 1, Value(tag));
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    if (acked.count(tag) > 0) {
      EXPECT_EQ(rows->rows.size(), static_cast<size_t>(kRowsPerTag))
          << "acked tag " << tag << " lost rows across the shard kill";
    } else {
      EXPECT_TRUE(rows->rows.empty() ||
                  rows->rows.size() == static_cast<size_t>(kRowsPerTag))
          << "torn cross-shard transaction for tag " << tag << ": "
          << rows->rows.size() << " rows";
    }
  }

  router.reset();
  KillNine(shard0);
  KillNine(shard1);
  std::filesystem::remove_all(dir);
}

#endif  // !HYRISE_NV_TSAN

}  // namespace
}  // namespace hyrise_nv::cluster
