#include "alloc/pallocator.h"

#include <gtest/gtest.h>

#include <set>

#include "alloc/pheap.h"
#include "alloc/region_header.h"
#include "nvm/nvm_env.h"

namespace hyrise_nv::alloc {
namespace {

std::unique_ptr<PHeap> MakeHeap(size_t size = 1 << 20) {
  nvm::PmemRegionOptions opts;
  opts.tracking = nvm::TrackingMode::kShadow;
  auto result = PHeap::Create(size, opts);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueUnsafe();
}

TEST(PAllocatorTest, AllocReturnsDisjointAlignedBlocks) {
  auto heap = MakeHeap();
  std::set<uint64_t> offsets;
  for (int i = 0; i < 100; ++i) {
    auto r = heap->allocator().Alloc(100);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r % 8, 0u) << "payload must be 8-byte aligned";
    EXPECT_TRUE(offsets.insert(*r).second) << "duplicate offset";
  }
  // 100 allocations of class size 128 are at least 100*128 bytes apart in
  // aggregate.
  EXPECT_GE(heap->allocator().HeapUsedBytes(), 100u * 128);
}

TEST(PAllocatorTest, ZeroSizeRejected) {
  auto heap = MakeHeap();
  EXPECT_FALSE(heap->allocator().Alloc(0).ok());
}

TEST(PAllocatorTest, HugeAllocationRejected) {
  auto heap = MakeHeap();
  EXPECT_EQ(heap->allocator().Alloc(uint64_t{1} << 62).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PAllocatorTest, ExhaustionReported) {
  auto heap = MakeHeap(1 << 16);  // 64 KiB
  Status last = Status::OK();
  for (int i = 0; i < 10000; ++i) {
    auto r = heap->allocator().Alloc(1024);
    if (!r.ok()) {
      last = r.status();
      break;
    }
  }
  EXPECT_EQ(last.code(), StatusCode::kOutOfMemory);
}

TEST(PAllocatorTest, FreeThenReuseSameClass) {
  auto heap = MakeHeap();
  auto a = heap->allocator().Alloc(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap->allocator().Free(*a).ok());
  auto b = heap->allocator().Alloc(64);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b) << "freed block should be reused LIFO";
}

TEST(PAllocatorTest, DoubleFreeDetected) {
  auto heap = MakeHeap();
  auto a = heap->allocator().Alloc(64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap->allocator().Free(*a).ok());
  EXPECT_FALSE(heap->allocator().Free(*a).ok());
}

TEST(PAllocatorTest, FreeOfGarbageOffsetRejected) {
  auto heap = MakeHeap();
  EXPECT_FALSE(heap->allocator().Free(12345).ok());
  EXPECT_FALSE(heap->allocator().Free(0).ok());
  EXPECT_FALSE(heap->allocator().Free(heap->region().size() + 10).ok());
}

TEST(PAllocatorTest, AllocSizeReportsClassSize) {
  auto heap = MakeHeap();
  auto a = heap->allocator().Alloc(100);
  ASSERT_TRUE(a.ok());
  auto size = heap->allocator().AllocSize(*a);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 128u);  // rounded to class
}

TEST(PAllocatorTest, PayloadSurvivesCrashAfterPersist) {
  auto heap = MakeHeap();
  auto a = heap->allocator().Alloc(64);
  ASSERT_TRUE(a.ok());
  auto* p = heap->Resolve<uint64_t>(*a);
  *p = 0xABCD;
  heap->region().Persist(p, 8);
  ASSERT_TRUE(heap->region().SimulateCrash().ok());
  ASSERT_TRUE(heap->allocator().Recover().ok());
  EXPECT_EQ(*heap->Resolve<uint64_t>(*a), 0xABCD);
}

TEST(PAllocatorTest, UncommittedIntentReclaimedOnRecover) {
  auto heap = MakeHeap();
  IntentHandle intent;
  auto a = heap->allocator().AllocWithIntent(64, &intent);
  ASSERT_TRUE(a.ok());
  // Crash before CommitIntent: the block must be reclaimed.
  ASSERT_TRUE(heap->region().SimulateCrash().ok());
  PAllocator fresh(heap->region());
  ASSERT_TRUE(fresh.Recover().ok());
  auto b = fresh.Alloc(64);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a) << "reclaimed block should be available again";
}

TEST(PAllocatorTest, CommittedIntentNotReclaimed) {
  auto heap = MakeHeap();
  IntentHandle intent;
  auto a = heap->allocator().AllocWithIntent(64, &intent);
  ASSERT_TRUE(a.ok());
  heap->allocator().CommitIntent(intent);
  ASSERT_TRUE(heap->region().SimulateCrash().ok());
  PAllocator fresh(heap->region());
  ASSERT_TRUE(fresh.Recover().ok());
  auto b = fresh.Alloc(64);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*b, *a) << "committed block must stay allocated";
}

TEST(PAllocatorTest, AbortIntentFreesBlock) {
  auto heap = MakeHeap();
  IntentHandle intent;
  auto a = heap->allocator().AllocWithIntent(64, &intent);
  ASSERT_TRUE(a.ok());
  heap->allocator().AbortIntent(intent);
  auto b = heap->allocator().Alloc(64);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a);
}

TEST(PAllocatorTest, RecoverIdempotent) {
  auto heap = MakeHeap();
  ASSERT_TRUE(heap->allocator().Recover().ok());
  ASSERT_TRUE(heap->allocator().Recover().ok());
}

TEST(RegionHeaderTest, FormatAndValidate) {
  auto heap = MakeHeap();
  EXPECT_TRUE(ValidateRegionHeader(heap->region()).ok());
}

TEST(RegionHeaderTest, CorruptMagicDetected) {
  auto heap = MakeHeap();
  HeaderOf(heap->region())->magic ^= 1;
  EXPECT_TRUE(ValidateRegionHeader(heap->region()).IsCorruption());
}

TEST(RegionHeaderTest, CorruptVersionDetected) {
  auto heap = MakeHeap();
  HeaderOf(heap->region())->format_version = 999;
  EXPECT_TRUE(ValidateRegionHeader(heap->region()).IsCorruption());
}

TEST(RegionHeaderTest, RootsRoundTrip) {
  auto heap = MakeHeap();
  ASSERT_TRUE(heap->SetRoot("catalog", 4096).ok());
  ASSERT_TRUE(heap->SetRoot("commit_table", 8192).ok());
  auto a = heap->GetRoot("catalog");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 4096u);
  auto b = heap->GetRoot("commit_table");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 8192u);
  EXPECT_TRUE(heap->GetRoot("nope").status().IsNotFound());
}

TEST(RegionHeaderTest, RootUpdateInPlace) {
  auto heap = MakeHeap();
  ASSERT_TRUE(heap->SetRoot("catalog", 100).ok());
  ASSERT_TRUE(heap->SetRoot("catalog", 200).ok());
  auto r = heap->GetRoot("catalog");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 200u);
}

TEST(RegionHeaderTest, RootNameValidation) {
  auto heap = MakeHeap();
  EXPECT_FALSE(heap->SetRoot("", 1).ok());
  EXPECT_FALSE(
      heap->SetRoot(std::string(kRootNameLen + 5, 'x'), 1).ok());
}

TEST(RegionHeaderTest, RootTableFull) {
  auto heap = MakeHeap();
  for (size_t i = 0; i < kMaxRoots; ++i) {
    ASSERT_TRUE(heap->SetRoot("root" + std::to_string(i), i).ok());
  }
  EXPECT_EQ(heap->SetRoot("overflow", 1).code(), StatusCode::kOutOfMemory);
}

TEST(RegionHeaderTest, RootsSurviveCrashOncePersisted) {
  auto heap = MakeHeap();
  ASSERT_TRUE(heap->SetRoot("catalog", 4096).ok());
  ASSERT_TRUE(heap->region().SimulateCrash().ok());
  auto r = heap->GetRoot("catalog");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 4096u);
}

TEST(RegionHeaderTest, CleanShutdownFlag) {
  nvm::PmemRegionOptions opts;
  opts.tracking = nvm::TrackingMode::kNone;
  opts.file_path = nvm::TempPath("clean_flag_test");
  {
    auto heap_result = PHeap::Create(1 << 20, opts);
    ASSERT_TRUE(heap_result.ok());
    ASSERT_TRUE((*heap_result)->CloseClean().ok());
  }
  {
    auto heap_result = PHeap::Open(opts);
    ASSERT_TRUE(heap_result.ok()) << heap_result.status().ToString();
    EXPECT_TRUE((*heap_result)->was_clean_shutdown());
    // Open marks dirty; reopening without CloseClean must show dirty.
    ASSERT_TRUE((*heap_result)->region().SyncToFile().ok());
  }
  {
    auto heap_result = PHeap::Open(opts);
    ASSERT_TRUE(heap_result.ok());
    EXPECT_FALSE((*heap_result)->was_clean_shutdown());
  }
  nvm::RemoveFileIfExists(opts.file_path);
}

}  // namespace
}  // namespace hyrise_nv::alloc
