// Serve-during-recovery (DESIGN.md §13): on-demand log replay behind a
// degraded serving state. These tests are all in-process (no fork), so
// they run under TSan and cover the concurrency story: single-flight
// per-key restoration racing the background drain, writes landing during
// the degraded window, admin operations being shed, the corrupt-
// checkpoint fallback signals, and a second crash while the drain is
// still running.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/query.h"
#include "nvm/nvm_env.h"
#include "obs/metrics.h"

namespace hyrise_nv::core {
namespace {

using storage::DataType;
using storage::Value;

storage::Schema KvSchema() {
  return *storage::Schema::Make(
      {{"k", DataType::kInt64}, {"v", DataType::kString}});
}

std::string MakeDataDir(const std::string& prefix) {
  const std::string dir = nvm::TempPath(prefix);
  std::filesystem::create_directories(dir);
  return dir;
}

void FlipByteInFile(const std::string& path, uint64_t offset,
                    uint8_t mask = 0x10) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  ASSERT_TRUE(file.good());
  byte = static_cast<char>(byte ^ mask);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  ASSERT_TRUE(file.good());
}

class OnDemandRecoveryTest
    : public ::testing::TestWithParam<DurabilityMode> {
 protected:
  /// On-demand policy with a deliberately slow drain (tiny chunks, a
  /// pause per chunk) so tests get a wide degraded window to poke at.
  DatabaseOptions MakeOptions(const std::string& prefix) {
    DatabaseOptions options;
    options.mode = GetParam();
    options.region_size = 64 << 20;
    dir_ = MakeDataDir(prefix);
    options.data_dir = dir_;
    options.log_recovery = LogRecoveryPolicy::kServeOnDemand;
    options.drain_chunk_rows = 16;
    options.drain_pause_us = 2'000;
    return options;
  }

  void TearDown() override {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  std::string dir_;
};

/// Loads `rows` rows (k = i % 10, v = "v<i>") and deletes every 7th row,
/// returning the expected surviving count.
uint64_t LoadWorkload(Database* db, storage::Table* table, int rows) {
  uint64_t live = 0;
  for (int i = 0; i < rows; ++i) {
    auto tx = db->Begin();
    EXPECT_TRUE(tx.ok());
    auto loc = db->Insert(*tx, table,
                          {Value(int64_t{i % 10}),
                           Value(std::string("v") + std::to_string(i))});
    EXPECT_TRUE(loc.ok()) << loc.status().ToString();
    EXPECT_TRUE(db->Commit(*tx).ok());
    if (i % 7 == 0) {
      auto del_tx = db->Begin();
      EXPECT_TRUE(del_tx.ok());
      EXPECT_TRUE(db->Delete(*del_tx, table, *loc).ok());
      EXPECT_TRUE(db->Commit(*del_tx).ok());
    } else {
      ++live;
    }
  }
  return live;
}

/// Expected visible rows for key `k` after LoadWorkload(rows).
uint64_t ExpectedForKey(int rows, int k) {
  uint64_t n = 0;
  for (int i = 0; i < rows; ++i) {
    if (i % 10 == k && i % 7 != 0) ++n;
  }
  return n;
}

TEST_P(OnDemandRecoveryTest, DegradedScansMatchEagerState) {
  auto options = MakeOptions("ondemand_basic");
  auto db = std::move(Database::Create(options)).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  ASSERT_TRUE(db->CreateIndex("kv", 0).ok());
  const int kRows = 400;
  const uint64_t live = LoadWorkload(db.get(), table, kRows);

  // One uncommitted transaction at crash time: its row must stay
  // invisible through on-demand recovery, exactly as under eager replay.
  auto open_tx = db->Begin();
  ASSERT_TRUE(open_tx.ok());
  ASSERT_TRUE(db->Insert(*open_tx, table,
                         {Value(int64_t{3}), Value(std::string("ghost"))})
                  .ok());

  auto recovered_result = Database::CrashAndRecover(std::move(db));
  ASSERT_TRUE(recovered_result.ok()) << recovered_result.status().ToString();
  auto& recovered = *recovered_result;
  EXPECT_TRUE(recovered->last_recovery_report().recovered);
  EXPECT_TRUE(recovered->last_recovery_report().log.on_demand);
  ASSERT_EQ(recovered->serving_state(), ServingState::kServingDegraded)
      << "slow drain should leave a degraded window";

  storage::Table* rtable = *recovered->GetTable("kv");
  // MVCC state is fully rebuilt during analysis: counts are exact even
  // while every value cell is still a placeholder.
  EXPECT_EQ(CountRows(rtable, recovered->ReadSnapshot(), storage::kTidNone),
            live);

  // A point scan during the degraded window restores just that key.
  for (const int k : {3, 0, 9}) {
    auto rows = recovered->ScanEqual(rtable, 0, Value(int64_t{k}),
                                     recovered->ReadSnapshot(),
                                     storage::kTidNone);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->size(), ExpectedForKey(kRows, k)) << "key " << k;
    for (const auto& row : MaterializeRows(rtable, *rows)) {
      EXPECT_EQ(std::get<int64_t>(row[0]), int64_t{k});
      EXPECT_EQ(std::get<std::string>(row[1]).front(), 'v');
    }
  }

  // Range scans restore the touched key range.
  auto range = recovered->ScanRange(rtable, 0, Value(int64_t{2}),
                                    Value(int64_t{5}),
                                    recovered->ReadSnapshot(),
                                    storage::kTidNone);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  uint64_t expected_range = 0;
  for (int k = 2; k <= 5; ++k) expected_range += ExpectedForKey(kRows, k);
  EXPECT_EQ(range->size(), expected_range);

  const auto mid_progress = recovered->recovery_progress();
  EXPECT_GT(mid_progress.total_rows, 0u);
  EXPECT_LE(mid_progress.restored_rows, mid_progress.total_rows);

  ASSERT_TRUE(recovered->WaitUntilRecovered(30'000).ok());
  EXPECT_EQ(recovered->serving_state(), ServingState::kReady);
  EXPECT_TRUE(recovered->recovery_progress().drained);
  EXPECT_EQ(CountRows(rtable, recovered->ReadSnapshot(), storage::kTidNone),
            live);
  // Same answers after the drain — nothing double-applied, nothing lost.
  auto after = recovered->ScanEqual(rtable, 0, Value(int64_t{3}),
                                    recovered->ReadSnapshot(),
                                    storage::kTidNone);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), ExpectedForKey(kRows, 3));
}

TEST_P(OnDemandRecoveryTest, WritesLandDuringDegradedWindow) {
  auto options = MakeOptions("ondemand_writes");
  auto db = std::move(Database::Create(options)).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  const int kRows = 600;
  const uint64_t live = LoadWorkload(db.get(), table, kRows);

  auto recovered_result = Database::CrashAndRecover(std::move(db));
  ASSERT_TRUE(recovered_result.ok()) << recovered_result.status().ToString();
  auto& recovered = *recovered_result;
  ASSERT_EQ(recovered->serving_state(), ServingState::kServingDegraded);

  storage::Table* rtable = *recovered->GetTable("kv");
  // New inserts while the drain is running.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(recovered
                    ->InsertAutoCommit(rtable, {Value(int64_t{777}),
                                                Value(std::string("new"))})
                    .ok());
  }
  // Delete a recovered row mid-drain: the scan restores the key's rows
  // on demand, then the delete stamps one of them.
  auto victims = recovered->ScanEqual(rtable, 0, Value(int64_t{4}),
                                      recovered->ReadSnapshot(),
                                      storage::kTidNone);
  ASSERT_TRUE(victims.ok());
  ASSERT_FALSE(victims->empty());
  auto del_tx = recovered->Begin();
  ASSERT_TRUE(del_tx.ok());
  ASSERT_TRUE(recovered->Delete(*del_tx, rtable, victims->front()).ok());
  ASSERT_TRUE(recovered->Commit(*del_tx).ok());

  ASSERT_TRUE(recovered->WaitUntilRecovered(30'000).ok());
  EXPECT_EQ(CountRows(rtable, recovered->ReadSnapshot(), storage::kTidNone),
            live + 50 - 1);
  auto new_rows = recovered->ScanEqual(rtable, 0, Value(int64_t{777}),
                                       recovered->ReadSnapshot(),
                                       storage::kTidNone);
  ASSERT_TRUE(new_rows.ok());
  EXPECT_EQ(new_rows->size(), 50u);
  auto key4 = recovered->ScanEqual(rtable, 0, Value(int64_t{4}),
                                   recovered->ReadSnapshot(),
                                   storage::kTidNone);
  ASSERT_TRUE(key4.ok());
  EXPECT_EQ(key4->size(), ExpectedForKey(kRows, 4) - 1);
}

TEST_P(OnDemandRecoveryTest, ConcurrentScansAreSingleFlight) {
  auto options = MakeOptions("ondemand_concurrent");
  auto db = std::move(Database::Create(options)).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  const int kRows = 800;
  LoadWorkload(db.get(), table, kRows);

  auto recovered_result = Database::CrashAndRecover(std::move(db));
  ASSERT_TRUE(recovered_result.ok()) << recovered_result.status().ToString();
  auto& recovered = *recovered_result;
  ASSERT_EQ(recovered->serving_state(), ServingState::kServingDegraded);
  storage::Table* rtable = *recovered->GetTable("kv");

  // Readers hammer the same keys while the drain restores rows from the
  // other end. Single-flight restoration means every scan sees exactly
  // the expected rows — never zero, never doubled.
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&recovered, rtable, &failures] {
      for (int round = 0; round < 20; ++round) {
        for (int k = 0; k < 10; ++k) {
          auto rows = recovered->ScanEqual(rtable, 0, Value(int64_t{k}),
                                           recovered->ReadSnapshot(),
                                           storage::kTidNone);
          if (!rows.ok() || rows->size() != ExpectedForKey(kRows, k)) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  ASSERT_TRUE(recovered->WaitUntilRecovered(30'000).ok());
  const auto progress = recovered->recovery_progress();
  EXPECT_EQ(progress.restored_rows, progress.total_rows)
      << "double-applied restores would overshoot the total";
}

TEST_P(OnDemandRecoveryTest, AdminOpsShedWhileDegraded) {
  auto options = MakeOptions("ondemand_admin");
  auto db = std::move(Database::Create(options)).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  LoadWorkload(db.get(), table, 400);

  auto recovered_result = Database::CrashAndRecover(std::move(db));
  ASSERT_TRUE(recovered_result.ok()) << recovered_result.status().ToString();
  auto& recovered = *recovered_result;
  ASSERT_EQ(recovered->serving_state(), ServingState::kServingDegraded);

  // Structural operations would race the drain's placeholder rows (and a
  // checkpoint would persist them); all shed with a retryable Aborted.
  EXPECT_EQ(recovered->Checkpoint().code(), StatusCode::kAborted);
  EXPECT_EQ(recovered->Merge("kv").status().code(), StatusCode::kAborted);
  EXPECT_EQ(recovered->CreateIndex("kv", 1).code(), StatusCode::kAborted);

  ASSERT_TRUE(recovered->WaitUntilRecovered(30'000).ok());
  EXPECT_TRUE(recovered->Checkpoint().ok());
  EXPECT_TRUE(recovered->CreateIndex("kv", 1).ok());
}

TEST_P(OnDemandRecoveryTest, SecondCrashDuringDrainRecovers) {
  auto options = MakeOptions("ondemand_doublecrash");
  auto db = std::move(Database::Create(options)).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  const int kRows = 600;
  const uint64_t live = LoadWorkload(db.get(), table, kRows);

  auto first = Database::CrashAndRecover(std::move(db));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto recovered = std::move(*first);
  ASSERT_EQ(recovered->serving_state(), ServingState::kServingDegraded);
  storage::Table* rtable = *recovered->GetTable("kv");

  // Commit new work during the degraded window, then crash again while
  // the drain is still live. Restores are never re-logged, so the second
  // analysis pass starts from the same log plus the new commits.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(recovered
                    ->InsertAutoCommit(rtable, {Value(int64_t{888}),
                                                Value(std::string("late"))})
                    .ok());
  }
  auto second = Database::CrashAndRecover(std::move(recovered));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto& twice = *second;
  EXPECT_TRUE(twice->last_recovery_report().log.on_demand);

  storage::Table* ttable = *twice->GetTable("kv");
  EXPECT_EQ(CountRows(ttable, twice->ReadSnapshot(), storage::kTidNone),
            live + 30);
  auto late = twice->ScanEqual(ttable, 0, Value(int64_t{888}),
                               twice->ReadSnapshot(), storage::kTidNone);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late->size(), 30u);

  ASSERT_TRUE(twice->WaitUntilRecovered(30'000).ok());
  EXPECT_EQ(CountRows(ttable, twice->ReadSnapshot(), storage::kTidNone),
            live + 30);
}

INSTANTIATE_TEST_SUITE_P(WalModes, OnDemandRecoveryTest,
                         ::testing::Values(DurabilityMode::kWalValue,
                                           DurabilityMode::kWalDict),
                         [](const auto& info) {
                           return info.param == DurabilityMode::kWalValue
                                      ? "WalValue"
                                      : "WalDict";
                         });

/// Satellite: the corrupt-checkpoint fallback must leave an audit trail
/// (metric + recovery-report flag) on the on-demand path too.
TEST(OnDemandFallbackTest, CorruptCheckpointRaisesFallbackSignals) {
  DatabaseOptions options;
  options.mode = DurabilityMode::kWalValue;
  options.region_size = 64 << 20;
  const std::string dir = MakeDataDir("ondemand_fallback");
  options.data_dir = dir;
  {
    auto db = std::move(Database::Create(options)).ValueUnsafe();
    storage::Table* table = *db->CreateTable("kv", KvSchema());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                               Value(std::string("a"))})
                      .ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    for (int i = 10; i < 20; ++i) {
      ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                               Value(std::string("b"))})
                      .ok());
    }
    ASSERT_TRUE(db->Close().ok());
  }
  const uint64_t ckpt_size = nvm::FileSize(options.CheckpointPath());
  ASSERT_GT(ckpt_size, 0u);
  FlipByteInFile(options.CheckpointPath(), ckpt_size / 2);

  const uint64_t fallbacks_before =
      obs::MetricsRegistry::Instance()
          .GetCounter("recovery.checkpoint_fallback.count")
          .Value();
  options.log_recovery = LogRecoveryPolicy::kServeOnDemand;
  auto db_result = Database::Open(options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result;
  EXPECT_TRUE(db->last_recovery_report().log.checkpoint_fallback);
  EXPECT_GE(obs::MetricsRegistry::Instance()
                .GetCounter("recovery.checkpoint_fallback.count")
                .Value(),
            fallbacks_before + 1);

  ASSERT_TRUE(db->WaitUntilRecovered(30'000).ok());
  storage::Table* table = *db->GetTable("kv");
  EXPECT_EQ(CountRows(table, db->ReadSnapshot(), storage::kTidNone), 20u);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace hyrise_nv::core
