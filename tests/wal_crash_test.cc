// WAL-engine crash semantics and cross-engine equivalence.
//
// 1. Group commit: with sync-every-N, a crash keeps a *prefix* of
//    commits — the synced ones — never a torn or reordered subset.
// 2. Equivalence: the same scripted workload produces identical visible
//    contents in every durability mode, before and after recovery.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "common/random.h"
#include "core/database.h"
#include "core/query.h"
#include "nvm/nvm_env.h"

namespace hyrise_nv::core {
namespace {

using storage::Value;

std::string MakeDataDir(const std::string& prefix) {
  const std::string dir = nvm::TempPath(prefix);
  std::filesystem::create_directories(dir);
  return dir;
}

storage::Schema KvSchema() {
  return *storage::Schema::Make({{"k", storage::DataType::kInt64},
                                 {"v", storage::DataType::kString}});
}

TEST(WalCrashTest, GroupCommitKeepsSyncedPrefixOnly) {
  const std::string dir = MakeDataDir("wal_crash");
  DatabaseOptions options;
  options.mode = DurabilityMode::kWalValue;
  options.region_size = 64 << 20;
  options.data_dir = dir;
  options.group_commit_every = 4;  // commits 4k..4k+3 sync together
  auto db = std::move(Database::Create(options)).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());

  // 10 committed txns; with sync-every-4 only the first 8 are durable.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                             Value(std::string("x"))})
                    .ok());
  }
  auto recovered =
      std::move(Database::CrashAndRecover(std::move(db))).ValueUnsafe();
  storage::Table* rtable = *recovered->GetTable("kv");
  const uint64_t count =
      CountRows(rtable, recovered->ReadSnapshot(), storage::kTidNone);
  EXPECT_EQ(count, 8u) << "exactly the synced prefix must survive";
  // And it must be the *first* 8 keys, not an arbitrary subset.
  for (int64_t k = 0; k < 8; ++k) {
    auto rows = recovered->ScanEqual(rtable, 0, Value(k),
                                     recovered->ReadSnapshot(),
                                     storage::kTidNone);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->size(), 1u) << "key " << k;
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(WalCrashTest, SyncEveryCommitLosesNothing) {
  const std::string dir = MakeDataDir("wal_crash_sync1");
  DatabaseOptions options;
  options.mode = DurabilityMode::kWalValue;
  options.region_size = 64 << 20;
  options.data_dir = dir;
  options.group_commit_every = 1;
  auto db = std::move(Database::Create(options)).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                             Value(std::string("x"))})
                    .ok());
  }
  auto recovered =
      std::move(Database::CrashAndRecover(std::move(db))).ValueUnsafe();
  EXPECT_EQ(CountRows(*recovered->GetTable("kv"),
                      recovered->ReadSnapshot(), storage::kTidNone),
            10u);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// Runs an identical scripted workload in a given mode; returns the final
// visible key->value map after a crash + recovery.
std::map<int64_t, std::string> RunScript(DurabilityMode mode,
                                         uint64_t seed) {
  const std::string dir = MakeDataDir("equiv");
  DatabaseOptions options;
  options.mode = mode;
  options.region_size = 64 << 20;
  options.data_dir = dir;
  auto db = std::move(Database::Create(options)).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  EXPECT_TRUE(db->CreateIndex("kv", 0).ok());

  Rng rng(seed);
  int64_t next_key = 0;
  for (int t = 0; t < 60; ++t) {
    auto tx = *db->Begin();
    const double dice = rng.NextDouble();
    bool ok = true;
    if (dice < 0.55) {
      ok = db->Insert(tx, table, {Value(next_key++),
                                  Value(rng.NextString(8))})
               .ok();
    } else if (next_key > 0) {
      const int64_t key = static_cast<int64_t>(rng.Uniform(next_key));
      auto rows =
          db->ScanEqual(table, 0, Value(key), tx.snapshot(), tx.tid());
      if (rows.ok() && !rows->empty()) {
        if (dice < 0.8) {
          ok = db->Update(tx, table, rows->front(),
                          {Value(key), Value(rng.NextString(8))})
                   .ok();
        } else {
          ok = db->Delete(tx, table, rows->front()).ok();
        }
      }
    }
    if (!ok || rng.Bernoulli(0.1)) {
      EXPECT_TRUE(db->Abort(tx).ok());
    } else {
      EXPECT_TRUE(db->Commit(tx).ok());
    }
    if (t == 30) {
      EXPECT_TRUE(db->Merge("kv").ok());
    }
  }

  auto recovered =
      std::move(Database::CrashAndRecover(std::move(db))).ValueUnsafe();
  storage::Table* rtable = *recovered->GetTable("kv");
  std::map<int64_t, std::string> contents;
  rtable->ForEachVisibleRow(
      recovered->ReadSnapshot(), storage::kTidNone,
      [&](storage::RowLocation loc) {
        contents[std::get<int64_t>(rtable->GetValue(loc, 0))] =
            std::get<std::string>(rtable->GetValue(loc, 1));
      });
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return contents;
}

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceTest, AllEnginesRecoverIdenticalState) {
  const uint64_t seed = GetParam();
  const auto nvm_state = RunScript(DurabilityMode::kNvm, seed);
  const auto wal_state = RunScript(DurabilityMode::kWalValue, seed);
  const auto dict_state = RunScript(DurabilityMode::kWalDict, seed);
  EXPECT_FALSE(nvm_state.empty());
  EXPECT_EQ(nvm_state, wal_state) << "seed " << seed;
  EXPECT_EQ(nvm_state, dict_state) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hyrise_nv::core
