// Serving-layer tests: CRUD over the client library, session transaction
// lifetime (mid-transaction disconnects must abort, not leak), graceful
// drain, admission control, and client reconnect across a server
// restart.

#include "net/server.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "core/database.h"
#include "net/client.h"
#include "net/net_util.h"
#include "nvm/nvm_env.h"

namespace hyrise_nv::net {
namespace {

using storage::DataType;
using storage::Value;

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = nvm::TempPath("net_server_test");
    std::filesystem::create_directories(dir_);
    StartDb(/*create=*/true);
  }

  void StartDb(bool create, ServerOptions server_options = {}) {
    core::DatabaseOptions options;
    options.mode = core::DurabilityMode::kNvm;
    options.region_size = 64 << 20;
    options.data_dir = dir_;
    auto db_result = create ? core::Database::Create(options)
                            : core::Database::Open(options);
    ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
    db_ = std::move(*db_result);
    server_options.num_workers = 2;
    auto server_result = Server::Start(db_.get(), server_options);
    ASSERT_TRUE(server_result.ok()) << server_result.status().ToString();
    server_ = std::move(*server_result);
  }

  void StopDb() {
    if (server_) {
      server_->Drain();
      server_->Wait();
      server_.reset();
    }
    if (db_) {
      ASSERT_TRUE(db_->Close().ok());
      db_.reset();
    }
  }

  void TearDown() override {
    StopDb();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  Client MakeClient(int max_retries = 3) {
    ClientOptions options;
    options.port = server_->port();
    options.max_retries = max_retries;
    options.retry_base_ms = 5;
    return Client(options);
  }

  std::string dir_;
  std::unique_ptr<core::Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetServerTest, HandshakeReportsModeAndSession) {
  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.protocol_version(), kProtocolVersionMax);
  EXPECT_EQ(client.server_mode(),
            static_cast<uint8_t>(core::DurabilityMode::kNvm));
  EXPECT_NE(client.session_id(), 0u);
}

TEST_F(NetServerTest, CrudRoundtrip) {
  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  auto id_result = client.CreateTable(
      "orders", {{"id", DataType::kInt64},
                 {"amount", DataType::kDouble},
                 {"customer", DataType::kString}});
  ASSERT_TRUE(id_result.ok()) << id_result.status().ToString();
  ASSERT_TRUE(client.CreateIndex("orders", 0).ok());

  ASSERT_TRUE(client.Begin().ok());
  auto loc1 = client.Insert(
      "orders", {Value(int64_t{1}), Value(9.5), Value(std::string("ada"))});
  ASSERT_TRUE(loc1.ok()) << loc1.status().ToString();
  auto loc2 = client.Insert(
      "orders", {Value(int64_t{2}), Value(1.5), Value(std::string("bob"))});
  ASSERT_TRUE(loc2.ok());
  auto cid = client.Commit();
  ASSERT_TRUE(cid.ok()) << cid.status().ToString();
  EXPECT_NE(*cid, 0u);

  auto count = client.Count("orders");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);

  auto scan = client.ScanEqual("orders", 0, Value(int64_t{1}));
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(scan->rows[0].values[2]), "ada");

  // Update within a transaction, visible after commit.
  ASSERT_TRUE(client.Begin().ok());
  auto new_loc = client.Update(
      "orders", scan->rows[0].loc,
      {Value(int64_t{1}), Value(20.0), Value(std::string("ada"))});
  ASSERT_TRUE(new_loc.ok()) << new_loc.status().ToString();
  ASSERT_TRUE(client.Commit().ok());
  auto rescan = client.ScanEqual("orders", 0, Value(int64_t{1}));
  ASSERT_TRUE(rescan.ok());
  ASSERT_EQ(rescan->rows.size(), 1u);
  EXPECT_EQ(std::get<double>(rescan->rows[0].values[1]), 20.0);

  // Delete, then range over the remainder.
  ASSERT_TRUE(client.Begin().ok());
  ASSERT_TRUE(client.Delete("orders", rescan->rows[0].loc).ok());
  ASSERT_TRUE(client.Commit().ok());
  auto range = client.ScanRange("orders", 0, Value(int64_t{0}),
                                Value(int64_t{100}));
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range->rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(range->rows[0].values[0]), 2);
}

TEST_F(NetServerTest, AbortRollsBackSessionTransaction) {
  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.CreateTable("t", {{"k", DataType::kInt64}}).ok());
  ASSERT_TRUE(client.Begin().ok());
  ASSERT_TRUE(client.Insert("t", {Value(int64_t{7})}).ok());
  ASSERT_TRUE(client.Abort().ok());
  auto count = client.Count("t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST_F(NetServerTest, MidTransactionDisconnectAbortsAndStaysInvisible) {
  Client writer = MakeClient();
  ASSERT_TRUE(writer.Connect().ok());
  ASSERT_TRUE(writer.CreateTable("t", {{"k", DataType::kInt64}}).ok());
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Insert("t", {Value(int64_t{42})}).ok());
  ASSERT_EQ(db_->txn_manager().ActiveCount(), 1u);

  // Hard disconnect mid-transaction: the server must abort the session's
  // transaction.
  writer.Close();
  for (int i = 0; i < 200 && db_->txn_manager().ActiveCount() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(db_->txn_manager().ActiveCount(), 0u);

  // The aborted insert is invisible to a fresh reader.
  Client reader = MakeClient();
  ASSERT_TRUE(reader.Connect().ok());
  auto count = reader.Count("t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
  auto scan = reader.ScanEqual("t", 0, Value(int64_t{42}));
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->rows.empty());
}

TEST_F(NetServerTest, SecondBeginOnSessionRejected) {
  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Begin().ok());
  auto second = client.Begin();
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.Abort().ok());
}

TEST_F(NetServerTest, DrainAbortsOpenTransactionsAndRefusesNewWork) {
  Client client = MakeClient(/*max_retries=*/0);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.CreateTable("t", {{"k", DataType::kInt64}}).ok());
  ASSERT_TRUE(client.Begin().ok());
  ASSERT_TRUE(client.Insert("t", {Value(int64_t{1})}).ok());

  server_->Drain();
  server_->Wait();
  EXPECT_EQ(server_->counters().open_connections, 0);
  EXPECT_EQ(db_->txn_manager().ActiveCount(), 0u);

  // New connections are refused outright.
  ClientOptions options;
  options.port = server_->port();
  options.max_retries = 0;
  Client late(options);
  EXPECT_FALSE(late.ConnectOnce().ok());
}

TEST_F(NetServerTest, OverloadRejectionIsRetryableCode) {
  // max_inflight=0 rejects every (non-hello) request with kOverloaded.
  StopDb();
  ServerOptions options;
  options.max_inflight = 0;
  StartDb(/*create=*/false, options);
  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  Status status = client.Ping();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(client.last_wire_code(), WireCode::kOverloaded);
  EXPECT_TRUE(IsRetryableWireCode(client.last_wire_code()));
  EXPECT_GE(server_->counters().overload_rejected, 1u);
}

TEST_F(NetServerTest, ConnectionCapRejectsExtraClients) {
  StopDb();
  ServerOptions options;
  options.max_connections = 1;
  StartDb(/*create=*/false, options);
  Client first = MakeClient();
  ASSERT_TRUE(first.Connect().ok());
  ClientOptions client_options;
  client_options.port = server_->port();
  client_options.max_retries = 0;
  Client second(client_options);
  Status status = second.ConnectOnce();
  EXPECT_FALSE(status.ok());
  // First client is unaffected.
  EXPECT_TRUE(first.Ping().ok());
}

TEST_F(NetServerTest, ClientReconnectsAfterServerRestart) {
  Client client = MakeClient(/*max_retries=*/50);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.CreateTable("t", {{"k", DataType::kInt64}}).ok());
  ASSERT_TRUE(client.Begin().ok());
  ASSERT_TRUE(client.Insert("t", {Value(int64_t{1})}).ok());
  ASSERT_TRUE(client.Commit().ok());
  const uint16_t port = server_->port();

  // Stop serving, close, reopen on the same port: the client's next
  // request fails (connection died), then its auto-reconnect retries
  // until the restarted server answers.
  StopDb();
  ServerOptions options;
  options.port = port;
  std::thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    StartDb(/*create=*/false, options);
  });
  ClientOptions client_options;
  client_options.port = port;
  client_options.max_retries = 100;
  client_options.retry_base_ms = 10;
  Client reconnecting(client_options);
  Status status = reconnecting.Connect();
  restarter.join();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(reconnecting.last_connect_attempts(), 1);
  auto count = reconnecting.Count("t");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 1u);
}

TEST_F(NetServerTest, StatsAndRecoveryInfoServeJson) {
  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"server\""), std::string::npos);
  EXPECT_NE(stats->find("\"metrics\""), std::string::npos);
  auto recovery = client.RecoveryInfo();
  ASSERT_TRUE(recovery.ok());
  EXPECT_NE(recovery->find("\"mode\":\"nvm\""), std::string::npos);
}

TEST_F(NetServerTest, BadRowLocationRejectedNotCrashed) {
  Client client = MakeClient();
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.CreateTable("t", {{"k", DataType::kInt64}}).ok());
  ASSERT_TRUE(client.Begin().ok());
  // Out-of-range row locations come from an untrusted peer and must be
  // bounds-checked before touching MVCC arrays.
  Status status =
      client.Delete("t", storage::RowLocation{false, 1'000'000});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(client.Abort().ok());
}

// --- Engine-level regression: Close() with open transactions --------------

TEST(DatabaseShutdownTest, CloseAbortsOpenTransactions) {
  const std::string dir = nvm::TempPath("close_open_txn_test");
  std::filesystem::create_directories(dir);
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  options.data_dir = dir;
  auto db_result = core::Database::Create(options);
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(*db_result);
  auto schema = *storage::Schema::Make({{"k", DataType::kInt64}});
  auto table_result = db->CreateTable("t", schema);
  ASSERT_TRUE(table_result.ok());

  // Commit one row, leave a second transaction open across Close().
  ASSERT_TRUE(db->InsertAutoCommit(*table_result, {Value(int64_t{1})}).ok());
  auto tx_result = db->Begin();
  ASSERT_TRUE(tx_result.ok());
  txn::Transaction tx = *tx_result;
  ASSERT_TRUE(db->Insert(tx, *table_result, {Value(int64_t{2})}).ok());
  ASSERT_EQ(db->txn_manager().ActiveCount(), 1u);

  // Close must abort (not leak) the open transaction and still seal a
  // clean image.
  ASSERT_TRUE(db->Close().ok());
  EXPECT_EQ(db->txn_manager().ActiveCount(), 0u);
  EXPECT_FALSE(tx.active());
  db.reset();

  // Reopen: only the committed row is visible, and recovery treats the
  // image as a clean shutdown.
  auto reopen_result = core::Database::Open(options);
  ASSERT_TRUE(reopen_result.ok()) << reopen_result.status().ToString();
  auto reopened = std::move(*reopen_result);
  auto table2 = reopened->GetTable("t");
  ASSERT_TRUE(table2.ok());
  auto scan = reopened->ScanEqual(*table2, 0, Value(int64_t{2}),
                                  reopened->ReadSnapshot(),
                                  storage::kTidNone);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->empty());
  auto scan1 = reopened->ScanEqual(*table2, 0, Value(int64_t{1}),
                                   reopened->ReadSnapshot(),
                                   storage::kTidNone);
  ASSERT_TRUE(scan1.ok());
  EXPECT_EQ(scan1->size(), 1u);
  ASSERT_TRUE(reopened->Close().ok());
  reopened.reset();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace hyrise_nv::net
