#include "storage/dictionary.h"

#include <gtest/gtest.h>

#include "alloc/pheap.h"

namespace hyrise_nv::storage {
namespace {

class DictionaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::PmemRegionOptions opts;
    opts.tracking = nvm::TrackingMode::kShadow;
    auto result = alloc::PHeap::Create(8 << 20, opts);
    ASSERT_TRUE(result.ok());
    heap_ = std::move(result).ValueUnsafe();
    auto delta_off = heap_->allocator().Alloc(sizeof(PDeltaColumnMeta));
    ASSERT_TRUE(delta_off.ok());
    delta_meta_ = heap_->Resolve<PDeltaColumnMeta>(*delta_off);
    DeltaDictionary::Format(heap_->region(), delta_meta_);
    auto main_off = heap_->allocator().Alloc(sizeof(PMainColumnMeta));
    ASSERT_TRUE(main_off.ok());
    main_meta_ = heap_->Resolve<PMainColumnMeta>(*main_off);
    MainColumnFormat();
  }

  void MainColumnFormat() {
    alloc::PVector<uint64_t>::Format(heap_->region(),
                                     &main_meta_->dict_values);
    alloc::PVector<char>::Format(heap_->region(), &main_meta_->dict_blob);
  }

  DeltaDictionary MakeDelta(DataType type) {
    return DeltaDictionary(type, &heap_->region(), &heap_->allocator(),
                           delta_meta_);
  }

  MainDictionary MakeMain(DataType type) {
    return MainDictionary(type, &heap_->region(), &heap_->allocator(),
                          main_meta_);
  }

  std::unique_ptr<alloc::PHeap> heap_;
  PDeltaColumnMeta* delta_meta_ = nullptr;
  PMainColumnMeta* main_meta_ = nullptr;
};

TEST_F(DictionaryTest, NumericEncodingRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{42},
                    int64_t{INT64_MIN}, int64_t{INT64_MAX}}) {
    const uint64_t bits = EncodeNumeric(Value(v), DataType::kInt64);
    EXPECT_EQ(std::get<int64_t>(DecodeNumeric(bits, DataType::kInt64)), v);
  }
  for (double v : {0.0, -1.5, 3.14159, 1e300, -1e-300}) {
    const uint64_t bits = EncodeNumeric(Value(v), DataType::kDouble);
    EXPECT_EQ(std::get<double>(DecodeNumeric(bits, DataType::kDouble)), v);
  }
}

TEST_F(DictionaryTest, NumericCompareSignedness) {
  const auto enc = [](int64_t v) {
    return EncodeNumeric(Value(v), DataType::kInt64);
  };
  EXPECT_LT(CompareNumericEncoded(DataType::kInt64, enc(-5), enc(3)), 0);
  EXPECT_GT(CompareNumericEncoded(DataType::kInt64, enc(7), enc(-7)), 0);
  EXPECT_EQ(CompareNumericEncoded(DataType::kInt64, enc(9), enc(9)), 0);
  const auto encd = [](double v) {
    return EncodeNumeric(Value(v), DataType::kDouble);
  };
  EXPECT_LT(CompareNumericEncoded(DataType::kDouble, encd(-0.5), encd(0.5)),
            0);
}

TEST_F(DictionaryTest, DeltaDedupsValues) {
  auto dict = MakeDelta(DataType::kInt64);
  auto a = dict.GetOrInsert(Value(int64_t{10}));
  auto b = dict.GetOrInsert(Value(int64_t{20}));
  auto c = dict.GetOrInsert(Value(int64_t{10}));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *c);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(dict.size(), 2u);
}

TEST_F(DictionaryTest, DeltaLookupAndGetValue) {
  auto dict = MakeDelta(DataType::kInt64);
  ASSERT_TRUE(dict.GetOrInsert(Value(int64_t{7})).ok());
  EXPECT_NE(dict.Lookup(Value(int64_t{7})), kInvalidValueId);
  EXPECT_EQ(dict.Lookup(Value(int64_t{8})), kInvalidValueId);
  EXPECT_EQ(std::get<int64_t>(dict.GetValue(0)), 7);
}

TEST_F(DictionaryTest, DeltaStringsDedupAndRoundTrip) {
  auto dict = MakeDelta(DataType::kString);
  auto a = dict.GetOrInsert(Value(std::string("alpha")));
  auto b = dict.GetOrInsert(Value(std::string("beta")));
  auto c = dict.GetOrInsert(Value(std::string("alpha")));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *c);
  EXPECT_EQ(std::get<std::string>(dict.GetValue(*b)), "beta");
  EXPECT_EQ(dict.Lookup(Value(std::string("beta"))), *b);
  EXPECT_EQ(dict.Lookup(Value(std::string("gamma"))), kInvalidValueId);
}

TEST_F(DictionaryTest, DeltaEmptyStringSupported) {
  auto dict = MakeDelta(DataType::kString);
  auto id = dict.GetOrInsert(Value(std::string("")));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(std::get<std::string>(dict.GetValue(*id)), "");
}

TEST_F(DictionaryTest, DeltaAttachRebuildsDedupMap) {
  {
    auto dict = MakeDelta(DataType::kString);
    ASSERT_TRUE(dict.GetOrInsert(Value(std::string("x"))).ok());
    ASSERT_TRUE(dict.GetOrInsert(Value(std::string("y"))).ok());
  }
  // Simulate restart: fresh handle, Attach rebuilds the map.
  auto dict = MakeDelta(DataType::kString);
  ASSERT_TRUE(dict.Attach().ok());
  EXPECT_EQ(dict.size(), 2u);
  auto again = dict.GetOrInsert(Value(std::string("x")));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u) << "attach must rediscover existing entries";
}

TEST_F(DictionaryTest, DeltaSurvivesCrash) {
  auto dict = MakeDelta(DataType::kInt64);
  ASSERT_TRUE(dict.GetOrInsert(Value(int64_t{1})).ok());
  ASSERT_TRUE(dict.GetOrInsert(Value(int64_t{2})).ok());
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());
  auto fresh = MakeDelta(DataType::kInt64);
  ASSERT_TRUE(fresh.Attach().ok());
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(fresh.GetValue(1)), 2);
}

TEST_F(DictionaryTest, MainBinarySearchNumeric) {
  auto main = MakeMain(DataType::kInt64);
  std::vector<uint64_t> sorted;
  for (int64_t v : {-100, -5, 0, 3, 42, 999}) {
    sorted.push_back(EncodeNumeric(Value(v), DataType::kInt64));
  }
  ASSERT_TRUE(main.values().BulkAppend(sorted.data(), sorted.size()).ok());

  EXPECT_EQ(main.Find(Value(int64_t{42})), 4u);
  EXPECT_EQ(main.Find(Value(int64_t{43})), kInvalidValueId);
  EXPECT_EQ(main.LowerBound(Value(int64_t{-100})), 0u);
  EXPECT_EQ(main.LowerBound(Value(int64_t{1})), 3u);
  EXPECT_EQ(main.UpperBound(Value(int64_t{3})), 4u);
  EXPECT_EQ(main.LowerBound(Value(int64_t{10000})), main.size());
  EXPECT_EQ(std::get<int64_t>(main.GetValue(0)), -100);
}

TEST_F(DictionaryTest, MainBinarySearchStrings) {
  auto main = MakeMain(DataType::kString);
  std::vector<uint64_t> offsets;
  for (const char* s : {"apple", "banana", "cherry"}) {
    auto off = BlobAppend(main.blob(), s);
    ASSERT_TRUE(off.ok());
    offsets.push_back(*off);
  }
  ASSERT_TRUE(
      main.values().BulkAppend(offsets.data(), offsets.size()).ok());

  EXPECT_EQ(main.Find(Value(std::string("banana"))), 1u);
  EXPECT_EQ(main.Find(Value(std::string("blueberry"))), kInvalidValueId);
  EXPECT_EQ(main.LowerBound(Value(std::string("b"))), 1u);
  EXPECT_EQ(main.UpperBound(Value(std::string("cherry"))), 3u);
  EXPECT_EQ(std::get<std::string>(main.GetValue(2)), "cherry");
}

TEST_F(DictionaryTest, EmptyMainDictionaryBehaves) {
  auto main = MakeMain(DataType::kInt64);
  EXPECT_EQ(main.size(), 0u);
  EXPECT_EQ(main.Find(Value(int64_t{1})), kInvalidValueId);
  EXPECT_EQ(main.LowerBound(Value(int64_t{1})), 0u);
}

TEST_F(DictionaryTest, BlobReadWriteRoundTrip) {
  auto desc_off = heap_->allocator().Alloc(sizeof(alloc::PVectorDesc));
  ASSERT_TRUE(desc_off.ok());
  auto* desc = heap_->Resolve<alloc::PVectorDesc>(*desc_off);
  alloc::PVector<char>::Format(heap_->region(), desc);
  alloc::PVector<char> blob(&heap_->region(), &heap_->allocator(), desc);
  auto a = BlobAppend(blob, "hello");
  auto b = BlobAppend(blob, "");
  auto c = BlobAppend(blob, std::string(1000, 'z'));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(BlobRead(blob, *a), "hello");
  EXPECT_EQ(BlobRead(blob, *b), "");
  EXPECT_EQ(BlobRead(blob, *c).size(), 1000u);
}

}  // namespace
}  // namespace hyrise_nv::storage
