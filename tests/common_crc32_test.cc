#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace hyrise_nv {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C check value for "123456789".
  const std::string check = "123456789";
  EXPECT_EQ(Crc32c(check.data(), check.size()), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsSeed) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32c(nullptr, 0, 0xDEADBEEF), 0xDEADBEEFu);
}

TEST(Crc32cTest, Incremental) {
  const std::string a = "hello, ";
  const std::string b = "world";
  const std::string ab = a + b;
  const uint32_t whole = Crc32c(ab.data(), ab.size());
  const uint32_t part = Crc32c(b.data(), b.size(),
                               Crc32c(a.data(), a.size()));
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, SensitiveToEveryByte) {
  std::string data(100, 'x');
  const uint32_t base = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 13) {
    std::string mutated = data;
    mutated[i] ^= 1;
    EXPECT_NE(Crc32c(mutated.data(), mutated.size()), base)
        << "flip at byte " << i << " not detected";
  }
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xFFFFFFFFu, 0x12345678u, 0xE3069283u}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

}  // namespace
}  // namespace hyrise_nv
