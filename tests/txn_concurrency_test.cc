// Concurrency tests for the commit pipeline: N threads committing and
// aborting at once, snapshot-visibility atomicity (a multi-row commit is
// seen all-or-nothing by every snapshot — the behavioural assertion that
// the watermark never advances past a half-stamped CID), watermark
// monotonicity under concurrent publish, and kill -9 mid-concurrent-
// commit roll-forward.
//
// Stress hook: when HYRISE_NV_FAULT_STALL_NS is set the fixture arms the
// kNvmPersistStall fault point with that stall, so CI can exercise the
// publish queue under induced persist latency (commits pile up behind a
// stalled predecessor and must still publish in order).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <random>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/fault_injection.h"
#include "core/database.h"
#include "core/query.h"
#include "obs/metrics.h"

namespace hyrise_nv::core {
namespace {

using storage::DataType;
using storage::Value;

/// Rows per transaction: the atomicity oracle asserts every tag is
/// visible 0 or exactly kRowsPerTag times under every snapshot.
constexpr int kRowsPerTag = 4;

storage::Schema TagSchema() {
  return *storage::Schema::Make(
      {{"tag", DataType::kInt64}, {"seq", DataType::kInt64}});
}

class TxnConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (const char* stall = std::getenv("HYRISE_NV_FAULT_STALL_NS")) {
      FaultPlan plan;
      plan.probability = 0.05;
      plan.param = std::strtoull(stall, nullptr, 10);
      FaultInjector::Instance().Arm(FaultPoint::kNvmPersistStall, plan);
    }
  }
  void TearDown() override { FaultInjector::Instance().DisarmAll(); }

  static std::unique_ptr<Database> MakeDb() {
    DatabaseOptions options;
    options.mode = DurabilityMode::kNvm;
    options.region_size = 256 << 20;
    options.tracking = nvm::TrackingMode::kNone;
    return std::move(Database::Create(options)).ValueUnsafe();
  }

  /// Commits one kRowsPerTag-row transaction under `tag`. Returns false
  /// on failure (test asserts none).
  static bool CommitTag(Database* db, storage::Table* table, int64_t tag) {
    auto tx = db->Begin();
    if (!tx.ok()) return false;
    for (int r = 0; r < kRowsPerTag; ++r) {
      if (!db->Insert(*tx, table, {Value(tag), Value(int64_t{r})}).ok()) {
        (void)db->Abort(*tx);
        return false;
      }
    }
    return db->Commit(*tx).ok();
  }
};

TEST_F(TxnConcurrencyTest, ConcurrentCommitsAreAtomicUnderSnapshots) {
  auto db = MakeDb();
  storage::Table* table = *db->CreateTable("tags", TagSchema());
  ASSERT_TRUE(db->CreateIndex("tags", 0).ok());

  constexpr int kWriters = 4;
  constexpr int kCommitsPerWriter = 120;
  std::atomic<int> write_failures{0};
  std::atomic<int64_t> high_tag[kWriters];
  for (auto& h : high_tag) h = -1;
  std::atomic<bool> stop{false};

  // Watermark observer: the persisted watermark must be monotone even
  // while many committers publish concurrently.
  std::atomic<int> watermark_regressions{0};
  std::thread observer([&] {
    storage::Cid prev = db->txn_manager().watermark();
    while (!stop.load(std::memory_order_acquire)) {
      const storage::Cid now = db->txn_manager().watermark();
      if (now < prev) ++watermark_regressions;
      prev = now;
    }
  });

  // Readers: any tag, under any snapshot, is visible all-or-nothing. A
  // watermark that passed a half-stamped CID would fail this — some of
  // the tag's rows would satisfy begin <= snapshot and some would not.
  std::atomic<int> atomicity_violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(1234 + r);
      while (!stop.load(std::memory_order_acquire)) {
        const int w = static_cast<int>(rng() % kWriters);
        const int64_t tag = high_tag[w].load(std::memory_order_acquire);
        if (tag < 0) continue;
        auto rows = db->ScanEqual(table, 0, Value(tag),
                                  db->ReadSnapshot(), storage::kTidNone);
        if (!rows.ok()) {
          ++atomicity_violations;
          continue;
        }
        const size_t n = rows->size();
        if (n != 0 && n != kRowsPerTag) ++atomicity_violations;
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        const int64_t tag = int64_t{w} * 1'000'000 + i;
        if (!CommitTag(db.get(), table, tag)) {
          ++write_failures;
          return;
        }
        high_tag[w].store(tag, std::memory_order_release);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  observer.join();

  EXPECT_EQ(write_failures.load(), 0);
  EXPECT_EQ(atomicity_violations.load(), 0)
      << "a snapshot observed a torn multi-row commit";
  EXPECT_EQ(watermark_regressions.load(), 0);
  // Every commit fully visible at the final snapshot.
  EXPECT_EQ(core::CountRows(table, db->ReadSnapshot(), storage::kTidNone),
            static_cast<uint64_t>(kWriters * kCommitsPerWriter *
                                  kRowsPerTag));
}

TEST_F(TxnConcurrencyTest, MixedCommitsAndAbortsNeverLeak) {
  auto db = MakeDb();
  storage::Table* table = *db->CreateTable("tags", TagSchema());
  ASSERT_TRUE(db->CreateIndex("tags", 0).ok());

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 150;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      std::mt19937_64 rng(99 + w);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        // Aborted transactions use the high tag bit so the final check
        // can prove none of their rows ever became visible.
        const bool abort = (rng() % 3) == 0;
        const int64_t tag = (abort ? int64_t{1} << 40 : 0) +
                            int64_t{w} * 1'000'000 + i;
        auto tx = db->Begin();
        if (!tx.ok()) {
          ++failures;
          return;
        }
        bool inserted = true;
        for (int r = 0; r < kRowsPerTag && inserted; ++r) {
          inserted =
              db->Insert(*tx, table, {Value(tag), Value(int64_t{r})}).ok();
        }
        if (!inserted) {
          ++failures;
          (void)db->Abort(*tx);
          return;
        }
        const Status fin = abort ? db->Abort(*tx) : db->Commit(*tx);
        if (!fin.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // No aborted row visible; every committed tag complete.
  const storage::Cid snapshot = db->ReadSnapshot();
  std::map<int64_t, uint64_t> by_tag;
  table->ForEachVisibleRow(snapshot, storage::kTidNone,
                           [&](storage::RowLocation loc) {
                             ++by_tag[std::get<int64_t>(
                                 table->GetValue(loc, 0))];
                           });
  uint64_t committed_tags = 0;
  for (const auto& [tag, count] : by_tag) {
    EXPECT_LT(tag, int64_t{1} << 40) << "aborted transaction leaked rows";
    EXPECT_EQ(count, static_cast<uint64_t>(kRowsPerTag))
        << "torn commit for tag " << tag;
    ++committed_tags;
  }
  EXPECT_GT(committed_tags, 0u);
}

TEST_F(TxnConcurrencyTest, ReadOnlyCommitsAreCounted) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "metrics compiled out";
#else
  auto db = MakeDb();
  const auto count = [&] {
    const auto* c =
        db->MetricsSnapshot().FindCounter("txn.commit.count");
    return c != nullptr ? c->value : 0;
  };
  const uint64_t before = count();
  auto tx = db->Begin();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(db->Commit(*tx).ok());
  EXPECT_EQ(count(), before + 1)
      << "read-only commits must show up in txn.commit.count";
#endif
}

#if defined(__SANITIZE_THREAD__)
#define HYRISE_NV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HYRISE_NV_TSAN 1
#endif
#endif

TEST_F(TxnConcurrencyTest, KillNineMidConcurrentCommitRollsForward) {
#ifdef HYRISE_NV_TSAN
  GTEST_SKIP() << "fork with threads is unsupported under TSan";
#else
  const std::string dir =
      "/tmp/hyrise-nv-txn-conc-" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string ready_marker = dir + "/loaded";

  DatabaseOptions options;
  options.mode = DurabilityMode::kNvm;
  options.region_size = 256 << 20;
  options.data_dir = dir;
  // File-backed without the crash shadow: a SIGKILL leaves exactly the
  // bytes the pipeline persisted — the honest crash image.
  options.tracking = nvm::TrackingMode::kNone;

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: concurrent tagged commits until killed.
    auto db_result = Database::Create(options);
    if (!db_result.ok()) ::_exit(2);
    auto db = std::move(db_result).ValueUnsafe();
    auto table_result = db->CreateTable("tags", TagSchema());
    if (!table_result.ok()) ::_exit(2);
    storage::Table* table = *table_result;
    if (::creat(ready_marker.c_str(), 0644) < 0) ::_exit(2);
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
      writers.emplace_back([&, w] {
        for (int64_t i = 0;; ++i) {
          (void)CommitTag(db.get(), table, int64_t{w} * 1'000'000 + i);
        }
      });
    }
    for (auto& t : writers) t.join();
    ::_exit(0);
  }

  // Parent: wait for the child to start committing, let the pipeline
  // run hot for a moment, then SIGKILL mid-commit.
  for (int i = 0; i < 1000 && !std::filesystem::exists(ready_marker);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(std::filesystem::exists(ready_marker)) << "child never loaded";
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);

  // Recover: in-flight commits roll forward; every visible tag must be
  // complete (kRowsPerTag rows) — no half-stamped commit survives.
  auto db_result = Database::Open(options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto db = std::move(db_result).ValueUnsafe();
  EXPECT_TRUE(db->last_recovery_report().recovered);
  auto table_result = db->GetTable("tags");
  ASSERT_TRUE(table_result.ok());
  storage::Table* table = *table_result;
  const storage::Cid snapshot = db->ReadSnapshot();
  std::map<int64_t, uint64_t> by_tag;
  table->ForEachVisibleRow(snapshot, storage::kTidNone,
                           [&](storage::RowLocation loc) {
                             ++by_tag[std::get<int64_t>(
                                 table->GetValue(loc, 0))];
                           });
  for (const auto& [tag, count] : by_tag) {
    EXPECT_EQ(count, static_cast<uint64_t>(kRowsPerTag))
        << "crash left a torn commit for tag " << tag;
  }
  // The child ran long enough that some commits must have landed.
  EXPECT_GT(by_tag.size(), 0u);
  // Post-recovery writes still work (slots were released).
  EXPECT_TRUE(CommitTag(db.get(), table, int64_t{1} << 50));
  std::filesystem::remove_all(dir);
#endif
}

}  // namespace
}  // namespace hyrise_nv::core
