// Corruption handling on the WAL side: mid-log damage vs. torn tails,
// corrupt checkpoints (with and without a crash), and the NVM→WAL
// recovery fallback when the NVM image itself is damaged.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/database.h"
#include "core/query.h"
#include "nvm/nvm_env.h"

namespace hyrise_nv::core {
namespace {

using storage::DataType;
using storage::Value;

storage::Schema KvSchema() {
  return *storage::Schema::Make(
      {{"k", DataType::kInt64}, {"v", DataType::kString}});
}

std::string MakeDataDir(const std::string& prefix) {
  const std::string dir = nvm::TempPath(prefix);
  std::filesystem::create_directories(dir);
  return dir;
}

void FlipByteInFile(const std::string& path, uint64_t offset,
                    uint8_t mask = 0x10) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  ASSERT_TRUE(file.good());
  byte = static_cast<char>(byte ^ mask);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  ASSERT_TRUE(file.good());
}

class WalCorruptionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  DatabaseOptions WalOptions(const std::string& prefix) {
    DatabaseOptions options;
    options.mode = DurabilityMode::kWalValue;
    options.region_size = 64 << 20;
    dir_ = MakeDataDir(prefix);
    options.data_dir = dir_;
    return options;
  }

  std::string dir_;
};

TEST_F(WalCorruptionTest, MidLogCorruptionFailsLoudly) {
  auto options = WalOptions("midlog_test");
  {
    auto db = std::move(Database::Create(options)).ValueUnsafe();
    storage::Table* table = *db->CreateTable("kv", KvSchema());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                               Value(std::string("v"))})
                      .ok());
    }
    ASSERT_TRUE(db->Close().ok());
  }
  // A bit flip in the middle of the durable log — with many intact
  // records after it — is media damage, not a torn tail. Silently
  // truncating there would drop committed transactions.
  const uint64_t log_size = nvm::FileSize(options.LogPath());
  ASSERT_GT(log_size, 0u);
  FlipByteInFile(options.LogPath(), log_size / 2);

  auto db_result = Database::Open(options);
  ASSERT_FALSE(db_result.ok());
  EXPECT_TRUE(db_result.status().IsCorruption())
      << db_result.status().ToString();
  EXPECT_NE(db_result.status().message().find("mid-log"),
            std::string::npos)
      << db_result.status().message();
}

TEST_F(WalCorruptionTest, DamagedFinalRecordIsATornTail) {
  auto options = WalOptions("torntail_test");
  {
    auto db = std::move(Database::Create(options)).ValueUnsafe();
    storage::Table* table = *db->CreateTable("kv", KvSchema());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                               Value(std::string("v"))})
                      .ok());
    }
    ASSERT_TRUE(db->Close().ok());
  }
  // Damage inside the very last record (the final commit) looks exactly
  // like a crash between flush and sync: replay stops there. The final
  // transaction's insert stays uncommitted; everything before survives.
  const uint64_t log_size = nvm::FileSize(options.LogPath());
  FlipByteInFile(options.LogPath(), log_size - 4);

  auto db_result = Database::Open(options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result;
  storage::Table* table = *db->GetTable("kv");
  EXPECT_EQ(CountRows(table, db->ReadSnapshot(), storage::kTidNone), 19u);
}

TEST_F(WalCorruptionTest, CorruptCheckpointFallsBackToFullReplay) {
  auto options = WalOptions("ckpt_corrupt_test");
  {
    auto db = std::move(Database::Create(options)).ValueUnsafe();
    storage::Table* table = *db->CreateTable("kv", KvSchema());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                               Value(std::string("a"))})
                      .ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    for (int i = 10; i < 20; ++i) {
      ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                               Value(std::string("b"))})
                      .ok());
    }
    ASSERT_TRUE(db->Close().ok());
  }
  const uint64_t ckpt_size = nvm::FileSize(options.CheckpointPath());
  ASSERT_GT(ckpt_size, 0u);
  FlipByteInFile(options.CheckpointPath(), ckpt_size / 2);

  auto db_result = Database::Open(options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result;
  EXPECT_TRUE(db->last_recovery_report().log.checkpoint_fallback);
  EXPECT_GT(db->last_recovery_report().log.replayed_records, 0u);
  storage::Table* table = *db->GetTable("kv");
  EXPECT_EQ(CountRows(table, db->ReadSnapshot(), storage::kTidNone), 20u);
}

TEST_F(WalCorruptionTest, NoCommittedTxnLostAcrossCrashPlusCorruptCkpt) {
  auto options = WalOptions("ckpt_crash_test");
  options.group_commit_every = 1;  // every commit synced = durable
  auto db = std::move(Database::Create(options)).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                             Value(std::string("a"))})
                    .ok());
  }
  ASSERT_TRUE(db->Checkpoint().ok());
  for (int i = 10; i < 20; ++i) {
    ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                             Value(std::string("b"))})
                    .ok());
  }
  // Power failure (unsynced tail dropped — empty here, sync_every=1),
  // then the checkpoint file turns out to be damaged.
  ASSERT_TRUE(db->log_manager()->device().SimulateCrash().ok());
  db.reset();
  const uint64_t ckpt_size = nvm::FileSize(options.CheckpointPath());
  FlipByteInFile(options.CheckpointPath(), ckpt_size / 2);

  auto db_result = Database::Open(options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& recovered = *db_result;
  EXPECT_TRUE(recovered->last_recovery_report().log.checkpoint_fallback);
  storage::Table* rtable = *recovered->GetTable("kv");
  EXPECT_EQ(CountRows(rtable, recovered->ReadSnapshot(),
                      storage::kTidNone),
            20u)
      << "every committed transaction must survive crash + corrupt "
         "checkpoint";
}

TEST_F(WalCorruptionTest, CorruptNvmImageFallsBackToWal) {
  auto options = WalOptions("nvm_fallback_test");
  {
    // A WAL-mode run leaves wal.log behind...
    auto db = std::move(Database::Create(options)).ValueUnsafe();
    storage::Table* table = *db->CreateTable("kv", KvSchema());
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                               Value(std::string("w"))})
                      .ok());
    }
    ASSERT_TRUE(db->Close().ok());
  }
  DatabaseOptions nvm_options = options;
  nvm_options.mode = DurabilityMode::kNvm;
  nvm_options.tracking = nvm::TrackingMode::kNone;
  {
    // ...then an NVM image appears in the same directory...
    auto db = std::move(Database::Create(nvm_options)).ValueUnsafe();
    storage::Table* table = *db->CreateTable("scratch", KvSchema());
    ASSERT_TRUE(db->InsertAutoCommit(
                      table, {Value(int64_t{0}), Value(std::string("x"))})
                    .ok());
    ASSERT_TRUE(db->Close().ok());
  }
  // ...and gets destroyed (bit flip in the header magic).
  FlipByteInFile(nvm_options.NvmImagePath(), 1);

  auto db_result = Database::Open(nvm_options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result;
  EXPECT_TRUE(db->last_recovery_report().fell_back_to_log);
  storage::Table* table = *db->GetTable("kv");
  EXPECT_EQ(CountRows(table, db->ReadSnapshot(), storage::kTidNone), 30u);
  // The applied log was retired so it can never be replayed twice.
  EXPECT_FALSE(nvm::FileExists(nvm_options.LogPath()));
  EXPECT_TRUE(nvm::FileExists(nvm_options.LogPath() + ".applied"));
  ASSERT_TRUE(db->Close().ok());
  db_result = Database::Open(nvm_options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  EXPECT_FALSE((*db_result)->last_recovery_report().fell_back_to_log);
  storage::Table* reopened = *(*db_result)->GetTable("kv");
  EXPECT_EQ(CountRows(reopened, (*db_result)->ReadSnapshot(),
                      storage::kTidNone),
            30u);
}

}  // namespace
}  // namespace hyrise_nv::core
