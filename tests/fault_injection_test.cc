// Fault-injection framework tests: deterministic firing, retry/degraded
// behaviour of the WAL writer under injected device errors, and the NVM
// persist fault points.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "common/fault_injection.h"
#include "core/database.h"
#include "core/query.h"
#include "nvm/nvm_env.h"
#include "wal/block_device.h"

namespace hyrise_nv::core {
namespace {

using storage::DataType;
using storage::Value;

storage::Schema KvSchema() {
  return *storage::Schema::Make(
      {{"k", DataType::kInt64}, {"v", DataType::kString}});
}

std::string MakeDataDir(const std::string& prefix) {
  const std::string dir = nvm::TempPath(prefix);
  std::filesystem::create_directories(dir);
  return dir;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  DatabaseOptions WalOptions() {
    DatabaseOptions options;
    options.mode = DurabilityMode::kWalValue;
    options.region_size = 64 << 20;
    dir_ = MakeDataDir("fault_injection_test");
    options.data_dir = dir_;
    return options;
  }

  std::string dir_;
};

TEST_F(FaultInjectionTest, SameSeedSameFirePattern) {
  auto& injector = FaultInjector::Instance();
  const FaultPoint point = FaultPoint::kWalAppendEio;
  FaultPlan plan;
  plan.probability = 0.5;

  auto run = [&]() {
    injector.DisarmAll();
    injector.Reseed(42);
    injector.Arm(point, plan);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(injector.ShouldFire(point));
    return pattern;
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  // Sanity: probability 0.5 over 64 draws fires sometimes, not always.
  const auto fired =
      std::count(first.begin(), first.end(), true);
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST_F(FaultInjectionTest, TriggerAfterAndMaxFires) {
  auto& injector = FaultInjector::Instance();
  const FaultPoint point = FaultPoint::kWalSyncFail;
  FaultPlan plan;
  plan.trigger_after = 3;
  plan.max_fires = 2;
  injector.Arm(point, plan);

  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(injector.ShouldFire(point));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true,
                                      false, false, false}));
  EXPECT_EQ(injector.fires(point), 2u);
  EXPECT_FALSE(injector.any_armed()) << "max_fires should auto-disarm";
}

TEST_F(FaultInjectionTest, TransientAppendErrorIsRetried) {
  auto db_result = Database::Create(WalOptions());
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto db = std::move(db_result).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());

  FaultPlan one_shot;
  one_shot.max_fires = 1;
  FaultInjector::Instance().Arm(FaultPoint::kWalAppendEio, one_shot);

  ASSERT_TRUE(db->InsertAutoCommit(
                    table, {Value(int64_t{1}), Value(std::string("a"))})
                  .ok());
  EXPECT_GT(db->log_manager()->writer().io_retries(), 0u);
  EXPECT_FALSE(db->log_manager()->writer().degraded());
  EXPECT_FALSE(db->read_only());
}

TEST_F(FaultInjectionTest, PersistentAppendErrorFlipsReadOnly) {
  auto db_result = Database::Create(WalOptions());
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(db_result).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  ASSERT_TRUE(db->InsertAutoCommit(
                    table, {Value(int64_t{1}), Value(std::string("a"))})
                  .ok());

  FaultInjector::Instance().Arm(FaultPoint::kWalAppendEio, FaultPlan{});

  Status status = db->InsertAutoCommit(
      table, {Value(int64_t{2}), Value(std::string("b"))});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError) << status.ToString();
  EXPECT_TRUE(db->log_manager()->writer().degraded());
  EXPECT_TRUE(db->read_only());

  // Writes fail fast now — no process abort, no silent acceptance.
  EXPECT_FALSE(db->Begin().ok());
  EXPECT_FALSE(db->CreateTable("other", KvSchema()).ok());

  // Reads keep working after the device is "unplugged".
  FaultInjector::Instance().DisarmAll();
  auto rows = db->ScanEqual(table, 0, Value(int64_t{1}),
                            db->ReadSnapshot(), storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_TRUE(db->Close().ok());
}

TEST_F(FaultInjectionTest, PersistentSyncFailureDegrades) {
  auto db_result = Database::Create(WalOptions());
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(db_result).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());

  FaultInjector::Instance().Arm(FaultPoint::kWalSyncFail, FaultPlan{});
  Status status = db->InsertAutoCommit(
      table, {Value(int64_t{1}), Value(std::string("a"))});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_TRUE(db->log_manager()->writer().degraded());
  EXPECT_TRUE(db->read_only());
}

TEST_F(FaultInjectionTest, ShortWriteIsRepairedByRetry) {
  auto db_result = Database::Create(WalOptions());
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(db_result).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());

  FaultPlan one_shot;
  one_shot.max_fires = 1;
  FaultInjector::Instance().Arm(FaultPoint::kWalAppendShortWrite, one_shot);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                             Value(std::string("v"))})
                    .ok());
  }
  EXPECT_GT(db->log_manager()->writer().io_retries(), 0u);

  // The torn half-record was overwritten by the retry: replay after a
  // crash sees a well-formed log with every commit.
  auto recovered_result = Database::CrashAndRecover(std::move(db));
  ASSERT_TRUE(recovered_result.ok())
      << recovered_result.status().ToString();
  auto& recovered = *recovered_result;
  storage::Table* rtable = *recovered->GetTable("kv");
  EXPECT_EQ(CountRows(rtable, recovered->ReadSnapshot(),
                      storage::kTidNone),
            10u);
}

TEST_F(FaultInjectionTest, ReadPastDeviceEndIsCorruption) {
  const std::string path = nvm::TempPath("fault_device");
  auto device_result = wal::BlockDevice::Create(path, {});
  ASSERT_TRUE(device_result.ok());
  auto device = std::move(device_result).ValueUnsafe();
  const char payload[16] = "fifteen bytes..";
  ASSERT_TRUE(device->Append(payload, sizeof(payload)).ok());

  char out[16];
  Status status = device->Read(8, out, sizeof(out));
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  nvm::RemoveFileIfExists(path);
}

TEST_F(FaultInjectionTest, NvmPersistFaultPointsFire) {
  DatabaseOptions options;  // anonymous NVM region with shadow tracking
  options.mode = DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  auto db_result = Database::Create(options);
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(db_result).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());

  auto& injector = FaultInjector::Instance();
  FaultPlan one_shot;
  one_shot.max_fires = 1;
  injector.Arm(FaultPoint::kNvmPersistBitFlip, one_shot);
  ASSERT_TRUE(db->InsertAutoCommit(
                    table, {Value(int64_t{1}), Value(std::string("a"))})
                  .ok());
  EXPECT_EQ(injector.fires(FaultPoint::kNvmPersistBitFlip), 1u);

  FaultPlan stall;
  stall.max_fires = 1;
  stall.param = 1000;  // 1us spin
  injector.Arm(FaultPoint::kNvmPersistStall, stall);
  ASSERT_TRUE(db->InsertAutoCommit(
                    table, {Value(int64_t{2}), Value(std::string("b"))})
                  .ok());
  EXPECT_EQ(injector.fires(FaultPoint::kNvmPersistStall), 1u);
}

}  // namespace
}  // namespace hyrise_nv::core
