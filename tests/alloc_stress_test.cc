// Randomized allocator stress: interleaved allocations and frees across
// size classes, with crashes injected at arbitrary fences. Invariants:
// all live payloads stay intact, freed blocks are reusable, recovery
// never corrupts the free lists, and the allocator keeps functioning.

#include <gtest/gtest.h>

#include <map>

#include "alloc/pheap.h"
#include "common/random.h"

namespace hyrise_nv::alloc {
namespace {

struct LiveBlock {
  uint64_t offset;
  uint64_t size;
  uint64_t pattern;
};

void FillPattern(nvm::PmemRegion& region, const LiveBlock& block) {
  auto* p = reinterpret_cast<uint64_t*>(region.base() + block.offset);
  for (uint64_t i = 0; i < block.size / 8; ++i) {
    p[i] = block.pattern + i;
  }
  region.Persist(p, block.size);
}

bool CheckPattern(nvm::PmemRegion& region, const LiveBlock& block) {
  const auto* p =
      reinterpret_cast<const uint64_t*>(region.base() + block.offset);
  for (uint64_t i = 0; i < block.size / 8; ++i) {
    if (p[i] != block.pattern + i) return false;
  }
  return true;
}

class AllocStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocStressTest, RandomAllocFreeWithCrashes) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  nvm::PmemRegionOptions opts;
  opts.tracking = nvm::TrackingMode::kShadow;
  auto heap_result = PHeap::Create(16 << 20, opts);
  ASSERT_TRUE(heap_result.ok());
  auto heap = std::move(heap_result).ValueUnsafe();

  std::map<uint64_t, LiveBlock> live;
  for (int round = 0; round < 6; ++round) {
    // A burst of random operations.
    for (int op = 0; op < 150; ++op) {
      if (live.empty() || rng.Bernoulli(0.6)) {
        const uint64_t size = 8u << rng.Uniform(8);  // 8..1024 bytes
        auto offset_result = heap->allocator().Alloc(size);
        ASSERT_TRUE(offset_result.ok())
            << offset_result.status().ToString();
        LiveBlock block{*offset_result, size, rng.Next()};
        // No two live blocks may overlap.
        auto next = live.lower_bound(block.offset);
        if (next != live.end()) {
          ASSERT_GE(next->first, block.offset + block.size)
              << "seed " << seed << ": overlap with next block";
        }
        if (next != live.begin()) {
          auto prev = std::prev(next);
          ASSERT_LE(prev->second.offset + prev->second.size, block.offset)
              << "seed " << seed << ": overlap with previous block";
        }
        FillPattern(heap->region(), block);
        live.emplace(block.offset, block);
      } else {
        auto it = live.begin();
        std::advance(it, rng.Uniform(live.size()));
        ASSERT_TRUE(heap->allocator().Free(it->second.offset).ok());
        live.erase(it);
      }
    }

    // Crash at a random fence inside the next burst-equivalent, recover,
    // and verify every live payload survived.
    heap->region().FreezeShadowAfterFences(1 + rng.Uniform(50));
    for (int op = 0; op < 20; ++op) {
      // Post-freeze churn whose effects must vanish.
      auto offset_result = heap->allocator().Alloc(64);
      ASSERT_TRUE(offset_result.ok());
      (void)heap->allocator().Free(*offset_result);
    }
    ASSERT_TRUE(heap->region().SimulateCrash().ok());
    PAllocator recovered(heap->region());
    ASSERT_TRUE(recovered.Recover().ok()) << "seed " << seed;
    for (const auto& [offset, block] : live) {
      ASSERT_TRUE(CheckPattern(heap->region(), block))
          << "seed " << seed << " round " << round
          << ": payload corrupted at offset " << offset;
      auto size_result = recovered.AllocSize(offset);
      ASSERT_TRUE(size_result.ok());
      ASSERT_GE(*size_result, block.size);
    }
    // The allocator must keep functioning after recovery.
    auto probe = recovered.Alloc(128);
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    ASSERT_TRUE(recovered.Free(*probe).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocStressTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace hyrise_nv::alloc
