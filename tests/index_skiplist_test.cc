#include "index/pskiplist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "nvm/nvm_env.h"

#include "common/random.h"
#include "core/database.h"
#include "core/query.h"
#include "index/index_set.h"
#include "storage/catalog.h"
#include "storage/merge.h"

namespace hyrise_nv::index {
namespace {

using storage::DataType;
using storage::RowLocation;
using storage::Value;

class SkipListTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::PmemRegionOptions opts;
    opts.tracking = nvm::TrackingMode::kShadow;
    auto heap_result = alloc::PHeap::Create(32 << 20, opts);
    ASSERT_TRUE(heap_result.ok());
    heap_ = std::move(heap_result).ValueUnsafe();
    auto meta_off = heap_->allocator().Alloc(sizeof(storage::PIndexMeta));
    ASSERT_TRUE(meta_off.ok());
    meta_ = heap_->Resolve<storage::PIndexMeta>(*meta_off);
    std::memset(meta_, 0, sizeof(storage::PIndexMeta));
  }

  PSkipList MakeList(DataType type) {
    EXPECT_TRUE(PSkipList::Create(type, *heap_, meta_, 0).ok());
    PSkipList list(type, heap_.get(), meta_);
    EXPECT_TRUE(list.Attach().ok());
    return list;
  }

  std::vector<uint64_t> RangeRows(const PSkipList& list, const Value& lo,
                                  const Value& hi) {
    std::vector<uint64_t> rows;
    list.ForEachInRange(lo, hi, [&](uint64_t row) { rows.push_back(row); });
    return rows;
  }

  std::unique_ptr<alloc::PHeap> heap_;
  storage::PIndexMeta* meta_ = nullptr;
};

TEST_F(SkipListTest, EmptyListRangeIsEmpty) {
  auto list = MakeList(DataType::kInt64);
  EXPECT_TRUE(
      RangeRows(list, Value(int64_t{0}), Value(int64_t{100})).empty());
  EXPECT_EQ(list.entry_count(), 0u);
}

TEST_F(SkipListTest, OrderedIterationOverRandomInserts) {
  auto list = MakeList(DataType::kInt64);
  Rng rng(5);
  std::vector<int64_t> keys;
  for (uint64_t row = 0; row < 500; ++row) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(10000)) - 5000;
    keys.push_back(key);
    ASSERT_TRUE(list.Insert(Value(key), row).ok());
  }
  // Full-range walk must return rows in key order.
  std::vector<int64_t> walked;
  list.ForEachInRange(Value(int64_t{-5000}), Value(int64_t{5000}),
                      [&](uint64_t row) { walked.push_back(keys[row]); });
  ASSERT_EQ(walked.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(walked.begin(), walked.end()));
}

TEST_F(SkipListTest, RangeBoundsInclusive) {
  auto list = MakeList(DataType::kInt64);
  for (int64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(list.Insert(Value(k), static_cast<uint64_t>(k)).ok());
  }
  const auto rows = RangeRows(list, Value(int64_t{5}), Value(int64_t{8}));
  EXPECT_EQ(rows, (std::vector<uint64_t>{5, 6, 7, 8}));
  EXPECT_TRUE(RangeRows(list, Value(int64_t{100}), Value(int64_t{200}))
                  .empty());
}

TEST_F(SkipListTest, DuplicateKeysAllReturned) {
  auto list = MakeList(DataType::kInt64);
  for (uint64_t row = 0; row < 10; ++row) {
    ASSERT_TRUE(list.Insert(Value(int64_t{7}), row).ok());
  }
  std::vector<uint64_t> rows;
  list.ForEachEqual(Value(int64_t{7}),
                    [&](uint64_t row) { rows.push_back(row); });
  EXPECT_EQ(rows.size(), 10u);
}

TEST_F(SkipListTest, NegativeAndDoubleKeysOrderCorrectly) {
  auto list = MakeList(DataType::kDouble);
  const std::vector<double> values{-3.5, -0.1, 0.0, 2.25, 100.0};
  for (uint64_t row = 0; row < values.size(); ++row) {
    ASSERT_TRUE(list.Insert(Value(values[row]), row).ok());
  }
  const auto rows = RangeRows(list, Value(-1.0), Value(50.0));
  EXPECT_EQ(rows, (std::vector<uint64_t>{1, 2, 3}));
}

TEST_F(SkipListTest, StringKeysLexicographic) {
  auto list = MakeList(DataType::kString);
  const std::vector<std::string> values{"pear", "apple", "fig", "banana"};
  for (uint64_t row = 0; row < values.size(); ++row) {
    ASSERT_TRUE(list.Insert(Value(values[row]), row).ok());
  }
  std::vector<uint64_t> rows;
  list.ForEachInRange(Value(std::string("b")), Value(std::string("g")),
                      [&](uint64_t row) { rows.push_back(row); });
  // banana (3), fig (2) — in lexicographic order.
  EXPECT_EQ(rows, (std::vector<uint64_t>{3, 2}));
}

TEST_F(SkipListTest, SurvivesCrash) {
  auto list = MakeList(DataType::kInt64);
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(list.Insert(Value(k), static_cast<uint64_t>(k)).ok());
  }
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());
  PSkipList fresh(DataType::kInt64, heap_.get(), meta_);
  ASSERT_TRUE(fresh.Attach().ok());
  EXPECT_EQ(fresh.entry_count(), 100u);
  EXPECT_EQ(RangeRows(fresh, Value(int64_t{10}), Value(int64_t{12})).size(),
            3u);
}

TEST_F(SkipListTest, CrashMidInsertLosesOnlyThatEntry) {
  auto list = MakeList(DataType::kInt64);
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(list.Insert(Value(k), static_cast<uint64_t>(k)).ok());
  }
  // Freeze after 1 more fence: the next insert's node persist lands but
  // its publication does not (or vice versa).
  heap_->region().FreezeShadowAfterFences(1);
  ASSERT_TRUE(list.Insert(Value(int64_t{999}), 999).ok());
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());
  alloc::PAllocator fresh_alloc(heap_->region());
  ASSERT_TRUE(fresh_alloc.Recover().ok());
  PSkipList fresh(DataType::kInt64, heap_.get(), meta_);
  ASSERT_TRUE(fresh.Attach().ok());
  EXPECT_EQ(fresh.entry_count(), 50u) << "torn insert must not appear";
}

// Engine-level: ordered index drives range scans across main and delta,
// survives merge and crash.
TEST(OrderedIndexEngineTest, RangeScanViaOrderedIndex) {
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  options.tracking = nvm::TrackingMode::kShadow;
  auto db = std::move(core::Database::Create(options)).ValueUnsafe();
  auto schema = *storage::Schema::Make(
      {{"k", DataType::kInt64}, {"v", DataType::kString}});
  storage::Table* table = *db->CreateTable("kv", schema);
  ASSERT_TRUE(db->CreateOrderedIndex("kv", 0).ok());

  for (int64_t k = 0; k < 60; ++k) {
    ASSERT_TRUE(db->InsertAutoCommit(
                      table, {Value(k), Value(std::string("m"))})
                    .ok());
  }
  ASSERT_TRUE(db->Merge("kv").ok());  // 60 rows into main
  for (int64_t k = 60; k < 100; ++k) {
    ASSERT_TRUE(db->InsertAutoCommit(
                      table, {Value(k), Value(std::string("d"))})
                    .ok());
  }

  auto rows = core::ScanRange(table, 0, Value(int64_t{50}),
                              Value(int64_t{69}), db->ReadSnapshot(),
                              storage::kTidNone, db->indexes(table));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 20u);

  // Equality through the ordered index too.
  auto equal = db->ScanEqual(table, 0, Value(int64_t{42}),
                             db->ReadSnapshot(), storage::kTidNone);
  ASSERT_TRUE(equal.ok());
  EXPECT_EQ(equal->size(), 1u);

  // Crash + recover: ordered index still serves ranges with no rebuild.
  auto recovered =
      std::move(core::Database::CrashAndRecover(std::move(db)))
          .ValueUnsafe();
  storage::Table* rtable = *recovered->GetTable("kv");
  auto rrows = core::ScanRange(rtable, 0, Value(int64_t{50}),
                               Value(int64_t{69}),
                               recovered->ReadSnapshot(),
                               storage::kTidNone,
                               recovered->indexes(rtable));
  ASSERT_TRUE(rrows.ok());
  EXPECT_EQ(rrows->size(), 20u);
}

TEST(OrderedIndexEngineTest, WalRecoveryRebuildsOrderedIndex) {
  const std::string dir = nvm::TempPath("ordered_wal");
  std::filesystem::create_directories(dir);
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kWalValue;
  options.region_size = 64 << 20;
  options.data_dir = dir;
  auto db = std::move(core::Database::Create(options)).ValueUnsafe();
  auto schema = *storage::Schema::Make({{"k", DataType::kInt64}});
  storage::Table* table = *db->CreateTable("kv", schema);
  ASSERT_TRUE(db->CreateOrderedIndex("kv", 0).ok());
  for (int64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(db->InsertAutoCommit(table, {Value(k)}).ok());
  }
  auto recovered =
      std::move(core::Database::CrashAndRecover(std::move(db)))
          .ValueUnsafe();
  storage::Table* rtable = *recovered->GetTable("kv");
  ASSERT_TRUE(recovered->indexes(rtable)->HasOrderedIndex(0));
  auto rows = core::ScanRange(rtable, 0, Value(int64_t{10}),
                              Value(int64_t{19}),
                              recovered->ReadSnapshot(), storage::kTidNone,
                              recovered->indexes(rtable));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace hyrise_nv::index
