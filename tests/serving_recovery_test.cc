// Serve-during-recovery under real SIGKILL, end to end through the wire
// protocol (DESIGN.md §13): a forked server is killed mid-load, restarted
// with on-demand recovery, queried while degraded, killed AGAIN while the
// background drain is live, and restarted once more. The oracle is
// snapshot atomicity: every transaction commits 5 rows under one tag, so
// after any number of crashes every visible tag must have exactly 0 or 5
// rows — and every tag whose commit was acked must have exactly 5.
//
// Forked with live threads, so skipped under TSan; the same drain/crash
// interleavings run in-process (TSan-clean) in recovery_driver_test.cc.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fcntl.h>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "net/client.h"
#include "net/net_util.h"
#include "net/server.h"

#if defined(__SANITIZE_THREAD__)
#define HYRISE_NV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HYRISE_NV_TSAN 1
#endif
#endif

namespace hyrise_nv::core {
namespace {

using storage::DataType;
using storage::Value;

constexpr int kRowsPerTag = 5;

uint16_t PickPort() {
  auto listener = net::CreateListener("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok());
  auto port = net::LocalPort(listener->get());
  EXPECT_TRUE(port.ok());
  return *port;
}

/// Child body: open (or create) the database, serve on `port`, touch
/// `marker` once accepting, run until killed (or drained).
[[noreturn]] void ServeChild(DatabaseOptions db_options, uint16_t port,
                             bool create, const std::string& marker) {
  auto db_result =
      create ? Database::Create(db_options) : Database::Open(db_options);
  if (!db_result.ok()) ::_exit(2);
  auto db = std::move(db_result).ValueUnsafe();
  net::ServerOptions server_options;
  server_options.port = port;
  server_options.num_workers = 2;
  auto server_result = net::Server::Start(db.get(), server_options);
  if (!server_result.ok()) ::_exit(3);
  if (::creat(marker.c_str(), 0644) < 0) ::_exit(4);
  (*server_result)->Wait();
  server_result->reset();
  (void)db->Close();
  ::_exit(0);
}

pid_t SpawnServer(const DatabaseOptions& db_options, uint16_t port,
                  bool create, const std::string& marker) {
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) ServeChild(db_options, port, create, marker);
  for (int i = 0; i < 2000 && !std::filesystem::exists(marker); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(std::filesystem::exists(marker)) << "server child never ready";
  return pid;
}

void KillServer(pid_t pid) {
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
}

/// One tagged transaction: kRowsPerTag rows sharing the tag in column 0.
/// Returns true only when the commit was acked.
bool LoadTag(net::Client& client, int64_t tag) {
  if (!client.Begin().ok()) return false;
  for (int i = 0; i < kRowsPerTag; ++i) {
    if (!client
             .Insert("tags", {Value(tag), Value(std::string("r") +
                                                std::to_string(i))})
             .ok()) {
      return false;
    }
  }
  return client.Commit().ok();
}

TEST(ServingRecoveryTest, DoubleKillNineWhileServingDegraded) {
#ifdef HYRISE_NV_TSAN
  GTEST_SKIP() << "fork with threads is unsupported under TSan";
#else
  const std::string dir =
      "/tmp/hyrise-nv-serving-rec-" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  DatabaseOptions db_options;
  db_options.mode = DurabilityMode::kWalValue;
  db_options.region_size = 128 << 20;
  db_options.data_dir = dir;
  const uint16_t port = PickPort();

  // --- Server 1: eager create; parent loads until SIGKILL mid-load. ---
  const pid_t first = SpawnServer(db_options, port, /*create=*/true,
                                  dir + "/ready1");

  net::ClientOptions client_options;
  client_options.port = port;
  client_options.max_retries = 3;
  client_options.auto_reconnect = false;
  net::Client load_client(client_options);
  ASSERT_TRUE(load_client.Connect().ok());
  ASSERT_TRUE(load_client
                  .CreateTable("tags", {{"tag", DataType::kInt64},
                                        {"r", DataType::kString}})
                  .ok());
  ASSERT_TRUE(load_client.CreateIndex("tags", 0).ok());

  std::thread killer([first] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    ::kill(first, SIGKILL);
  });
  std::set<int64_t> acked;
  for (int64_t tag = 0;; ++tag) {
    if (!LoadTag(load_client, tag)) break;  // server died mid-txn
    acked.insert(tag);
  }
  killer.join();
  int wstatus = 0;
  ASSERT_EQ(::waitpid(first, &wstatus, 0), first);
  ASSERT_GT(acked.size(), 10u) << "load barely started before the kill";

  // --- Server 2: on-demand restart with a slow drain; query while ---
  // --- degraded, then SIGKILL again with the drain still running.  ---
  db_options.log_recovery = LogRecoveryPolicy::kServeOnDemand;
  db_options.drain_chunk_rows = 16;
  db_options.drain_pause_us = 10'000;
  const pid_t second = SpawnServer(db_options, port, /*create=*/false,
                                   dir + "/ready2");

  net::ClientOptions retry_options = client_options;
  retry_options.max_retries = 100;
  retry_options.auto_reconnect = true;
  net::Client degraded_client(retry_options);
  ASSERT_TRUE(degraded_client.Connect().ok());
  auto info = degraded_client.RecoveryInfo();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_NE(info->find("\"serving_state\":\"degraded\""), std::string::npos)
      << *info;
  // First query lands while the drain is live: on-demand restoration.
  const int64_t probe = *acked.begin();
  auto probe_scan = degraded_client.ScanEqual("tags", 0, Value(probe));
  ASSERT_TRUE(probe_scan.ok()) << probe_scan.status().ToString();
  EXPECT_EQ(probe_scan->rows.size(), static_cast<size_t>(kRowsPerTag));
  // Nested crash: no clean shutdown, drain mid-flight.
  KillServer(second);

  // --- Server 3: recover from the double crash, audit the oracle. ---
  const pid_t third = SpawnServer(db_options, port, /*create=*/false,
                                  dir + "/ready3");
  net::Client audit_client(retry_options);
  ASSERT_TRUE(audit_client.Connect().ok());
  ASSERT_TRUE(audit_client.WaitUntilReady(/*timeout_ms=*/120'000).ok());

  // Snapshot atomicity: acked tags are complete; the (at most one)
  // unacked in-flight tag either fully committed or fully vanished.
  const int64_t max_tag = *acked.rbegin() + 1;
  for (int64_t tag = 0; tag <= max_tag; ++tag) {
    auto rows = audit_client.ScanEqual("tags", 0, Value(tag));
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    if (acked.count(tag) > 0) {
      EXPECT_EQ(rows->rows.size(), static_cast<size_t>(kRowsPerTag))
          << "acked tag " << tag << " lost rows across the double crash";
    } else {
      EXPECT_TRUE(rows->rows.empty() ||
                  rows->rows.size() == static_cast<size_t>(kRowsPerTag))
          << "torn commit for tag " << tag << ": " << rows->rows.size();
    }
  }
  auto count = audit_client.Count("tags");
  ASSERT_TRUE(count.ok());
  EXPECT_GE(*count, acked.size() * kRowsPerTag);

  // Still writable after all that.
  EXPECT_TRUE(LoadTag(audit_client, max_tag + 1));

  ASSERT_TRUE(audit_client.Drain().ok());
  ASSERT_EQ(::waitpid(third, &wstatus, 0), third);
  EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
      << "third server failed clean shutdown: " << wstatus;
  std::filesystem::remove_all(dir);
#endif
}

}  // namespace
}  // namespace hyrise_nv::core
