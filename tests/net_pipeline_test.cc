// Pipelined wire-v2 serving tests (DESIGN.md §17): the async
// PipelinedClient against a live server, out-of-order read completion
// vs FIFO DML, the unknown-tag desync rule, kDmlBatch atomicity (in
// process and under a real SIGKILL mid-pipeline), v1-client compat over
// the wire, and the TCP_NODELAY regression guard for both socket ends.
//
// The SIGKILL test forks with live threads, so it is skipped under TSan
// (like serving_recovery_test); everything else here is TSan-clean.

#include "net/pipeline_client.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <deque>
#include <fcntl.h>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "net/client.h"
#include "net/net_util.h"
#include "net/server.h"
#include "nvm/nvm_env.h"

#if defined(__SANITIZE_THREAD__)
#define HYRISE_NV_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HYRISE_NV_TSAN 1
#endif
#endif

namespace hyrise_nv::net {
namespace {

using storage::DataType;
using storage::Value;

// --- Socket-option regression guard ---------------------------------------

TEST(TcpNoDelayTest, SetOnBothEndsOfEveryConnection) {
  // Nagle on either end serialises the pipelined protocol against
  // delayed ACKs and silently erases the batching win, so both paths —
  // ConnectTcp (client side) and ConfigureAcceptedSocket (every accept
  // loop) — must pin TCP_NODELAY.
  auto listener = CreateListener("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto port = LocalPort(listener->get());
  ASSERT_TRUE(port.ok());

  auto client_fd = ConnectTcp("127.0.0.1", *port, 2000);
  ASSERT_TRUE(client_fd.ok());
  auto client_nodelay = GetNoDelay(client_fd->get());
  ASSERT_TRUE(client_nodelay.ok());
  EXPECT_TRUE(*client_nodelay) << "ConnectTcp must set TCP_NODELAY";

  int accepted = -1;
  for (int i = 0; i < 2000 && accepted < 0; ++i) {
    accepted = ::accept(listener->get(), nullptr, nullptr);
    if (accepted < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_GE(accepted, 0);
  OwnedFd accepted_fd(accepted);
  ASSERT_TRUE(ConfigureAcceptedSocket(accepted_fd.get()).ok());
  auto server_nodelay = GetNoDelay(accepted_fd.get());
  ASSERT_TRUE(server_nodelay.ok());
  EXPECT_TRUE(*server_nodelay)
      << "ConfigureAcceptedSocket must set TCP_NODELAY";
}

// --- In-process server fixture --------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = nvm::TempPath("net_pipeline_test");
    std::filesystem::create_directories(dir_);
    core::DatabaseOptions options;
    options.mode = core::DurabilityMode::kNvm;
    options.region_size = 64 << 20;
    options.data_dir = dir_;
    auto db_result = core::Database::Create(options);
    ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
    db_ = std::move(*db_result);
    ServerOptions server_options;
    server_options.num_workers = 1;
    auto server_result = Server::Start(db_.get(), server_options);
    ASSERT_TRUE(server_result.ok()) << server_result.status().ToString();
    server_ = std::move(*server_result);
  }

  void TearDown() override {
    server_->Drain();
    server_->Wait();
    server_.reset();
    ASSERT_TRUE(db_->Close().ok());
    db_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Creates the kv(k int64, v string) table with an index on k.
  void CreateKv() {
    Client client(ClientFor());
    ASSERT_TRUE(client.ConnectOnce().ok());
    ASSERT_TRUE(client
                    .CreateTable("kv", {{"k", DataType::kInt64},
                                        {"v", DataType::kString}})
                    .ok());
    ASSERT_TRUE(client.CreateIndex("kv", 0).ok());
  }

  ClientOptions ClientFor() {
    ClientOptions options;
    options.port = server_->port();
    return options;
  }

  PipelineClientOptions PipelineFor(uint32_t window = 0) {
    PipelineClientOptions options;
    options.port = server_->port();
    options.request_window = window;
    return options;
  }

  std::string dir_;
  std::unique_ptr<core::Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(PipelineTest, SubmitManyCompleteFifo) {
  PipelinedClient client(PipelineFor());
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.window(), kDefaultPipelineWindow);
  std::vector<uint32_t> tags;
  for (int i = 0; i < 12; ++i) {
    auto tag = client.Submit(MakePingPayload());
    ASSERT_TRUE(tag.ok()) << tag.status().ToString();
    tags.push_back(*tag);
  }
  EXPECT_EQ(client.outstanding(), 12u);
  for (uint32_t expected : tags) {
    auto completion = client.Next();
    ASSERT_TRUE(completion.ok()) << completion.status().ToString();
    EXPECT_EQ(completion->tag, expected);
    EXPECT_EQ(completion->code, WireCode::kOk);
    EXPECT_TRUE(completion->ToStatus().ok());
  }
  EXPECT_EQ(client.outstanding(), 0u);
}

TEST_F(PipelineTest, AwaitOutOfSubmissionOrderUsesStash) {
  PipelinedClient client(PipelineFor());
  ASSERT_TRUE(client.Connect().ok());
  std::vector<uint32_t> tags;
  for (int i = 0; i < 4; ++i) {
    auto tag = client.Submit(MakePingPayload());
    ASSERT_TRUE(tag.ok());
    tags.push_back(*tag);
  }
  // Consume newest-first: every Await but the last drains earlier
  // completions into the stash and extracts its own.
  for (auto it = tags.rbegin(); it != tags.rend(); ++it) {
    auto completion = client.Await(*it);
    ASSERT_TRUE(completion.ok()) << completion.status().ToString();
    EXPECT_EQ(completion->tag, *it);
  }
  EXPECT_EQ(client.outstanding(), 0u);
  // A consumed tag is no longer outstanding.
  EXPECT_FALSE(client.Await(tags[0]).ok());
}

TEST_F(PipelineTest, AdHocReadCompletesAheadOfQueuedDml) {
  CreateKv();
  // Raw tagged frames so the ARRIVAL order of responses is observable:
  // one TCP write carries a DML batch (tag 1) then an ad-hoc read
  // (tag 2). Both land in one server batch; §17 hoists the read, so its
  // response must come back FIRST even though it was submitted second.
  auto fd_result = ConnectTcp("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(fd_result.ok());
  const int fd = fd_result->get();
  std::vector<uint8_t> hello;
  WireWriter writer(&hello);
  writer.U8(static_cast<uint8_t>(Opcode::kHello));
  writer.U32(kHelloMagic);
  writer.U16(kProtocolVersionMin);
  writer.U16(kProtocolVersionMax);
  writer.U32(8);
  ASSERT_TRUE(WriteFrame(fd, hello).ok());
  auto hello_resp = ReadFrame(fd, 2000);
  ASSERT_TRUE(hello_resp.ok());
  ASSERT_EQ((*hello_resp)[1], static_cast<uint8_t>(WireCode::kOk));

  std::vector<uint8_t> wire = EncodeTaggedFrame(
      1, MakeInsertBatchPayload("kv", {Value(int64_t{1}),
                                       Value(std::string("dml"))}));
  const std::vector<uint8_t> read_frame = EncodeTaggedFrame(
      2, MakeScanEqualPayload("kv", 0, Value(int64_t{999})));
  wire.insert(wire.end(), read_frame.begin(), read_frame.end());
  ASSERT_TRUE(SendAll(fd, wire.data(), wire.size()).ok());

  auto first = ReadTaggedFrame(fd, 5000);
  auto second = ReadTaggedFrame(fd, 5000);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->tag, 2u) << "ad-hoc read was not hoisted";
  EXPECT_EQ(second->tag, 1u);
  EXPECT_EQ(first->payload[1], static_cast<uint8_t>(WireCode::kOk));
  EXPECT_EQ(second->payload[1], static_cast<uint8_t>(WireCode::kOk));
}

TEST_F(PipelineTest, UnknownResponseTagClosesPipeline) {
  // A fake server that answers the handshake correctly, then replies
  // with a tag the client never submitted: the stream is out of sync
  // and the ONLY safe move is IOError + close — attributing the
  // response to some other request would corrupt caller state.
  auto listener = CreateListener("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto port = LocalPort(listener->get());
  ASSERT_TRUE(port.ok());

  std::thread fake([&listener] {
    int fd = -1;
    for (int i = 0; i < 2000 && fd < 0; ++i) {
      fd = ::accept(listener->get(), nullptr, nullptr);
      if (fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(fd, 0);
    OwnedFd conn(fd);
    auto hello = ReadFrame(conn.get(), 2000);
    ASSERT_TRUE(hello.ok());
    std::vector<uint8_t> resp;
    WireWriter writer(&resp);
    writer.U8(static_cast<uint8_t>(Opcode::kHello));
    writer.U8(static_cast<uint8_t>(WireCode::kOk));
    writer.U16(2);
    writer.U8(0);
    writer.U64(99);
    writer.U32(4);
    ASSERT_TRUE(WriteFrame(conn.get(), resp).ok());
    auto request = ReadTaggedFrame(conn.get(), 2000);
    ASSERT_TRUE(request.ok());
    std::vector<uint8_t> pong;
    WireWriter pong_writer(&pong);
    pong_writer.U8(static_cast<uint8_t>(Opcode::kPing));
    pong_writer.U8(static_cast<uint8_t>(WireCode::kOk));
    ASSERT_TRUE(
        WriteTaggedFrame(conn.get(), request->tag + 1, pong).ok());
  });

  PipelineClientOptions options;
  options.port = *port;
  PipelinedClient client(options);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.window(), 4u);
  auto tag = client.Submit(MakePingPayload());
  ASSERT_TRUE(tag.ok());
  auto completion = client.Await(*tag);
  ASSERT_FALSE(completion.ok());
  EXPECT_EQ(completion.status().code(), StatusCode::kIOError);
  EXPECT_NE(completion.status().ToString().find("unknown tag"),
            std::string::npos);
  EXPECT_FALSE(client.connected());
  fake.join();
}

TEST_F(PipelineTest, V1ClientCompatAgainstV2Server) {
  CreateKv();
  ClientOptions options = ClientFor();
  options.protocol_max = 1;  // a pre-pipelining client binary
  Client client(options);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.protocol_version(), 1);
  EXPECT_EQ(client.pipeline_window(), 0u);
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Begin().ok());
  auto loc = client.Insert("kv", {Value(int64_t{7}),
                                  Value(std::string("legacy"))});
  ASSERT_TRUE(loc.ok()) << loc.status().ToString();
  ASSERT_TRUE(client.Commit().ok());
  auto scan = client.ScanEqual("kv", 0, Value(int64_t{7}));
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(scan->rows[0].values[1]), "legacy");
}

TEST_F(PipelineTest, DmlBatchAtomicAndErrorsNameTheOp) {
  CreateKv();
  Client client(ClientFor());
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.protocol_version(), 2);

  std::vector<Client::DmlOp> good(3);
  for (int i = 0; i < 3; ++i) {
    good[i].kind = Client::DmlOp::kInsert;
    good[i].table = "kv";
    good[i].row = {Value(int64_t{i}), Value(std::string("b"))};
  }
  auto result = client.DmlBatch(good);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->locs.size(), 3u);
  EXPECT_GT(result->cid, 0u);

  // Op 1 targets a missing table: the WHOLE batch must abort (ops 0 and
  // 2 included) and the error must name the failing index.
  std::vector<Client::DmlOp> bad = good;
  bad[1].table = "nope";
  auto failed = client.DmlBatch(bad);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().ToString().find("op 1:"), std::string::npos);
  auto count = client.Count("kv");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u) << "failed batch leaked rows";

  // Batches are autocommit: inside a session transaction they must be
  // rejected instead of silently nesting.
  ASSERT_TRUE(client.Begin().ok());
  auto nested = client.DmlBatch(good);
  ASSERT_FALSE(nested.ok());
  EXPECT_EQ(nested.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(client.Abort().ok());
}

// --- SIGKILL mid-pipeline atomicity oracle --------------------------------

constexpr int kRowsPerMarker = 5;

uint16_t PickPort() {
  auto listener = CreateListener("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok());
  auto port = LocalPort(listener->get());
  EXPECT_TRUE(port.ok());
  return *port;
}

[[noreturn]] void ServeChild(core::DatabaseOptions db_options,
                             uint16_t port, bool create,
                             const std::string& marker) {
  auto db_result = create ? core::Database::Create(db_options)
                          : core::Database::Open(db_options);
  if (!db_result.ok()) ::_exit(2);
  auto db = std::move(db_result).ValueUnsafe();
  ServerOptions server_options;
  server_options.port = port;
  server_options.num_workers = 2;
  auto server_result = Server::Start(db.get(), server_options);
  if (!server_result.ok()) ::_exit(3);
  if (::creat(marker.c_str(), 0644) < 0) ::_exit(4);
  (*server_result)->Wait();
  server_result->reset();
  (void)db->Close();
  ::_exit(0);
}

pid_t SpawnServer(const core::DatabaseOptions& db_options, uint16_t port,
                  bool create, const std::string& marker) {
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) ServeChild(db_options, port, create, marker);
  for (int i = 0; i < 2000 && !std::filesystem::exists(marker); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(std::filesystem::exists(marker)) << "server child never ready";
  return pid;
}

void KillServerAndReap(pid_t pid) {
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
}

/// One multi-insert kDmlBatch frame: kRowsPerMarker rows sharing
/// `marker` in column 0.
std::vector<uint8_t> MarkerBatchPayload(int64_t marker) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kDmlBatch));
  writer.U32(kRowsPerMarker);
  for (int i = 0; i < kRowsPerMarker; ++i) {
    writer.U8(1);  // insert
    writer.Str("batch");
    writer.Row({Value(marker),
                Value(std::string("r") + std::to_string(i))});
  }
  return payload;
}

TEST(PipelineKillTest, KillNineMidPipelineLeavesNoPartialBatch) {
#ifdef HYRISE_NV_TSAN
  GTEST_SKIP() << "fork with threads is unsupported under TSan";
#else
  const std::string dir =
      "/tmp/hyrise-nv-pipeline-kill-" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  core::DatabaseOptions db_options;
  db_options.mode = core::DurabilityMode::kWalValue;
  db_options.region_size = 128 << 20;
  db_options.data_dir = dir;
  const uint16_t port = PickPort();

  const pid_t first = SpawnServer(db_options, port, /*create=*/true,
                                  dir + "/ready1");

  {
    ClientOptions schema_options;
    schema_options.port = port;
    schema_options.max_retries = 3;
    Client schema(schema_options);
    ASSERT_TRUE(schema.Connect().ok());
    ASSERT_TRUE(schema
                    .CreateTable("batch", {{"marker", DataType::kInt64},
                                           {"r", DataType::kString}})
                    .ok());
    ASSERT_TRUE(schema.CreateIndex("batch", 0).ok());
  }

  // Pipeline marker batches flat out until the SIGKILL lands mid-window.
  // Every batch is ONE kDmlBatch frame, so the recovery oracle is per
  // marker: exactly 0 or kRowsPerMarker rows, never a partial batch —
  // and every ACKED marker must have all its rows.
  PipelineClientOptions pipe_options;
  pipe_options.port = port;
  pipe_options.request_window = 32;
  pipe_options.read_timeout_ms = 5000;
  PipelinedClient pipe(pipe_options);
  ASSERT_TRUE(pipe.Connect().ok());

  std::thread killer([first] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    ::kill(first, SIGKILL);
  });
  std::set<int64_t> acked;
  std::deque<int64_t> submitted_fifo;
  int64_t next_marker = 0;
  bool dead = false;
  while (!dead) {
    auto tag = pipe.Submit(MarkerBatchPayload(next_marker));
    if (!tag.ok()) break;  // server died mid-submit
    submitted_fifo.push_back(next_marker);
    ++next_marker;
    // Keep roughly half the window in flight; completions come back in
    // submit order (DML is FIFO), pairing with submitted_fifo.
    while (pipe.outstanding() > 16) {
      auto completion = pipe.Next();
      if (!completion.ok()) {
        dead = true;
        break;
      }
      const int64_t marker = submitted_fifo.front();
      submitted_fifo.pop_front();
      if (completion->code == WireCode::kOk) acked.insert(marker);
    }
  }
  killer.join();
  int wstatus = 0;
  ASSERT_EQ(::waitpid(first, &wstatus, 0), first);
  ASSERT_GT(acked.size(), 3u) << "pipeline barely ran before the kill";

  // Restart on the same data and check every marker's row count.
  const pid_t second = SpawnServer(db_options, port, /*create=*/false,
                                   dir + "/ready2");
  ClientOptions verify_options;
  verify_options.port = port;
  Client verify(verify_options);
  ASSERT_TRUE(verify.Connect().ok());
  for (int64_t marker = 0; marker < next_marker; ++marker) {
    auto scan = verify.ScanEqual("batch", 0, Value(marker));
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    const size_t rows = scan->rows.size();
    EXPECT_TRUE(rows == 0 || rows == kRowsPerMarker)
        << "marker " << marker << " has a PARTIAL batch: " << rows
        << " rows";
    if (acked.count(marker) > 0) {
      EXPECT_EQ(rows, static_cast<size_t>(kRowsPerMarker))
          << "acked marker " << marker << " lost rows";
    }
  }
  KillServerAndReap(second);
  std::filesystem::remove_all(dir);
#endif
}

}  // namespace
}  // namespace hyrise_nv::net
