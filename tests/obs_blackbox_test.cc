#include "obs/blackbox.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "core/database.h"
#include "nvm/nvm_env.h"
#include "nvm/pmem_region.h"
#include "recovery/verify.h"

namespace hyrise_nv::obs {
namespace {

std::unique_ptr<nvm::PmemRegion> MakeRegion(size_t size) {
  nvm::PmemRegionOptions options;
  options.tracking = nvm::TrackingMode::kNone;
  return std::move(nvm::PmemRegion::Create(size, options)).ValueUnsafe();
}

std::unique_ptr<BlackboxWriter> FormatAndAttach(nvm::PmemRegion& region) {
  BlackboxWriter::Format(region);
  auto writer = BlackboxWriter::Attach(region);
  EXPECT_NE(writer, nullptr);
  return writer;
}

/// Direct pointer to ring slot storage, for corruption tests.
BlackboxEvent* SlotArray(nvm::PmemRegion& region) {
  const BlackboxGeometry geom = BlackboxGeometryFor(region.size());
  return reinterpret_cast<BlackboxEvent*>(region.base() + geom.offset +
                                          kBlackboxHeaderBytes);
}

TEST(BlackboxGeometryTest, ScalesWithRegionAndCapsAtOneMiB) {
  const BlackboxGeometry big = BlackboxGeometryFor(uint64_t{256} << 20);
  EXPECT_TRUE(big.enabled());
  EXPECT_EQ(big.ring_count, kBlackboxRingCount);
  EXPECT_EQ(big.slots_per_ring, kBlackboxMaxSlotsPerRing);
  EXPECT_EQ(big.offset % 4096, 0u);
  EXPECT_EQ(big.offset + big.total_bytes, uint64_t{256} << 20);
  // Budget respected: carve-out never exceeds 1/32 of the region.
  EXPECT_LE(big.total_bytes, (uint64_t{256} << 20) / 32);

  const BlackboxGeometry mid = BlackboxGeometryFor(uint64_t{1} << 20);
  EXPECT_TRUE(mid.enabled());
  EXPECT_LT(mid.slots_per_ring, kBlackboxMaxSlotsPerRing);
  EXPECT_GE(mid.slots_per_ring, kBlackboxMinSlotsPerRing);
  // Power of two, so slot claims can mask instead of mod.
  EXPECT_EQ(mid.slots_per_ring & (mid.slots_per_ring - 1), 0u);
}

TEST(BlackboxGeometryTest, TinyRegionsGetNoRecorder) {
  const BlackboxGeometry tiny = BlackboxGeometryFor(256 << 10);
  EXPECT_FALSE(tiny.enabled());
  EXPECT_EQ(tiny.offset, uint64_t{256} << 10);
  EXPECT_EQ(BlackboxBytesFor(256 << 10), 0u);
}

TEST(BlackboxWriterTest, RecordDecodeRoundtrip) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "flight-recorder writes compile out in this build";
#endif
  auto region = MakeRegion(size_t{4} << 20);
  auto writer = FormatAndAttach(*region);
  EXPECT_FALSE(writer->attached_with_reset());
  EXPECT_EQ(writer->session_id(), 1u);

  writer->Record(BlackboxEventType::kOpen, 3, 1);
  writer->Record(BlackboxEventType::kTxnCommit, 7, 42, 5, 12345);
  writer->Record(BlackboxEventType::kClose, 1);
  writer->Flush();

  const BlackboxDecodeResult result =
      DecodeBlackbox(region->base(), region->size());
  ASSERT_TRUE(result.present);
  ASSERT_TRUE(result.header_valid);
  EXPECT_EQ(result.session_id, 1u);
  EXPECT_EQ(result.torn_slots, 0u);
  ASSERT_EQ(result.events.size(), 3u);
  EXPECT_EQ(result.events[0].type,
            static_cast<uint16_t>(BlackboxEventType::kOpen));
  EXPECT_EQ(result.events[1].type,
            static_cast<uint16_t>(BlackboxEventType::kTxnCommit));
  EXPECT_EQ(result.events[1].a, 7u);
  EXPECT_EQ(result.events[1].b, 42u);
  EXPECT_EQ(result.events[1].c, 5u);
  EXPECT_EQ(result.events[1].d, 12345u);
  EXPECT_EQ(result.events[2].type,
            static_cast<uint16_t>(BlackboxEventType::kClose));
  // Events recorded in this session sit at/after the attach time.
  EXPECT_GE(result.RelativeMs(result.events[0]), 0.0);
  EXPECT_LE(result.RelativeMs(result.events[0]),
            result.RelativeMs(result.events[2]));
  // Seqnos strictly ascend.
  EXPECT_LT(result.events[0].seqno, result.events[1].seqno);
  EXPECT_LT(result.events[1].seqno, result.events[2].seqno);
}

TEST(BlackboxWriterTest, WraparoundKeepsNewestEvents) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "flight-recorder writes compile out in this build";
#endif
  auto region = MakeRegion(size_t{1} << 20);
  auto writer = FormatAndAttach(*region);
  const uint64_t slots = writer->geometry().slots_per_ring;
  // One thread writes to one ring; overfill it 3x.
  const uint64_t total = slots * 3;
  for (uint64_t i = 0; i < total; ++i) {
    writer->Record(BlackboxEventType::kTxnBegin, i);
  }
  writer->Flush();

  const BlackboxDecodeResult result =
      DecodeBlackbox(region->base(), region->size());
  ASSERT_TRUE(result.header_valid);
  EXPECT_EQ(result.torn_slots, 0u);
  ASSERT_EQ(result.events.size(), slots);
  // The survivors are exactly the newest ring-full.
  for (size_t i = 0; i < result.events.size(); ++i) {
    EXPECT_EQ(result.events[i].a, total - slots + i);
  }
}

TEST(BlackboxWriterTest, MultithreadedSeqnosAreUniqueAndComplete) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "flight-recorder writes compile out in this build";
#endif
  auto region = MakeRegion(size_t{64} << 20);
  auto writer = FormatAndAttach(*region);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 512;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&writer, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        writer->Record(BlackboxEventType::kPersist,
                       static_cast<uint64_t>(t), i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  writer->Flush();

  const BlackboxDecodeResult result =
      DecodeBlackbox(region->base(), region->size());
  EXPECT_EQ(result.torn_slots, 0u);
  ASSERT_EQ(result.events.size(), kThreads * kPerThread);
  std::set<uint64_t> seqnos;
  for (const auto& ev : result.events) seqnos.insert(ev.seqno);
  EXPECT_EQ(seqnos.size(), kThreads * kPerThread);
}

TEST(BlackboxDecodeTest, TornSlotsAreDroppedNeverAccepted) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "flight-recorder writes compile out in this build";
#endif
  auto region = MakeRegion(size_t{4} << 20);
  auto writer = FormatAndAttach(*region);
  for (uint64_t i = 0; i < 200; ++i) {
    writer->Record(BlackboxEventType::kTxnCommit, i, i * 2);
  }
  writer->Flush();

  // Corrupt every third written slot: flip one bit somewhere in the
  // CRC-covered prefix without recomputing the CRC (a torn write).
  const BlackboxGeometry geom = writer->geometry();
  BlackboxEvent* slots = SlotArray(*region);
  std::set<uint64_t> corrupted;
  uint64_t written = 0;
  for (uint64_t s = 0; s < geom.ring_count * geom.slots_per_ring; ++s) {
    if (slots[s].seqno == 0 && slots[s].type == 0) continue;
    if (written++ % 3 != 0) continue;
    corrupted.insert(slots[s].seqno);
    reinterpret_cast<uint8_t*>(&slots[s])[16 + (s % 40)] ^= 0x10;
  }
  ASSERT_FALSE(corrupted.empty());

  const BlackboxDecodeResult result =
      DecodeBlackbox(region->base(), region->size());
  EXPECT_EQ(result.torn_slots, corrupted.size());
  // Zero false accepts: no decoded event carries a corrupted seqno.
  for (const auto& ev : result.events) {
    EXPECT_EQ(corrupted.count(ev.seqno), 0u)
        << "torn slot with seqno " << ev.seqno << " was accepted";
  }
  // `written` counts the non-empty slots (the ring may have wrapped, so
  // it can be less than the 200 recorded events).
  EXPECT_EQ(result.events.size(), written - corrupted.size());
}

TEST(BlackboxDecodeTest, SlotsDecodeEvenWithCorruptRecorderHeader) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "flight-recorder writes compile out in this build";
#endif
  auto region = MakeRegion(size_t{4} << 20);
  auto writer = FormatAndAttach(*region);
  writer->Record(BlackboxEventType::kOpen, 3);
  writer->Record(BlackboxEventType::kCrashSignal, 11);
  writer->Flush();

  // Trash the recorder header magic.
  const BlackboxGeometry geom = writer->geometry();
  region->base()[geom.offset] ^= 0xFF;

  const BlackboxDecodeResult result =
      DecodeBlackbox(region->base(), region->size());
  EXPECT_TRUE(result.present);
  EXPECT_FALSE(result.header_valid);
  ASSERT_EQ(result.events.size(), 2u);  // own-CRC slots still decode
  EXPECT_EQ(result.events[1].type,
            static_cast<uint16_t>(BlackboxEventType::kCrashSignal));
}

TEST(BlackboxRenderTest, TimelineAndJsonSurfaceEvents) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "flight-recorder writes compile out in this build";
#endif
  auto region = MakeRegion(size_t{4} << 20);
  auto writer = FormatAndAttach(*region);
  writer->Record(BlackboxEventType::kTxnCommit, 1, 2, 3, 4);
  writer->Record(BlackboxEventType::kWalDegraded, 1);
  writer->Flush();

  const BlackboxDecodeResult result =
      DecodeBlackbox(region->base(), region->size());
  const std::string text = RenderBlackboxTimeline(result);
  EXPECT_NE(text.find("txn_commit"), std::string::npos);
  EXPECT_NE(text.find("wal_degraded"), std::string::npos);

  const std::string limited = RenderBlackboxTimeline(result, 1);
  EXPECT_EQ(limited.find("txn_commit"), std::string::npos);
  EXPECT_NE(limited.find("older events omitted"), std::string::npos);

  const std::string json = BlackboxTimelineJson(result);
  EXPECT_NE(json.find("\"present\":true"), std::string::npos);
  EXPECT_NE(json.find("\"valid\":true"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"wal_degraded\""), std::string::npos);
}

// --- Integration with the engine + verify policy --------------------------

core::DatabaseOptions FileDbOptions(const std::string& dir) {
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 32 << 20;
  options.data_dir = dir;
  options.tracking = nvm::TrackingMode::kNone;
  return options;
}

TEST(BlackboxEngineTest, SurvivesFileReopenAcrossSessions) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "flight-recorder writes compile out in this build";
#endif
  const std::string dir = nvm::TempPath("blackbox_reopen");
  std::filesystem::create_directories(dir);
  auto options = FileDbOptions(dir);
  {
    auto db = std::move(core::Database::Create(options)).ValueUnsafe();
    auto schema =
        *storage::Schema::Make({{"k", storage::DataType::kInt64}});
    storage::Table* table = *db->CreateTable("t", schema);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          db->InsertAutoCommit(table, {storage::Value(int64_t{i})}).ok());
    }
    ASSERT_TRUE(db->Close().ok());
  }
  {
    // Session 2: events append after session 1's, decode sees both.
    auto db = std::move(core::Database::Open(options)).ValueUnsafe();
    ASSERT_NE(db->heap().blackbox(), nullptr);
    EXPECT_EQ(db->heap().blackbox()->session_id(), 2u);
    EXPECT_FALSE(db->heap().blackbox()->attached_with_reset());
    ASSERT_TRUE(db->Close().ok());
  }
  nvm::PmemRegionOptions region_options;
  region_options.file_path = options.NvmImagePath();
  region_options.tracking = nvm::TrackingMode::kNone;
  auto region =
      std::move(nvm::PmemRegion::Open(region_options)).ValueUnsafe();
  const BlackboxDecodeResult result =
      DecodeBlackbox(region->base(), region->size());
  ASSERT_TRUE(result.header_valid);
  EXPECT_EQ(result.session_id, 2u);
  // Both sessions' opens and closes survived, with commits in between.
  uint64_t opens = 0, closes = 0, commits = 0;
  for (const auto& ev : result.events) {
    if (ev.type == static_cast<uint16_t>(BlackboxEventType::kOpen)) ++opens;
    if (ev.type == static_cast<uint16_t>(BlackboxEventType::kClose)) {
      ++closes;
    }
    if (ev.type == static_cast<uint16_t>(BlackboxEventType::kTxnCommit)) {
      ++commits;
    }
  }
  EXPECT_EQ(opens, 2u);
  EXPECT_EQ(closes, 2u);
  EXPECT_GE(commits, 10u);
  std::filesystem::remove_all(dir);
}

TEST(BlackboxEngineTest, CorruptRecorderIsAdvisoryAndNeverBlocksOpen) {
  const std::string dir = nvm::TempPath("blackbox_quarantine");
  std::filesystem::create_directories(dir);
  auto options = FileDbOptions(dir);
  {
    auto db = std::move(core::Database::Create(options)).ValueUnsafe();
    ASSERT_TRUE(db->Close().ok());
  }
  // Flip a bit inside the recorder header prologue.
  {
    nvm::PmemRegionOptions region_options;
    region_options.file_path = options.NvmImagePath();
    region_options.tracking = nvm::TrackingMode::kNone;
    auto region =
        std::move(nvm::PmemRegion::Open(region_options)).ValueUnsafe();
    const BlackboxGeometry geom = BlackboxGeometryFor(region->size());
    ASSERT_TRUE(geom.enabled());
    region->base()[geom.offset + 9] ^= 0x04;
    ASSERT_TRUE(region->SyncToFile().ok());

    const recovery::VerifyReport report = recovery::DeepVerify(*region);
    EXPECT_FALSE(report.clean());
    EXPECT_FALSE(report.blocking()) << report.Summary();
    EXPECT_FALSE(report.has_fatal());
    bool advisory_found = false;
    for (const auto& finding : report.findings) {
      if (finding.structure == "flight_recorder") {
        advisory_found = true;
        EXPECT_EQ(finding.severity,
                  recovery::FindingSeverity::kAdvisory);
      }
    }
    EXPECT_TRUE(advisory_found) << report.Summary();
  }
  // Deep-verify open succeeds: diagnostics never block recovery. The
  // corrupt recorder is quarantined (reformatted) at attach.
  options.open_mode = core::OpenMode::kVerifyDeep;
  auto db_result = core::Database::Open(options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto db = std::move(db_result).ValueUnsafe();
  ASSERT_NE(db->heap().blackbox(), nullptr);
  EXPECT_TRUE(db->heap().blackbox()->attached_with_reset());
  EXPECT_EQ(db->heap().blackbox()->session_id(), 1u);  // fresh recorder
  ASSERT_TRUE(db->Close().ok());
  std::filesystem::remove_all(dir);
}

TEST(BlackboxEngineTest, SimulatedCrashKeepsFlushedEvents) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "flight-recorder writes compile out in this build";
#endif
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 32 << 20;
  options.tracking = nvm::TrackingMode::kShadow;  // strict crash model
  auto db = std::move(core::Database::Create(options)).ValueUnsafe();
  auto schema = *storage::Schema::Make({{"k", storage::DataType::kInt64}});
  storage::Table* table = *db->CreateTable("t", schema);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db->InsertAutoCommit(table, {storage::Value(int64_t{i})}).ok());
  }
  db->heap().blackbox()->Flush();

  auto recovered =
      std::move(core::Database::CrashAndRecover(std::move(db)))
          .ValueUnsafe();
  // The recovered writer resumed the seqno after the flushed events.
  ASSERT_NE(recovered->heap().blackbox(), nullptr);
  EXPECT_EQ(recovered->heap().blackbox()->session_id(), 2u);
  const BlackboxDecodeResult result = DecodeBlackbox(
      recovered->heap().region().base(), recovered->heap().region().size());
  ASSERT_TRUE(result.header_valid);
  uint64_t commits = 0;
  for (const auto& ev : result.events) {
    if (ev.type == static_cast<uint16_t>(BlackboxEventType::kTxnCommit)) {
      ++commits;
    }
  }
  EXPECT_GE(commits, 50u);
}

TEST(BlackboxEngineTest, TxnSamplingPublishesSpanTree) {
#if !HYRISE_NV_METRICS_ENABLED
  GTEST_SKIP() << "flight-recorder writes compile out in this build";
#endif
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 32 << 20;
  options.tracking = nvm::TrackingMode::kNone;
  options.txn_sample_every = 1;  // sample every commit
  auto db = std::move(core::Database::Create(options)).ValueUnsafe();
  auto schema = *storage::Schema::Make({{"k", storage::DataType::kInt64}});
  storage::Table* table = *db->CreateTable("t", schema);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        db->InsertAutoCommit(table, {storage::Value(int64_t{i})}).ok());
  }
  const SpanNode trace = db->LastSampledTxnTrace();
  ASSERT_EQ(trace.name, "txn_commit");
  ASSERT_EQ(trace.children.size(), 3u);
  EXPECT_EQ(trace.children[0].name, "write_set");
  EXPECT_EQ(trace.children[1].name, "persist");
  EXPECT_EQ(trace.children[2].name, "commit_publish");
#if HYRISE_NV_METRICS_ENABLED
  // The trace histograms saw every commit.
  const MetricsSnapshot snap = db->MetricsSnapshot();
  const HistogramSnapshot* total = snap.FindHistogram("txn.trace.total_ns");
  ASSERT_NE(total, nullptr);
  EXPECT_GE(total->count, 5u);
  // And kTxnTrace events reached the recorder.
  const BlackboxDecodeResult result = DecodeBlackbox(
      db->heap().region().base(), db->heap().region().size());
  uint64_t traces = 0;
  for (const auto& ev : result.events) {
    if (ev.type == static_cast<uint16_t>(BlackboxEventType::kTxnTrace)) {
      ++traces;
    }
  }
  EXPECT_GE(traces, 5u);
#endif
}

}  // namespace
}  // namespace hyrise_nv::obs
