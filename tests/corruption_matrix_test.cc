// Corruption matrix: flip one bit in each persistent structure class of a
// cleanly shut down NVM image and assert that deep verification detects
// it and attributes it to the right structure.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>

#include "alloc/pallocator.h"
#include "alloc/pvector.h"
#include "alloc/region_header.h"
#include "core/database.h"
#include "nvm/nvm_env.h"
#include "recovery/verify.h"
#include "storage/catalog.h"
#include "storage/layout.h"
#include "txn/commit_table.h"

namespace hyrise_nv::recovery {
namespace {

using storage::DataType;
using storage::Value;

storage::Schema KvSchema() {
  return *storage::Schema::Make(
      {{"k", DataType::kInt64}, {"v", DataType::kString}});
}

/// Builds a representative database image: a merged main partition with
/// group-key index, a populated delta, a hash index, and a clean
/// shutdown (so every seal is authoritative). Returns the image path.
std::string BuildPristineImage(const std::string& dir) {
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  options.data_dir = dir;
  options.tracking = nvm::TrackingMode::kNone;
  auto db = std::move(core::Database::Create(options)).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  EXPECT_TRUE(db->CreateIndex("kv", 0).ok());
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(db->InsertAutoCommit(
                      table, {Value(int64_t{i}),
                              Value(std::string("v") + std::to_string(i))})
                    .ok());
  }
  EXPECT_TRUE(db->Merge("kv").ok());
  for (int i = 100; i < 110; ++i) {
    EXPECT_TRUE(db->InsertAutoCommit(
                      table, {Value(int64_t{i}),
                              Value(std::string("d") + std::to_string(i))})
                    .ok());
  }
  EXPECT_TRUE(db->Close().ok());
  return options.NvmImagePath();
}

/// Navigation helpers over a mapped image — the same pointer walk the
/// verifier performs, used here to find a byte worth corrupting.
struct Nav {
  nvm::PmemRegion& region;

  template <typename T>
  T* At(uint64_t off) {
    return reinterpret_cast<T*>(region.base() + off);
  }
  uint64_t OffsetOf(const void* ptr) const {
    return static_cast<uint64_t>(reinterpret_cast<const uint8_t*>(ptr) -
                                 region.base());
  }
  static uint64_t DescData(const alloc::PVectorDesc& desc) {
    return desc.slots[desc.version & 1].data;
  }
  storage::PCatalogMeta* Catalog() {
    return At<storage::PCatalogMeta>(
        *alloc::GetRoot(region, storage::kCatalogRootName));
  }
  storage::PTableMeta* FirstTable() {
    auto* catalog = Catalog();
    auto* offsets = At<uint64_t>(DescData(catalog->table_meta_offsets));
    return At<storage::PTableMeta>(offsets[0]);
  }
  storage::PTableGroup* Group() {
    return At<storage::PTableGroup>(FirstTable()->group_off);
  }
};

class CorruptionMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Build the pristine image once; each test corrupts a private copy.
    static const std::string* pristine = [] {
      const std::string dir = nvm::TempPath("corruption_matrix_src");
      std::filesystem::create_directories(dir);
      return new std::string(BuildPristineImage(dir));
    }();
    image_ = nvm::TempPath("corruption_matrix_img");
    std::filesystem::copy_file(*pristine, image_);
  }
  void TearDown() override { nvm::RemoveFileIfExists(image_); }

  /// Maps the image, lets `locate` pick a byte, XORs one bit into it,
  /// and writes the image back out.
  void FlipBit(const std::function<uint64_t(Nav&)>& locate,
               uint8_t mask = 0x04) {
    nvm::PmemRegionOptions options;
    options.file_path = image_;
    options.tracking = nvm::TrackingMode::kNone;
    auto region_result = nvm::PmemRegion::Open(options);
    ASSERT_TRUE(region_result.ok()) << region_result.status().ToString();
    auto region = std::move(region_result).ValueUnsafe();
    Nav nav{*region};
    const uint64_t off = locate(nav);
    ASSERT_LT(off, region->size());
    region->base()[off] ^= mask;
    region->Persist(region->base() + off, 1);
    ASSERT_TRUE(region->SyncToFile().ok());
  }

  VerifyReport Verify() {
    nvm::PmemRegionOptions options;
    options.file_path = image_;
    options.tracking = nvm::TrackingMode::kNone;
    auto region = std::move(nvm::PmemRegion::Open(options)).ValueUnsafe();
    return DeepVerify(*region);
  }

  std::string image_;
};

TEST_F(CorruptionMatrixTest, PristineImageVerifiesClean) {
  VerifyReport report = Verify();
  EXPECT_TRUE(report.clean()) << report.Summary();
  EXPECT_TRUE(report.sealed_image);
  EXPECT_EQ(report.tables_checked, 1u);
  EXPECT_GT(report.structures_checked, 10u);
}

TEST_F(CorruptionMatrixTest, RegionHeaderFlipIsFatal) {
  FlipBit([](Nav&) { return uint64_t{1}; });  // inside the header magic
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasStructure("region_header")) << report.Summary();
  EXPECT_TRUE(report.has_fatal());
}

TEST_F(CorruptionMatrixTest, AllocatorFreeListFlipDetected) {
  FlipBit([](Nav&) {
    return alloc::PAllocator::MetaOffset() +
           offsetof(alloc::AllocMeta, free_heads);
  });
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasStructure("allocator_meta")) << report.Summary();
}

TEST_F(CorruptionMatrixTest, CommitTableFlipDetected) {
  FlipBit([](Nav& nav) {
    return *alloc::GetRoot(nav.region, txn::kTxnStateRootName) +
           offsetof(txn::PTxnStateBlock, commit_watermark);
  });
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasStructure("commit_table")) << report.Summary();
}

TEST_F(CorruptionMatrixTest, CatalogDescriptorFlipIsFatal) {
  FlipBit([](Nav& nav) {
    return nav.OffsetOf(&nav.Catalog()->table_meta_offsets) +
           offsetof(alloc::PVectorDesc, size);
  });
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasStructure("catalog")) << report.Summary();
  EXPECT_TRUE(report.has_fatal());
}

TEST_F(CorruptionMatrixTest, TableVectorDescriptorFlipDetected) {
  FlipBit([](Nav& nav) {
    auto* group = nav.Group();
    const uint64_t ncols = nav.FirstTable()->num_columns;
    return nav.OffsetOf(&group->delta_col(0, ncols)->attr) +
           offsetof(alloc::PVectorDesc, size);
  });
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasStructure("pvector_descriptor"))
      << report.Summary();
}

TEST_F(CorruptionMatrixTest, MainDictionaryContentFlipDetected) {
  FlipBit([](Nav& nav) {
    // Second dictionary entry of the int64 column's main partition.
    return Nav::DescData(nav.Group()->main_col(0)->dict_values) + 8;
  });
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasStructure("dictionary")) << report.Summary();
}

TEST_F(CorruptionMatrixTest, MainAttributeVectorFlipDetected) {
  FlipBit([](Nav& nav) {
    return Nav::DescData(nav.Group()->main_col(0)->attr_words);
  });
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasStructure("attribute_vector")) << report.Summary();
}

TEST_F(CorruptionMatrixTest, MvccEntryFlipDetected) {
  FlipBit([](Nav& nav) {
    return Nav::DescData(nav.Group()->delta_mvcc);  // first entry's begin
  });
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasStructure("mvcc")) << report.Summary();
}

TEST_F(CorruptionMatrixTest, HashIndexBucketFlipDetected) {
  FlipBit([](Nav& nav) {
    auto* group = nav.Group();
    for (uint64_t s = 0; s < storage::kMaxIndexesPerTable; ++s) {
      if (group->indexes[s].state == 1 &&
          group->indexes[s].kind == storage::kIndexHash) {
        return Nav::DescData(group->indexes[s].buckets);
      }
    }
    ADD_FAILURE() << "image has no hash index";
    return uint64_t{1};
  });
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasStructure("index")) << report.Summary();
}

TEST_F(CorruptionMatrixTest, CorruptImageFailsNormalDeepOpen) {
  FlipBit([](Nav& nav) {
    return Nav::DescData(nav.Group()->main_col(0)->dict_values) + 8;
  });
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  options.data_dir = nvm::TempPath("corruption_matrix_open");
  options.tracking = nvm::TrackingMode::kNone;
  options.open_mode = core::OpenMode::kVerifyDeep;
  std::filesystem::create_directories(options.data_dir);
  std::filesystem::copy_file(image_, options.NvmImagePath());
  auto db_result = core::Database::Open(options);
  EXPECT_FALSE(db_result.ok());
  EXPECT_TRUE(db_result.status().IsCorruption())
      << db_result.status().ToString();
  std::error_code ec;
  std::filesystem::remove_all(options.data_dir, ec);
}

TEST(SalvageOpenTest, QuarantinesCorruptTableServesRestReadOnly) {
  const std::string dir = nvm::TempPath("salvage_open");
  std::filesystem::create_directories(dir);
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  options.data_dir = dir;
  options.tracking = nvm::TrackingMode::kNone;
  {
    auto db = std::move(core::Database::Create(options)).ValueUnsafe();
    storage::Table* good = *db->CreateTable("good", KvSchema());
    storage::Table* bad = *db->CreateTable("bad", KvSchema());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db->InsertAutoCommit(
                        good, {Value(int64_t{i}), Value(std::string("g"))})
                      .ok());
      ASSERT_TRUE(db->InsertAutoCommit(
                        bad, {Value(int64_t{i}), Value(std::string("b"))})
                      .ok());
    }
    ASSERT_TRUE(db->Merge("good").ok());
    ASSERT_TRUE(db->Merge("bad").ok());
    ASSERT_TRUE(db->Close().ok());
  }

  // Flip a bit inside the 'bad' table's main dictionary.
  {
    nvm::PmemRegionOptions region_options;
    region_options.file_path = options.NvmImagePath();
    region_options.tracking = nvm::TrackingMode::kNone;
    auto region =
        std::move(nvm::PmemRegion::Open(region_options)).ValueUnsafe();
    Nav nav{*region};
    auto* catalog = nav.Catalog();
    auto* offsets =
        nav.At<uint64_t>(Nav::DescData(catalog->table_meta_offsets));
    storage::PTableGroup* bad_group = nullptr;
    for (uint64_t i = 0; i < catalog->table_meta_offsets.size; ++i) {
      auto* meta = nav.At<storage::PTableMeta>(offsets[i]);
      if (std::string(meta->name) == "bad") {
        bad_group = nav.At<storage::PTableGroup>(meta->group_off);
      }
    }
    ASSERT_NE(bad_group, nullptr);
    const uint64_t off =
        Nav::DescData(bad_group->main_col(0)->dict_values) + 8;
    region->base()[off] ^= 0x04;
    region->Persist(region->base() + off, 1);
    ASSERT_TRUE(region->SyncToFile().ok());
  }

  options.open_mode = core::OpenMode::kSalvageReadOnly;
  auto db_result = core::Database::Open(options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result;
  EXPECT_TRUE(db->read_only());
  EXPECT_TRUE(db->last_recovery_report().read_only);
  ASSERT_EQ(db->last_recovery_report().quarantined_tables.size(), 1u);
  EXPECT_EQ(db->last_recovery_report().quarantined_tables[0], "bad");

  // The damaged table is fenced off...
  auto bad_result = db->GetTable("bad");
  EXPECT_FALSE(bad_result.ok());
  EXPECT_TRUE(bad_result.status().IsCorruption());
  // ...the healthy one is fully readable...
  auto good_result = db->GetTable("good");
  ASSERT_TRUE(good_result.ok()) << good_result.status().ToString();
  auto rows = db->ScanEqual(*good_result, 0, Value(int64_t{7}),
                            db->ReadSnapshot(), storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  // ...and every write path fails fast instead of touching the image.
  EXPECT_FALSE(db->Begin().ok());
  EXPECT_FALSE(db->CreateTable("new_table", KvSchema()).ok());
  EXPECT_FALSE(db->Merge("good").ok());
  EXPECT_TRUE(db->Close().ok());

  // Close() must not have marked the image clean-and-healthy: a second
  // salvage open sees the same corruption.
  auto again = core::Database::Open(options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE((*again)->read_only());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace hyrise_nv::recovery
