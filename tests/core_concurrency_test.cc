// Multi-threaded smoke tests: concurrent transactions across tables,
// concurrent readers against a writer on one table, and conflict-heavy
// contention on a single row. The engine's concurrency contract:
// arbitrary concurrent transactions, single writer per table.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/database.h"
#include "core/query.h"

namespace hyrise_nv::core {
namespace {

using storage::DataType;
using storage::Value;

std::unique_ptr<Database> MakeDb() {
  DatabaseOptions options;
  options.mode = DurabilityMode::kNvm;
  options.region_size = 256 << 20;
  options.tracking = nvm::TrackingMode::kNone;
  return std::move(Database::Create(options)).ValueUnsafe();
}

storage::Schema KvSchema() {
  return *storage::Schema::Make(
      {{"k", DataType::kInt64}, {"v", DataType::kString}});
}

TEST(ConcurrencyTest, ParallelWritersOnSeparateTables) {
  auto db = MakeDb();
  constexpr int kThreads = 4;
  constexpr int kRowsPerThread = 500;
  std::vector<storage::Table*> tables;
  for (int t = 0; t < kThreads; ++t) {
    tables.push_back(
        *db->CreateTable("t" + std::to_string(t), KvSchema()));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kRowsPerThread; ++i) {
        auto tx = db->Begin();
        if (!tx.ok()) {
          ++failures;
          return;
        }
        auto insert = db->Insert(
            *tx, tables[t],
            {Value(int64_t{i}), Value(std::string("w"))});
        if (!insert.ok() || !db->Commit(*tx).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(CountRows(tables[t], db->ReadSnapshot(), storage::kTidNone),
              static_cast<uint64_t>(kRowsPerThread));
  }
}

TEST(ConcurrencyTest, ReadersNeverSeeTornStateUnderWriter) {
  auto db = MakeDb();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  // Writer inserts pairs transactionally: counts must always be even.
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread writer([&]() {
    for (int i = 0; i < 600 && !stop; ++i) {
      auto tx = *db->Begin();
      (void)db->Insert(tx, table, {Value(int64_t{2 * i}),
                                   Value(std::string("a"))});
      (void)db->Insert(tx, table, {Value(int64_t{2 * i + 1}),
                                   Value(std::string("b"))});
      (void)db->Commit(tx);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&]() {
      for (int i = 0; i < 300; ++i) {
        const uint64_t count =
            CountRows(table, db->ReadSnapshot(), storage::kTidNone);
        if (count % 2 != 0) ++violations;
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop = true;
  writer.join();
  EXPECT_EQ(violations.load(), 0)
      << "a reader observed a half-committed transaction";
}

TEST(ConcurrencyTest, ContendedDeleteOnlyOneWins) {
  auto db = MakeDb();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  auto tx0 = *db->Begin();
  auto loc = *db->Insert(tx0, table,
                         {Value(int64_t{1}), Value(std::string("x"))});
  ASSERT_TRUE(db->Commit(tx0).ok());

  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      auto tx = *db->Begin();
      Status status = db->Delete(tx, table, loc);
      if (status.ok()) {
        if (db->Commit(tx).ok()) ++winners;
      } else {
        (void)db->Abort(tx);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(winners.load(), 1) << "exactly one delete may commit";
  EXPECT_EQ(CountRows(table, db->ReadSnapshot(), storage::kTidNone), 0u);
}

TEST(ConcurrencyTest, ParallelTidsAreUnique) {
  auto db = MakeDb();
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 2000;
  std::vector<std::vector<storage::Tid>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      seen[t].reserve(kTxnsPerThread);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto tx = *db->Begin();
        seen[t].push_back(tx.tid());
        (void)db->Commit(tx);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<storage::Tid> all;
  for (const auto& tids : seen) {
    for (const auto tid : tids) {
      EXPECT_TRUE(all.insert(tid).second) << "duplicate TID " << tid;
    }
  }
  EXPECT_EQ(all.size(), size_t{kThreads} * kTxnsPerThread);
}

}  // namespace
}  // namespace hyrise_nv::core
