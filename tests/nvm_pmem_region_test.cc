#include "nvm/pmem_region.h"

#include <gtest/gtest.h>

#include <cstring>

#include "nvm/nvm_env.h"

namespace hyrise_nv::nvm {
namespace {

PmemRegionOptions ShadowOptions() {
  PmemRegionOptions opts;
  opts.tracking = TrackingMode::kShadow;
  return opts;
}

TEST(PmemRegionTest, CreateZeroFilled) {
  auto result = PmemRegion::Create(1 << 16, ShadowOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto& region = **result;
  EXPECT_EQ(region.size(), size_t{1 << 16});
  for (size_t i = 0; i < region.size(); i += 997) {
    EXPECT_EQ(region.base()[i], 0);
  }
}

TEST(PmemRegionTest, ZeroSizeRejected) {
  auto result = PmemRegion::Create(0, ShadowOptions());
  EXPECT_FALSE(result.ok());
}

TEST(PmemRegionTest, PersistedDataSurvivesCrash) {
  auto result = PmemRegion::Create(1 << 16, ShadowOptions());
  ASSERT_TRUE(result.ok());
  auto& region = **result;
  std::memcpy(region.base() + 100, "durable", 7);
  region.Persist(region.base() + 100, 7);
  std::memcpy(region.base() + 200, "volatile", 8);  // never persisted

  ASSERT_TRUE(region.SimulateCrash().ok());
  EXPECT_EQ(std::memcmp(region.base() + 100, "durable", 7), 0);
  EXPECT_NE(std::memcmp(region.base() + 200, "volatile", 8), 0);
}

TEST(PmemRegionTest, FlushWithoutFenceIsLost) {
  auto result = PmemRegion::Create(1 << 16, ShadowOptions());
  ASSERT_TRUE(result.ok());
  auto& region = **result;
  std::memcpy(region.base() + 100, "staged", 6);
  region.Flush(region.base() + 100, 6);
  // No Fence: the staged lines must not survive the crash.
  ASSERT_TRUE(region.SimulateCrash().ok());
  EXPECT_NE(std::memcmp(region.base() + 100, "staged", 6), 0);
}

TEST(PmemRegionTest, FenceMakesStagedFlushesDurable) {
  auto result = PmemRegion::Create(1 << 16, ShadowOptions());
  ASSERT_TRUE(result.ok());
  auto& region = **result;
  std::memcpy(region.base() + 100, "abc", 3);
  std::memcpy(region.base() + 4096, "def", 3);
  region.Flush(region.base() + 100, 3);
  region.Flush(region.base() + 4096, 3);
  region.Fence();
  ASSERT_TRUE(region.SimulateCrash().ok());
  EXPECT_EQ(std::memcmp(region.base() + 100, "abc", 3), 0);
  EXPECT_EQ(std::memcmp(region.base() + 4096, "def", 3), 0);
}

TEST(PmemRegionTest, CrashLosesUnflushedPartOfMixedWrite) {
  auto result = PmemRegion::Create(1 << 16, ShadowOptions());
  ASSERT_TRUE(result.ok());
  auto& region = **result;
  // Two writes in different cache lines; only the first is persisted.
  region.base()[0] = 0xAA;
  region.base()[128] = 0xBB;
  region.Persist(region.base() + 0, 1);
  ASSERT_TRUE(region.SimulateCrash().ok());
  EXPECT_EQ(region.base()[0], 0xAA);
  EXPECT_EQ(region.base()[128], 0x00);
}

TEST(PmemRegionTest, PersistWholeLineGranularity) {
  // Flushing one byte persists its entire 64-byte line — like CLWB.
  auto result = PmemRegion::Create(1 << 12, ShadowOptions());
  ASSERT_TRUE(result.ok());
  auto& region = **result;
  for (int i = 0; i < 64; ++i) region.base()[i] = static_cast<uint8_t>(i);
  region.Persist(region.base() + 10, 1);
  ASSERT_TRUE(region.SimulateCrash().ok());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(region.base()[i], static_cast<uint8_t>(i)) << i;
  }
}

TEST(PmemRegionTest, AtomicPersist64SurvivesCrash) {
  auto result = PmemRegion::Create(1 << 12, ShadowOptions());
  ASSERT_TRUE(result.ok());
  auto& region = **result;
  auto* slot = reinterpret_cast<uint64_t*>(region.base() + 64);
  region.AtomicPersist64(slot, 0x1122334455667788ull);
  ASSERT_TRUE(region.SimulateCrash().ok());
  EXPECT_EQ(*slot, 0x1122334455667788ull);
}

TEST(PmemRegionTest, StatsCountFlushesAndFences) {
  auto result = PmemRegion::Create(1 << 16, ShadowOptions());
  ASSERT_TRUE(result.ok());
  auto& region = **result;
  region.stats().Reset();
  region.Persist(region.base(), 1);     // 1 line, 1 fence
  region.Persist(region.base(), 200);   // 4 lines, 1 fence
  EXPECT_EQ(region.stats().flush_lines.load(), 5u);
  EXPECT_EQ(region.stats().fences.load(), 2u);
  EXPECT_EQ(region.stats().persist_calls.load(), 2u);
  EXPECT_EQ(region.stats().flushed_bytes.load(), 5u * 64);
}

TEST(PmemRegionTest, CrashUnsupportedWithoutShadow) {
  PmemRegionOptions opts;
  opts.tracking = TrackingMode::kNone;
  auto result = PmemRegion::Create(1 << 12, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->SimulateCrash().code(), StatusCode::kNotSupported);
}

TEST(PmemRegionTest, FileBackedSurvivesReopen) {
  const std::string path = TempPath("pmem_region_test");
  {
    PmemRegionOptions opts;
    opts.tracking = TrackingMode::kNone;
    opts.file_path = path;
    auto result = PmemRegion::Create(1 << 16, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto& region = **result;
    std::memcpy(region.base() + 500, "persistent", 10);
    region.Persist(region.base() + 500, 10);
    ASSERT_TRUE(region.SyncToFile().ok());
  }
  {
    PmemRegionOptions opts;
    opts.tracking = TrackingMode::kNone;
    opts.file_path = path;
    auto result = PmemRegion::Open(opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto& region = **result;
    EXPECT_EQ(region.size(), size_t{1 << 16});
    EXPECT_EQ(std::memcmp(region.base() + 500, "persistent", 10), 0);
  }
  RemoveFileIfExists(path);
}

TEST(PmemRegionTest, OpenMissingFileFails) {
  PmemRegionOptions opts;
  opts.file_path = TempPath("does_not_exist");
  auto result = PmemRegion::Open(opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(PmemRegionTest, OpenWithoutPathRejected) {
  PmemRegionOptions opts;
  auto result = PmemRegion::Open(opts);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PmemRegionTest, OffsetOfAndContains) {
  auto result = PmemRegion::Create(1 << 12, ShadowOptions());
  ASSERT_TRUE(result.ok());
  auto& region = **result;
  EXPECT_EQ(region.OffsetOf(region.base() + 123), 123u);
  EXPECT_TRUE(region.Contains(region.base()));
  EXPECT_TRUE(region.Contains(region.base() + region.size() - 1));
  int unrelated = 0;
  EXPECT_FALSE(region.Contains(&unrelated));
}

TEST(PmemRegionTest, LatencyModelCharged) {
  PmemRegionOptions opts;
  opts.tracking = TrackingMode::kNone;
  opts.latency = NvmLatencyModel{50000, 50000, 0.0};  // 50 µs each, measurable
  auto result = PmemRegion::Create(1 << 12, opts);
  ASSERT_TRUE(result.ok());
  auto& region = **result;
  const auto t0 = std::chrono::steady_clock::now();
  region.Persist(region.base(), 1);  // one line + one fence => >= 100 µs
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            90);
}

TEST(PmemRegionTest, ContinueAfterCrashThenPersistAgain) {
  auto result = PmemRegion::Create(1 << 12, ShadowOptions());
  ASSERT_TRUE(result.ok());
  auto& region = **result;
  region.base()[0] = 1;
  region.Persist(region.base(), 1);
  ASSERT_TRUE(region.SimulateCrash().ok());
  region.base()[0] = 2;
  region.Persist(region.base(), 1);
  ASSERT_TRUE(region.SimulateCrash().ok());
  EXPECT_EQ(region.base()[0], 2);
}

}  // namespace
}  // namespace hyrise_nv::nvm
