// Crash-injection property tests: run a randomized transactional
// workload, cut durability at an arbitrary fence (mid-operation,
// mid-commit — anywhere), crash, recover, and verify that the recovered
// database equals the committed prefix exactly.
//
// The oracle: every committed transaction is recorded with its CID and
// its logical effects. After recovery, the persistent commit watermark
// defines the durable prefix; replaying the recorded effects up to that
// watermark must reproduce the recovered table contents — nothing torn,
// nothing lost, nothing resurrected.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/random.h"
#include "core/database.h"
#include "core/query.h"

namespace hyrise_nv::core {
namespace {

using storage::RowLocation;
using storage::Value;

struct LoggedOp {
  enum Kind { kPut, kErase } kind;  // kPut covers insert and update
  int64_t key;
  std::string value;
};

struct LoggedTxn {
  storage::Cid cid;
  std::vector<LoggedOp> ops;
};

class CrashInjectionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashInjectionTest, RecoversExactlyTheCommittedPrefix) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  DatabaseOptions options;
  options.mode = DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  options.tracking = nvm::TrackingMode::kShadow;
  auto db = std::move(Database::Create(options)).ValueUnsafe();
  auto schema = *storage::Schema::Make(
      {{"k", storage::DataType::kInt64},
       {"v", storage::DataType::kString}});
  storage::Table* table = *db->CreateTable("kv", schema);
  ASSERT_TRUE(db->CreateIndex("kv", 0).ok());

  // Phase 1: a guaranteed-durable prefix, optionally merged.
  std::vector<LoggedTxn> committed;
  std::map<int64_t, std::string> live_keys;  // volatile helper
  int64_t next_key = 0;

  auto run_txn = [&]() -> Status {
    auto tx_result = db->Begin();
    if (!tx_result.ok()) return tx_result.status();
    auto tx = *tx_result;
    LoggedTxn logged;
    const int ops = 1 + static_cast<int>(rng.Uniform(4));
    for (int op = 0; op < ops; ++op) {
      const double dice = rng.NextDouble();
      if (dice < 0.5 || live_keys.empty()) {
        // Insert a fresh key.
        const int64_t key = next_key++;
        const std::string value = rng.NextString(12);
        auto insert = db->Insert(tx, table, {Value(key), Value(value)});
        if (!insert.ok()) return insert.status();
        logged.ops.push_back({LoggedOp::kPut, key, value});
      } else {
        // Pick a random existing key.
        auto it = live_keys.lower_bound(
            static_cast<int64_t>(rng.Uniform(next_key)));
        if (it == live_keys.end()) it = live_keys.begin();
        const int64_t key = it->first;
        auto rows = db->ScanEqual(table, 0, Value(key), tx.snapshot(),
                                  tx.tid());
        if (!rows.ok()) return rows.status();
        if (rows->empty()) continue;  // deleted by this txn already
        if (dice < 0.75) {
          const std::string value = rng.NextString(12);
          auto update = db->Update(tx, table, rows->front(),
                                   {Value(key), Value(value)});
          if (!update.ok()) return update.status();
          logged.ops.push_back({LoggedOp::kPut, key, value});
        } else {
          Status del = db->Delete(tx, table, rows->front());
          if (!del.ok()) return del;
          logged.ops.push_back({LoggedOp::kErase, key, ""});
        }
      }
    }
    if (rng.Bernoulli(0.1)) {
      return db->Abort(tx);  // aborted txns leave no logged entry
    }
    Status commit_status = db->Commit(tx);
    if (!commit_status.ok()) return commit_status;
    logged.cid = tx.commit_cid();
    committed.push_back(logged);
    for (const auto& op : logged.ops) {
      if (op.kind == LoggedOp::kPut) {
        live_keys[op.key] = op.value;
      } else {
        live_keys.erase(op.key);
      }
    }
    return Status::OK();
  };

  for (int t = 0; t < 30; ++t) {
    ASSERT_TRUE(run_txn().ok()) << "seed " << seed << " txn " << t;
  }
  if (rng.Bernoulli(0.5)) {
    ASSERT_TRUE(db->Merge("kv").ok());
  }

  // Phase 2: freeze durability at a random upcoming fence, then keep
  // running — including merges, so the cut can land mid-merge (group
  // swap, index reset, old-generation retirement).
  db->heap().region().FreezeShadowAfterFences(1 + rng.Uniform(600));
  for (int t = 0; t < 40; ++t) {
    Status status = run_txn();
    ASSERT_TRUE(status.ok()) << "seed " << seed << " post-freeze txn " << t
                             << ": " << status.ToString();
    if (rng.Bernoulli(0.05)) {
      ASSERT_TRUE(db->Merge("kv").ok()) << "seed " << seed;
    }
  }

  // Phase 3: crash + instant restart.
  auto recovered_result = Database::CrashAndRecover(std::move(db));
  ASSERT_TRUE(recovered_result.ok())
      << "seed " << seed << ": " << recovered_result.status().ToString();
  auto& recovered = *recovered_result;
  storage::Table* rtable = *recovered->GetTable("kv");

  // Oracle: committed prefix up to the recovered watermark.
  const storage::Cid watermark = recovered->ReadSnapshot();
  std::map<int64_t, std::string> expected;
  size_t durable_txns = 0;
  for (const auto& txn : committed) {
    if (txn.cid > watermark) continue;
    ++durable_txns;
    for (const auto& op : txn.ops) {
      if (op.kind == LoggedOp::kPut) {
        expected[op.key] = op.value;
      } else {
        expected.erase(op.key);
      }
    }
  }

  // 1. Row count matches exactly.
  ASSERT_EQ(CountRows(rtable, watermark, storage::kTidNone),
            expected.size())
      << "seed " << seed << " (durable txns: " << durable_txns << " of "
      << committed.size() << ", watermark " << watermark << ")";

  // 2. Every expected key present exactly once, with the right value,
  //    through the index.
  for (const auto& [key, value] : expected) {
    auto rows = recovered->ScanEqual(rtable, 0, Value(key), watermark,
                                     storage::kTidNone);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 1u) << "seed " << seed << " key " << key;
    EXPECT_EQ(std::get<std::string>(rtable->GetValue(rows->front(), 1)),
              value)
        << "seed " << seed << " key " << key;
  }

  // 3. No resurrected keys: scan everything and cross-check the model.
  uint64_t seen = 0;
  rtable->ForEachVisibleRow(watermark, storage::kTidNone,
                            [&](RowLocation loc) {
                              const int64_t key = std::get<int64_t>(
                                  rtable->GetValue(loc, 0));
                              ASSERT_TRUE(expected.count(key))
                                  << "seed " << seed
                                  << " resurrected key " << key;
                              ++seen;
                            });
  EXPECT_EQ(seen, expected.size());

  // 4. The recovered database accepts new transactions.
  auto tx = *recovered->Begin();
  ASSERT_TRUE(recovered
                  ->Insert(tx, rtable, {Value(int64_t{1} << 40),
                                        Value(std::string("alive"))})
                  .ok());
  ASSERT_TRUE(recovered->Commit(tx).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashInjectionTest,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

// A transaction spanning two tables must commit atomically across both,
// for every possible crash point inside the commit.
class CrossTableAtomicityTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CrossTableAtomicityTest, BothTablesOrNeither) {
  const uint64_t crash_fences = GetParam();
  DatabaseOptions options;
  options.mode = DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  options.tracking = nvm::TrackingMode::kShadow;
  auto db = std::move(Database::Create(options)).ValueUnsafe();
  auto schema = *storage::Schema::Make({{"k", storage::DataType::kInt64}});
  storage::Table* debit = *db->CreateTable("debit", schema);
  storage::Table* credit = *db->CreateTable("credit", schema);

  // A durable baseline transaction in each table.
  ASSERT_TRUE(db->InsertAutoCommit(debit, {Value(int64_t{0})}).ok());
  ASSERT_TRUE(db->InsertAutoCommit(credit, {Value(int64_t{0})}).ok());

  // The cross-table transaction, with durability cut `crash_fences`
  // fences into it.
  db->heap().region().FreezeShadowAfterFences(crash_fences);
  auto tx = *db->Begin();
  ASSERT_TRUE(db->Insert(tx, debit, {Value(int64_t{1})}).ok());
  ASSERT_TRUE(db->Insert(tx, credit, {Value(int64_t{1})}).ok());
  ASSERT_TRUE(db->Commit(tx).ok());

  auto recovered =
      std::move(Database::CrashAndRecover(std::move(db))).ValueUnsafe();
  const storage::Cid snap = recovered->ReadSnapshot();
  const uint64_t debit_rows =
      CountRows(*recovered->GetTable("debit"), snap, storage::kTidNone);
  const uint64_t credit_rows =
      CountRows(*recovered->GetTable("credit"), snap, storage::kTidNone);
  EXPECT_EQ(debit_rows, credit_rows)
      << "crash at fence " << crash_fences
      << " split a cross-table transaction";
  EXPECT_GE(debit_rows, 1u);
  EXPECT_LE(debit_rows, 2u);
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CrossTableAtomicityTest,
                         ::testing::Range(uint64_t{1}, uint64_t{30}));

}  // namespace
}  // namespace hyrise_nv::core
