#include "core/query.h"

#include <gtest/gtest.h>

#include "core/database.h"

namespace hyrise_nv::core {
namespace {

using storage::DataType;
using storage::Value;

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.mode = DurabilityMode::kNvm;
    options.region_size = 64 << 20;
    options.tracking = nvm::TrackingMode::kNone;
    db_ = std::move(Database::Create(options)).ValueUnsafe();
    auto schema = *storage::Schema::Make({{"i", DataType::kInt64},
                                          {"d", DataType::kDouble},
                                          {"s", DataType::kString}});
    table_ = *db_->CreateTable("t", schema);
  }

  void Insert(int64_t i, double d, const std::string& s) {
    ASSERT_TRUE(
        db_->InsertAutoCommit(table_, {Value(i), Value(d), Value(s)}).ok());
  }

  storage::Cid Snap() { return db_->ReadSnapshot(); }

  std::unique_ptr<Database> db_;
  storage::Table* table_ = nullptr;
};

TEST_F(QueryTest, CompareValuesAllTypes) {
  EXPECT_LT(CompareValues(Value(int64_t{-5}), Value(int64_t{3})), 0);
  EXPECT_GT(CompareValues(Value(int64_t{7}), Value(int64_t{-7})), 0);
  EXPECT_EQ(CompareValues(Value(int64_t{4}), Value(int64_t{4})), 0);
  EXPECT_LT(CompareValues(Value(1.5), Value(2.5)), 0);
  EXPECT_LT(CompareValues(Value(std::string("a")), Value(std::string("b"))),
            0);
  EXPECT_EQ(
      CompareValues(Value(std::string("x")), Value(std::string("x"))), 0);
}

TEST_F(QueryTest, ScanRangeEmptyTable) {
  auto rows = ScanRange(table_, 0, Value(int64_t{0}), Value(int64_t{10}),
                        Snap(), storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(QueryTest, ScanRangeInvertedBoundsEmpty) {
  Insert(5, 1.0, "x");
  auto rows = ScanRange(table_, 0, Value(int64_t{10}), Value(int64_t{0}),
                        Snap(), storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(QueryTest, ScanRangeBadColumnRejected) {
  auto rows = ScanRange(table_, 99, Value(int64_t{0}), Value(int64_t{1}),
                        Snap(), storage::kTidNone);
  EXPECT_FALSE(rows.ok());
}

TEST_F(QueryTest, ScanRangeOnDoubles) {
  for (int i = 0; i < 10; ++i) Insert(i, i * 0.5, "v");
  auto rows = ScanRange(table_, 1, Value(1.0), Value(3.0), Snap(),
                        storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);  // 1.0, 1.5, 2.0, 2.5, 3.0
}

TEST_F(QueryTest, ScanRangeOnStrings) {
  for (const char* s : {"apple", "banana", "cherry", "date", "elder"}) {
    Insert(0, 0.0, s);
  }
  auto rows = ScanRange(table_, 2, Value(std::string("b")),
                        Value(std::string("d")), Snap(),
                        storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // banana, cherry
}

TEST_F(QueryTest, SumsRespectVisibility) {
  Insert(10, 1.5, "a");
  Insert(20, 2.5, "b");
  // One uncommitted insert must not count.
  auto tx = *db_->Begin();
  ASSERT_TRUE(db_->Insert(*&tx, table_,
                          {Value(int64_t{1000}), Value(99.0),
                           Value(std::string("ghost"))})
                  .ok());
  auto sum_i = SumInt64(table_, 0, Snap(), storage::kTidNone);
  ASSERT_TRUE(sum_i.ok());
  EXPECT_EQ(*sum_i, 30);
  auto sum_d = SumDouble(table_, 1, Snap(), storage::kTidNone);
  ASSERT_TRUE(sum_d.ok());
  EXPECT_EQ(*sum_d, 4.0);
  // The owner sees its own insert.
  auto own = SumInt64(table_, 0, tx.snapshot(), tx.tid());
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(*own, 1030);
  ASSERT_TRUE(db_->Abort(tx).ok());
}

TEST_F(QueryTest, SumTypeMismatchRejected) {
  EXPECT_FALSE(SumInt64(table_, 1, Snap(), storage::kTidNone).ok());
  EXPECT_FALSE(SumDouble(table_, 0, Snap(), storage::kTidNone).ok());
  EXPECT_FALSE(SumInt64(table_, 2, Snap(), storage::kTidNone).ok());
}

TEST_F(QueryTest, MaterializeRows) {
  Insert(1, 1.0, "one");
  Insert(2, 2.0, "two");
  auto locs = db_->ScanEqual(table_, 0, Value(int64_t{2}), Snap(),
                             storage::kTidNone);
  ASSERT_TRUE(locs.ok());
  const auto rows = MaterializeRows(table_, *locs);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(rows[0][2]), "two");
}

TEST_F(QueryTest, ScanRangeSpansMainAndDeltaAfterMerge) {
  for (int i = 0; i < 10; ++i) Insert(i, 0.0, "m");
  ASSERT_TRUE(db_->Merge("t").ok());
  for (int i = 10; i < 20; ++i) Insert(i, 0.0, "d");
  auto rows = ScanRange(table_, 0, Value(int64_t{5}), Value(int64_t{14}),
                        Snap(), storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  uint64_t in_main = 0;
  for (const auto& loc : *rows) in_main += loc.in_main ? 1 : 0;
  EXPECT_EQ(in_main, 5u);
}

TEST_F(QueryTest, ScanEqualSeesOwnUncommittedWrites) {
  Insert(1, 1.0, "committed");
  auto tx = *db_->Begin();
  ASSERT_TRUE(db_->Insert(tx, table_, {Value(int64_t{1}), Value(2.0),
                                       Value(std::string("mine"))})
                  .ok());
  auto rows =
      db_->ScanEqual(table_, 0, Value(int64_t{1}), tx.snapshot(), tx.tid());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  auto global = db_->ScanEqual(table_, 0, Value(int64_t{1}), Snap(),
                               storage::kTidNone);
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(global->size(), 1u);
  ASSERT_TRUE(db_->Abort(tx).ok());
}

}  // namespace
}  // namespace hyrise_nv::core
