#include <gtest/gtest.h>

#include <map>

#include "core/query.h"
#include "workload/enterprise.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"
#include "workload/zipf.h"

namespace hyrise_nv::workload {
namespace {

core::DatabaseOptions InMemoryOptions() {
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 128 << 20;
  options.tracking = nvm::TrackingMode::kNone;
  return options;
}

TEST(ZipfTest, KeysInRangeAndSkewed) {
  ZipfGenerator zipf(1000, 0.9, 123);
  std::map<uint64_t, uint64_t> histogram;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = zipf.Next();
    ASSERT_LT(key, 1000u);
    histogram[key]++;
  }
  // Key 0 must be by far the most frequent under strong skew.
  uint64_t max_count = 0;
  for (const auto& [key, count] : histogram) {
    max_count = std::max(max_count, count);
  }
  EXPECT_EQ(histogram[0], max_count);
  EXPECT_GT(histogram[0], 20000u / 100) << "head key should be hot";
}

TEST(ZipfTest, DeterministicBySeed) {
  ZipfGenerator a(100, 0.8, 7), b(100, 0.8, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(YcsbTest, LoadAndRun) {
  auto db_result = core::Database::Create(InMemoryOptions());
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result;
  YcsbConfig config;
  config.initial_rows = 500;
  YcsbRunner runner(db.get(), config);
  ASSERT_TRUE(runner.Load().ok());
  EXPECT_EQ(core::CountRows(runner.table(), db->ReadSnapshot(),
                            storage::kTidNone),
            500u);
  auto stats = runner.Run(300);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->transactions + stats->aborts, 300u);
  EXPECT_GT(stats->reads + stats->updates + stats->inserts, 0u);
  // Row count grew by exactly the successful inserts.
  EXPECT_EQ(core::CountRows(runner.table(), db->ReadSnapshot(),
                            storage::kTidNone),
            500u + stats->inserts);
}

TEST(TpccTest, LoadPopulatesAllTables) {
  auto db_result = core::Database::Create(InMemoryOptions());
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result;
  TpccConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 5;
  config.items = 20;
  TpccRunner runner(db.get(), config);
  ASSERT_TRUE(runner.Load().ok());

  const auto count = [&](const char* name) {
    return core::CountRows(*db->GetTable(name), db->ReadSnapshot(),
                           storage::kTidNone);
  };
  EXPECT_EQ(count("warehouse"), 1u);
  EXPECT_EQ(count("district"), 2u);
  EXPECT_EQ(count("customer"), 10u);
  EXPECT_EQ(count("item"), 20u);
  EXPECT_EQ(count("stock"), 20u);
  EXPECT_EQ(count("orders"), 0u);
}

TEST(TpccTest, TransactionsPreserveInvariants) {
  auto db_result = core::Database::Create(InMemoryOptions());
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result;
  TpccConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 5;
  config.items = 50;
  TpccRunner runner(db.get(), config);
  ASSERT_TRUE(runner.Load().ok());

  auto stats = runner.Run(200);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->transactions() + stats->aborts, 200u);
  EXPECT_GT(stats->new_orders, 0u);
  EXPECT_GT(stats->payments, 0u);

  // Invariant: every committed NewOrder inserted exactly one order row.
  const uint64_t orders = core::CountRows(
      *db->GetTable("orders"), db->ReadSnapshot(), storage::kTidNone);
  EXPECT_EQ(orders, stats->new_orders);
  // Invariant: pending orders = created - delivered.
  const uint64_t pending = core::CountRows(
      *db->GetTable("new_order"), db->ReadSnapshot(), storage::kTidNone);
  EXPECT_EQ(pending, stats->new_orders - stats->deliveries);
  // Invariant: district/customer/stock row counts unchanged (updates are
  // version replacements, not additions).
  EXPECT_EQ(core::CountRows(*db->GetTable("district"), db->ReadSnapshot(),
                            storage::kTidNone),
            2u);
  EXPECT_EQ(core::CountRows(*db->GetTable("stock"), db->ReadSnapshot(),
                            storage::kTidNone),
            50u);
  // Invariant: warehouse YTD equals the sum of payment amounts minus
  // customer balance deltas — check ytd > 0 when payments happened.
  if (stats->payments > 0) {
    auto ytd = core::SumDouble(*db->GetTable("warehouse"), 2,
                               db->ReadSnapshot(), storage::kTidNone);
    ASSERT_TRUE(ytd.ok());
    EXPECT_GT(*ytd, 0.0);
  }
}

TEST(TpccTest, DistrictOrderIdsMonotone) {
  auto db_result = core::Database::Create(InMemoryOptions());
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result;
  TpccConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 1;
  config.customers_per_district = 3;
  config.items = 20;
  config.payment_fraction = 0;  // only NewOrder + OrderStatus
  config.new_order_fraction = 1.0;
  TpccRunner runner(db.get(), config);
  ASSERT_TRUE(runner.Load().ok());
  auto stats = runner.Run(50);
  ASSERT_TRUE(stats.ok());
  // next_o_id must equal 1 + committed new orders.
  auto rows = db->ScanEqual(*db->GetTable("district"), 0,
                            storage::Value(runner.DistrictKey(0, 0)),
                            db->ReadSnapshot(), storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  const int64_t next_o_id = std::get<int64_t>(
      (*db->GetTable("district"))->GetValue(rows->front(), 1));
  EXPECT_EQ(next_o_id, static_cast<int64_t>(1 + stats->new_orders));
}

TEST(EnterpriseTest, LoadsRequestedRows) {
  auto db_result = core::Database::Create(InMemoryOptions());
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result;
  EnterpriseConfig config;
  config.cardinality = 50;
  auto table_result =
      LoadEnterpriseTable(db.get(), "enterprise", 2000, config);
  ASSERT_TRUE(table_result.ok()) << table_result.status().ToString();
  EXPECT_EQ(core::CountRows(*table_result, db->ReadSnapshot(),
                            storage::kTidNone),
            2000u);
  // Dictionary cardinality bounded as configured.
  EXPECT_LE((*table_result)->delta().column(0).dictionary().size(), 50u);
  EXPECT_GT(EnterpriseRowBytes(config), 0u);
}

}  // namespace
}  // namespace hyrise_nv::workload
