#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/merge.h"

namespace hyrise_nv::storage {
namespace {

Schema TestSchema() {
  return *Schema::Make({{"id", DataType::kInt64},
                        {"amount", DataType::kDouble},
                        {"note", DataType::kString}});
}

std::vector<Value> Row(int64_t id, double amount, std::string note) {
  return {Value(id), Value(amount), Value(std::move(note))};
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::PmemRegionOptions opts;
    opts.tracking = nvm::TrackingMode::kShadow;
    auto heap_result = alloc::PHeap::Create(16 << 20, opts);
    ASSERT_TRUE(heap_result.ok());
    heap_ = std::move(heap_result).ValueUnsafe();
    auto catalog_result = Catalog::Format(*heap_);
    ASSERT_TRUE(catalog_result.ok());
    catalog_ = std::move(catalog_result).ValueUnsafe();
    auto table_result = catalog_->CreateTable("orders", TestSchema());
    ASSERT_TRUE(table_result.ok()) << table_result.status().ToString();
    table_ = *table_result;
  }

  // Inserts a committed row directly (storage-level: stamp begin = cid).
  RowLocation InsertCommitted(int64_t id, double amount,
                              const std::string& note, Cid cid) {
    auto loc = table_->AppendRow(Row(id, amount, note), /*tid=*/77);
    EXPECT_TRUE(loc.ok()) << loc.status().ToString();
    MvccEntry* entry = table_->mvcc(*loc);
    heap_->region().AtomicPersist64(&entry->begin, cid);
    heap_->region().AtomicPersist64(&entry->tid, kTidNone);
    return *loc;
  }

  std::unique_ptr<alloc::PHeap> heap_;
  std::unique_ptr<Catalog> catalog_;
  Table* table_ = nullptr;
};

TEST_F(TableTest, FreshTableIsEmpty) {
  EXPECT_EQ(table_->main_row_count(), 0u);
  EXPECT_EQ(table_->delta_row_count(), 0u);
  EXPECT_EQ(table_->CountVisible(100, kTidNone), 0u);
  EXPECT_EQ(table_->name(), "orders");
  EXPECT_EQ(table_->schema().num_columns(), 3u);
}

TEST_F(TableTest, AppendRowValidatesSchema) {
  EXPECT_FALSE(table_->AppendRow({Value(int64_t{1})}, 1).ok());
  EXPECT_FALSE(
      table_->AppendRow({Value(1.0), Value(1.0), Value(1.0)}, 1).ok());
}

TEST_F(TableTest, UncommittedRowVisibleOnlyToOwner) {
  auto loc = table_->AppendRow(Row(1, 9.5, "a"), /*tid=*/42);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(table_->CountVisible(/*snapshot=*/100, /*tid=*/42), 1u);
  EXPECT_EQ(table_->CountVisible(100, /*tid=*/43), 0u);
  EXPECT_EQ(table_->CountVisible(100, kTidNone), 0u);
}

TEST_F(TableTest, CommittedRowVisibleFromItsCid) {
  InsertCommitted(1, 9.5, "a", /*cid=*/10);
  EXPECT_EQ(table_->CountVisible(9, kTidNone), 0u);
  EXPECT_EQ(table_->CountVisible(10, kTidNone), 1u);
  EXPECT_EQ(table_->CountVisible(11, kTidNone), 1u);
}

TEST_F(TableTest, GetValueAndGetRowRoundTrip) {
  const RowLocation loc = InsertCommitted(7, 1.25, "hello", 5);
  EXPECT_EQ(std::get<int64_t>(table_->GetValue(loc, 0)), 7);
  EXPECT_EQ(std::get<double>(table_->GetValue(loc, 1)), 1.25);
  EXPECT_EQ(std::get<std::string>(table_->GetValue(loc, 2)), "hello");
  const auto row = table_->GetRow(loc);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(std::get<int64_t>(row[0]), 7);
}

TEST_F(TableTest, DeletedRowInvisibleAfterEndCid) {
  const RowLocation loc = InsertCommitted(1, 1.0, "x", 5);
  MvccEntry* entry = table_->mvcc(loc);
  heap_->region().AtomicPersist64(&entry->end, 8);
  EXPECT_EQ(table_->CountVisible(7, kTidNone), 1u);
  EXPECT_EQ(table_->CountVisible(8, kTidNone), 0u);
}

TEST_F(TableTest, VisibilityRules) {
  // Foreign uncommitted insert invisible.
  MvccEntry e{kCidInfinity, kCidInfinity, 9};
  EXPECT_FALSE(IsVisible(e, 100, 8));
  EXPECT_TRUE(IsVisible(e, 100, 9));
  // Self-deleted own insert invisible even to owner.
  e.end = 0;
  EXPECT_FALSE(IsVisible(e, 100, 9));
  // Committed row claimed by me for delete: invisible to me, visible to
  // others.
  MvccEntry claimed{5, kCidInfinity, 9};
  EXPECT_FALSE(IsVisible(claimed, 100, 9));
  EXPECT_TRUE(IsVisible(claimed, 100, 8));
  EXPECT_TRUE(IsVisible(claimed, 100, kTidNone));
}

TEST_F(TableTest, ClaimForInvalidateConflictRules) {
  const RowLocation loc = InsertCommitted(1, 1.0, "x", 5);
  MvccEntry* entry = table_->mvcc(loc);
  auto active = [](Tid t) { return t == 100; };

  // Claim by live txn 100.
  EXPECT_TRUE(ClaimForInvalidate(heap_->region(), entry, 100, active).ok());
  // Re-claim by same txn: idempotent.
  EXPECT_TRUE(ClaimForInvalidate(heap_->region(), entry, 100, active).ok());
  // Another txn conflicts while 100 is active.
  EXPECT_TRUE(ClaimForInvalidate(heap_->region(), entry, 200, active)
                  .IsConflict());
  // Once 100 is no longer active (crashed/finished), the claim is stolen.
  auto none_active = [](Tid) { return false; };
  EXPECT_TRUE(
      ClaimForInvalidate(heap_->region(), entry, 200, none_active).ok());
  EXPECT_EQ(entry->tid, 200u);
}

TEST_F(TableTest, ReleaseClaimClearsTid) {
  const RowLocation loc = InsertCommitted(1, 1.0, "x", 5);
  MvccEntry* entry = table_->mvcc(loc);
  auto none = [](Tid) { return false; };
  ASSERT_TRUE(ClaimForInvalidate(heap_->region(), entry, 100, none).ok());
  ReleaseClaim(heap_->region(), entry, 100);
  EXPECT_EQ(entry->tid, kTidNone);
}

TEST_F(TableTest, CommittedRowsSurviveCrashAndReattach) {
  for (int i = 0; i < 50; ++i) {
    InsertCommitted(i, i * 0.5, "row" + std::to_string(i), 10);
  }
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());

  auto catalog_result = Catalog::Attach(*heap_);
  ASSERT_TRUE(catalog_result.ok()) << catalog_result.status().ToString();
  auto table_result = (*catalog_result)->GetTable("orders");
  ASSERT_TRUE(table_result.ok());
  Table* table = *table_result;
  ASSERT_TRUE(table->RepairAfterCrash().ok());
  EXPECT_EQ(table->CountVisible(10, kTidNone), 50u);
  const auto row = table->GetRow(RowLocation{false, 49});
  EXPECT_EQ(std::get<std::string>(row[2]), "row49");
}

TEST_F(TableTest, TornInsertRepairedAfterCrash) {
  InsertCommitted(1, 1.0, "a", 5);
  // Simulate a torn insert: append column values without the MVCC entry.
  for (size_t c = 0; c < 3; ++c) {
    ASSERT_TRUE(
        table_->delta().column(c).AppendValue(Row(2, 2.0, "b")[c]).ok());
  }
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());

  auto catalog_result = Catalog::Attach(*heap_);
  ASSERT_TRUE(catalog_result.ok());
  auto table_result = (*catalog_result)->GetTable("orders");
  ASSERT_TRUE(table_result.ok());
  Table* table = *table_result;
  ASSERT_TRUE(table->RepairAfterCrash().ok());
  EXPECT_EQ(table->delta_row_count(), 1u);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(table->delta().column(c).attr_size(), 1u);
  }
  // The table remains fully usable.
  auto loc = table->AppendRow(Row(3, 3.0, "c"), 50);
  EXPECT_TRUE(loc.ok());
}

TEST_F(TableTest, CatalogRejectsDuplicateTable) {
  auto result = catalog_->CreateTable("orders", TestSchema());
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(TableTest, CatalogMultipleTables) {
  auto t2 = catalog_->CreateTable("customers", TestSchema());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(catalog_->num_tables(), 2u);
  EXPECT_TRUE(catalog_->GetTable("customers").ok());
  EXPECT_TRUE(catalog_->GetTable("void").status().IsNotFound());
  EXPECT_NE((*catalog_->GetTable("orders"))->id(),
            (*catalog_->GetTable("customers"))->id());
}

TEST_F(TableTest, CatalogSurvivesCrash) {
  ASSERT_TRUE(catalog_->CreateTable("t2", TestSchema()).ok());
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());
  auto catalog_result = Catalog::Attach(*heap_);
  ASSERT_TRUE(catalog_result.ok());
  EXPECT_EQ((*catalog_result)->num_tables(), 2u);
}

}  // namespace
}  // namespace hyrise_nv::storage
