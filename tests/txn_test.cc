#include "txn/txn_manager.h"

#include <gtest/gtest.h>

#include "storage/merge.h"
#include "storage/mvcc.h"

namespace hyrise_nv::txn {
namespace {

using storage::DataType;
using storage::RowLocation;
using storage::Value;

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::PmemRegionOptions opts;
    opts.tracking = nvm::TrackingMode::kShadow;
    auto heap_result = alloc::PHeap::Create(32 << 20, opts);
    ASSERT_TRUE(heap_result.ok());
    heap_ = std::move(heap_result).ValueUnsafe();
    auto catalog_result = storage::Catalog::Format(*heap_);
    ASSERT_TRUE(catalog_result.ok());
    catalog_ = std::move(catalog_result).ValueUnsafe();
    auto manager_result = TxnManager::Format(*heap_);
    ASSERT_TRUE(manager_result.ok());
    manager_ = std::move(manager_result).ValueUnsafe();
    auto schema = *storage::Schema::Make({{"k", DataType::kInt64}});
    auto table_result = catalog_->CreateTable("t", schema);
    ASSERT_TRUE(table_result.ok());
    table_ = *table_result;
  }

  // Engine-level insert within a transaction.
  Result<RowLocation> Insert(Transaction& tx, int64_t k) {
    auto loc = table_->AppendRow({Value(k)}, tx.tid());
    if (!loc.ok()) return loc.status();
    tx.RecordInsert(table_, *loc);
    return *loc;
  }

  // Engine-level delete of a visible row.
  Status Delete(Transaction& tx, RowLocation loc) {
    auto* entry = table_->mvcc(loc);
    auto active = [this](storage::Tid t) { return manager_->IsActive(t); };
    HYRISE_NV_RETURN_NOT_OK(storage::ClaimForInvalidate(
        heap_->region(), entry, tx.tid(), active));
    if (entry->begin == storage::kCidInfinity) {
      storage::MarkSelfDeleted(heap_->region(), entry);
    }
    tx.RecordInvalidate(table_, loc);
    return Status::OK();
  }

  uint64_t VisibleCount() {
    return table_->CountVisible(manager_->ReadSnapshot(),
                                storage::kTidNone);
  }

  std::unique_ptr<alloc::PHeap> heap_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<TxnManager> manager_;
  storage::Table* table_ = nullptr;
};

TEST_F(TxnTest, BeginAssignsUniqueTidsAndSnapshot) {
  auto a = manager_->Begin();
  auto b = manager_->Begin();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->tid(), b->tid());
  EXPECT_NE(a->tid(), storage::kTidNone);
  EXPECT_EQ(a->snapshot(), manager_->watermark());
  EXPECT_TRUE(manager_->IsActive(a->tid()));
}

TEST_F(TxnTest, CommitMakesInsertVisible) {
  auto tx = manager_->Begin();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(Insert(*tx, 1).ok());
  EXPECT_EQ(VisibleCount(), 0u) << "uncommitted insert invisible globally";
  ASSERT_TRUE(manager_->Commit(*tx).ok());
  EXPECT_EQ(tx->state(), TxnState::kCommitted);
  EXPECT_EQ(VisibleCount(), 1u);
  EXPECT_FALSE(manager_->IsActive(tx->tid()));
}

TEST_F(TxnTest, AbortHidesInsertForever) {
  auto tx = manager_->Begin();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(Insert(*tx, 1).ok());
  ASSERT_TRUE(manager_->Abort(*tx).ok());
  EXPECT_EQ(VisibleCount(), 0u);
  // The aborted version is retired by merge.
  auto stats = storage::MergeTable(*table_, manager_->watermark());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_after, 0u);
}

TEST_F(TxnTest, SnapshotIsolationForReaders) {
  auto writer = manager_->Begin();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(Insert(*writer, 1).ok());

  auto reader = manager_->Begin();  // snapshot before writer commits
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(manager_->Commit(*writer).ok());

  EXPECT_EQ(table_->CountVisible(reader->snapshot(), reader->tid()), 0u)
      << "reader's snapshot predates the commit";
  auto late_reader = manager_->Begin();
  ASSERT_TRUE(late_reader.ok());
  EXPECT_EQ(
      table_->CountVisible(late_reader->snapshot(), late_reader->tid()),
      1u);
  ASSERT_TRUE(manager_->Commit(*reader).ok());
  ASSERT_TRUE(manager_->Commit(*late_reader).ok());
}

TEST_F(TxnTest, DeleteCommitRemovesRow) {
  auto tx1 = manager_->Begin();
  ASSERT_TRUE(tx1.ok());
  auto loc = Insert(*tx1, 1);
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(manager_->Commit(*tx1).ok());
  ASSERT_EQ(VisibleCount(), 1u);

  auto tx2 = manager_->Begin();
  ASSERT_TRUE(tx2.ok());
  ASSERT_TRUE(Delete(*tx2, *loc).ok());
  EXPECT_EQ(VisibleCount(), 1u) << "uncommitted delete invisible globally";
  EXPECT_EQ(table_->CountVisible(tx2->snapshot(), tx2->tid()), 0u)
      << "deleter no longer sees the row";
  ASSERT_TRUE(manager_->Commit(*tx2).ok());
  EXPECT_EQ(VisibleCount(), 0u);
}

TEST_F(TxnTest, DeleteAbortRestoresRow) {
  auto tx1 = manager_->Begin();
  ASSERT_TRUE(tx1.ok());
  auto loc = Insert(*tx1, 1);
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(manager_->Commit(*tx1).ok());

  auto tx2 = manager_->Begin();
  ASSERT_TRUE(tx2.ok());
  ASSERT_TRUE(Delete(*tx2, *loc).ok());
  ASSERT_TRUE(manager_->Abort(*tx2).ok());
  EXPECT_EQ(VisibleCount(), 1u);
  EXPECT_EQ(table_->mvcc(*loc)->tid, storage::kTidNone);
}

TEST_F(TxnTest, WriteWriteConflictDetected) {
  auto tx1 = manager_->Begin();
  ASSERT_TRUE(tx1.ok());
  auto loc = Insert(*tx1, 1);
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(manager_->Commit(*tx1).ok());

  auto tx2 = manager_->Begin();
  auto tx3 = manager_->Begin();
  ASSERT_TRUE(tx2.ok() && tx3.ok());
  ASSERT_TRUE(Delete(*tx2, *loc).ok());
  EXPECT_TRUE(Delete(*tx3, *loc).IsConflict());
  ASSERT_TRUE(manager_->Abort(*tx2).ok());
  // After the abort, tx3 can claim the row.
  EXPECT_TRUE(Delete(*tx3, *loc).ok());
  ASSERT_TRUE(manager_->Commit(*tx3).ok());
  EXPECT_EQ(VisibleCount(), 0u);
}

TEST_F(TxnTest, InsertThenDeleteSameTxn) {
  auto tx = manager_->Begin();
  ASSERT_TRUE(tx.ok());
  auto loc = Insert(*tx, 1);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(table_->CountVisible(tx->snapshot(), tx->tid()), 1u);
  ASSERT_TRUE(Delete(*tx, *loc).ok());
  EXPECT_EQ(table_->CountVisible(tx->snapshot(), tx->tid()), 0u);
  ASSERT_TRUE(manager_->Commit(*tx).ok());
  EXPECT_EQ(VisibleCount(), 0u);
}

TEST_F(TxnTest, ReadOnlyCommitCheap) {
  auto tx = manager_->Begin();
  ASSERT_TRUE(tx.ok());
  const storage::Cid before = manager_->watermark();
  ASSERT_TRUE(manager_->Commit(*tx).ok());
  EXPECT_EQ(manager_->watermark(), before)
      << "read-only commits must not burn CIDs";
}

TEST_F(TxnTest, DoubleCommitRejected) {
  auto tx = manager_->Begin();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(Insert(*tx, 1).ok());
  ASSERT_TRUE(manager_->Commit(*tx).ok());
  EXPECT_FALSE(manager_->Commit(*tx).ok());
  EXPECT_FALSE(manager_->Abort(*tx).ok());
}

TEST_F(TxnTest, CommittedDataSurvivesCrashUncommittedDoesNot) {
  auto committed = manager_->Begin();
  ASSERT_TRUE(committed.ok());
  ASSERT_TRUE(Insert(*committed, 1).ok());
  ASSERT_TRUE(manager_->Commit(*committed).ok());

  auto in_flight = manager_->Begin();
  ASSERT_TRUE(in_flight.ok());
  ASSERT_TRUE(Insert(*in_flight, 2).ok());
  // No commit: crash now.
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());

  // Restart sequence: allocator recover, catalog attach, txn attach,
  // in-flight roll-forward, table repair.
  alloc::PAllocator fresh_alloc(heap_->region());
  ASSERT_TRUE(fresh_alloc.Recover().ok());
  auto catalog = storage::Catalog::Attach(*heap_);
  ASSERT_TRUE(catalog.ok());
  auto manager = TxnManager::Attach(*heap_);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->RecoverInFlight(**catalog).ok());
  ASSERT_TRUE((*catalog)->RepairAfterCrash().ok());

  storage::Table* table = *(*catalog)->GetTable("t");
  EXPECT_EQ(table->CountVisible((*manager)->ReadSnapshot(),
                                storage::kTidNone),
            1u);
}

TEST_F(TxnTest, CrashMidCommitRollsForward) {
  auto tx = manager_->Begin();
  ASSERT_TRUE(tx.ok());
  auto loc = Insert(*tx, 42);
  ASSERT_TRUE(loc.ok());

  // Reproduce the commit protocol up to (and including) the commit-slot
  // flip, then crash before stamping — the exact window recovery must
  // roll forward.
  std::vector<TouchEntry> touches{
      TouchEntry::Make(table_->id(), *loc, false)};
  auto cid_result = manager_->commit_table().ClaimCidBlock();
  ASSERT_TRUE(cid_result.ok());
  const storage::Cid cid = *cid_result;
  auto slot = manager_->commit_table().AcquireSlot(touches);
  ASSERT_TRUE(slot.ok());
  manager_->commit_table().SealSlot(*slot, cid);
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());

  alloc::PAllocator fresh_alloc(heap_->region());
  ASSERT_TRUE(fresh_alloc.Recover().ok());
  auto catalog = storage::Catalog::Attach(*heap_);
  ASSERT_TRUE(catalog.ok());
  auto manager = TxnManager::Attach(*heap_);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE((*manager)->RecoverInFlight(**catalog).ok());
  ASSERT_TRUE((*catalog)->RepairAfterCrash().ok());

  storage::Table* table = *(*catalog)->GetTable("t");
  EXPECT_EQ((*manager)->watermark(), cid) << "watermark rolled forward";
  EXPECT_EQ(table->CountVisible((*manager)->ReadSnapshot(),
                                storage::kTidNone),
            1u)
      << "in-flight commit must be completed";
  EXPECT_EQ(table->mvcc(*loc)->begin, cid);
}

TEST_F(TxnTest, TidsNeverReusedAcrossRestart) {
  auto tx = manager_->Begin();
  ASSERT_TRUE(tx.ok());
  const storage::Tid before = tx->tid();
  ASSERT_TRUE(manager_->Commit(*tx).ok());
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());

  auto manager = TxnManager::Attach(*heap_);
  ASSERT_TRUE(manager.ok());
  auto tx2 = (*manager)->Begin();
  ASSERT_TRUE(tx2.ok());
  EXPECT_GT(tx2->tid(), before);
}

TEST_F(TxnTest, CommitHookInvoked) {
  struct Hook : CommitHook {
    int commits = 0, aborts = 0;
    storage::Cid last_cid = 0;
    Status OnCommit(storage::Cid cid, const Transaction&) override {
      ++commits;
      last_cid = cid;
      return Status::OK();
    }
    Status OnAbort(const Transaction&) override {
      ++aborts;
      return Status::OK();
    }
  } hook;
  manager_->set_commit_hook(&hook);

  auto tx = manager_->Begin();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(Insert(*tx, 1).ok());
  ASSERT_TRUE(manager_->Commit(*tx).ok());
  EXPECT_EQ(hook.commits, 1);
  EXPECT_EQ(hook.last_cid, tx->commit_cid());

  auto tx2 = manager_->Begin();
  ASSERT_TRUE(tx2.ok());
  ASSERT_TRUE(Insert(*tx2, 2).ok());
  ASSERT_TRUE(manager_->Abort(*tx2).ok());
  EXPECT_EQ(hook.aborts, 1);
}

}  // namespace
}  // namespace hyrise_nv::txn
