#include <gtest/gtest.h>

#include <set>

#include "index/index_set.h"
#include "storage/catalog.h"
#include "storage/merge.h"

namespace hyrise_nv::index {
namespace {

using storage::DataType;
using storage::RowLocation;
using storage::Value;

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::PmemRegionOptions opts;
    opts.tracking = nvm::TrackingMode::kShadow;
    auto heap_result = alloc::PHeap::Create(32 << 20, opts);
    ASSERT_TRUE(heap_result.ok());
    heap_ = std::move(heap_result).ValueUnsafe();
    auto catalog_result = storage::Catalog::Format(*heap_);
    ASSERT_TRUE(catalog_result.ok());
    catalog_ = std::move(catalog_result).ValueUnsafe();
    auto schema = *storage::Schema::Make(
        {{"k", DataType::kInt64}, {"v", DataType::kString}});
    auto table_result = catalog_->CreateTable("kv", schema);
    ASSERT_TRUE(table_result.ok());
    table_ = *table_result;
    indexes_ = std::make_unique<IndexSet>(table_);
    ASSERT_TRUE(indexes_->Attach().ok());
  }

  // Inserts a committed row and maintains indexes, like the engine does.
  RowLocation Insert(int64_t k, const std::string& v, storage::Cid cid) {
    std::vector<Value> row{Value(k), Value(v)};
    auto loc = table_->AppendRow(row, 7);
    EXPECT_TRUE(loc.ok());
    EXPECT_TRUE(indexes_->OnInsert(row, loc->row).ok());
    auto* entry = table_->mvcc(*loc);
    heap_->region().AtomicPersist64(&entry->begin, cid);
    heap_->region().AtomicPersist64(&entry->tid, storage::kTidNone);
    return *loc;
  }

  std::multiset<std::string> LookupNames(int64_t k) {
    std::multiset<std::string> names;
    EXPECT_TRUE(indexes_
                    ->ForEachEqualCandidate(0, Value(k),
                                            [&](RowLocation loc) {
                                              names.insert(std::get<std::string>(
                                                  table_->GetValue(loc, 1)));
                                            })
                    .ok());
    return names;
  }

  std::unique_ptr<alloc::PHeap> heap_;
  std::unique_ptr<storage::Catalog> catalog_;
  storage::Table* table_ = nullptr;
  std::unique_ptr<IndexSet> indexes_;
};

TEST_F(IndexTest, HashValueStableAndSpread) {
  const uint64_t h1 = HashValue(Value(int64_t{42}), DataType::kInt64);
  const uint64_t h2 = HashValue(Value(int64_t{42}), DataType::kInt64);
  const uint64_t h3 = HashValue(Value(int64_t{43}), DataType::kInt64);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_NE(HashValue(Value(std::string("a")), DataType::kString),
            HashValue(Value(std::string("b")), DataType::kString));
}

TEST_F(IndexTest, CreateAndLookupOnDelta) {
  ASSERT_TRUE(indexes_->CreateIndex(0).ok());
  Insert(1, "one", 10);
  Insert(2, "two", 10);
  Insert(1, "uno", 10);
  EXPECT_EQ(LookupNames(1), (std::multiset<std::string>{"one", "uno"}));
  EXPECT_EQ(LookupNames(2), (std::multiset<std::string>{"two"}));
  EXPECT_TRUE(LookupNames(3).empty());
}

TEST_F(IndexTest, CreateIndexBackfillsExistingRows) {
  Insert(5, "pre", 10);
  ASSERT_TRUE(indexes_->CreateIndex(0).ok());
  Insert(5, "post", 10);
  EXPECT_EQ(LookupNames(5), (std::multiset<std::string>{"pre", "post"}));
}

TEST_F(IndexTest, DuplicateCreateRejected) {
  ASSERT_TRUE(indexes_->CreateIndex(0).ok());
  EXPECT_EQ(indexes_->CreateIndex(0).code(), StatusCode::kAlreadyExists);
}

TEST_F(IndexTest, BadColumnRejected) {
  EXPECT_FALSE(indexes_->CreateIndex(99).ok());
}

TEST_F(IndexTest, LookupWithoutIndexIsNotFound) {
  Status status = indexes_->ForEachEqualCandidate(
      0, Value(int64_t{1}), [](RowLocation) {});
  EXPECT_TRUE(status.IsNotFound());
}

TEST_F(IndexTest, StringColumnIndex) {
  ASSERT_TRUE(indexes_->CreateIndex(1).ok());
  Insert(1, "apple", 10);
  Insert(2, "banana", 10);
  Insert(3, "apple", 10);
  std::multiset<int64_t> keys;
  ASSERT_TRUE(indexes_
                  ->ForEachEqualCandidate(1, Value(std::string("apple")),
                                          [&](RowLocation loc) {
                                            keys.insert(std::get<int64_t>(
                                                table_->GetValue(loc, 0)));
                                          })
                  .ok());
  EXPECT_EQ(keys, (std::multiset<int64_t>{1, 3}));
}

TEST_F(IndexTest, SurvivesMergeViaGroupKey) {
  ASSERT_TRUE(indexes_->CreateIndex(0).ok());
  Insert(1, "one", 10);
  Insert(2, "two", 10);
  Insert(1, "uno", 10);
  ASSERT_TRUE(storage::MergeTable(*table_, 100).ok());
  ASSERT_TRUE(indexes_->Attach().ok());  // rebind to the new group
  // Rows are now in main, served by the group-key index.
  EXPECT_EQ(LookupNames(1), (std::multiset<std::string>{"one", "uno"}));
  // New delta inserts after the merge still hit the hash index.
  Insert(1, "ein", 200);
  EXPECT_EQ(LookupNames(1),
            (std::multiset<std::string>{"one", "uno", "ein"}));
}

TEST_F(IndexTest, SurvivesCrashAndReattach) {
  ASSERT_TRUE(indexes_->CreateIndex(0).ok());
  Insert(7, "seven", 10);
  Insert(7, "sieben", 10);
  ASSERT_TRUE(heap_->region().SimulateCrash().ok());

  auto catalog_result = storage::Catalog::Attach(*heap_);
  ASSERT_TRUE(catalog_result.ok());
  storage::Table* table = *(*catalog_result)->GetTable("kv");
  ASSERT_TRUE(table->RepairAfterCrash().ok());
  IndexSet indexes(table);
  ASSERT_TRUE(indexes.Attach().ok());
  std::multiset<std::string> names;
  ASSERT_TRUE(indexes
                  .ForEachEqualCandidate(0, Value(int64_t{7}),
                                         [&](RowLocation loc) {
                                           names.insert(std::get<std::string>(
                                               table->GetValue(loc, 1)));
                                         })
                  .ok());
  EXPECT_EQ(names, (std::multiset<std::string>{"seven", "sieben"}));
}

TEST_F(IndexTest, ManyKeysCollisionsHandled) {
  ASSERT_TRUE(indexes_->CreateIndex(0).ok());
  // 5000 keys over 1024 buckets: every bucket sees chains.
  for (int64_t k = 0; k < 5000; ++k) {
    Insert(k, "v" + std::to_string(k), 10);
  }
  for (int64_t k = 0; k < 5000; k += 487) {
    EXPECT_EQ(LookupNames(k),
              (std::multiset<std::string>{"v" + std::to_string(k)}));
  }
}

}  // namespace
}  // namespace hyrise_nv::index
