#include "obs/trace.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/database.h"
#include "nvm/nvm_env.h"

namespace hyrise_nv::obs {
namespace {

TEST(SpanTracerTest, NestedSpansBuildTree) {
  SpanTracer tracer("root");
  tracer.Begin("a");
  tracer.Begin("a1");
  const double a1 = tracer.End();
  EXPECT_GE(a1, 0.0);
  tracer.End();
  tracer.Begin("b");
  tracer.End();
  const SpanNode tree = tracer.Finish();
  EXPECT_EQ(tree.name, "root");
  ASSERT_EQ(tree.children.size(), 2u);
  EXPECT_EQ(tree.children[0].name, "a");
  ASSERT_EQ(tree.children[0].children.size(), 1u);
  EXPECT_EQ(tree.children[0].children[0].name, "a1");
  EXPECT_EQ(tree.children[1].name, "b");
  // Parents cover their children.
  EXPECT_GE(tree.seconds, tree.children[0].seconds);
  EXPECT_GE(tree.children[0].seconds, tree.children[0].children[0].seconds);
}

TEST(SpanTracerTest, FinishClosesOpenSpans) {
  SpanTracer tracer("root");
  tracer.Begin("left_open");
  const SpanNode tree = tracer.Finish();
  ASSERT_EQ(tree.children.size(), 1u);
  EXPECT_EQ(tree.children[0].name, "left_open");
}

TEST(SpanTracerTest, AttachGraftsPrebuiltSubtree) {
  SpanNode subtree;
  subtree.name = "inner";
  subtree.seconds = 1.5;
  subtree.children.push_back({"leaf", 0.5, {}});

  SpanTracer tracer("root");
  tracer.Begin("outer");
  tracer.Attach(subtree);
  tracer.End();
  const SpanNode tree = tracer.Finish();
  const SpanNode* inner = tree.Find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_DOUBLE_EQ(inner->seconds, 1.5);  // recorded timing preserved
  ASSERT_NE(tree.Find("leaf"), nullptr);
}

TEST(SpanTracerTest, ScopeEndsOnDestruction) {
  SpanTracer tracer("root");
  {
    auto scope = tracer.Span("scoped");
  }
  const SpanNode tree = tracer.Finish();
  ASSERT_EQ(tree.children.size(), 1u);
  EXPECT_EQ(tree.children[0].name, "scoped");
}

TEST(SpanNodeTest, FindSearchesDepthFirst) {
  SpanNode root{"root", 1.0, {{"a", 0.4, {{"deep", 0.1, {}}}}, {"b", 0.2, {}}}};
  EXPECT_EQ(root.Find("root"), &root);
  ASSERT_NE(root.Find("deep"), nullptr);
  EXPECT_EQ(root.Find("deep")->seconds, 0.1);
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(SpanNodeTest, RenderAndJson) {
  SpanNode root{"root", 0.002, {{"child", 0.001, {}}}};
  const std::string text = root.Render();
  EXPECT_NE(text.find("root"), std::string::npos);
  EXPECT_NE(text.find("child"), std::string::npos);
  const std::string json = root.ToJson();
  EXPECT_NE(json.find("\"name\":\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// --- Recovery traces: every Open path must yield a complete span tree ---

class RecoveryTraceTest : public ::testing::Test {
 protected:
  core::DatabaseOptions MakeOptions(core::DurabilityMode mode) {
    core::DatabaseOptions options;
    options.mode = mode;
    options.region_size = 64 << 20;
    dir_ = nvm::TempPath("obs_trace_test");
    std::filesystem::create_directories(dir_);
    options.data_dir = dir_;
    return options;
  }
  void TearDown() override {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  static void SeedRows(core::Database& db) {
    auto schema = *storage::Schema::Make(
        {{"k", storage::DataType::kInt64}});
    auto table = db.CreateTable("t", schema);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(db.InsertAutoCommit(*table, {storage::Value(i)}).ok());
    }
  }

  std::string dir_;
};

TEST_F(RecoveryTraceTest, NvmOpenYieldsCompleteSpanTree) {
  auto options = MakeOptions(core::DurabilityMode::kNvm);
  {
    auto db = core::Database::Create(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    SeedRows(**db);
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto reopened = core::Database::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const core::RecoveryReport& report = (*reopened)->last_recovery_report();
  EXPECT_EQ(report.trace.name, "open");
  for (const char* span : {"instant_restart", "map", "fixup",
                           "rollforward_commits", "attach",
                           "attach_index_sets"}) {
    EXPECT_NE(report.trace.Find(span), nullptr) << "missing span " << span;
  }
  EXPECT_DOUBLE_EQ(report.total_seconds, report.trace.seconds);
  EXPECT_DOUBLE_EQ(report.nvm.map_seconds,
                   report.trace.Find("map")->seconds);
  EXPECT_FALSE(report.RenderText().empty());
  EXPECT_NE(report.ToJson().find("\"trace\":"), std::string::npos);
}

TEST_F(RecoveryTraceTest, NvmDeepVerifyOpenHasVerifySpan) {
  auto options = MakeOptions(core::DurabilityMode::kNvm);
  {
    auto db = core::Database::Create(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    SeedRows(**db);
    ASSERT_TRUE((*db)->Close().ok());
  }
  options.open_mode = core::OpenMode::kVerifyDeep;
  auto reopened = core::Database::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const SpanNode& trace = (*reopened)->last_recovery_report().trace;
  EXPECT_NE(trace.Find("verify"), nullptr);
  EXPECT_NE(trace.Find("instant_restart"), nullptr);
}

TEST_F(RecoveryTraceTest, CrashAndRecoverYieldsSpanTree) {
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  options.tracking = nvm::TrackingMode::kShadow;
  auto db = core::Database::Create(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  SeedRows(**db);
  auto recovered = core::Database::CrashAndRecover(std::move(*db));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const core::RecoveryReport& report =
      (*recovered)->last_recovery_report();
  EXPECT_EQ(report.trace.name, "open");
  for (const char* span :
       {"instant_restart", "map", "fixup", "attach_index_sets"}) {
    EXPECT_NE(report.trace.Find(span), nullptr) << "missing span " << span;
  }
  EXPECT_DOUBLE_EQ(report.total_seconds, report.trace.seconds);
}

TEST_F(RecoveryTraceTest, WalOpenYieldsLogRecoverySpanTree) {
  auto options = MakeOptions(core::DurabilityMode::kWalValue);
  {
    auto db = core::Database::Create(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    SeedRows(**db);
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto reopened = core::Database::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const core::RecoveryReport& report = (*reopened)->last_recovery_report();
  EXPECT_EQ(report.trace.name, "open");
  for (const char* span :
       {"log_recovery", "checkpoint_load", "replay", "scan_commits",
        "apply", "index_rebuild", "attach_index_sets"}) {
    EXPECT_NE(report.trace.Find(span), nullptr) << "missing span " << span;
  }
  EXPECT_DOUBLE_EQ(report.total_seconds, report.trace.seconds);
  EXPECT_DOUBLE_EQ(report.log.replay_seconds,
                   report.trace.Find("replay")->seconds);
}

}  // namespace
}  // namespace hyrise_nv::obs
