#include "storage/merge.h"

#include <gtest/gtest.h>

#include <set>

#include "storage/catalog.h"

namespace hyrise_nv::storage {
namespace {

Schema TestSchema() {
  return *Schema::Make({{"id", DataType::kInt64},
                        {"name", DataType::kString}});
}

class MergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::PmemRegionOptions opts;
    opts.tracking = nvm::TrackingMode::kShadow;
    auto heap_result = alloc::PHeap::Create(32 << 20, opts);
    ASSERT_TRUE(heap_result.ok());
    heap_ = std::move(heap_result).ValueUnsafe();
    auto catalog_result = Catalog::Format(*heap_);
    ASSERT_TRUE(catalog_result.ok());
    catalog_ = std::move(catalog_result).ValueUnsafe();
    auto table_result = catalog_->CreateTable("t", TestSchema());
    ASSERT_TRUE(table_result.ok());
    table_ = *table_result;
  }

  RowLocation InsertCommitted(int64_t id, const std::string& name,
                              Cid cid) {
    auto loc = table_->AppendRow({Value(id), Value(name)}, 7);
    EXPECT_TRUE(loc.ok());
    MvccEntry* entry = table_->mvcc(*loc);
    heap_->region().AtomicPersist64(&entry->begin, cid);
    heap_->region().AtomicPersist64(&entry->tid, kTidNone);
    return *loc;
  }

  void DeleteCommitted(RowLocation loc, Cid cid) {
    heap_->region().AtomicPersist64(&table_->mvcc(loc)->end, cid);
  }

  std::multiset<int64_t> VisibleIds(Cid snapshot) {
    std::multiset<int64_t> ids;
    table_->ForEachVisibleRow(snapshot, kTidNone, [&](RowLocation loc) {
      ids.insert(std::get<int64_t>(table_->GetValue(loc, 0)));
    });
    return ids;
  }

  std::unique_ptr<alloc::PHeap> heap_;
  std::unique_ptr<Catalog> catalog_;
  Table* table_ = nullptr;
};

TEST_F(MergeTest, EmptyTableMerges) {
  auto stats = MergeTable(*table_, 100);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_after, 0u);
  EXPECT_EQ(table_->main_row_count(), 0u);
  EXPECT_EQ(table_->delta_row_count(), 0u);
}

TEST_F(MergeTest, DeltaRowsMoveToMain) {
  for (int i = 0; i < 100; ++i) {
    InsertCommitted(i, "n" + std::to_string(i % 10), 10);
  }
  auto stats = MergeTable(*table_, 100);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_after, 100u);
  EXPECT_EQ(table_->main_row_count(), 100u);
  EXPECT_EQ(table_->delta_row_count(), 0u);
  EXPECT_EQ(VisibleIds(100).size(), 100u);
  // Values intact after re-encoding.
  const auto row = table_->GetRow(RowLocation{true, 0});
  EXPECT_EQ(std::get<std::string>(row[1]).substr(0, 1), "n");
}

TEST_F(MergeTest, MainDictionarySortedAfterMerge) {
  for (int64_t v : {50, 10, 30, 20, 40, 10, 50}) {
    InsertCommitted(v, "x", 10);
  }
  ASSERT_TRUE(MergeTable(*table_, 100).ok());
  const auto& dict = table_->main().column(0).dictionary();
  EXPECT_EQ(dict.size(), 5u) << "dictionary must be distinct";
  int64_t prev = INT64_MIN;
  for (ValueId id = 0; id < dict.size(); ++id) {
    const int64_t v = std::get<int64_t>(dict.GetValue(id));
    EXPECT_GT(v, prev);
    prev = v;
  }
  // Row values preserved (multiset semantics).
  EXPECT_EQ(VisibleIds(100),
            (std::multiset<int64_t>{10, 10, 20, 30, 40, 50, 50}));
}

TEST_F(MergeTest, DeletedRowsRetired) {
  const auto keep = InsertCommitted(1, "keep", 10);
  const auto kill = InsertCommitted(2, "kill", 10);
  (void)keep;
  DeleteCommitted(kill, 20);
  auto stats = MergeTable(*table_, 100);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_after, 1u);
  EXPECT_EQ(stats->dropped_rows, 1u);
  EXPECT_EQ(VisibleIds(100), (std::multiset<int64_t>{1}));
}

TEST_F(MergeTest, AbortedInsertsRetired) {
  InsertCommitted(1, "a", 10);
  // Aborted insert: begin stays infinity, tid released.
  auto loc = table_->AppendRow({Value(int64_t{2}), Value(std::string("b"))},
                               9);
  ASSERT_TRUE(loc.ok());
  heap_->region().AtomicPersist64(&table_->mvcc(*loc)->tid, kTidNone);
  auto stats = MergeTable(*table_, 100);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_after, 1u);
}

TEST_F(MergeTest, SecondMergeStacksOnFirst) {
  for (int i = 0; i < 10; ++i) InsertCommitted(i, "m1", 10);
  ASSERT_TRUE(MergeTable(*table_, 100).ok());
  for (int i = 10; i < 25; ++i) InsertCommitted(i, "m2", 200);
  auto stats = MergeTable(*table_, 300);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(table_->main_row_count(), 25u);
  EXPECT_EQ(VisibleIds(300).size(), 25u);
  EXPECT_EQ(*VisibleIds(300).begin(), 0);
  EXPECT_EQ(*VisibleIds(300).rbegin(), 24);
}

TEST_F(MergeTest, MergePreservesBeginCids) {
  InsertCommitted(1, "early", 10);
  InsertCommitted(2, "late", 90);
  ASSERT_TRUE(MergeTable(*table_, 100).ok());
  // A snapshot between the two commits still sees only the early row.
  EXPECT_EQ(VisibleIds(50), (std::multiset<int64_t>{1}));
  EXPECT_EQ(VisibleIds(90).size(), 2u);
}

TEST_F(MergeTest, MergedStateSurvivesCrash) {
  for (int i = 0; i < 40; ++i) InsertCommitted(i, "x", 10);
  ASSERT_TRUE(MergeTable(*table_, 100).ok());
  for (int i = 40; i < 55; ++i) InsertCommitted(i, "y", 200);

  ASSERT_TRUE(heap_->region().SimulateCrash().ok());
  alloc::PAllocator fresh_alloc(heap_->region());
  ASSERT_TRUE(fresh_alloc.Recover().ok());
  auto catalog_result = Catalog::Attach(*heap_);
  ASSERT_TRUE(catalog_result.ok()) << catalog_result.status().ToString();
  Table* table = *(*catalog_result)->GetTable("t");
  ASSERT_TRUE(table->RepairAfterCrash().ok());
  EXPECT_EQ(table->main_row_count(), 40u);
  EXPECT_EQ(table->delta_row_count(), 15u);
  EXPECT_EQ(table->CountVisible(200, kTidNone), 55u);
}

TEST_F(MergeTest, MergeWithMixedTypesRoundTrips) {
  auto table_result = catalog_->CreateTable(
      "mixed", *Schema::Make({{"i", DataType::kInt64},
                              {"d", DataType::kDouble},
                              {"s", DataType::kString}}));
  ASSERT_TRUE(table_result.ok());
  Table* table = *table_result;
  for (int i = 0; i < 20; ++i) {
    auto loc = table->AppendRow(
        {Value(int64_t{i}), Value(i * 1.5), Value(std::string(1 + i % 5, 'q'))},
        7);
    ASSERT_TRUE(loc.ok());
    heap_->region().AtomicPersist64(&table->mvcc(*loc)->begin, 10);
    heap_->region().AtomicPersist64(&table->mvcc(*loc)->tid, kTidNone);
  }
  ASSERT_TRUE(MergeTable(*table, 100).ok());
  for (uint64_t r = 0; r < 20; ++r) {
    const auto row = table->GetRow(RowLocation{true, r});
    const int64_t i = std::get<int64_t>(row[0]);
    EXPECT_EQ(std::get<double>(row[1]), i * 1.5);
    EXPECT_EQ(std::get<std::string>(row[2]).size(), size_t(1 + i % 5));
  }
}

}  // namespace
}  // namespace hyrise_nv::storage
