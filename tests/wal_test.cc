#include <gtest/gtest.h>

#include "nvm/nvm_env.h"
#include "wal/block_device.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"
#include "wal/log_writer.h"

namespace hyrise_nv::wal {
namespace {

using storage::Value;

class BlockDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = nvm::TempPath("block_device_test");
    auto result = BlockDevice::Create(path_, BlockDeviceOptions{});
    ASSERT_TRUE(result.ok());
    device_ = std::move(result).ValueUnsafe();
  }
  void TearDown() override {
    device_.reset();
    nvm::RemoveFileIfExists(path_);
  }
  std::string path_;
  std::unique_ptr<BlockDevice> device_;
};

TEST_F(BlockDeviceTest, AppendReadRoundTrip) {
  auto off1 = device_->Append("hello", 5);
  auto off2 = device_->Append("world", 5);
  ASSERT_TRUE(off1.ok() && off2.ok());
  EXPECT_EQ(*off1, 0u);
  EXPECT_EQ(*off2, 5u);
  char buf[10];
  ASSERT_TRUE(device_->Read(0, buf, 10).ok());
  EXPECT_EQ(std::string(buf, 10), "helloworld");
}

TEST_F(BlockDeviceTest, ReadBeyondEndRejected) {
  ASSERT_TRUE(device_->Append("abc", 3).ok());
  char buf[10];
  EXPECT_FALSE(device_->Read(0, buf, 10).ok());
  EXPECT_FALSE(device_->Read(100, buf, 1).ok());
}

TEST_F(BlockDeviceTest, CrashDropsUnsyncedTail) {
  ASSERT_TRUE(device_->Append("durable", 7).ok());
  ASSERT_TRUE(device_->Sync().ok());
  ASSERT_TRUE(device_->Append("lost", 4).ok());
  EXPECT_EQ(device_->size(), 11u);
  EXPECT_EQ(device_->durable_size(), 7u);
  ASSERT_TRUE(device_->SimulateCrash().ok());
  EXPECT_EQ(device_->size(), 7u);
  char buf[7];
  ASSERT_TRUE(device_->Read(0, buf, 7).ok());
  EXPECT_EQ(std::string(buf, 7), "durable");
}

TEST_F(BlockDeviceTest, ReopenSeesSyncedData) {
  ASSERT_TRUE(device_->Append("persist", 7).ok());
  ASSERT_TRUE(device_->Sync().ok());
  device_.reset();
  auto reopened = BlockDevice::Open(path_, BlockDeviceOptions{});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 7u);
}

TEST(LogRecordTest, AllTypesRoundTrip) {
  std::vector<LogRecord> records;
  records.push_back(LogRecord::Insert(
      7, 3, {Value(int64_t{-42}), Value(2.5), Value(std::string("text"))}));
  records.push_back(LogRecord::InsertEncoded(8, 3, {1, 2, 3}));
  records.push_back(LogRecord::DictAdd(3, 1, Value(std::string("entry"))));
  records.push_back(LogRecord::Delete(9, 3, {true, 123}));
  records.push_back(LogRecord::Delete(9, 3, {false, 7}));
  records.push_back(LogRecord::Commit(9, 55));
  records.push_back(LogRecord::Abort(10));
  records.push_back(LogRecord::CreateTable(
      12, "orders", {0x01, 0x02, 0x03, 0xFF}));
  records.push_back(LogRecord::CreateIndex(12, 3, 1));

  std::vector<uint8_t> log;
  for (const auto& record : records) {
    const auto framed = EncodeRecord(record);
    log.insert(log.end(), framed.begin(), framed.end());
  }

  size_t pos = 0;
  for (const auto& expected : records) {
    size_t consumed = 0;
    auto decoded = DecodeRecord(log.data() + pos, log.size() - pos,
                                &consumed);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    pos += consumed;
    EXPECT_EQ(decoded->type, expected.type);
    EXPECT_EQ(decoded->tid, expected.tid);
    EXPECT_EQ(decoded->table_id, expected.table_id);
    EXPECT_EQ(decoded->cid, expected.cid);
    EXPECT_EQ(decoded->values, expected.values);
    EXPECT_EQ(decoded->value_ids, expected.value_ids);
    EXPECT_EQ(decoded->loc, expected.loc);
    EXPECT_EQ(decoded->table_name, expected.table_name);
    EXPECT_EQ(decoded->schema_blob, expected.schema_blob);
    EXPECT_EQ(decoded->index_kind, expected.index_kind);
  }
  EXPECT_EQ(pos, log.size());
}

TEST(LogRecordTest, CorruptionDetected) {
  auto framed = EncodeRecord(LogRecord::Commit(1, 2));
  framed[10] ^= 0xFF;  // flip a body byte
  size_t consumed;
  auto decoded = DecodeRecord(framed.data(), framed.size(), &consumed);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(LogRecordTest, TruncatedFrameDetected) {
  auto framed = EncodeRecord(LogRecord::Commit(1, 2));
  size_t consumed;
  auto decoded = DecodeRecord(framed.data(), framed.size() - 3, &consumed);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(LogRecordTest, EmptyAndZeroFrameAreCleanEnd) {
  size_t consumed;
  EXPECT_TRUE(DecodeRecord(nullptr, 0, &consumed).status().IsNotFound());
  uint8_t zeros[16] = {};
  EXPECT_TRUE(
      DecodeRecord(zeros, sizeof(zeros), &consumed).status().IsNotFound());
}

TEST(LogWriterTest, GroupCommitSyncPolicy) {
  const std::string path = nvm::TempPath("log_writer_test");
  auto device_result = BlockDevice::Create(path, BlockDeviceOptions{});
  ASSERT_TRUE(device_result.ok());
  auto& device = **device_result;
  LogWriter writer(&device, /*sync_every_n_commits=*/3);

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(writer.Commit(LogRecord::Commit(i, i + 1)).ok());
  }
  EXPECT_EQ(device.durable_size(), 0u) << "no sync before the 3rd commit";
  ASSERT_TRUE(writer.Commit(LogRecord::Commit(2, 3)).ok());
  EXPECT_EQ(device.durable_size(), device.size());
  EXPECT_EQ(writer.synced_commits(), 3u);
  nvm::RemoveFileIfExists(path);
}

TEST(LogReaderTest, ScanWithTornTail) {
  const std::string path = nvm::TempPath("log_reader_test");
  auto device_result = BlockDevice::Create(path, BlockDeviceOptions{});
  ASSERT_TRUE(device_result.ok());
  auto& device = **device_result;
  LogWriter writer(&device, 1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(writer.Append(LogRecord::Commit(i, i + 1)).ok());
  }
  ASSERT_TRUE(writer.SyncNow().ok());
  // Simulate a torn tail: append half a record directly.
  const auto partial = EncodeRecord(LogRecord::Commit(99, 100));
  ASSERT_TRUE(device.Append(partial.data(), partial.size() / 2).ok());

  LogReader reader(&device);
  int seen = 0;
  auto count = reader.ForEach(0, [&](const LogRecord& record) {
    EXPECT_EQ(record.type, RecordType::kCommit);
    EXPECT_LT(record.tid, 5u);
    ++seen;
    return Status::OK();
  });
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 5u);
  EXPECT_EQ(seen, 5);
  nvm::RemoveFileIfExists(path);
}

TEST(LogReaderTest, StartOffsetSkipsPrefix) {
  const std::string path = nvm::TempPath("log_reader_offset_test");
  auto device_result = BlockDevice::Create(path, BlockDeviceOptions{});
  ASSERT_TRUE(device_result.ok());
  auto& device = **device_result;
  const auto first = EncodeRecord(LogRecord::Commit(1, 1));
  ASSERT_TRUE(device.Append(first.data(), first.size()).ok());
  const uint64_t offset = device.size();
  const auto second = EncodeRecord(LogRecord::Commit(2, 2));
  ASSERT_TRUE(device.Append(second.data(), second.size()).ok());

  LogReader reader(&device);
  std::vector<storage::Tid> tids;
  auto count = reader.ForEach(offset, [&](const LogRecord& r) {
    tids.push_back(r.tid);
    return Status::OK();
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(tids, (std::vector<storage::Tid>{2}));
  nvm::RemoveFileIfExists(path);
}

}  // namespace
}  // namespace hyrise_nv::wal
