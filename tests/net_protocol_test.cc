// Wire protocol tests: framing, serialization primitives, status
// mapping, and the server-facing corruption matrix — truncated frames,
// oversized lengths, CRC mismatches, unknown opcodes, and cross-version
// handshakes must each produce a clean error, never a crash.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/database.h"
#include "net/client.h"
#include "net/net_util.h"
#include "net/server.h"
#include "nvm/nvm_env.h"

namespace hyrise_nv::net {
namespace {

using storage::DataType;
using storage::RowLocation;
using storage::Value;

// --- Pure wire-format tests -----------------------------------------------

TEST(WireFormatTest, RoundtripPrimitives) {
  std::vector<uint8_t> buf;
  WireWriter writer(&buf);
  writer.U8(7);
  writer.U16(0xBEEF);
  writer.U32(0xDEADBEEF);
  writer.U64(0x0123456789ABCDEFull);
  writer.F64(3.25);
  writer.Str("hello");
  writer.Value(Value(int64_t{-42}));
  writer.Value(Value(2.5));
  writer.Value(Value(std::string("world")));
  writer.Row({Value(int64_t{1}), Value(std::string("x"))});
  writer.Loc(RowLocation{false, 17});

  WireReader reader(buf.data(), buf.size());
  EXPECT_EQ(reader.U8(), 7);
  EXPECT_EQ(reader.U16(), 0xBEEF);
  EXPECT_EQ(reader.U32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.F64(), 3.25);
  EXPECT_EQ(reader.Str(), "hello");
  EXPECT_EQ(std::get<int64_t>(reader.Value()), -42);
  EXPECT_EQ(std::get<double>(reader.Value()), 2.5);
  EXPECT_EQ(std::get<std::string>(reader.Value()), "world");
  const auto row = reader.Row();
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(row[0]), 1);
  const RowLocation loc = reader.Loc();
  EXPECT_FALSE(loc.in_main);
  EXPECT_EQ(loc.row, 17u);
  EXPECT_TRUE(reader.Exhausted());
}

TEST(WireFormatTest, ReaderLatchesOnOverrun) {
  std::vector<uint8_t> buf;
  WireWriter writer(&buf);
  writer.U32(5);
  WireReader reader(buf.data(), buf.size());
  (void)reader.U32();
  (void)reader.U64();  // overruns
  EXPECT_FALSE(reader.ok());
  // Latched: every further read stays zero and keeps the error.
  EXPECT_EQ(reader.U8(), 0);
  EXPECT_EQ(reader.Str(), "");
  EXPECT_FALSE(reader.ok());
}

TEST(WireFormatTest, ReaderSurvivesTruncationFuzz) {
  // Build a full valid request payload, then decode every prefix of it:
  // no prefix may crash, and all but the full length must latch error
  // or end mid-payload without overrun.
  std::vector<uint8_t> buf;
  WireWriter writer(&buf);
  writer.U8(static_cast<uint8_t>(Opcode::kInsert));
  writer.U64(12);
  writer.Str("orders");
  writer.Row({Value(int64_t{5}), Value(1.5), Value(std::string("abc"))});
  for (size_t len = 0; len <= buf.size(); ++len) {
    WireReader reader(buf.data(), len);
    (void)reader.U8();
    (void)reader.U64();
    (void)reader.Str();
    const auto row = reader.Row();
    if (len == buf.size()) {
      EXPECT_TRUE(reader.ok());
      EXPECT_EQ(row.size(), 3u);
    }
  }
}

TEST(WireFormatTest, RowCountCannotOverallocate) {
  // A row header claiming 65535 values inside a 4-byte body must fail
  // cleanly instead of reserving gigabytes.
  std::vector<uint8_t> buf;
  WireWriter writer(&buf);
  writer.U16(0xFFFF);
  writer.U8(1);
  writer.U8(0);
  WireReader reader(buf.data(), buf.size());
  const auto row = reader.Row();
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(row.empty());
}

TEST(WireFormatTest, FrameRoundtripAndCrc) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> frame = EncodeFrame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  auto len_result = DecodeFrameHeader(frame.data());
  ASSERT_TRUE(len_result.ok());
  EXPECT_EQ(*len_result, payload.size());
  EXPECT_TRUE(CheckFrameCrc(frame.data(), frame.data() + kFrameHeaderBytes,
                            *len_result)
                  .ok());
  // Flip one payload bit: CRC must catch it.
  frame[kFrameHeaderBytes + 2] ^= 0x40;
  EXPECT_TRUE(CheckFrameCrc(frame.data(), frame.data() + kFrameHeaderBytes,
                            *len_result)
                  .IsCorruption());
}

TEST(WireFormatTest, OversizedAndEmptyFramesRejected) {
  uint8_t header[kFrameHeaderBytes] = {};
  uint32_t len = kMaxFrameBytes + 1;
  std::memcpy(header, &len, sizeof(len));
  EXPECT_FALSE(DecodeFrameHeader(header).ok());
  len = 0;
  std::memcpy(header, &len, sizeof(len));
  EXPECT_FALSE(DecodeFrameHeader(header).ok());
  len = 16;
  std::memcpy(header, &len, sizeof(len));
  EXPECT_TRUE(DecodeFrameHeader(header).ok());
  EXPECT_FALSE(DecodeFrameHeader(header, 8).ok());  // per-server cap
}

TEST(WireFormatTest, TaggedFrameRoundtripAndCrc) {
  const std::vector<uint8_t> payload = {9, 8, 7, 6};
  std::vector<uint8_t> frame = EncodeTaggedFrame(0xABCD1234u, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytesV2 + payload.size());
  auto len_result = DecodeFrameHeader(frame.data());
  ASSERT_TRUE(len_result.ok());
  EXPECT_EQ(*len_result, payload.size());
  EXPECT_EQ(TaggedFrameTag(frame.data()), 0xABCD1234u);
  const uint8_t* body = frame.data() + kFrameHeaderBytesV2;
  EXPECT_TRUE(CheckTaggedFrameCrc(frame.data(), body, *len_result).ok());
  // Payload corruption is caught...
  frame[kFrameHeaderBytesV2 + 1] ^= 0x01;
  EXPECT_TRUE(
      CheckTaggedFrameCrc(frame.data(), body, *len_result).IsCorruption());
  frame[kFrameHeaderBytesV2 + 1] ^= 0x01;
  // ...and so is tag corruption: the CRC covers the tag, so a response
  // can never be attributed to the wrong request by a flipped tag bit.
  frame[8] ^= 0x01;
  EXPECT_TRUE(
      CheckTaggedFrameCrc(frame.data(), body, *len_result).IsCorruption());
}

TEST(WireFormatTest, StatusMappingIsByteStable) {
  // Every engine StatusCode survives the wire byte-for-byte.
  for (int code = 0; code <= 10; ++code) {
    const Status status(static_cast<StatusCode>(code), "m");
    const WireCode wire = WireCodeFromStatus(status);
    EXPECT_EQ(static_cast<int>(wire), code);
    const Status back = StatusFromWire(wire, "m");
    EXPECT_EQ(back.code(), status.code());
  }
  // Serving-layer codes come back as retryable IOError.
  EXPECT_TRUE(IsRetryableWireCode(WireCode::kOverloaded));
  EXPECT_TRUE(IsRetryableWireCode(WireCode::kDraining));
  EXPECT_FALSE(IsRetryableWireCode(WireCode::kProtocolError));
  EXPECT_EQ(StatusFromWire(WireCode::kOverloaded, "x").code(),
            StatusCode::kIOError);
}

// --- Server-facing corruption matrix --------------------------------------

class CorruptionMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = nvm::TempPath("net_proto_test");
    std::filesystem::create_directories(dir_);
    core::DatabaseOptions options;
    options.mode = core::DurabilityMode::kNvm;
    options.region_size = 64 << 20;
    options.data_dir = dir_;
    auto db_result = core::Database::Create(options);
    ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
    db_ = std::move(*db_result);
    ServerOptions server_options;
    server_options.num_workers = 1;
    auto server_result = Server::Start(db_.get(), server_options);
    ASSERT_TRUE(server_result.ok()) << server_result.status().ToString();
    server_ = std::move(*server_result);
  }

  void TearDown() override {
    server_->Drain();
    server_->Wait();
    server_.reset();
    ASSERT_TRUE(db_->Close().ok());
    db_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  Result<OwnedFd> Dial() {
    return ConnectTcp("127.0.0.1", server_->port(), 2000);
  }

  /// Performs a valid v1 handshake on `fd`. The legacy matrix pins the
  /// offered range to v1 so the raw frames the tests then write keep
  /// their v1 framing against a v2-capable server (that cross-version
  /// path is itself part of the matrix).
  void Handshake(int fd) {
    std::vector<uint8_t> hello;
    WireWriter writer(&hello);
    writer.U8(static_cast<uint8_t>(Opcode::kHello));
    writer.U32(kHelloMagic);
    writer.U16(kProtocolVersionMin);
    writer.U16(kProtocolVersionMin);
    ASSERT_TRUE(WriteFrame(fd, hello).ok());
    auto resp = ReadFrame(fd, 2000);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_GE(resp->size(), 2u);
    EXPECT_EQ((*resp)[1], static_cast<uint8_t>(WireCode::kOk));
  }

  /// Performs a v2 handshake requesting `window`; returns the granted
  /// window. The hello exchange itself is always v1-framed.
  uint32_t HandshakeV2(int fd, uint32_t window = 0) {
    std::vector<uint8_t> hello;
    WireWriter writer(&hello);
    writer.U8(static_cast<uint8_t>(Opcode::kHello));
    writer.U32(kHelloMagic);
    writer.U16(kProtocolVersionMin);
    writer.U16(kProtocolVersionMax);
    writer.U32(window);
    EXPECT_TRUE(WriteFrame(fd, hello).ok());
    auto resp = ReadFrame(fd, 2000);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    if (!resp.ok() || resp->size() < 2) return 0;
    EXPECT_EQ((*resp)[1], static_cast<uint8_t>(WireCode::kOk));
    WireReader reader(resp->data() + 2, resp->size() - 2);
    const uint16_t chosen = reader.U16();
    EXPECT_EQ(chosen, 2);
    (void)reader.U8();   // durability mode
    (void)reader.U64();  // session id
    const uint32_t granted = reader.U32();
    EXPECT_TRUE(reader.ok());
    return granted;
  }

  /// Builds a tagged v2 ping frame.
  static std::vector<uint8_t> TaggedPing(uint32_t tag) {
    std::vector<uint8_t> ping;
    WireWriter writer(&ping);
    writer.U8(static_cast<uint8_t>(Opcode::kPing));
    return EncodeTaggedFrame(tag, ping);
  }

  /// The server must still answer a fresh, well-formed connection.
  void ExpectServerAlive() {
    ClientOptions options;
    options.port = server_->port();
    Client client(options);
    ASSERT_TRUE(client.ConnectOnce().ok());
    EXPECT_TRUE(client.Ping().ok());
  }

  std::string dir_;
  std::unique_ptr<core::Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(CorruptionMatrixTest, TruncatedFrameClosesConnectionCleanly) {
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  Handshake(fd_result->get());
  // Announce 100 bytes, send 3, hang up. The server must drop the
  // connection without stalling or crashing.
  std::vector<uint8_t> partial = {100, 0, 0, 0, 1, 2, 3, 4, 9, 9, 9};
  ASSERT_TRUE(SendAll(fd_result->get(), partial.data(), partial.size()).ok());
  fd_result->Reset();
  ExpectServerAlive();
}

TEST_F(CorruptionMatrixTest, OversizedLengthRejected) {
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  Handshake(fd_result->get());
  uint8_t header[kFrameHeaderBytes] = {};
  const uint32_t len = kMaxFrameBytes + 1;
  std::memcpy(header, &len, sizeof(len));
  ASSERT_TRUE(SendAll(fd_result->get(), header, sizeof(header)).ok());
  auto resp = ReadFrame(fd_result->get(), 2000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_GE(resp->size(), 2u);
  EXPECT_EQ((*resp)[1], static_cast<uint8_t>(WireCode::kProtocolError));
  // Connection closes after the error frame.
  uint8_t byte;
  EXPECT_FALSE(RecvAll(fd_result->get(), &byte, 1, 2000).ok());
  ExpectServerAlive();
}

TEST_F(CorruptionMatrixTest, BadCrcRejected) {
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  Handshake(fd_result->get());
  std::vector<uint8_t> ping;
  WireWriter writer(&ping);
  writer.U8(static_cast<uint8_t>(Opcode::kPing));
  std::vector<uint8_t> frame = EncodeFrame(ping);
  frame[4] ^= 0xFF;  // corrupt the CRC field
  ASSERT_TRUE(SendAll(fd_result->get(), frame.data(), frame.size()).ok());
  auto resp = ReadFrame(fd_result->get(), 2000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ((*resp)[1], static_cast<uint8_t>(WireCode::kProtocolError));
  ExpectServerAlive();
}

TEST_F(CorruptionMatrixTest, UnknownOpcodeKeepsConnection) {
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  Handshake(fd_result->get());
  std::vector<uint8_t> bogus = {0xEE, 1, 2, 3};
  ASSERT_TRUE(WriteFrame(fd_result->get(), bogus).ok());
  auto resp = ReadFrame(fd_result->get(), 2000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ((*resp)[1], static_cast<uint8_t>(WireCode::kNotSupported));
  // Frame boundary was intact, so the connection survives.
  std::vector<uint8_t> ping;
  WireWriter writer(&ping);
  writer.U8(static_cast<uint8_t>(Opcode::kPing));
  ASSERT_TRUE(WriteFrame(fd_result->get(), ping).ok());
  auto pong = ReadFrame(fd_result->get(), 2000);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ((*pong)[1], static_cast<uint8_t>(WireCode::kOk));
}

TEST_F(CorruptionMatrixTest, CrossVersionHandshakeFailsCleanly) {
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  std::vector<uint8_t> hello;
  WireWriter writer(&hello);
  writer.U8(static_cast<uint8_t>(Opcode::kHello));
  writer.U32(kHelloMagic);
  writer.U16(kProtocolVersionMax + 1);  // client requires a future version
  writer.U16(kProtocolVersionMax + 5);
  ASSERT_TRUE(WriteFrame(fd_result->get(), hello).ok());
  auto resp = ReadFrame(fd_result->get(), 2000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_GE(resp->size(), 2u);
  EXPECT_EQ((*resp)[1], static_cast<uint8_t>(WireCode::kNotSupported));
  WireReader reader(resp->data() + 2, resp->size() - 2);
  const std::string message = reader.Str();
  EXPECT_NE(message.find("no common protocol version"), std::string::npos);
  ExpectServerAlive();
}

TEST_F(CorruptionMatrixTest, BadMagicIsProtocolError) {
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  std::vector<uint8_t> hello;
  WireWriter writer(&hello);
  writer.U8(static_cast<uint8_t>(Opcode::kHello));
  writer.U32(0x12345678);
  writer.U16(1);
  writer.U16(1);
  ASSERT_TRUE(WriteFrame(fd_result->get(), hello).ok());
  auto resp = ReadFrame(fd_result->get(), 2000);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ((*resp)[1], static_cast<uint8_t>(WireCode::kProtocolError));
  ExpectServerAlive();
}

TEST_F(CorruptionMatrixTest, RequestBeforeHandshakeRejected) {
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  std::vector<uint8_t> ping;
  WireWriter writer(&ping);
  writer.U8(static_cast<uint8_t>(Opcode::kPing));
  ASSERT_TRUE(WriteFrame(fd_result->get(), ping).ok());
  auto resp = ReadFrame(fd_result->get(), 2000);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ((*resp)[1], static_cast<uint8_t>(WireCode::kProtocolError));
  ExpectServerAlive();
}

TEST_F(CorruptionMatrixTest, MalformedBodyKeepsConnection) {
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  Handshake(fd_result->get());
  // A kInsert with a 2-byte body (needs tid + table + row).
  std::vector<uint8_t> garbage = {static_cast<uint8_t>(Opcode::kInsert), 7};
  ASSERT_TRUE(WriteFrame(fd_result->get(), garbage).ok());
  auto resp = ReadFrame(fd_result->get(), 2000);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ((*resp)[1],
            static_cast<uint8_t>(WireCode::kInvalidArgument));
  // Still usable.
  std::vector<uint8_t> ping;
  WireWriter writer(&ping);
  writer.U8(static_cast<uint8_t>(Opcode::kPing));
  ASSERT_TRUE(WriteFrame(fd_result->get(), ping).ok());
  EXPECT_TRUE(ReadFrame(fd_result->get(), 2000).ok());
}

// --- v2 (tagged frames) matrix --------------------------------------------

TEST_F(CorruptionMatrixTest, V2HandshakeNegotiatesWindow) {
  // Default request (0) gets the server default window.
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  EXPECT_EQ(HandshakeV2(fd_result->get(), 0), kDefaultPipelineWindow);
  // An absurd request is clamped to the server cap, never granted.
  auto fd2_result = Dial();
  ASSERT_TRUE(fd2_result.ok());
  EXPECT_EQ(HandshakeV2(fd2_result->get(), 1'000'000u),
            kMaxPipelineWindow);
}

TEST_F(CorruptionMatrixTest, V1HelloAgainstV2ServerStaysV1) {
  // A legacy client offering only v1 must get a v1 session whose hello
  // response is byte-for-byte the v1 shape — no trailing window field.
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  std::vector<uint8_t> hello;
  WireWriter writer(&hello);
  writer.U8(static_cast<uint8_t>(Opcode::kHello));
  writer.U32(kHelloMagic);
  writer.U16(1);
  writer.U16(1);
  ASSERT_TRUE(WriteFrame(fd_result->get(), hello).ok());
  auto resp = ReadFrame(fd_result->get(), 2000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  WireReader reader(resp->data(), resp->size());
  (void)reader.U8();
  EXPECT_EQ(reader.U8(), static_cast<uint8_t>(WireCode::kOk));
  EXPECT_EQ(reader.U16(), 1);  // negotiated down to v1
  (void)reader.U8();           // durability mode
  (void)reader.U64();          // session id
  EXPECT_TRUE(reader.Exhausted());  // v1 shape: no window field
  // And the session really is v1-framed.
  std::vector<uint8_t> ping;
  WireWriter ping_writer(&ping);
  ping_writer.U8(static_cast<uint8_t>(Opcode::kPing));
  ASSERT_TRUE(WriteFrame(fd_result->get(), ping).ok());
  auto pong = ReadFrame(fd_result->get(), 2000);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ((*pong)[1], static_cast<uint8_t>(WireCode::kOk));
}

TEST_F(CorruptionMatrixTest, V2TaggedPingEchoesTag) {
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  ASSERT_GT(HandshakeV2(fd_result->get()), 0u);
  const std::vector<uint8_t> frame = TaggedPing(0xDEAD0001u);
  ASSERT_TRUE(SendAll(fd_result->get(), frame.data(), frame.size()).ok());
  auto resp = ReadTaggedFrame(fd_result->get(), 2000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->tag, 0xDEAD0001u);
  ASSERT_GE(resp->payload.size(), 2u);
  EXPECT_EQ(resp->payload[1], static_cast<uint8_t>(WireCode::kOk));
}

TEST_F(CorruptionMatrixTest, CorruptedTagIsCaughtByCrc) {
  // The v2 CRC covers the tag: a tag bit flipped in flight must be a
  // protocol error (stream desync), not a response for the wrong
  // request.
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  ASSERT_GT(HandshakeV2(fd_result->get()), 0u);
  std::vector<uint8_t> frame = TaggedPing(42);
  frame[8] ^= 0x01;  // flip a tag bit, CRC now stale
  ASSERT_TRUE(SendAll(fd_result->get(), frame.data(), frame.size()).ok());
  auto resp = ReadTaggedFrame(fd_result->get(), 2000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_GE(resp->payload.size(), 2u);
  EXPECT_EQ(resp->payload[1],
            static_cast<uint8_t>(WireCode::kProtocolError));
  // The stream cannot be resynchronised: connection closes.
  uint8_t byte;
  EXPECT_FALSE(RecvAll(fd_result->get(), &byte, 1, 2000).ok());
  ExpectServerAlive();
}

TEST_F(CorruptionMatrixTest, DuplicateTagRejectedConnectionSurvives) {
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  ASSERT_GT(HandshakeV2(fd_result->get()), 0u);
  // Two requests with the same tag in ONE write, so they land in one
  // server batch and the second is parsed while the first is still
  // outstanding (responses flush after the batch).
  std::vector<uint8_t> both = TaggedPing(7);
  const std::vector<uint8_t> dup = TaggedPing(7);
  both.insert(both.end(), dup.begin(), dup.end());
  ASSERT_TRUE(SendAll(fd_result->get(), both.data(), both.size()).ok());
  auto first = ReadTaggedFrame(fd_result->get(), 2000);
  auto second = ReadTaggedFrame(fd_result->get(), 2000);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->tag, 7u);
  EXPECT_EQ(second->tag, 7u);
  EXPECT_EQ(first->payload[1], static_cast<uint8_t>(WireCode::kOk));
  EXPECT_EQ(second->payload[1],
            static_cast<uint8_t>(WireCode::kInvalidArgument));
  // The frame boundary stayed intact, so the connection survives.
  const std::vector<uint8_t> again = TaggedPing(8);
  ASSERT_TRUE(SendAll(fd_result->get(), again.data(), again.size()).ok());
  auto third = ReadTaggedFrame(fd_result->get(), 2000);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->payload[1], static_cast<uint8_t>(WireCode::kOk));
}

TEST_F(CorruptionMatrixTest, WindowOverflowShedsRetryably) {
  auto fd_result = Dial();
  ASSERT_TRUE(fd_result.ok());
  ASSERT_EQ(HandshakeV2(fd_result->get(), 1), 1u);  // window of one
  // Two outstanding requests against a window of 1, in one write: the
  // second must be shed with the RETRYABLE admission code — overflowing
  // the window is mis-pacing, not corruption, so never a close.
  std::vector<uint8_t> both = TaggedPing(1);
  const std::vector<uint8_t> extra = TaggedPing(2);
  both.insert(both.end(), extra.begin(), extra.end());
  ASSERT_TRUE(SendAll(fd_result->get(), both.data(), both.size()).ok());
  auto first = ReadTaggedFrame(fd_result->get(), 2000);
  auto second = ReadTaggedFrame(fd_result->get(), 2000);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->payload[1], static_cast<uint8_t>(WireCode::kOk));
  EXPECT_EQ(second->payload[1],
            static_cast<uint8_t>(WireCode::kOverloaded));
  EXPECT_TRUE(IsRetryableWireCode(
      static_cast<WireCode>(second->payload[1])));
  // The connection keeps serving once the window has room again.
  const std::vector<uint8_t> again = TaggedPing(3);
  ASSERT_TRUE(SendAll(fd_result->get(), again.data(), again.size()).ok());
  auto third = ReadTaggedFrame(fd_result->get(), 2000);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->payload[1], static_cast<uint8_t>(WireCode::kOk));
}

TEST_F(CorruptionMatrixTest, GarbageByteStormNeverCrashes) {
  // Deterministic pseudo-random garbage straight onto the socket; the
  // server must reject and close without dying.
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  for (int round = 0; round < 8; ++round) {
    auto fd_result = Dial();
    ASSERT_TRUE(fd_result.ok());
    std::vector<uint8_t> noise(256 + round * 64);
    for (auto& byte : noise) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      byte = static_cast<uint8_t>(rng >> 33);
    }
    (void)SendAll(fd_result->get(), noise.data(), noise.size());
    fd_result->Reset();
  }
  ExpectServerAlive();
  EXPECT_GE(server_->counters().protocol_errors, 1u);
}

}  // namespace
}  // namespace hyrise_nv::net
