#include "obs/bench_compare.h"

#include <gtest/gtest.h>

#include <string>

#include "common/json.h"

namespace hyrise_nv::obs {
namespace {

// Synthetic bench output: two benches, one with an axis dimension, plus
// the log noise benchdiff must skip over.
constexpr const char* kBaseRun =
    "loading 20000 rows...\n"
    "BENCH_JSON {\"bench\":\"e3\",\"threads\":4,"
    "\"commits_per_sec\":10000,\"p99_us\":120}\n"
    "[12:00:01] BENCH_JSON {\"bench\":\"e3\",\"threads\":8,"
    "\"commits_per_sec\":18000,\"p99_us\":150}\n"
    "BENCH_JSON {\"bench\":\"e7\",\"merge_seconds\":2.0,"
    "\"rows_per_sec\":500000}\n"
    "done.\n";

std::vector<BenchRecord> Parse(const std::string& text) {
  auto result = ParseBenchInput(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : std::vector<BenchRecord>{};
}

TEST(BenchParseTest, ExtractsRecordsFromNoisyOutput) {
  const auto records = Parse(kBaseRun);
  ASSERT_EQ(records.size(), 3u);
  // Identity keys include the bench name and axis fields, so the two e3
  // thread counts stay distinct records.
  EXPECT_NE(records[0].key, records[1].key);
  EXPECT_NE(records[0].key.find("bench=e3"), std::string::npos);
  EXPECT_NE(records[0].key.find("threads=4"), std::string::npos);
  // Axis fields are identity, not compared metrics.
  for (const auto& [name, value] : records[0].metrics) {
    EXPECT_NE(name, "threads");
  }
  ASSERT_EQ(records[0].metrics.size(), 2u);
}

TEST(BenchParseTest, RejectsRecordWithoutBenchField) {
  auto result = ParseBenchRecord("{\"commits_per_sec\":1}");
  EXPECT_FALSE(result.ok());
}

TEST(BenchParseTest, CaptureFileRoundTrip) {
  const auto records = Parse(kBaseRun);
  const std::string capture =
      SerializeBenchRun(records, {{"host", "ci-runner"}});
  // The capture is valid JSON and parses back to the same records.
  auto json = common::JsonParse(capture);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_EQ(json->FindPath("meta.host")->AsString(), "ci-runner");
  const auto reparsed = Parse(capture);
  ASSERT_EQ(reparsed.size(), records.size());
  EXPECT_EQ(reparsed[0].key, records[0].key);
  EXPECT_EQ(reparsed[0].metrics, records[0].metrics);
}

TEST(BenchParseTest, DuplicateIdentityKeepsLastRecord) {
  const auto records = Parse(
      "BENCH_JSON {\"bench\":\"x\",\"ops\":1}\n"
      "BENCH_JSON {\"bench\":\"x\",\"ops\":2}\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].metrics[0].second, 2.0);
}

TEST(MetricDirectionTest, InfersFromName) {
  EXPECT_EQ(DirectionForMetric("commits_per_sec"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("rows_per_sec"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("p99_us"), MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("max_p99_us"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("recovery_seconds"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("wal_bytes"),
            MetricDirection::kLowerIsBetter);
  // Latency wins even when a rate-ish token also appears.
  EXPECT_EQ(DirectionForMetric("latency_per_sec"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("windows"), MetricDirection::kNeutral);
}

TEST(BenchDiffTest, IdenticalRunsAreCleanNoise) {
  const auto base = Parse(kBaseRun);
  const DiffReport report = CompareBenchRuns(base, base, CompareOptions{});
  EXPECT_FALSE(report.failed());
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.improvements, 0u);
  EXPECT_EQ(report.missing, 0u);
}

TEST(BenchDiffTest, ThroughputDropAndLatencyRiseRegress) {
  const auto base = Parse(kBaseRun);
  const auto current = Parse(
      "BENCH_JSON {\"bench\":\"e3\",\"threads\":4,"
      "\"commits_per_sec\":8000,\"p99_us\":120}\n"     // tput -20%
      "BENCH_JSON {\"bench\":\"e3\",\"threads\":8,"
      "\"commits_per_sec\":18000,\"p99_us\":300}\n"    // p99 +100%
      "BENCH_JSON {\"bench\":\"e7\",\"merge_seconds\":2.0,"
      "\"rows_per_sec\":505000}\n");                   // within noise
  const DiffReport report = CompareBenchRuns(base, current, CompareOptions{});
  EXPECT_TRUE(report.failed());
  EXPECT_EQ(report.regressions, 2u);
  size_t regressed = 0;
  for (const MetricDiff& d : report.diffs) {
    if (d.verdict != DiffVerdict::kRegressed) continue;
    ++regressed;
    EXPECT_TRUE(d.metric == "commits_per_sec" || d.metric == "p99_us")
        << d.metric;
  }
  EXPECT_EQ(regressed, 2u);
}

TEST(BenchDiffTest, ImprovementsDoNotFail) {
  const auto base = Parse("BENCH_JSON {\"bench\":\"x\",\"ops_per_sec\":100,"
                          "\"p99_us\":200}\n");
  const auto current = Parse("BENCH_JSON {\"bench\":\"x\",\"ops_per_sec\":150,"
                             "\"p99_us\":100}\n");
  const DiffReport report = CompareBenchRuns(base, current, CompareOptions{});
  EXPECT_FALSE(report.failed());
  EXPECT_EQ(report.improvements, 2u);
}

TEST(BenchDiffTest, WithinNoiseThresholdPasses) {
  const auto base = Parse("BENCH_JSON {\"bench\":\"x\",\"ops_per_sec\":1000}\n");
  const auto current =
      Parse("BENCH_JSON {\"bench\":\"x\",\"ops_per_sec\":950}\n");  // -5%
  CompareOptions options;
  options.default_threshold_pct = 10.0;
  EXPECT_FALSE(CompareBenchRuns(base, current, options).failed());
  // Tighten the threshold below the delta and the same diff regresses.
  options.default_threshold_pct = 2.0;
  EXPECT_TRUE(CompareBenchRuns(base, current, options).failed());
}

TEST(BenchDiffTest, MissingMetricAndRecordFail) {
  const auto base = Parse("BENCH_JSON {\"bench\":\"x\",\"ops_per_sec\":100,"
                          "\"p99_us\":10}\n"
                          "BENCH_JSON {\"bench\":\"y\",\"ops_per_sec\":5}\n");
  // Current run lost bench y entirely and dropped x's p99 metric: both
  // disappearances must fail the gate, not silently pass.
  const auto current =
      Parse("BENCH_JSON {\"bench\":\"x\",\"ops_per_sec\":100}\n");
  const DiffReport report = CompareBenchRuns(base, current, CompareOptions{});
  EXPECT_TRUE(report.failed());
  EXPECT_EQ(report.missing, 2u);
  EXPECT_EQ(report.regressions, 0u);
}

TEST(BenchDiffTest, NewRecordsAreInformational) {
  const auto base = Parse("BENCH_JSON {\"bench\":\"x\",\"ops_per_sec\":100}\n");
  const auto current =
      Parse("BENCH_JSON {\"bench\":\"x\",\"ops_per_sec\":100}\n"
            "BENCH_JSON {\"bench\":\"z\",\"ops_per_sec\":7}\n");
  const DiffReport report = CompareBenchRuns(base, current, CompareOptions{});
  EXPECT_FALSE(report.failed());
}

TEST(BenchDiffTest, ScopedThresholdOverridesBareName) {
  const auto base = Parse(kBaseRun);
  const auto current = Parse(
      "BENCH_JSON {\"bench\":\"e3\",\"threads\":4,"
      "\"commits_per_sec\":8500,\"p99_us\":120}\n"     // -15%
      "BENCH_JSON {\"bench\":\"e3\",\"threads\":8,"
      "\"commits_per_sec\":18000,\"p99_us\":150}\n"
      "BENCH_JSON {\"bench\":\"e7\",\"merge_seconds\":2.0,"
      "\"rows_per_sec\":400000}\n");                   // -20%
  CompareOptions options;
  // Bare name loosens everywhere; the e7 scope tightens back down, and
  // the scoped entry must win for e7.
  options.metric_thresholds["commits_per_sec"] = 25.0;
  options.metric_thresholds["rows_per_sec"] = 25.0;
  options.metric_thresholds["e7/rows_per_sec"] = 5.0;
  const DiffReport report = CompareBenchRuns(base, current, options);
  EXPECT_TRUE(report.failed());
  ASSERT_EQ(report.regressions, 1u);
  for (const MetricDiff& d : report.diffs) {
    if (d.verdict == DiffVerdict::kRegressed) {
      EXPECT_EQ(d.metric, "rows_per_sec");
      EXPECT_DOUBLE_EQ(d.threshold_pct, 5.0);
    }
  }
}

TEST(BenchDiffTest, RenderMentionsVerdictAndSummary) {
  const auto base = Parse("BENCH_JSON {\"bench\":\"x\",\"ops_per_sec\":100}\n");
  const auto current =
      Parse("BENCH_JSON {\"bench\":\"x\",\"ops_per_sec\":50}\n");
  const DiffReport report = CompareBenchRuns(base, current, CompareOptions{});
  const std::string rendered = RenderDiff(report, false);
  EXPECT_NE(rendered.find("REGRESSED"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("FAIL"), std::string::npos) << rendered;
  const std::string clean = RenderDiff(
      CompareBenchRuns(base, base, CompareOptions{}), false);
  EXPECT_NE(clean.find("no regression"), std::string::npos) << clean;
}

}  // namespace
}  // namespace hyrise_nv::obs
