#include "core/database.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/query.h"
#include "nvm/nvm_env.h"

namespace hyrise_nv::core {
namespace {

using storage::DataType;
using storage::RowLocation;
using storage::Value;

storage::Schema OrdersSchema() {
  return *storage::Schema::Make({{"id", DataType::kInt64},
                                 {"amount", DataType::kDouble},
                                 {"customer", DataType::kString}});
}

std::vector<Value> Order(int64_t id, double amount,
                         const std::string& customer) {
  return {Value(id), Value(amount), Value(customer)};
}

std::string MakeDataDir(const std::string& prefix) {
  const std::string dir = nvm::TempPath(prefix);
  std::filesystem::create_directories(dir);
  return dir;
}

// Runs the full database lifecycle tests once per durability mode.
class DatabaseTest : public ::testing::TestWithParam<DurabilityMode> {
 protected:
  DatabaseOptions MakeOptions() {
    DatabaseOptions options;
    options.mode = GetParam();
    options.region_size = 64 << 20;
    if (options.uses_wal() || options.mode == DurabilityMode::kNvm) {
      dir_ = MakeDataDir("db_test");
      options.data_dir = dir_;
    }
    if (options.mode == DurabilityMode::kNvm) {
      // File-backed regions cannot use the shadow in combination with
      // cross-process reopen in this test; in-process crash simulation
      // needs the shadow. Use shadow + file (both work together).
      options.tracking = nvm::TrackingMode::kShadow;
    }
    return options;
  }

  void TearDown() override {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  std::string dir_;
};

TEST_P(DatabaseTest, CreateInsertQuery) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto& db = *db_result;
  auto table_result = db->CreateTable("orders", OrdersSchema());
  ASSERT_TRUE(table_result.ok());
  storage::Table* table = *table_result;

  auto tx = db->Begin();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(db->Insert(*tx, table, Order(1, 9.99, "alice")).ok());
  ASSERT_TRUE(db->Insert(*tx, table, Order(2, 19.99, "bob")).ok());
  ASSERT_TRUE(db->Commit(*tx).ok());

  auto rows = db->ScanEqual(table, 0, Value(int64_t{2}),
                            db->ReadSnapshot(), storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(std::get<std::string>(table->GetValue((*rows)[0], 2)), "bob");
  EXPECT_EQ(CountRows(table, db->ReadSnapshot(), storage::kTidNone), 2u);
}

TEST_P(DatabaseTest, UpdateReplacesVersion) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result;
  storage::Table* table = *db->CreateTable("orders", OrdersSchema());

  auto tx = db->Begin();
  ASSERT_TRUE(tx.ok());
  auto loc = db->Insert(*tx, table, Order(1, 10.0, "alice"));
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(db->Commit(*tx).ok());

  auto tx2 = db->Begin();
  ASSERT_TRUE(tx2.ok());
  auto new_loc = db->Update(*tx2, table, *loc, Order(1, 20.0, "alice"));
  ASSERT_TRUE(new_loc.ok());
  ASSERT_TRUE(db->Commit(*tx2).ok());

  auto sum = SumDouble(table, 1, db->ReadSnapshot(), storage::kTidNone);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 20.0);
  EXPECT_EQ(CountRows(table, db->ReadSnapshot(), storage::kTidNone), 1u);
}

TEST_P(DatabaseTest, DeleteOfInvisibleRowFails) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result;
  storage::Table* table = *db->CreateTable("orders", OrdersSchema());

  auto tx1 = db->Begin();
  ASSERT_TRUE(tx1.ok());
  auto loc = db->Insert(*tx1, table, Order(1, 1.0, "x"));
  ASSERT_TRUE(loc.ok());
  // tx2 cannot see tx1's uncommitted insert, so the delete fails.
  auto tx2 = db->Begin();
  ASSERT_TRUE(tx2.ok());
  EXPECT_TRUE(db->Delete(*tx2, table, *loc).IsNotFound());
  ASSERT_TRUE(db->Abort(*tx2).ok());
  ASSERT_TRUE(db->Abort(*tx1).ok());
}

TEST_P(DatabaseTest, IndexedScanMatchesFullScan) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result;
  storage::Table* table = *db->CreateTable("orders", OrdersSchema());
  ASSERT_TRUE(db->CreateIndex("orders", 2).ok());

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db->InsertAutoCommit(
                      table, Order(i, i * 1.0,
                                   i % 3 == 0 ? "carol" : "dave"))
                    .ok());
  }
  auto rows = db->ScanEqual(table, 2, Value(std::string("carol")),
                            db->ReadSnapshot(), storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 34u);  // ceil(100/3)
}

TEST_P(DatabaseTest, RangeScanAcrossMainAndDelta) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result;
  storage::Table* table = *db->CreateTable("orders", OrdersSchema());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db->InsertAutoCommit(table, Order(i, 0.0, "m")).ok());
  }
  ASSERT_TRUE(db->Merge("orders").ok());
  for (int i = 50; i < 80; ++i) {
    ASSERT_TRUE(db->InsertAutoCommit(table, Order(i, 0.0, "d")).ok());
  }

  auto rows = ScanRange(table, 0, Value(int64_t{40}), Value(int64_t{59}),
                        db->ReadSnapshot(), storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 20u);
  for (const auto& loc : *rows) {
    const int64_t v = std::get<int64_t>(table->GetValue(loc, 0));
    EXPECT_GE(v, 40);
    EXPECT_LE(v, 59);
  }
}

TEST_P(DatabaseTest, MergeKeepsVisibleContents) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok());
  auto& db = *db_result;
  storage::Table* table = *db->CreateTable("orders", OrdersSchema());
  std::vector<RowLocation> locs;
  for (int i = 0; i < 30; ++i) {
    auto tx = db->Begin();
    ASSERT_TRUE(tx.ok());
    auto loc = db->Insert(*tx, table, Order(i, i * 2.0, "m"));
    ASSERT_TRUE(loc.ok());
    locs.push_back(*loc);
    ASSERT_TRUE(db->Commit(*tx).ok());
  }
  // Delete every third row.
  for (size_t i = 0; i < locs.size(); i += 3) {
    auto tx = db->Begin();
    ASSERT_TRUE(tx.ok());
    ASSERT_TRUE(db->Delete(*tx, table, locs[i]).ok());
    ASSERT_TRUE(db->Commit(*tx).ok());
  }
  const auto sum_before =
      SumInt64(table, 0, db->ReadSnapshot(), storage::kTidNone);
  ASSERT_TRUE(sum_before.ok());

  auto stats = db->Merge("orders");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_after, 20u);
  EXPECT_EQ(table->delta_row_count(), 0u);

  const auto sum_after =
      SumInt64(table, 0, db->ReadSnapshot(), storage::kTidNone);
  ASSERT_TRUE(sum_after.ok());
  EXPECT_EQ(*sum_before, *sum_after);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, DatabaseTest,
    ::testing::Values(DurabilityMode::kNone, DurabilityMode::kWalValue,
                      DurabilityMode::kWalDict, DurabilityMode::kNvm),
    [](const ::testing::TestParamInfo<DurabilityMode>& info) {
      std::string name = DurabilityModeName(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace hyrise_nv::core
