#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace hyrise_nv::obs {
namespace {

TEST(CounterTest, SingleThreadedAddAndReset) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Inc();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, StoreOverwritesShardedTotal) {
  Counter counter;
  counter.Add(10);
  counter.Store(7);
  EXPECT_EQ(counter.Value(), 7u);
}

TEST(CounterTest, NoLostIncrementsUnderEightWriterThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge gauge;
  gauge.Set(100);
  gauge.Add(-30);
  EXPECT_EQ(gauge.Value(), 70);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(HistogramTest, BucketBoundsAreConsistent) {
  // Every value must land in a bucket whose [lower, next-lower) range
  // contains it.
  for (uint64_t value :
       {uint64_t{0}, uint64_t{1}, uint64_t{7}, uint64_t{8}, uint64_t{9},
        uint64_t{100}, uint64_t{1000}, uint64_t{123456789},
        uint64_t{1} << 40, UINT64_MAX}) {
    const size_t index = Histogram::BucketIndex(value);
    ASSERT_LT(index, Histogram::kNumBuckets) << "value " << value;
    EXPECT_LE(Histogram::BucketLowerBound(index), value)
        << "value " << value;
    // Past-the-end bounds saturate at UINT64_MAX (2^64 is not
    // representable), so the check is inclusive for the very top value.
    EXPECT_GE(Histogram::BucketLowerBound(index + 1), value)
        << "value " << value;
    if (value != UINT64_MAX) {
      EXPECT_GT(Histogram::BucketLowerBound(index + 1), value)
          << "value " << value;
    }
  }
}

TEST(HistogramTest, SmallValuesAreExact) {
  // The linear region gives every value below 2^(kSubBits+1) its own
  // bucket.
  for (uint64_t v = 0; v < (uint64_t{1} << (Histogram::kSubBits + 1));
       ++v) {
    EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(v)), v);
  }
}

TEST(HistogramTest, RecordsCountSumMinMax) {
  Histogram histogram;
  histogram.Record(10);
  histogram.Record(20);
  histogram.Record(30);
  const HistogramData data = histogram.Snapshot();
  EXPECT_EQ(data.count, 3u);
  EXPECT_EQ(data.sum, 60u);
  EXPECT_EQ(data.min, 10u);
  EXPECT_EQ(data.max, 30u);
  EXPECT_DOUBLE_EQ(data.Mean(), 20.0);
}

TEST(HistogramTest, PercentilesWithinBucketError) {
  Histogram histogram;
  // 100 samples 1..100: p50 ~ 50, p99 ~ 100. Log-scale buckets with 4
  // sub-buckets per octave bound relative error by 25%.
  for (uint64_t v = 1; v <= 100; ++v) histogram.Record(v);
  const HistogramData data = histogram.Snapshot();
  EXPECT_NEAR(data.Percentile(50), 50.0, 50.0 * 0.25);
  EXPECT_NEAR(data.Percentile(99), 100.0, 100.0 * 0.25);
  EXPECT_DOUBLE_EQ(data.Percentile(0), static_cast<double>(data.min));
}

TEST(HistogramTest, NoLostRecordsUnderEightWriterThreads) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<uint64_t>(t) * 1000 + (i & 255));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramData data = histogram.Snapshot();
  EXPECT_EQ(data.count, kThreads * kPerThread);
}

TEST(HistogramTest, SnapshotWhileWritingIsSafe) {
  // TSan coverage: readers snapshot while writers record. Counts must
  // only grow between snapshots (relaxed atomics never tear or go back).
  Histogram histogram;
  Counter counter;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      uint64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        histogram.Record(v = (v * 2862933555777941757ull + 3037000493ull) %
                             100000);
        counter.Inc();
      }
    });
  }
  uint64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    const HistogramData data = histogram.Snapshot();
    EXPECT_GE(data.count, last_count);
    last_count = data.count;
    (void)counter.Value();
  }
  stop.store(true);
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(histogram.Snapshot().count, counter.Value());
}

TEST(FastClockTest, TicksConvertToPlausibleNanos) {
  FastClock::Calibrate();
  const uint64_t start = FastClock::NowTicks();
  // Busy-wait a little so the delta is non-trivial.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const uint64_t end = FastClock::NowTicks();
  const uint64_t nanos =
      FastClock::TicksToNanos(static_cast<int64_t>(end - start));
  EXPECT_GT(nanos, 0u);
  EXPECT_LT(nanos, uint64_t{10} * 1000 * 1000 * 1000);  // < 10 s
  // Negative deltas (TSC skew) clamp to zero instead of wrapping.
  EXPECT_EQ(FastClock::TicksToNanos(-1000), 0u);
}

TEST(RegistryTest, SameNameYieldsSameMetric) {
  auto& registry = MetricsRegistry::Instance();
  Counter& a = registry.GetCounter("test.same.count");
  Counter& b = registry.GetCounter("test.same.count");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.GetHistogram("test.same.latency_ns");
  Histogram& h2 = registry.GetHistogram("test.same.latency_ns");
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, EngineMetricsArePreRegistered) {
  // The export surfaces promise these names exist even before any
  // workload ran (dbinspect on a fresh process).
  const MetricsSnapshot snapshot = MetricsRegistry::Instance().Snapshot();
  EXPECT_NE(snapshot.FindHistogram("nvm.persist.latency_ns"), nullptr);
  EXPECT_NE(snapshot.FindHistogram("wal.fsync.latency_ns"), nullptr);
  EXPECT_NE(snapshot.FindHistogram("txn.commit.latency_ns"), nullptr);
  EXPECT_NE(snapshot.FindCounter("nvm.persist.count"), nullptr);
  EXPECT_NE(snapshot.FindCounter("wal.fsync.count"), nullptr);
}

TEST(RegistryTest, SnapshotSerializations) {
  auto& registry = MetricsRegistry::Instance();
  registry.GetCounter("test.serialize.count").Add(5);
  registry.GetHistogram("test.serialize.latency_ns").Record(1234);
  const MetricsSnapshot snapshot = registry.Snapshot();

  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"test.serialize.count\":5"), std::string::npos);
  EXPECT_NE(json.find("\"test.serialize.latency_ns\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  const std::string prom = snapshot.ToPrometheusText();
  EXPECT_NE(prom.find("test_serialize_count 5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_serialize_count counter"),
            std::string::npos);
  EXPECT_NE(prom.find("test_serialize_latency_ns_count"),
            std::string::npos);

  const std::string text = snapshot.ToText();
  EXPECT_NE(text.find("test.serialize.count"), std::string::npos);
}

TEST(FastClockTest, ConversionRateMatchesBackend) {
  FastClock::Calibrate();
  EXPECT_GT(FastClock::NsPerTick(), 0.0);
  if (FastClock::UsingSteadyFallback()) {
    // The fallback reads steady_clock nanoseconds directly, so the
    // conversion must be the identity.
    EXPECT_DOUBLE_EQ(FastClock::NsPerTick(), 1.0);
    EXPECT_EQ(FastClock::TicksToNanos(12345), 12345u);
  } else {
    // Invariant-TSC path: modern cores tick between 0.1 and 10 GHz.
    EXPECT_GT(FastClock::NsPerTick(), 0.05);
    EXPECT_LT(FastClock::NsPerTick(), 20.0);
  }
}

TEST(PrometheusTest, HelpPrecedesTypeForEveryMetric) {
  auto& registry = MetricsRegistry::Instance();
  registry.GetCounter("test.prom.help.count").Inc();
  registry.GetHistogram("test.prom.help.latency_ns").Record(1);
  const std::string prom =
      registry.Snapshot().ToPrometheusText();
  size_t pos = 0;
  int metrics_seen = 0;
  while ((pos = prom.find("# TYPE ", pos)) != std::string::npos) {
    const size_t name_start = pos + 7;
    const size_t name_end = prom.find(' ', name_start);
    ASSERT_NE(name_end, std::string::npos);
    const std::string name = prom.substr(name_start, name_end - name_start);
    const std::string help_line = "# HELP " + name + " ";
    const size_t help_pos = prom.find(help_line);
    EXPECT_NE(help_pos, std::string::npos) << "no HELP for " << name;
    EXPECT_LT(help_pos, pos) << "HELP must precede TYPE for " << name;
    ++metrics_seen;
    pos = name_end;
  }
  EXPECT_GE(metrics_seen, 2);
}

TEST(PrometheusTest, LabelValuesAreEscaped) {
  EXPECT_EQ(PrometheusEscapeLabel("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusEscapeLabel("two\nlines"), "two\\nlines");
  EXPECT_EQ(PrometheusEscapeLabel("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  auto& registry = MetricsRegistry::Instance();
  Histogram& histogram =
      registry.GetHistogram("test.prom.buckets.latency_ns");
  histogram.Reset();
  for (uint64_t v : {1u, 5u, 5u, 80u, 3000u}) histogram.Record(v);
  const std::string prom = registry.Snapshot().ToPrometheusText();

  // Collect this histogram's bucket lines in emission order.
  const std::string bucket_prefix =
      "test_prom_buckets_latency_ns_bucket{le=\"";
  std::vector<uint64_t> cumulative;
  uint64_t inf_value = 0;
  bool saw_inf = false;
  size_t pos = 0;
  while ((pos = prom.find(bucket_prefix, pos)) != std::string::npos) {
    const size_t le_start = pos + bucket_prefix.size();
    const size_t le_end = prom.find("\"} ", le_start);
    ASSERT_NE(le_end, std::string::npos);
    const std::string le = prom.substr(le_start, le_end - le_start);
    const size_t value_start = le_end + 3;
    const uint64_t value = std::stoull(prom.substr(value_start));
    if (le == "+Inf") {
      saw_inf = true;
      inf_value = value;
    } else {
      EXPECT_FALSE(saw_inf) << "+Inf must be the last bucket";
      cumulative.push_back(value);
    }
    pos = value_start;
  }
  ASSERT_TRUE(saw_inf);
  ASSERT_FALSE(cumulative.empty());
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1])
        << "bucket counts must be non-decreasing";
  }
  EXPECT_GE(inf_value, cumulative.back());
  EXPECT_EQ(inf_value, 5u) << "+Inf bucket must equal the sample count";

  // _count agrees with the +Inf bucket, per the exposition format.
  const size_t count_pos =
      prom.find("test_prom_buckets_latency_ns_count ");
  ASSERT_NE(count_pos, std::string::npos);
  EXPECT_EQ(std::stoull(prom.substr(
                count_pos + std::string("test_prom_buckets_latency_ns_count ")
                                .size())),
            inf_value);
}

TEST(HistogramTest, InterpolatedPercentileExactForWidthOneBuckets) {
  // Values 0..7 land in width-1 buckets (the first sub-bucket range), so
  // rank interpolation is exact: Percentile(q) is the q-th order
  // statistic with no bucket error at all.
  Histogram histogram;
  for (uint64_t v = 0; v <= 7; ++v) histogram.Record(v);
  const HistogramData data = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(data.Percentile(0), 0.0);
  EXPECT_NEAR(data.Percentile(50), 3.5, 0.51);
  EXPECT_NEAR(data.Percentile(87.5), 6.5, 0.51);
  EXPECT_DOUBLE_EQ(data.Percentile(100), 7.0);
}

TEST(HistogramTest, PercentilesAreMonotonicAndClamped) {
  Histogram histogram;
  for (uint64_t v = 1; v <= 10'000; v += 7) histogram.Record(v);
  const HistogramData data = histogram.Snapshot();
  const double p50 = data.Percentile(50);
  const double p95 = data.Percentile(95);
  const double p99 = data.Percentile(99);
  const double p999 = data.Percentile(99.9);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, static_cast<double>(data.max));
  EXPECT_GE(p50, static_cast<double>(data.min));
  // Interpolation keeps the estimate inside the log-bucket error bound.
  EXPECT_NEAR(p50, 5'000.0, 5'000.0 * 0.25);
}

TEST(HistogramTest, SnapshotPercentileMatchesDataPercentile) {
  // HistogramSnapshot::Percentile reconstructs from the serialized
  // cumulative buckets; it must agree with the full-data estimator to
  // within one value unit (the cumulative form stores inclusive upper
  // bounds, so the bucket edges differ by at most 1).
  auto& registry = MetricsRegistry::Instance();
  Histogram& histogram = registry.GetHistogram("test.pctl.latency_ns");
  for (uint64_t v = 1; v <= 5'000; v += 3) histogram.Record(v);
  const HistogramData data = histogram.Snapshot();
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot* serialized =
      snapshot.FindHistogram("test.pctl.latency_ns");
  ASSERT_NE(serialized, nullptr);
  for (const double q : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_NEAR(serialized->Percentile(q), data.Percentile(q), 1.0)
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(serialized->p999, data.Percentile(99.9));
}

TEST(HistogramTest, SnapshotJsonCarriesP999) {
  auto& registry = MetricsRegistry::Instance();
  registry.GetHistogram("test.p999.latency_ns").Record(42);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
}

TEST(RegistryTest, ResetAllZeroesValuesButKeepsRegistrations) {
  auto& registry = MetricsRegistry::Instance();
  registry.GetCounter("test.reset.count").Add(3);
  registry.GetHistogram("test.reset.latency_ns").Record(7);
  registry.ResetAll();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test.reset.count"), 0u);
  const HistogramSnapshot* histogram =
      snapshot.FindHistogram("test.reset.latency_ns");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, 0u);
}

}  // namespace
}  // namespace hyrise_nv::obs
