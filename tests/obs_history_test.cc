#include "obs/history.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace hyrise_nv::obs {
namespace {

TEST(HistorySamplerTest, FirstTickHasZeroDeltas) {
  MetricsRegistry::Instance().ResetAll();
  MetricsRegistry::Instance().GetCounter("txn.commit.count").Add(100);
  HistorySampler sampler(1000, 8);
  sampler.TickOnce();
  const auto samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 1u);
  // The first tick only establishes the baseline: no previous point to
  // diff against, so deltas are zero even with pre-existing counts.
  EXPECT_EQ(samples[0].commits, 0u);
  EXPECT_GT(samples[0].epoch_ms, 0u);
}

TEST(HistorySamplerTest, DeltasDiffConsecutiveTicks) {
  MetricsRegistry::Instance().ResetAll();
  auto& commits = MetricsRegistry::Instance().GetCounter("txn.commit.count");
  auto& aborts = MetricsRegistry::Instance().GetCounter("txn.abort.count");
  HistorySampler sampler(1000, 8);
  sampler.TickOnce();
  commits.Add(7);
  aborts.Add(3);
  sampler.TickOnce();
  commits.Add(5);
  sampler.TickOnce();
  const auto samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[1].commits, 7u);
  EXPECT_EQ(samples[1].aborts, 3u);
  EXPECT_EQ(samples[2].commits, 5u);
  EXPECT_EQ(samples[2].aborts, 0u);
}

TEST(HistorySamplerTest, RingKeepsNewestCapacityPoints) {
  MetricsRegistry::Instance().ResetAll();
  auto& commits = MetricsRegistry::Instance().GetCounter("txn.commit.count");
  HistorySampler sampler(1000, 3);
  for (int i = 0; i < 6; ++i) {
    commits.Add(static_cast<uint64_t>(i));
    sampler.TickOnce();
  }
  const auto samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 3u);
  // Oldest-first: ticks 4, 5, 6 survive with their per-tick deltas.
  EXPECT_EQ(samples[0].commits, 3u);
  EXPECT_EQ(samples[1].commits, 4u);
  EXPECT_EQ(samples[2].commits, 5u);
}

TEST(HistorySamplerTest, BackgroundThreadStartsAndStops) {
  MetricsRegistry::Instance().ResetAll();
  HistorySampler sampler(10, 64);
  EXPECT_FALSE(sampler.running());
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  // Give the loop time for at least one capture.
  for (int i = 0; i < 100 && sampler.Samples().empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.Samples().size(), 1u);
  // Stop is idempotent; a second Start/Stop cycle works.
  sampler.Stop();
  sampler.Start();
  sampler.Stop();
}

TEST(HistorySamplerTest, JsonExportCarriesSamples) {
  MetricsRegistry::Instance().ResetAll();
  HistorySampler sampler(250, 4);
  sampler.TickOnce();
  sampler.TickOnce();
  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"interval_ms\":250"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":["), std::string::npos);
  EXPECT_NE(json.find("\"epoch_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"commit_p99_ns\":"), std::string::npos);
}

}  // namespace
}  // namespace hyrise_nv::obs
