// Parameterised property sweeps across element sizes, latency profiles,
// and MVCC visibility states — broad, mechanical coverage of invariants
// that the scenario tests exercise only pointwise.

#include <gtest/gtest.h>

#include <tuple>

#include "alloc/pheap.h"
#include "alloc/pvector.h"
#include "common/random.h"
#include "nvm/nvm_env.h"
#include "storage/mvcc.h"

namespace hyrise_nv {
namespace {

// --- PVector element-size sweep -------------------------------------------

template <size_t N>
struct Blob {
  uint8_t bytes[N];
};

template <typename T>
class PVectorTypedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nvm::PmemRegionOptions opts;
    opts.tracking = nvm::TrackingMode::kShadow;
    auto heap_result = alloc::PHeap::Create(16 << 20, opts);
    ASSERT_TRUE(heap_result.ok());
    heap_ = std::move(heap_result).ValueUnsafe();
    auto desc_off = heap_->allocator().Alloc(sizeof(alloc::PVectorDesc));
    ASSERT_TRUE(desc_off.ok());
    desc_ = heap_->Resolve<alloc::PVectorDesc>(*desc_off);
    alloc::PVector<T>::Format(heap_->region(), desc_);
    vec_ = alloc::PVector<T>(&heap_->region(), &heap_->allocator(), desc_);
  }

  static T MakeElement(uint64_t i) {
    T value{};
    auto* bytes = reinterpret_cast<uint8_t*>(&value);
    Rng rng(i);
    for (size_t b = 0; b < sizeof(T); ++b) {
      bytes[b] = static_cast<uint8_t>(rng.Next());
    }
    return value;
  }

  static bool Equal(const T& a, const T& b) {
    return std::memcmp(&a, &b, sizeof(T)) == 0;
  }

  std::unique_ptr<alloc::PHeap> heap_;
  alloc::PVectorDesc* desc_ = nullptr;
  alloc::PVector<T> vec_;
};

using ElementTypes =
    ::testing::Types<uint8_t, uint32_t, uint64_t, Blob<3>, Blob<24>,
                     Blob<100>, storage::MvccEntry>;
TYPED_TEST_SUITE(PVectorTypedTest, ElementTypes);

TYPED_TEST(PVectorTypedTest, AppendGrowCrashRoundTrip) {
  constexpr uint64_t kCount = 700;  // crosses several growth boundaries
  for (uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(this->vec_.Append(this->MakeElement(i)).ok());
  }
  ASSERT_TRUE(this->heap_->region().SimulateCrash().ok());
  ASSERT_TRUE(this->vec_.Validate().ok());
  ASSERT_EQ(this->vec_.size(), kCount);
  for (uint64_t i = 0; i < kCount; i += 13) {
    EXPECT_TRUE(this->Equal(this->vec_.Get(i), this->MakeElement(i)))
        << "element " << i << " (size " << sizeof(TypeParam) << ")";
  }
}

TYPED_TEST(PVectorTypedTest, BulkAppendMatchesScalarAppend) {
  std::vector<TypeParam> elements;
  for (uint64_t i = 0; i < 200; ++i) {
    elements.push_back(this->MakeElement(i + 1000));
  }
  ASSERT_TRUE(
      this->vec_.BulkAppend(elements.data(), elements.size()).ok());
  ASSERT_EQ(this->vec_.size(), elements.size());
  for (uint64_t i = 0; i < elements.size(); i += 7) {
    EXPECT_TRUE(this->Equal(this->vec_.Get(i), elements[i]));
  }
}

// --- Latency model sweep ---------------------------------------------------

class LatencySweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(LatencySweepTest, PersistChargesAtLeastModelledDelay) {
  const auto [flush_ns, fence_ns] = GetParam();
  nvm::PmemRegionOptions opts;
  opts.tracking = nvm::TrackingMode::kNone;
  opts.latency = nvm::NvmLatencyModel{flush_ns, fence_ns, 0.0};
  auto region = std::move(nvm::PmemRegion::Create(1 << 16, opts))
                    .ValueUnsafe();
  constexpr int kOps = 50;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    region->base()[i * 64] = static_cast<uint8_t>(i);
    region->Persist(region->base() + i * 64, 1);
  }
  const auto elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const int64_t modelled =
      int64_t{kOps} * (int64_t{flush_ns} + int64_t{fence_ns});
  EXPECT_GE(elapsed_ns, modelled * 9 / 10)
      << "flush=" << flush_ns << " fence=" << fence_ns;
  EXPECT_EQ(region->stats().flush_lines.load(), uint64_t{kOps});
  EXPECT_EQ(region->stats().fences.load(), uint64_t{kOps});
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, LatencySweepTest,
    ::testing::Values(std::make_tuple(0u, 0u), std::make_tuple(1000u, 0u),
                      std::make_tuple(0u, 1000u),
                      std::make_tuple(2000u, 1000u)));

// --- MVCC visibility truth table -------------------------------------------

struct VisibilityCase {
  storage::Cid begin, end;
  storage::Tid tid;
  storage::Cid snapshot;
  storage::Tid reader;
  bool visible;
};

class VisibilityTest : public ::testing::TestWithParam<VisibilityCase> {};

TEST_P(VisibilityTest, TruthTable) {
  const auto& c = GetParam();
  storage::MvccEntry entry{c.begin, c.end, c.tid};
  EXPECT_EQ(storage::IsVisible(entry, c.snapshot, c.reader), c.visible);
}

constexpr storage::Cid kInf = storage::kCidInfinity;

INSTANTIATE_TEST_SUITE_P(
    Cases, VisibilityTest,
    ::testing::Values(
        // Committed, never deleted.
        VisibilityCase{10, kInf, 0, 10, 0, true},
        VisibilityCase{10, kInf, 0, 9, 0, false},
        // Committed, deleted later.
        VisibilityCase{10, 20, 0, 19, 0, true},
        VisibilityCase{10, 20, 0, 20, 0, false},
        VisibilityCase{10, 20, 0, 100, 0, false},
        // Uncommitted insert: owner only, unless self-deleted.
        VisibilityCase{kInf, kInf, 7, 100, 7, true},
        VisibilityCase{kInf, kInf, 7, 100, 8, false},
        VisibilityCase{kInf, kInf, 7, 100, 0, false},
        VisibilityCase{kInf, 0, 7, 100, 7, false},
        // Committed row claimed for delete: invisible to the claimer.
        VisibilityCase{10, kInf, 7, 100, 7, false},
        VisibilityCase{10, kInf, 7, 100, 8, true},
        VisibilityCase{10, kInf, 7, 100, 0, true},
        // Stale claim from a dead transaction does not hide the row.
        VisibilityCase{10, kInf, 99999, 100, 0, true},
        // Boundary: begin == snapshot is visible (inclusive).
        VisibilityCase{50, kInf, 0, 50, 0, true},
        // end == begin (insert+delete in one txn): never visible.
        VisibilityCase{50, 50, 0, 50, 0, false},
        VisibilityCase{50, 50, 0, 51, 0, false}));

// --- Env helpers -------------------------------------------------------------

TEST(NvmEnvTest, TempPathsUnique) {
  const std::string a = nvm::TempPath("x");
  const std::string b = nvm::TempPath("x");
  EXPECT_NE(a, b);
  EXPECT_FALSE(nvm::FileExists(a));
}

TEST(NvmEnvTest, FileHelpers) {
  const std::string path = nvm::TempPath("env_test");
  EXPECT_EQ(nvm::FileSize(path), 0u);
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("12345", f);
  fclose(f);
  EXPECT_TRUE(nvm::FileExists(path));
  EXPECT_EQ(nvm::FileSize(path), 5u);
  nvm::RemoveFileIfExists(path);
  EXPECT_FALSE(nvm::FileExists(path));
  nvm::RemoveFileIfExists(path);  // idempotent
}

TEST(NvmEnvTest, EnvScaleDefaults) {
  EXPECT_EQ(nvm::EnvScale("HYRISE_NV_DOES_NOT_EXIST", 2.5), 2.5);
}

}  // namespace
}  // namespace hyrise_nv
