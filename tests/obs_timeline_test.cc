#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"

namespace hyrise_nv::obs {
namespace {

TimelineConfig SmallConfig(size_t capacity) {
  TimelineConfig config;
  config.interval_ms = 1000;  // ticks are driven manually via TickOnce
  config.capacity = capacity;
  config.counters = {"tl.test.commits"};
  config.gauges = {"tl.test.gauge"};
  config.histograms = {"tl.test.latency_ns"};
  return config;
}

TEST(TimelineRecorderTest, FirstTickPrimesBaseline) {
  MetricsRegistry::Instance().ResetAll();
  MetricsRegistry::Instance().GetCounter("tl.test.commits").Add(50);
  TimelineRecorder recorder(SmallConfig(8));
  recorder.TickOnce();
  const auto samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 1u);
  // No previous point to diff against: deltas are zero even though the
  // counter was nonzero before the recorder existed.
  EXPECT_EQ(samples[0].counter_deltas[0], 0u);
  EXPECT_EQ(samples[0].elapsed_ms, 0u);
}

TEST(TimelineRecorderTest, CounterDeltasAndGaugeValuesPerTick) {
  MetricsRegistry::Instance().ResetAll();
  auto& commits = MetricsRegistry::Instance().GetCounter("tl.test.commits");
  auto& gauge = MetricsRegistry::Instance().GetGauge("tl.test.gauge");
  TimelineRecorder recorder(SmallConfig(8));
  recorder.TickOnce();
  commits.Add(7);
  gauge.Set(123);
  recorder.TickOnce();
  commits.Add(5);
  gauge.Set(-4);
  recorder.TickOnce();
  const auto samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[1].counter_deltas[0], 7u);
  EXPECT_EQ(samples[1].gauge_values[0], 123);
  EXPECT_EQ(samples[2].counter_deltas[0], 5u);
  EXPECT_EQ(samples[2].gauge_values[0], -4);
}

TEST(TimelineRecorderTest, RingWrapsKeepingNewestSamples) {
  MetricsRegistry::Instance().ResetAll();
  auto& commits = MetricsRegistry::Instance().GetCounter("tl.test.commits");
  TimelineRecorder recorder(SmallConfig(3));
  // 7 ticks into a 3-slot ring: tick i contributes delta i-1 (the first
  // tick is the baseline), so the survivors are the deltas 4, 5, 6.
  for (int i = 0; i < 7; ++i) {
    recorder.TickOnce();
    commits.Add(static_cast<uint64_t>(i + 1));
  }
  const auto samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].counter_deltas[0], 4u);
  EXPECT_EQ(samples[1].counter_deltas[0], 5u);
  EXPECT_EQ(samples[2].counter_deltas[0], 6u);
}

TEST(TimelineRecorderTest, IntervalHistogramPercentilesUseBucketDeltas) {
  MetricsRegistry::Instance().ResetAll();
  auto& hist =
      MetricsRegistry::Instance().GetHistogram("tl.test.latency_ns");
  TimelineRecorder recorder(SmallConfig(8));
  // Lifetime: many slow observations before the recorder starts. They
  // must not leak into later intervals.
  for (int i = 0; i < 1000; ++i) hist.Record(1'000'000);
  recorder.TickOnce();
  for (int i = 0; i < 100; ++i) hist.Record(1'000);
  recorder.TickOnce();
  const auto samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 2u);
  const IntervalHistStat& stat = samples[1].hist_stats[0];
  EXPECT_EQ(stat.count, 100u);
  // The interval held only ~1us observations; a lifetime percentile
  // would report ~1ms because of the 1000 earlier slow points.
  EXPECT_LT(stat.p99, 100'000.0);
  EXPECT_GT(stat.p50, 0.0);
}

TEST(TimelineRecorderTest, PhaseAnnotationsSpanIntervalBoundaries) {
  MetricsRegistry::Instance().ResetAll();
  TimelineRecorder recorder(SmallConfig(8));
  recorder.TickOnce();  // baseline

  // Begin lands in interval 1; the phase stays active through interval 2
  // (no events there) and ends in interval 3.
  recorder.Annotate("merge", PhaseKind::kBegin, 42);
  recorder.TickOnce();
  recorder.TickOnce();
  recorder.Annotate("merge", PhaseKind::kEnd, 99);
  recorder.Annotate("fault", PhaseKind::kPoint, 7);
  recorder.TickOnce();
  recorder.TickOnce();

  const auto samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_TRUE(samples[0].active_phases.empty());

  ASSERT_EQ(samples[1].events.size(), 1u);
  EXPECT_EQ(samples[1].events[0].kind, PhaseKind::kBegin);
  EXPECT_EQ(samples[1].events[0].detail, 42u);
  ASSERT_EQ(samples[1].active_phases.size(), 1u);
  EXPECT_EQ(samples[1].active_phases[0], "merge");

  // Interval 2: no events, but the phase carries over as active.
  EXPECT_TRUE(samples[2].events.empty());
  ASSERT_EQ(samples[2].active_phases.size(), 1u);
  EXPECT_EQ(samples[2].active_phases[0], "merge");

  // Interval 3: the end event and the point; merge was active at the
  // interval start, so it still counts as active here. Events keep
  // arrival order, and the point does not enter the active set.
  ASSERT_EQ(samples[3].events.size(), 2u);
  EXPECT_EQ(samples[3].events[0].phase, "merge");
  EXPECT_EQ(samples[3].events[0].kind, PhaseKind::kEnd);
  EXPECT_EQ(samples[3].events[1].phase, "fault");
  EXPECT_EQ(samples[3].events[1].kind, PhaseKind::kPoint);
  ASSERT_EQ(samples[3].active_phases.size(), 1u);
  EXPECT_EQ(samples[3].active_phases[0], "merge");

  // Interval 4: the phase is over.
  EXPECT_TRUE(samples[4].active_phases.empty());
  EXPECT_TRUE(samples[4].events.empty());
}

TEST(TimelineRecorderTest, NestedBeginsNeedMatchingEnds) {
  MetricsRegistry::Instance().ResetAll();
  TimelineRecorder recorder(SmallConfig(8));
  recorder.TickOnce();
  recorder.Annotate("checkpoint", PhaseKind::kBegin);
  recorder.Annotate("checkpoint", PhaseKind::kBegin);
  recorder.Annotate("checkpoint", PhaseKind::kEnd);
  recorder.TickOnce();
  recorder.TickOnce();
  const auto samples = recorder.Samples();
  ASSERT_EQ(samples.size(), 3u);
  // Depth 2 - 1 = 1: still active after the first end.
  ASSERT_EQ(samples[2].active_phases.size(), 1u);
  EXPECT_EQ(samples[2].active_phases[0], "checkpoint");
}

TEST(TimelineRecorderTest, JsonEscapesHostileMetricNames) {
  MetricsRegistry::Instance().ResetAll();
  TimelineConfig config;
  config.interval_ms = 1000;
  config.capacity = 4;
  config.counters = {"weird\"name\\with\nnewline"};
  TimelineRecorder recorder(std::move(config));
  recorder.TickOnce();
  recorder.Annotate("phase\"quoted", PhaseKind::kPoint);
  recorder.TickOnce();

  auto parsed = common::JsonParse(recorder.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const common::JsonValue* samples = parsed->Find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->size(), 2u);
  // The hostile name survives the escape/parse round trip intact.
  const common::JsonValue* counters = samples->at(0).Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->Find("weird\"name\\with\nnewline"), nullptr);
  const common::JsonValue* events = samples->at(1).Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ(events->at(0).Get("phase").AsString(), "phase\"quoted");
}

TEST(TimelineRecorderTest, JsonShapeMatchesContract) {
  MetricsRegistry::Instance().ResetAll();
  auto& commits = MetricsRegistry::Instance().GetCounter("tl.test.commits");
  TimelineRecorder recorder(SmallConfig(8));
  recorder.TickOnce();
  commits.Add(11);
  recorder.Annotate("merge", PhaseKind::kBegin);
  recorder.TickOnce();

  auto parsed = common::JsonParse(recorder.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("interval_ms").AsInt(), 1000);
  EXPECT_EQ(parsed->Get("capacity").AsInt(), 8);
  const common::JsonValue& sample = parsed->Get("samples").at(1);
  EXPECT_EQ(sample.Get("counters").Get("tl.test.commits").AsInt(), 11);
  const common::JsonValue* hist =
      sample.Get("histograms").Find("tl.test.latency_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_NE(hist->Find("p99"), nullptr);
  EXPECT_EQ(sample.Get("active_phases").at(0).AsString(), "merge");
  EXPECT_EQ(sample.Get("events").at(0).Get("kind").AsString(), "begin");
}

TEST(TimelineRecorderTest, CsvHasHeaderAndOneRowPerSample) {
  MetricsRegistry::Instance().ResetAll();
  TimelineRecorder recorder(SmallConfig(4));
  recorder.TickOnce();
  recorder.TickOnce();
  const std::string csv = recorder.ToCsv();
  size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u) << csv;  // header + 2 samples
  EXPECT_NE(csv.find("tl.test.commits"), std::string::npos);
  EXPECT_NE(csv.find("active_phases"), std::string::npos);
}

TEST(PhaseSpanTest, ReconstructsWindowsFromDecodedEvents) {
  BlackboxDecodeResult decoded;
  decoded.ns_per_tick = 1.0;  // ticks read directly as nanoseconds
  decoded.base_ticks = 0;
  // Synthetic decoded stream: a merge window, a fault point, and an open
  // checkpoint (crash mid-phase).
  auto event = [](uint16_t type, uint64_t t_ns, uint64_t a) {
    BlackboxDecodedEvent ev;
    ev.type = type;
    ev.ticks = t_ns;
    ev.a = a;
    ev.seqno = t_ns;
    return ev;
  };
  decoded.events = {
      event(static_cast<uint16_t>(BlackboxEventType::kMergeStart), 1'000'000,
            1),
      event(static_cast<uint16_t>(BlackboxEventType::kFaultFire), 2'000'000,
            3),
      event(static_cast<uint16_t>(BlackboxEventType::kMergeEnd), 5'000'000,
            1),
      event(static_cast<uint16_t>(BlackboxEventType::kCheckpointStart),
            8'000'000, 0),
  };
  const std::vector<PhaseSpan> spans = PhaseSpansFromBlackbox(decoded);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].phase, "merge");
  EXPECT_FALSE(spans[0].open);
  EXPECT_LT(spans[0].start_ms, spans[0].end_ms);
  EXPECT_EQ(spans[1].phase, "fault");
  EXPECT_TRUE(spans[1].point);
  EXPECT_EQ(spans[2].phase, "checkpoint");
  EXPECT_TRUE(spans[2].open);

  auto parsed = common::JsonParse(PhaseSpansJson(spans));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("spans").size(), 2u);
  EXPECT_EQ(parsed->Get("points").size(), 1u);
}

}  // namespace
}  // namespace hyrise_nv::obs
