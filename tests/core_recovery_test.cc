#include <gtest/gtest.h>

#include <filesystem>

#include "core/database.h"
#include "core/query.h"
#include "nvm/nvm_env.h"

namespace hyrise_nv::core {
namespace {

using storage::DataType;
using storage::Value;

storage::Schema KvSchema() {
  return *storage::Schema::Make(
      {{"k", DataType::kInt64}, {"v", DataType::kString}});
}

std::string MakeDataDir(const std::string& prefix) {
  const std::string dir = nvm::TempPath(prefix);
  std::filesystem::create_directories(dir);
  return dir;
}

class RecoveryModeTest : public ::testing::TestWithParam<DurabilityMode> {
 protected:
  DatabaseOptions MakeOptions() {
    DatabaseOptions options;
    options.mode = GetParam();
    options.region_size = 64 << 20;
    dir_ = MakeDataDir("recovery_test");
    options.data_dir = dir_;
    options.tracking = nvm::TrackingMode::kShadow;
    return options;
  }
  void TearDown() override {
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }
  std::string dir_;
};

TEST_P(RecoveryModeTest, CommittedSurvivesUncommittedVanishes) {
  auto options = MakeOptions();
  auto db_result = Database::Create(options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto db = std::move(db_result).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->InsertAutoCommit(
                      table, {Value(int64_t{i}),
                              Value(std::string("v") + std::to_string(i))})
                    .ok());
  }
  // One uncommitted transaction at crash time.
  auto tx = db->Begin();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(
      db->Insert(*tx, table, {Value(int64_t{999}), Value(std::string("x"))})
          .ok());

  auto recovered_result = Database::CrashAndRecover(std::move(db));
  ASSERT_TRUE(recovered_result.ok())
      << recovered_result.status().ToString();
  auto& recovered = *recovered_result;
  EXPECT_TRUE(recovered->last_recovery_report().recovered);

  auto table_result = recovered->GetTable("kv");
  ASSERT_TRUE(table_result.ok());
  storage::Table* rtable = *table_result;
  EXPECT_EQ(CountRows(rtable, recovered->ReadSnapshot(),
                      storage::kTidNone),
            20u);
  auto rows = recovered->ScanEqual(rtable, 0, Value(int64_t{999}),
                                   recovered->ReadSnapshot(),
                                   storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty()) << "uncommitted insert must not survive";

  // Recovered database accepts new work.
  ASSERT_TRUE(recovered
                  ->InsertAutoCommit(rtable, {Value(int64_t{1000}),
                                              Value(std::string("new"))})
                  .ok());
  EXPECT_EQ(CountRows(rtable, recovered->ReadSnapshot(),
                      storage::kTidNone),
            21u);
}

TEST_P(RecoveryModeTest, DeletesSurviveRecovery) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(db_result).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());

  std::vector<storage::RowLocation> locs;
  for (int i = 0; i < 10; ++i) {
    auto tx = db->Begin();
    ASSERT_TRUE(tx.ok());
    auto loc = db->Insert(
        *tx, table, {Value(int64_t{i}), Value(std::string("v"))});
    ASSERT_TRUE(loc.ok());
    locs.push_back(*loc);
    ASSERT_TRUE(db->Commit(*tx).ok());
  }
  for (int i = 0; i < 5; ++i) {
    auto tx = db->Begin();
    ASSERT_TRUE(tx.ok());
    ASSERT_TRUE(db->Delete(*tx, table, locs[i]).ok());
    ASSERT_TRUE(db->Commit(*tx).ok());
  }

  auto recovered_result = Database::CrashAndRecover(std::move(db));
  ASSERT_TRUE(recovered_result.ok());
  auto& recovered = *recovered_result;
  storage::Table* rtable = *recovered->GetTable("kv");
  EXPECT_EQ(CountRows(rtable, recovered->ReadSnapshot(),
                      storage::kTidNone),
            5u);
  auto sum = SumInt64(rtable, 0, recovered->ReadSnapshot(),
                      storage::kTidNone);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 5 + 6 + 7 + 8 + 9);
}

TEST_P(RecoveryModeTest, IndexesWorkAfterRecovery) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(db_result).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());
  ASSERT_TRUE(db->CreateIndex("kv", 0).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i % 10}),
                                             Value(std::string("v"))})
                    .ok());
  }
  // Merge so some data is in main (group-key path), then more in delta.
  ASSERT_TRUE(db->Merge("kv").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i % 10}),
                                             Value(std::string("d"))})
                    .ok());
  }

  auto recovered_result = Database::CrashAndRecover(std::move(db));
  ASSERT_TRUE(recovered_result.ok())
      << recovered_result.status().ToString();
  auto& recovered = *recovered_result;
  storage::Table* rtable = *recovered->GetTable("kv");
  auto rows = recovered->ScanEqual(rtable, 0, Value(int64_t{3}),
                                   recovered->ReadSnapshot(),
                                   storage::kTidNone);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 7u);  // 5 from main + 2 from delta
}

TEST_P(RecoveryModeTest, RepeatedCrashesStayConsistent) {
  auto db_result = Database::Create(MakeOptions());
  ASSERT_TRUE(db_result.ok());
  auto db = std::move(db_result).ValueUnsafe();
  storage::Table* table = *db->CreateTable("kv", KvSchema());

  uint64_t expected = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->InsertAutoCommit(
                        table, {Value(int64_t{round * 100 + i}),
                                Value(std::string("r"))})
                      .ok());
      ++expected;
    }
    auto recovered_result = Database::CrashAndRecover(std::move(db));
    ASSERT_TRUE(recovered_result.ok())
        << "round " << round << ": "
        << recovered_result.status().ToString();
    db = std::move(recovered_result).ValueUnsafe();
    table = *db->GetTable("kv");
    ASSERT_EQ(CountRows(table, db->ReadSnapshot(), storage::kTidNone),
              expected)
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DurableModes, RecoveryModeTest,
    ::testing::Values(DurabilityMode::kWalValue, DurabilityMode::kWalDict,
                      DurabilityMode::kNvm),
    [](const ::testing::TestParamInfo<DurabilityMode>& info) {
      std::string name = DurabilityModeName(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ProcessRestartTest, NvmCleanCloseAndReopen) {
  const std::string dir = MakeDataDir("process_restart");
  DatabaseOptions options;
  options.mode = DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  options.data_dir = dir;
  options.tracking = nvm::TrackingMode::kNone;  // file-backed, no shadow
  {
    auto db_result = Database::Create(options);
    ASSERT_TRUE(db_result.ok());
    auto& db = *db_result;
    storage::Table* table = *db->CreateTable("kv", KvSchema());
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                               Value(std::string("p"))})
                      .ok());
    }
    ASSERT_TRUE(db->Close().ok());
  }
  {
    auto db_result = Database::Open(options);
    ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
    auto& db = *db_result;
    EXPECT_TRUE(db->last_recovery_report().nvm.was_clean_shutdown);
    storage::Table* table = *db->GetTable("kv");
    EXPECT_EQ(CountRows(table, db->ReadSnapshot(), storage::kTidNone),
              25u);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(ProcessRestartTest, WalCloseAndReopen) {
  const std::string dir = MakeDataDir("process_restart_wal");
  DatabaseOptions options;
  options.mode = DurabilityMode::kWalValue;
  options.region_size = 64 << 20;
  options.data_dir = dir;
  {
    auto db_result = Database::Create(options);
    ASSERT_TRUE(db_result.ok());
    auto& db = *db_result;
    storage::Table* table = *db->CreateTable("kv", KvSchema());
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(db->InsertAutoCommit(table, {Value(int64_t{i}),
                                               Value(std::string("w"))})
                      .ok());
    }
    ASSERT_TRUE(db->Close().ok());
  }
  {
    auto db_result = Database::Open(options);
    ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
    auto& db = *db_result;
    storage::Table* table = *db->GetTable("kv");
    EXPECT_EQ(CountRows(table, db->ReadSnapshot(), storage::kTidNone),
              25u);
    EXPECT_GT(db->last_recovery_report().log.replayed_records, 0u);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace hyrise_nv::core
