// Open-loop load generator tests: the zipfian key distribution, the
// fixed-arrival schedule's coordinated-omission accounting (driven by a
// fake clock — a server stall must charge queued operations their full
// wait), and a short end-to-end run against an in-process server.

#include "net/loadgen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <vector>

#include "core/database.h"
#include "net/client.h"
#include "net/server.h"
#include "nvm/nvm_env.h"
#include "workload/open_loop.h"
#include "workload/zipf.h"

namespace hyrise_nv {
namespace {

using workload::OpenLoopSchedule;
using workload::ZipfGenerator;

// --- Zipfian distribution --------------------------------------------------

TEST(ZipfGeneratorTest, KeysStayInRange) {
  ZipfGenerator zipf(1'000, 0.99, 7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(zipf.Next(), 1'000u);
  }
}

TEST(ZipfGeneratorTest, FrequencyFollowsPowerLawSlope) {
  // Under Zipf(theta) the frequency of the rank-r key is ∝ 1/r^theta, so
  // log(freq) against log(rank) is a line of slope -theta. Estimate the
  // slope by least squares over the top ranks (populous, low-variance)
  // and check it lands near -0.99.
  constexpr uint64_t kKeys = 10'000;
  constexpr double kTheta = 0.99;
  constexpr int kSamples = 400'000;
  ZipfGenerator zipf(kKeys, kTheta, 1234);
  std::map<uint64_t, uint64_t> counts;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Next()];

  std::vector<uint64_t> by_rank;
  for (const auto& [key, count] : counts) by_rank.push_back(count);
  std::sort(by_rank.rbegin(), by_rank.rend());

  constexpr size_t kRanks = 50;
  ASSERT_GE(by_rank.size(), kRanks);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (size_t r = 0; r < kRanks; ++r) {
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(static_cast<double>(by_rank[r]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(kRanks);
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  EXPECT_NEAR(slope, -kTheta, 0.15) << "log-log slope " << slope;

  // Skew sanity: the hottest key dwarfs the uniform share.
  EXPECT_GT(by_rank.front(), (kSamples / kKeys) * 20);
}

// --- Open-loop schedule ----------------------------------------------------

TEST(OpenLoopScheduleTest, IntendedTimesAreExactAtRoundRates) {
  const OpenLoopSchedule schedule(1'000, 100);  // 1ms apart
  EXPECT_EQ(schedule.IntendedNs(0), 0u);
  EXPECT_EQ(schedule.IntendedNs(1), 1'000'000u);
  EXPECT_EQ(schedule.IntendedNs(50), 50'000'000u);
  EXPECT_EQ(schedule.total_ops(), 100u);
}

TEST(OpenLoopScheduleTest, DueCountTracksTheClock) {
  const OpenLoopSchedule schedule(1'000, 100);
  EXPECT_EQ(schedule.DueCount(0), 1u);          // op 0 due at t=0
  EXPECT_EQ(schedule.DueCount(999'999), 1u);    // op 1 not yet
  EXPECT_EQ(schedule.DueCount(1'000'000), 2u);
  EXPECT_EQ(schedule.DueCount(5'500'000), 6u);
  EXPECT_EQ(schedule.DueCount(10'000'000'000u), 100u);  // capped
}

TEST(OpenLoopScheduleTest, NoDriftOverLongSchedules) {
  // Intended times are computed, not accumulated: op 10^7 at 7777 rps
  // lands within one ns of the closed form.
  const double rate = 7'777;
  const OpenLoopSchedule schedule(rate, 20'000'000);
  const uint64_t i = 10'000'000;
  const double exact = static_cast<double>(i) * 1e9 / rate;
  EXPECT_NEAR(static_cast<double>(schedule.IntendedNs(i)), exact, 1.0);
}

TEST(OpenLoopScheduleTest, StallChargesQueuedOperationsTheirFullWait) {
  // Fake-clock reenactment of the coordinated-omission scenario: ops due
  // every 1ms, the "server" answers instantly until it stalls for 50ms,
  // then drains the queue. Every operation that came due during the
  // stall must be charged from its *intended* time — the measured
  // latencies must rise linearly through the stall window, not report
  // ~0 as a closed-loop harness would.
  const OpenLoopSchedule schedule(1'000, 100);
  const uint64_t stall_start_ns = 10'000'000;   // op 10 hits the stall
  const uint64_t stall_end_ns = 60'000'000;     // 50ms later
  std::vector<uint64_t> latency_ns(100);
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t intended = schedule.IntendedNs(i);
    uint64_t completion;
    if (intended < stall_start_ns) {
      completion = intended + 100'000;  // healthy: 100us service
    } else if (intended < stall_end_ns) {
      // Queued behind the stall; the drain is instantaneous at the end.
      completion = stall_end_ns;
    } else {
      completion = intended + 100'000;
    }
    latency_ns[i] = OpenLoopSchedule::LatencyNs(intended, completion);
  }
  EXPECT_EQ(latency_ns[5], 100'000u);
  // Op 10 (due exactly at the stall start) waits the whole stall.
  EXPECT_EQ(latency_ns[10], 50'000'000u);
  // Later arrivals wait progressively less — linear decay, never zero.
  EXPECT_EQ(latency_ns[30], 30'000'000u);
  EXPECT_EQ(latency_ns[59], 1'000'000u);
  EXPECT_EQ(latency_ns[60], 100'000u);  // first op after the stall
  // The stall is visible in the tail: ~half the stalled ops saw > 25ms.
  const auto over_25ms =
      std::count_if(latency_ns.begin(), latency_ns.end(),
                    [](uint64_t v) { return v > 25'000'000; });
  EXPECT_EQ(over_25ms, 25);
}

TEST(OpenLoopScheduleTest, LatencySaturatesAtZero) {
  EXPECT_EQ(OpenLoopSchedule::LatencyNs(5'000, 4'000), 0u);
  EXPECT_EQ(OpenLoopSchedule::LatencyNs(5'000, 5'000), 0u);
}

// --- End-to-end ------------------------------------------------------------

TEST(LoadgenEndToEndTest, ShortRunAgainstInProcessServer) {
  const std::string dir = nvm::TempPath("loadgen_e2e");
  std::filesystem::create_directories(dir);
  core::DatabaseOptions options;
  options.mode = core::DurabilityMode::kNvm;
  options.region_size = 64 << 20;
  options.data_dir = dir;
  options.tracking = nvm::TrackingMode::kNone;
  auto db_result = core::Database::Create(options);
  ASSERT_TRUE(db_result.ok()) << db_result.status().ToString();
  auto db = std::move(*db_result);
  net::ServerOptions server_options;
  server_options.num_workers = 2;
  auto server_result = net::Server::Start(db.get(), server_options);
  ASSERT_TRUE(server_result.ok()) << server_result.status().ToString();
  auto server = std::move(*server_result);

  {
    net::ClientOptions client_options;
    client_options.port = server->port();
    net::Client client(client_options);
    ASSERT_TRUE(client.Connect().ok());
    auto id = client.CreateTable("kv", {{"k", storage::DataType::kInt64},
                                        {"v", storage::DataType::kString}});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(client.CreateIndex("kv", 0).ok());
    ASSERT_TRUE(client.Begin().ok());
    for (int64_t key = 0; key < 100; ++key) {
      ASSERT_TRUE(
          client.Insert("kv", {storage::Value(key),
                               storage::Value(std::string("v"))})
              .ok());
    }
    ASSERT_TRUE(client.Commit().ok());
  }

  net::LoadgenOptions load;
  load.port = server->port();
  load.connections = 8;
  load.rate_rps = 500;
  load.duration_s = 1.0;
  load.warmup_s = 0.2;
  load.keys = 100;
  load.timeline = true;
  auto report_result = net::RunOpenLoopLoad(load);
  ASSERT_TRUE(report_result.ok()) << report_result.status().ToString();
  const net::LoadgenReport& report = *report_result;

  EXPECT_EQ(report.protocol_errors, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.abandoned, 0u);
  EXPECT_GT(report.ops_completed, 0u);
  EXPECT_GT(report.p50_us, 0.0);
  EXPECT_GE(report.p99_us, report.p50_us);
  EXPECT_GE(report.p999_us, report.p99_us);
  EXPECT_GE(report.max_us, report.p999_us);
  EXPECT_FALSE(report.timeline.empty());

  server->Drain();
  server->Wait();
  server.reset();
  ASSERT_TRUE(db->Close().ok());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(LoadgenOptionsTest, RejectsNonsense) {
  net::LoadgenOptions options;
  options.port = 1;
  options.connections = 0;
  EXPECT_FALSE(net::RunOpenLoopLoad(options).ok());
  options.connections = 1;
  options.rate_rps = 0;
  EXPECT_FALSE(net::RunOpenLoopLoad(options).ok());
}

}  // namespace
}  // namespace hyrise_nv
