#include "common/bit_util.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace hyrise_nv {
namespace {

TEST(BitsForTest, SmallValues) {
  EXPECT_EQ(BitsFor(0), 1);
  EXPECT_EQ(BitsFor(1), 1);
  EXPECT_EQ(BitsFor(2), 2);
  EXPECT_EQ(BitsFor(3), 2);
  EXPECT_EQ(BitsFor(4), 3);
  EXPECT_EQ(BitsFor(255), 8);
  EXPECT_EQ(BitsFor(256), 9);
}

TEST(BitsForTest, LargeValues) {
  EXPECT_EQ(BitsFor((uint64_t{1} << 32) - 1), 32);
  EXPECT_EQ(BitsFor(uint64_t{1} << 32), 33);
  EXPECT_EQ(BitsFor(~uint64_t{0}), 64);
}

TEST(AlignUpTest, Basics) {
  EXPECT_EQ(AlignUp(0, 64), 0u);
  EXPECT_EQ(AlignUp(1, 64), 64u);
  EXPECT_EQ(AlignUp(64, 64), 64u);
  EXPECT_EQ(AlignUp(65, 64), 128u);
  EXPECT_EQ(AlignUp(7, 8), 8u);
}

TEST(BitpackTest, RoundTripVariousWidths) {
  for (uint8_t bits = 1; bits <= 64; ++bits) {
    const size_t count = 100;
    std::vector<uint64_t> words(bitpack::WordsFor(count, bits), 0);
    const uint64_t mask =
        bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
    Rng rng(bits);
    std::vector<uint64_t> expected(count);
    for (size_t i = 0; i < count; ++i) {
      expected[i] = rng.Next() & mask;
      bitpack::Set(words.data(), i, bits, expected[i]);
    }
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(bitpack::Get(words.data(), i, bits), expected[i])
          << "bits=" << int(bits) << " i=" << i;
    }
  }
}

TEST(BitpackTest, OverwriteDoesNotDisturbNeighbours) {
  const uint8_t bits = 7;  // deliberately straddles word boundaries
  const size_t count = 64;
  std::vector<uint64_t> words(bitpack::WordsFor(count, bits), 0);
  for (size_t i = 0; i < count; ++i) {
    bitpack::Set(words.data(), i, bits, i + 1);
  }
  bitpack::Set(words.data(), 10, bits, 0x55);
  for (size_t i = 0; i < count; ++i) {
    const uint64_t want = (i == 10) ? 0x55 : i + 1;
    EXPECT_EQ(bitpack::Get(words.data(), i, bits), want) << i;
  }
}

TEST(BitpackTest, WordsForEdges) {
  EXPECT_EQ(bitpack::WordsFor(0, 13), 0u);
  EXPECT_EQ(bitpack::WordsFor(1, 1), 1u);
  EXPECT_EQ(bitpack::WordsFor(64, 1), 1u);
  EXPECT_EQ(bitpack::WordsFor(65, 1), 2u);
  EXPECT_EQ(bitpack::WordsFor(1, 64), 1u);
  EXPECT_EQ(bitpack::WordsFor(2, 64), 2u);
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace hyrise_nv
