#include "nvm/pmem_region.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"

namespace hyrise_nv::nvm {

namespace {

uint64_t LineDown(uint64_t x) { return x & ~(kCacheLineSize - 1); }
uint64_t LineUp(uint64_t x) {
  return (x + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
}

}  // namespace

PmemRegion::PmemRegion(size_t size, PmemRegionOptions options)
    : size_(size), options_(std::move(options)) {}

Result<std::unique_ptr<PmemRegion>> PmemRegion::Create(
    size_t size, const PmemRegionOptions& options) {
  if (size == 0) {
    return Status::InvalidArgument("PmemRegion size must be > 0");
  }
  auto region =
      std::unique_ptr<PmemRegion>(new PmemRegion(size, options));
  HYRISE_NV_RETURN_NOT_OK(region->Init(/*open_existing=*/false));
  return region;
}

Result<std::unique_ptr<PmemRegion>> PmemRegion::Open(
    const PmemRegionOptions& options) {
  if (options.file_path.empty()) {
    return Status::InvalidArgument("PmemRegion::Open requires a file path");
  }
  struct stat st;
  if (::stat(options.file_path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat NVM file " + options.file_path +
                           ": " + std::strerror(errno));
  }
  if (st.st_size == 0) {
    return Status::Corruption("NVM file is empty: " + options.file_path);
  }
  auto region = std::unique_ptr<PmemRegion>(
      new PmemRegion(static_cast<size_t>(st.st_size), options));
  HYRISE_NV_RETURN_NOT_OK(region->Init(/*open_existing=*/true));
  return region;
}

Status PmemRegion::Init(bool open_existing) {
  if (!options_.file_path.empty()) {
    int flags = O_RDWR;
    if (!open_existing) flags |= O_CREAT | O_TRUNC;
    fd_ = ::open(options_.file_path.c_str(), flags, 0644);
    if (fd_ < 0) {
      return Status::IOError("cannot open NVM file " + options_.file_path +
                             ": " + std::strerror(errno));
    }
    if (!open_existing &&
        ::ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
      return Status::IOError("cannot size NVM file: " +
                             std::string(std::strerror(errno)));
    }
    void* map = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd_, 0);
    if (map == MAP_FAILED) {
      return Status::IOError("mmap failed: " +
                             std::string(std::strerror(errno)));
    }
    working_ = static_cast<uint8_t*>(map);
  } else {
    void* map = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (map == MAP_FAILED) {
      return Status::OutOfMemory("anonymous mmap of " +
                                 std::to_string(size_) + " bytes failed");
    }
    working_ = static_cast<uint8_t*>(map);
  }
  mapped_ = true;
  if (options_.tracking == TrackingMode::kShadow) {
    shadow_.resize(size_);
    // The durable image starts equal to the visible image: zeros for a
    // fresh region, the file's last durable contents for an opened one.
    std::memcpy(shadow_.data(), working_, size_);
  }
  return Status::OK();
}

PmemRegion::~PmemRegion() {
  if (mapped_) {
    if (fd_ >= 0) {
      ::msync(working_, size_, MS_SYNC);
    }
    ::munmap(working_, size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

void PmemRegion::Flush(const void* addr, size_t len) {
  if (len == 0) return;
  const auto* p = static_cast<const uint8_t*>(addr);
  HYRISE_NV_CHECK(p >= working_ && p + len <= working_ + size_,
                  "flush range outside region");
  const uint64_t off = static_cast<uint64_t>(p - working_);
  const uint64_t begin = LineDown(off);
  const uint64_t end = LineUp(off + len);
  const uint64_t lines = (end - begin) / kCacheLineSize;

  stats_.flush_lines.fetch_add(lines, std::memory_order_relaxed);
  stats_.flushed_bytes.fetch_add(end - begin, std::memory_order_relaxed);

  const auto& lat = options_.latency;
  if (lat.flush_ns != 0 || lat.per_byte_ns != 0.0) {
    SpinDelayNanos(static_cast<uint64_t>(lat.flush_ns) * lines +
                   static_cast<uint64_t>(lat.per_byte_ns *
                                         static_cast<double>(end - begin)));
  }

  if (options_.tracking == TrackingMode::kShadow) {
    std::lock_guard<std::mutex> guard(mutex_);
    pending_.emplace_back(begin, end);
  }
}

void PmemRegion::Fence() {
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  if (options_.latency.fence_ns != 0) {
    SpinDelayNanos(options_.latency.fence_ns);
  }
  if (options_.tracking == TrackingMode::kShadow) {
    std::lock_guard<std::mutex> guard(mutex_);
    if (shadow_frozen_) {
      pending_.clear();
      return;
    }
    ApplyPendingLocked();
    if (fence_budget_ != UINT64_MAX && --fence_budget_ == 0) {
      shadow_frozen_ = true;
    }
  }
}

void PmemRegion::ApplyPendingLocked() {
  for (const auto& [begin, end] : pending_) {
    std::memcpy(shadow_.data() + begin, working_ + begin, end - begin);
  }
  pending_.clear();
}

void PmemRegion::Persist(const void* addr, size_t len) {
  stats_.persist_calls.fetch_add(1, std::memory_order_relaxed);
#if HYRISE_NV_METRICS_ENABLED
  // The persist barrier is the paper's headline write-path cost; its
  // latency distribution (injected model + real flush work) is the one
  // histogram worth paying two TSC reads for on this path.
  const uint64_t start_ticks = obs::FastClock::NowTicks();
#endif
  Flush(addr, len);
  Fence();
#if HYRISE_NV_METRICS_ENABLED
  static obs::Histogram& persist_latency =
      obs::MetricsRegistry::Instance().GetHistogram(
          "nvm.persist.latency_ns");
  const uint64_t latency_ns = obs::FastClock::TicksToNanos(
      static_cast<int64_t>(obs::FastClock::NowTicks() - start_ticks));
  persist_latency.Record(latency_ns);
  // Sampled (1-in-64) flight-recorder event. Self-filter on the region:
  // only persists against the region that hosts the recorder matter, and
  // the filter keeps WAL-mode DRAM regions from spamming someone else's
  // recorder. Recording never re-enters Persist (its flush path uses
  // Flush+Fence directly).
  obs::BlackboxWriter* bb = obs::BlackboxWriter::Current();
  if (bb != nullptr && &bb->region() == this) {
    thread_local uint64_t persist_sample = 0;
    if ((persist_sample++ & 63) == 0) {
      bb->Record(obs::BlackboxEventType::kPersist, OffsetOf(addr), len,
                 latency_ns, 64);
    }
  }
#endif
  if (FaultInjector::Instance().any_armed()) {
    MaybeInjectPersistFault(addr, len);
  }
}

void PmemRegion::MaybeInjectPersistFault(const void* addr, size_t len) {
  auto& injector = FaultInjector::Instance();
  uint64_t stall_ns = 0;
  if (injector.ShouldFire(FaultPoint::kNvmPersistStall, &stall_ns)) {
    SpinDelayNanos(stall_ns != 0 ? stall_ns : 100000);
  }
  if (len == 0) return;
  if (injector.ShouldFire(FaultPoint::kNvmPersistBitFlip)) {
    // Corrupt one random bit of the range that just became durable, in
    // both the working and the durable image: media corruption survives
    // crash simulation, unlike an unfenced store.
    const uint64_t off = OffsetOf(addr);
    const uint64_t bit = injector.Rand() % (len * 8);
    const uint8_t mask = static_cast<uint8_t>(1u << (bit % 8));
    working_[off + bit / 8] ^= mask;
    if (options_.tracking == TrackingMode::kShadow) {
      std::lock_guard<std::mutex> guard(mutex_);
      shadow_[off + bit / 8] ^= mask;
    }
    HYRISE_NV_LOG(kWarn) << "fault injection: flipped bit " << bit
                         << " of persisted range at offset " << off;
  }
}

void PmemRegion::AtomicPersist64(uint64_t* slot, uint64_t value) {
  HYRISE_NV_DCHECK(reinterpret_cast<uintptr_t>(slot) % 8 == 0,
                   "AtomicPersist64 requires 8-byte alignment");
  __atomic_store_n(slot, value, __ATOMIC_RELEASE);
  Persist(slot, sizeof(uint64_t));
}

Status PmemRegion::SimulateCrash() {
  if (options_.tracking != TrackingMode::kShadow) {
    return Status::NotSupported(
        "SimulateCrash requires TrackingMode::kShadow");
  }
  std::lock_guard<std::mutex> guard(mutex_);
  // Unfenced flushes are lost too: a fence never made them durable.
  pending_.clear();
  std::memcpy(working_, shadow_.data(), size_);
  fence_budget_ = UINT64_MAX;
  shadow_frozen_ = false;
  return Status::OK();
}

void PmemRegion::FreezeShadowAfterFences(uint64_t count) {
  std::lock_guard<std::mutex> guard(mutex_);
  fence_budget_ = count;
  shadow_frozen_ = (count == 0);
}

Status PmemRegion::SyncToFile() {
  if (fd_ < 0) {
    return Status::NotSupported("region has no backing file");
  }
  if (::msync(working_, size_, MS_SYNC) != 0) {
    return Status::IOError("msync failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace hyrise_nv::nvm
