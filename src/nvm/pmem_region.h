#ifndef HYRISE_NV_NVM_PMEM_REGION_H_
#define HYRISE_NV_NVM_PMEM_REGION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "nvm/latency_model.h"

namespace hyrise_nv::nvm {

/// Cache-line size assumed by the persistence model. Flushes persist whole
/// lines, exactly like CLWB on hardware.
constexpr size_t kCacheLineSize = 64;

/// How faithfully the region models power-failure semantics.
enum class TrackingMode {
  /// No shadow image. Persist calls charge latency and update statistics
  /// only. SimulateCrash is not available. Cheapest; used by throughput
  /// benchmarks.
  kNone,
  /// Full cache-line-granular shadow image. Stores land in the working
  /// image; Flush stages lines; Fence copies staged lines into the shadow;
  /// SimulateCrash restores the working image from the shadow, losing every
  /// store that was not flushed *and* fenced. Stricter than hardware (which
  /// may opportunistically write back unflushed lines), which is exactly
  /// what crash-consistency tests want: an ordering bug loses data
  /// deterministically.
  kShadow,
};

/// Options for creating or opening a PmemRegion.
struct PmemRegionOptions {
  TrackingMode tracking = TrackingMode::kShadow;
  NvmLatencyModel latency;
  /// Backing file. Empty means an anonymous in-process region (sufficient
  /// for crash *simulation*; a real process-restart demo needs a file).
  std::string file_path;
};

/// A simulated byte-addressable persistent memory region.
///
/// This is the substrate substitution for the paper's NVM hardware (see
/// DESIGN.md §2). The application stores directly into `base()[0..size)`
/// and makes data durable with Flush/Fence or the combined Persist. The
/// region tracks, at cache-line granularity, what would have survived a
/// power failure, and can simulate that failure.
///
/// Thread safety: concurrent stores to disjoint bytes are safe (plain
/// memory). Flush/Fence/Persist are internally synchronised in kShadow
/// mode; in kNone mode they are lock-free.
class PmemRegion {
 public:
  /// Creates a fresh zero-filled region of `size` bytes. If
  /// `options.file_path` is set, the file is created (truncated).
  static Result<std::unique_ptr<PmemRegion>> Create(
      size_t size, const PmemRegionOptions& options);

  /// Opens an existing file-backed region, presenting its last durable
  /// contents. This is the instant-restart path: the previous process's
  /// persisted bytes reappear at `base()`.
  static Result<std::unique_ptr<PmemRegion>> Open(
      const PmemRegionOptions& options);

  ~PmemRegion();
  HYRISE_NV_DISALLOW_COPY_AND_MOVE(PmemRegion);

  uint8_t* base() { return working_; }
  const uint8_t* base() const { return working_; }
  size_t size() const { return size_; }

  /// Stages the cache lines covering [addr, addr+len) for persistence
  /// (models CLWB). Charges flush latency per line. The lines only become
  /// durable at the next Fence.
  void Flush(const void* addr, size_t len);

  /// Drains staged lines into the durable image (models SFENCE + ADR).
  void Fence();

  /// Flush + Fence: makes [addr, addr+len) durable. Equivalent to
  /// pmem_persist.
  void Persist(const void* addr, size_t len);

  /// Convenience: persist a single trivially-copyable object in place.
  template <typename T>
  void PersistObject(const T* obj) {
    Persist(obj, sizeof(T));
  }

  /// Atomically stores an 8-byte value and persists it. The building block
  /// for publish pointers, version counters, and commit states; 8-byte
  /// aligned stores are power-fail atomic on real persistent memory.
  void AtomicPersist64(uint64_t* slot, uint64_t value);

  /// Simulates a power failure: every store that was not flushed-and-fenced
  /// disappears. Only valid in kShadow mode. After this call the working
  /// image equals the durable image and execution may continue (the usual
  /// test pattern is: crash, then run recovery). Clears any fence freeze.
  Status SimulateCrash();

  /// Crash-point injection: after `count` more fences the durable image
  /// freezes — subsequent flushes and fences no longer reach it, exactly
  /// as if power failed at that fence. Execution continues normally in
  /// the working image, so a test can run past the crash point and then
  /// call SimulateCrash() to rewind to it. Pass UINT64_MAX to disable.
  /// Only meaningful in kShadow mode.
  void FreezeShadowAfterFences(uint64_t count);

  /// Whether the durable image is currently frozen.
  bool shadow_frozen() const { return shadow_frozen_; }

  /// Writes the durable image back to the backing file (msync-equivalent).
  /// Called on clean shutdown of file-backed regions; also usable to
  /// persist a consistent cut for process-restart demos.
  Status SyncToFile();

  /// Offset of `ptr` within the region. `ptr` must point inside it.
  uint64_t OffsetOf(const void* ptr) const {
    const auto* p = static_cast<const uint8_t*>(ptr);
    HYRISE_NV_DCHECK(p >= working_ && p < working_ + size_,
                     "pointer outside region");
    return static_cast<uint64_t>(p - working_);
  }

  /// Whether `ptr` points inside the region.
  bool Contains(const void* ptr) const {
    const auto* p = static_cast<const uint8_t*>(ptr);
    return p >= working_ && p < working_ + size_;
  }

  NvmStats& stats() { return stats_; }
  const NvmLatencyModel& latency() const { return options_.latency; }
  TrackingMode tracking() const { return options_.tracking; }
  const std::string& file_path() const { return options_.file_path; }

 private:
  PmemRegion(size_t size, PmemRegionOptions options);

  Status Init(bool open_existing);

  // Copies staged line ranges working -> shadow. Caller holds mutex_.
  void ApplyPendingLocked();

  // Applies any armed persist faults (bit flip / stall) to the range just
  // made durable. Called from Persist only when the injector is armed.
  void MaybeInjectPersistFault(const void* addr, size_t len);

  size_t size_ = 0;
  PmemRegionOptions options_;
  uint8_t* working_ = nullptr;        // application-visible image
  std::vector<uint8_t> shadow_;        // durable image (kShadow only)
  std::vector<std::pair<uint64_t, uint64_t>> pending_;  // staged [begin,end) line ranges
  uint64_t fence_budget_ = UINT64_MAX;  // fences until the shadow freezes
  bool shadow_frozen_ = false;
  std::mutex mutex_;
  int fd_ = -1;
  bool mapped_ = false;
  NvmStats stats_;
};

}  // namespace hyrise_nv::nvm

#endif  // HYRISE_NV_NVM_PMEM_REGION_H_
