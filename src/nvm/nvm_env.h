#ifndef HYRISE_NV_NVM_NVM_ENV_H_
#define HYRISE_NV_NVM_NVM_ENV_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace hyrise_nv::nvm {

/// Returns a fresh path under the system temp directory with the given
/// prefix; the file does not exist yet. Used by tests, examples, and
/// benchmarks that need a simulated NVM device file or WAL directory.
std::string TempPath(const std::string& prefix);

/// Removes a file if it exists (no error if it does not).
void RemoveFileIfExists(const std::string& path);

/// Whether `path` exists.
bool FileExists(const std::string& path);

/// Size of `path` in bytes, or 0 if it does not exist.
uint64_t FileSize(const std::string& path);

/// Reads an environment variable as a positive double with a default.
/// `HYRISE_NV_SCALE` scales benchmark row counts so the same binaries run
/// in CI seconds or as a full-size sweep.
double EnvScale(const char* name, double default_value);

}  // namespace hyrise_nv::nvm

#endif  // HYRISE_NV_NVM_NVM_ENV_H_
