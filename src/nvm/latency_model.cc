#include "nvm/latency_model.h"

#include <chrono>

namespace hyrise_nv::nvm {

void SpinDelayNanos(uint64_t ns) {
  if (ns == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // Reduce pressure on the core's issue ports while spinning, the same
    // way a hardware store stall would.
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace hyrise_nv::nvm
