#include "nvm/latency_model.h"

#include <chrono>
#include <thread>

namespace hyrise_nv::nvm {

void SpinDelayNanos(uint64_t ns) {
  if (ns == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // Reduce pressure on the core's issue ports while spinning, the same
    // way a hardware store stall would.
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

void BlockingDelayNanos(uint64_t ns) {
  if (ns == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  // sleep_until would round up to scheduler granularity (huge for µs-scale
  // device latencies); yielding keeps the wait close to `ns` while still
  // letting other runnable threads use the core, like a kernel block does.
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

}  // namespace hyrise_nv::nvm
