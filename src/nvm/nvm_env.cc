#include "nvm/nvm_env.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <string>

namespace hyrise_nv::nvm {

std::string TempPath(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir = tmpdir ? tmpdir : "/tmp";
  return dir + "/" + prefix + "." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
}

void RemoveFileIfExists(const std::string& path) {
  ::unlink(path.c_str());
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

double EnvScale(const char* name, double default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  const double parsed = std::atof(value);
  return parsed > 0 ? parsed : default_value;
}

}  // namespace hyrise_nv::nvm
