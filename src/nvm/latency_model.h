#ifndef HYRISE_NV_NVM_LATENCY_MODEL_H_
#define HYRISE_NV_NVM_LATENCY_MODEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace hyrise_nv::nvm {

/// Injected latency for simulated NVM persist operations.
///
/// The paper evaluated Hyrise-NV on a DRAM-based NVM emulation platform that
/// injects additional latency on the persistence path; this model does the
/// same at the same architectural point. `flush_ns` is charged per flushed
/// cache line (modelling CLWB draining to the memory controller),
/// `fence_ns` per ordering fence (SFENCE + ADR drain), `per_byte_ns`
/// optionally models bandwidth-limited media. All-zero means DRAM-speed
/// persistence (accounting only).
struct NvmLatencyModel {
  uint32_t flush_ns = 0;
  uint32_t fence_ns = 0;
  double per_byte_ns = 0.0;

  static NvmLatencyModel DramSpeed() { return {}; }

  /// A profile resembling first-generation persistent memory: ~100 ns extra
  /// per flushed line and a measurable fence drain.
  static NvmLatencyModel DefaultNvm() { return {100, 50, 0.0}; }

  /// Scales the default profile by `factor` (used by the latency
  /// sensitivity sweep, E4).
  static NvmLatencyModel Scaled(double factor) {
    NvmLatencyModel m = DefaultNvm();
    m.flush_ns = static_cast<uint32_t>(m.flush_ns * factor);
    m.fence_ns = static_cast<uint32_t>(m.fence_ns * factor);
    return m;
  }

  bool IsZero() const {
    return flush_ns == 0 && fence_ns == 0 && per_byte_ns == 0.0;
  }
};

/// Busy-waits for approximately `ns` nanoseconds. Spin-based so the delay is
/// charged to the calling thread exactly like a stalled store would be.
void SpinDelayNanos(uint64_t ns);

/// Waits approximately `ns` nanoseconds while yielding the CPU to other
/// runnable threads. Use for *device* latencies (block-device write
/// throttle, fsync): on real hardware those block in the kernel and free
/// the core, so modelling them as spins would serialise unrelated threads
/// on machines with few cores. NVM store stalls keep SpinDelayNanos —
/// a stalled store really does occupy its core.
void BlockingDelayNanos(uint64_t ns);

/// Counters for persist-path activity. All counters are cumulative and
/// thread-safe; benchmarks snapshot-and-diff them.
struct NvmStats {
  std::atomic<uint64_t> flush_lines{0};
  std::atomic<uint64_t> fences{0};
  std::atomic<uint64_t> persist_calls{0};
  std::atomic<uint64_t> flushed_bytes{0};

  void Reset() {
    flush_lines = 0;
    fences = 0;
    persist_calls = 0;
    flushed_bytes = 0;
  }
};

}  // namespace hyrise_nv::nvm

#endif  // HYRISE_NV_NVM_LATENCY_MODEL_H_
