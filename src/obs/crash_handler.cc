#include "obs/crash_handler.h"

#include <signal.h>
#include <string.h>
#include <unistd.h>

#include <atomic>

#include "obs/blackbox.h"

namespace hyrise_nv::obs {

namespace {

std::atomic<bool> g_installed{false};

void WriteAll(const char* s) {
  ssize_t ignored = ::write(STDERR_FILENO, s, strlen(s));
  (void)ignored;
}

void FatalSignalHandler(int sig, siginfo_t* /*info*/, void* /*ctx*/) {
  // Everything here must be async-signal-safe: atomics, plain stores,
  // msync(2), write(2). No locks, no allocation, no stdio.
  if (BlackboxWriter* bb = BlackboxWriter::Current()) {
    bb->RecordFromSignal(BlackboxEventType::kCrashSignal,
                         static_cast<uint64_t>(sig));
    bb->EmergencyFlush();
  }
  char msg[128];
  const char* prefix = "hyrise-nv: fatal signal ";
  size_t n = 0;
  for (const char* p = prefix; *p != '\0' && n < sizeof(msg) - 8; ++p) {
    msg[n++] = *p;
  }
  if (sig >= 10) msg[n++] = static_cast<char>('0' + sig / 10);
  msg[n++] = static_cast<char>('0' + sig % 10);
  msg[n++] = '\n';
  msg[n] = '\0';
  WriteAll(msg);
  WriteAll(
      "hyrise-nv: flight recorder flushed; decode with "
      "'dbinspect blackbox <image>'\n");
  // Re-raise with the default disposition (SA_RESETHAND restored it) so
  // the process reports the original signal.
  raise(sig);
}

}  // namespace

void InstallCrashHandler() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_sigaction = FatalSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_SIGINFO | SA_RESETHAND | SA_NODEFER;
  const int signals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGILL, SIGFPE};
  for (int sig : signals) {
    sigaction(sig, &action, nullptr);
  }
}

bool CrashHandlerInstalled() {
  return g_installed.load(std::memory_order_relaxed);
}

}  // namespace hyrise_nv::obs
