#ifndef HYRISE_NV_OBS_TIMELINE_H_
#define HYRISE_NV_OBS_TIMELINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"

namespace hyrise_nv::obs {

/// Time-dimension observability (DESIGN.md §15): where MetricsSnapshot
/// answers "what are the counters now" and the request histograms answer
/// "where did this request's latency go", the TimelineRecorder answers
/// "how did throughput and latency evolve across that merge + checkpoint
/// + recovery cycle". It generalizes HistorySampler: a configurable
/// metric set (counter deltas, gauge values, per-interval histogram
/// percentiles from bucket diffs) sampled into a bounded ring, with
/// phase annotations spliced in from the flight recorder so every sample
/// knows which maintenance phase it landed in.

/// Which metrics each sample captures, by registry name.
struct TimelineConfig {
  uint64_t interval_ms = 1000;
  size_t capacity = 600;  // ring slots (~10 min at 1 s resolution)
  /// Monotonic counters, recorded as per-interval deltas (rates).
  std::vector<std::string> counters;
  /// Gauges, recorded as absolute values at the tick.
  std::vector<std::string> gauges;
  /// Histograms, recorded as per-interval percentile stats computed from
  /// the bucket-count delta against the previous tick (so a sample's p99
  /// covers only that interval, not the process lifetime).
  std::vector<std::string> histograms;

  /// The engine's standard temporal metric set: commit/abort/fsync/
  /// persist rates, request rate, heap/RSS/NVM-region gauges, recovery
  /// backlog, and commit/fsync/request latency percentiles.
  static TimelineConfig Default();
};

/// A phase transition or point event attached to a sample.
enum class PhaseKind : uint8_t { kBegin, kEnd, kPoint };

const char* PhaseKindName(PhaseKind kind);

struct PhaseAnnotation {
  std::string phase;  // "merge", "checkpoint", "recovery_drain", ...
  PhaseKind kind = PhaseKind::kPoint;
  uint64_t order = 0;   // monotonic arrival stamp (sort key)
  uint64_t detail = 0;  // event payload (table id, duration ns, ...)
};

/// Per-interval percentile stats of one configured histogram.
struct IntervalHistStat {
  uint64_t count = 0;  // observations within the interval
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
  uint64_t max = 0;  // upper bound of the highest non-empty delta bucket
};

/// One timeline point. The metric vectors run parallel to the config's
/// name vectors.
struct TimelineSample {
  uint64_t epoch_ms = 0;    // wall clock at capture
  uint64_t elapsed_ms = 0;  // actual time covered (0 for the first tick)
  std::vector<uint64_t> counter_deltas;
  std::vector<int64_t> gauge_values;
  std::vector<IntervalHistStat> hist_stats;
  /// Phase transitions that landed in this interval, in arrival order.
  std::vector<PhaseAnnotation> events;
  /// Phases active at any point during the interval (sorted, deduped).
  std::vector<std::string> active_phases;
};

/// Background timeline historian. Start() runs a sampler thread at
/// interval_ms; TickOnce() captures synchronously (tests, benches, and a
/// final point). Phase annotations arrive two ways: spliced from new
/// flight-recorder events (merge start/end, checkpoint, recovery drain,
/// degraded flips, fault fires) at each tick, and directly via
/// Annotate() for processes without a recorder.
class TimelineRecorder {
 public:
  explicit TimelineRecorder(TimelineConfig config);
  ~TimelineRecorder();

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(TimelineRecorder);

  void Start();
  void Stop();
  bool running() const { return running_; }

  /// Runs before every capture while holding no recorder locks — the
  /// owner uses it to sync passively-maintained metrics (RSS, NVM region
  /// stats, WAL totals) into the registry so gauges are live.
  void SetPreSampleHook(std::function<void()> hook);

  void TickOnce();

  /// Records a phase annotation directly (no flight recorder needed).
  /// Attached to the next captured sample.
  void Annotate(std::string phase, PhaseKind kind, uint64_t detail = 0);

  std::vector<TimelineSample> Samples() const;
  const TimelineConfig& config() const { return config_; }

  /// {"interval_ms":..,"capacity":..,"samples":[{..,"counters":{..},
  /// "gauges":{..},"histograms":{..},"active_phases":[..],
  /// "events":[..]},..]} oldest first. Metric names are JSON-escaped.
  std::string ToJson() const;

  /// RFC-4180-style CSV: one row per sample, one column per metric
  /// (histograms expand to .count/.p50/.p99/.p999), plus active_phases
  /// and events columns (';'-joined).
  std::string ToCsv() const;

 private:
  struct HistState {
    Histogram* histogram = nullptr;
    HistogramData prev;
    bool valid = false;
  };

  void Loop();
  void Capture();
  /// Decodes flight-recorder events newer than the last splice into
  /// pending annotations. The first call only primes the phase state
  /// from current-session events (phases that began before the recorder
  /// started still show as active) without emitting annotations.
  void SpliceBlackbox();
  void ApplyToActiveState(const PhaseAnnotation& ann);

  const TimelineConfig config_;
  std::function<void()> pre_sample_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;

  // Cached metric references (registry lookups once, at construction).
  std::vector<Counter*> counters_;
  std::vector<Gauge*> gauges_;
  std::vector<HistState> hists_;
  std::vector<uint64_t> counter_baseline_;
  bool baseline_valid_ = false;
  uint64_t last_capture_ms_ = 0;

  // Phase state.
  std::vector<PhaseAnnotation> pending_;
  std::map<std::string, int> active_depth_;
  uint64_t next_order_ = 1;
  uint64_t last_bb_seqno_ = 0;
  bool bb_primed_ = false;

  std::vector<TimelineSample> ring_;
  size_t next_ = 0;
  size_t count_ = 0;
};

/// Maps a flight-recorder event to a phase annotation; false for events
/// that are not phase-relevant (txn begin/commit, persists, ...).
bool PhaseFromBlackboxEvent(const BlackboxDecodedEvent& ev,
                            PhaseAnnotation* out);

// --- Offline phase timeline (dbinspect timeline) --------------------------

/// A maintenance window reconstructed from a decoded flight recorder.
struct PhaseSpan {
  std::string phase;
  double start_ms = 0;  // relative to the recorder's last attach
  double end_ms = 0;    // == start_ms for points; meaningless when open
  bool open = false;    // no end event decoded (crash mid-phase)
  bool point = false;   // instantaneous event, not a window
  uint64_t detail = 0;
};

/// Reconstructs phase spans (merge/checkpoint/recovery windows) and
/// point events (faults, degraded flips, crash signals) from a decoded
/// recorder, oldest first. Begin events without an end decode as open
/// spans; unmatched ends are dropped.
std::vector<PhaseSpan> PhaseSpansFromBlackbox(
    const BlackboxDecodeResult& decoded);

/// {"spans":[{"phase":..,"start_ms":..,"end_ms":..,"open":..},..],
///  "points":[{"phase":..,"at_ms":..,"detail":..},..]}
std::string PhaseSpansJson(const std::vector<PhaseSpan>& spans);

/// Human-readable span table for CLI output.
std::string RenderPhaseSpans(const std::vector<PhaseSpan>& spans);

}  // namespace hyrise_nv::obs

#endif  // HYRISE_NV_OBS_TIMELINE_H_
