#ifndef HYRISE_NV_OBS_TRACE_H_
#define HYRISE_NV_OBS_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/stopwatch.h"

namespace hyrise_nv::obs {

/// One node of a recovery trace: a named, timed span with nested
/// children. Recovery paths build these via SpanTracer; callers render
/// them as an indented text tree or JSON, or Find() individual phases.
struct SpanNode {
  std::string name;
  double seconds = 0;
  std::vector<SpanNode> children;

  bool empty() const { return name.empty() && children.empty(); }

  /// Depth-first search for a (grand)child span by name; also matches
  /// this node. Returns nullptr when absent.
  const SpanNode* Find(std::string_view span_name) const;

  /// {"name":..., "seconds":..., "children":[...]}
  std::string ToJson() const;

  /// Indented tree, one span per line with milliseconds.
  std::string Render() const;
};

/// Builds a SpanNode tree from nested Begin/End calls. Single-threaded by
/// design — recovery is sequential; the tracer is a cheap structured
/// replacement for the ad-hoc Stopwatch variables it displaced.
class SpanTracer {
 public:
  explicit SpanTracer(std::string root_name);
  HYRISE_NV_DISALLOW_COPY_AND_MOVE(SpanTracer);

  /// Opens a child span of the innermost open span.
  void Begin(std::string name);

  /// Closes the innermost open span and returns its duration in seconds.
  double End();

  /// Attaches an externally built subtree (e.g. the trace returned inside
  /// a lower layer's report) as a completed child of the innermost open
  /// span. Its recorded timings are preserved.
  void Attach(SpanNode subtree);

  /// RAII helper for spans that end with scope exit.
  class Scope {
   public:
    explicit Scope(SpanTracer& tracer, std::string name) : tracer_(&tracer) {
      tracer_->Begin(std::move(name));
    }
    ~Scope() {
      if (tracer_ != nullptr) tracer_->End();
    }
    Scope(Scope&& other) noexcept : tracer_(other.tracer_) {
      other.tracer_ = nullptr;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;

   private:
    SpanTracer* tracer_;
  };

  Scope Span(std::string name) { return Scope(*this, std::move(name)); }

  /// Closes every open span (including the root) and returns the tree.
  /// The tracer is exhausted afterwards.
  SpanNode Finish();

 private:
  struct Frame {
    SpanNode node;
    Stopwatch watch;
  };
  std::vector<Frame> stack_;
};

}  // namespace hyrise_nv::obs

#endif  // HYRISE_NV_OBS_TRACE_H_
