#ifndef HYRISE_NV_OBS_REQUEST_STATS_H_
#define HYRISE_NV_OBS_REQUEST_STATS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace hyrise_nv::obs {

/// Stages of a served request, in wall-clock order. The stages tile the
/// interval from frame-read-complete to response-write-flushed, so per
/// request sum(stage_ns) ≈ total_ns (the execute stage excludes the
/// wal_sync/commit_publish portions that are broken out separately):
///
///   parse          frame complete → opcode decoded, CRC verified
///   dispatch       admission control: in-flight cap, drain/warming shed
///   execute        engine work (for commits: minus the two stages below)
///   wal_sync       commit durability hook: WAL append + group fsync
///   commit_publish ordered watermark publish incl. queue wait
///   write_flush    response queued → last byte accepted by the socket
enum class RequestStage : uint8_t {
  kParse = 0,
  kDispatch = 1,
  kExecute = 2,
  kWalSync = 3,
  kCommitPublish = 4,
  kWriteFlush = 5,
};

inline constexpr size_t kNumRequestStages = 6;

/// Stable short name used in metric names ("net.op.<op>.stage.<stage>.
/// latency_ns") and blackbox decode — never rename, dashboards key on it.
const char* RequestStageName(RequestStage stage);
const char* RequestStageName(size_t stage_index);

/// Per-request stage attribution, filled in by the server as a request
/// moves through its pipeline.
struct StageBreakdown {
  uint64_t ns[kNumRequestStages] = {};

  uint64_t& operator[](RequestStage stage) {
    return ns[static_cast<size_t>(stage)];
  }
  uint64_t operator[](RequestStage stage) const {
    return ns[static_cast<size_t>(stage)];
  }

  uint64_t Sum() const {
    uint64_t total = 0;
    for (const uint64_t v : ns) total += v;
    return total;
  }

  /// The stage that consumed the most time — the "blame" a slow-request
  /// event carries. Ties resolve to the earliest stage.
  RequestStage Dominant() const {
    size_t best = 0;
    for (size_t i = 1; i < kNumRequestStages; ++i) {
      if (ns[i] > ns[best]) best = i;
    }
    return static_cast<RequestStage>(best);
  }
};

/// One captured slow request, retained in memory for the stats surface.
/// The matching kSlowRequest blackbox event is what survives kill -9.
struct SlowRequestRecord {
  uint64_t seq = 0;       // monotonically increasing capture number
  uint8_t opcode = 0;     // wire opcode byte
  uint64_t total_ns = 0;  // frame-read-complete → response flushed
  StageBreakdown stages;
};

/// Fixed-capacity ring of the most recent slow requests. Mutex-guarded:
/// captures are rare by construction (they cross a latency threshold),
/// so contention is not a concern.
class SlowRequestRing {
 public:
  explicit SlowRequestRing(size_t capacity = 64) : capacity_(capacity) {}

  void Push(uint8_t opcode, uint64_t total_ns, const StageBreakdown& stages) {
    std::lock_guard<std::mutex> guard(mutex_);
    SlowRequestRecord rec;
    rec.seq = ++total_;
    rec.opcode = opcode;
    rec.total_ns = total_ns;
    rec.stages = stages;
    ring_.push_back(rec);
    if (ring_.size() > capacity_) ring_.pop_front();
  }

  /// Oldest-first copy of the retained records.
  std::vector<SlowRequestRecord> Snapshot() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return {ring_.begin(), ring_.end()};
  }

  /// Lifetime capture count (not capped by the ring capacity).
  uint64_t total() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return total_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<SlowRequestRecord> ring_;
  uint64_t total_ = 0;
};

}  // namespace hyrise_nv::obs

#endif  // HYRISE_NV_OBS_REQUEST_STATS_H_
