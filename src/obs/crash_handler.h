#ifndef HYRISE_NV_OBS_CRASH_HANDLER_H_
#define HYRISE_NV_OBS_CRASH_HANDLER_H_

namespace hyrise_nv::obs {

/// Installs process-wide fatal-signal handlers (SIGSEGV, SIGBUS, SIGABRT,
/// SIGILL, SIGFPE) that stamp a kCrashSignal event into the current
/// flight recorder, msync its pages (async-signal-safe best effort), and
/// write a short crash report to stderr before re-raising with the
/// default disposition — the process still dies with the right signal,
/// but the image carries the forensics. Idempotent. SIGKILL needs no
/// handler: file-backed plain stores already survive it.
void InstallCrashHandler();

bool CrashHandlerInstalled();

}  // namespace hyrise_nv::obs

#endif  // HYRISE_NV_OBS_CRASH_HANDLER_H_
