#ifndef HYRISE_NV_OBS_HISTORY_H_
#define HYRISE_NV_OBS_HISTORY_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace hyrise_nv::obs {

/// One time-series point: per-interval deltas of the hot counters plus a
/// couple of point-in-time values, captured from the metrics registry.
struct HistorySample {
  uint64_t epoch_ms = 0;  // wall clock at capture
  uint64_t commits = 0;   // txn.commit.count delta
  uint64_t aborts = 0;    // txn.abort.count delta
  uint64_t persists = 0;  // nvm.persist.count delta
  uint64_t wal_syncs = 0; // wal.fsync.count delta
  uint64_t merges = 0;    // merge.count delta
  uint64_t fault_fires = 0;
  int64_t heap_used_bytes = 0;    // gauge, absolute
  double commit_p99_ns = 0;       // cumulative histogram p99 at capture
  double sampled_txn_total_ns = 0;  // txn.trace.total_ns p99 at capture
};

/// Background metrics historian: every `interval_ms` it diffs the counter
/// values against the previous tick and appends a HistorySample to an
/// in-memory ring of `capacity` points (~N minutes at 1 s resolution).
/// Each tick also flushes the current flight recorder, bounding how many
/// events the strict shadow crash model can lose.
class HistorySampler {
 public:
  HistorySampler(uint64_t interval_ms, size_t capacity);
  ~HistorySampler();

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(HistorySampler);

  void Start();
  void Stop();
  bool running() const { return running_; }

  /// Captures one sample synchronously (used by tests and by Stop() for a
  /// final point; safe to call whether or not the thread runs).
  void TickOnce();

  /// Oldest-to-newest copy of the ring.
  std::vector<HistorySample> Samples() const;

  /// {"interval_ms":N,"capacity":N,"samples":[{...},...]} oldest first.
  std::string ToJson() const;

 private:
  void Loop();
  void Capture();

  const uint64_t interval_ms_;
  const size_t capacity_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;

  // Previous-tick counter values for delta computation.
  struct Baseline {
    uint64_t commits = 0, aborts = 0, persists = 0, wal_syncs = 0,
             merges = 0, fault_fires = 0;
    bool valid = false;
  };
  Baseline baseline_;

  std::vector<HistorySample> ring_;  // capacity_ slots, ring buffer
  size_t next_ = 0;
  size_t count_ = 0;
};

}  // namespace hyrise_nv::obs

#endif  // HYRISE_NV_OBS_HISTORY_H_
