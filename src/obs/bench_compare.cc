#include "obs/bench_compare.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace hyrise_nv::obs {

namespace {

using common::JsonParse;
using common::JsonValue;

constexpr std::string_view kBenchJsonPrefix = "BENCH_JSON ";

bool ContainsToken(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatNumber(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

}  // namespace

bool IsAxisKey(std::string_view key) {
  // Numeric configuration dimensions that identify a record rather than
  // measure it. Bench binaries use these names consistently (see
  // bench/*.cc); anything else numeric is treated as a measurement.
  static const std::string_view kAxes[] = {
      "threads",  "connections", "clients",        "rows",
      "keys",     "scale",       "batch",          "phase",
      "second",   "round",       "latency_factor", "iteration",
      "value_size", "run",       "delta_rows",     "delete_fraction",
      "shards",   "depth",       "protocol",
  };
  for (std::string_view axis : kAxes) {
    if (key == axis) return true;
  }
  return false;
}

std::vector<std::string> ExtractBenchJsonLines(std::string_view output) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos <= output.size()) {
    size_t eol = output.find('\n', pos);
    std::string_view line = output.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    // The marker is normally at column 0 but bench wrappers sometimes
    // prefix a timestamp, so search anywhere in the line.
    size_t marker = line.find(kBenchJsonPrefix);
    if (marker != std::string_view::npos) {
      std::string_view payload = line.substr(marker + kBenchJsonPrefix.size());
      while (!payload.empty() &&
             (payload.back() == '\r' || payload.back() == ' ')) {
        payload.remove_suffix(1);
      }
      if (!payload.empty()) lines.emplace_back(payload);
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return lines;
}

Result<BenchRecord> ParseBenchRecord(std::string_view json_line) {
  Result<JsonValue> parsed = JsonParse(json_line);
  if (!parsed.ok()) return parsed.status();
  JsonValue& obj = *parsed;
  if (!obj.is_object()) {
    return Status::InvalidArgument("BENCH_JSON payload is not an object");
  }
  const JsonValue* bench = obj.Find("bench");
  if (bench == nullptr || !bench->is_string()) {
    return Status::InvalidArgument(
        "BENCH_JSON object lacks a string \"bench\" field");
  }

  BenchRecord rec;
  rec.key = "bench=" + bench->AsString();
  // String fields and numeric axes extend the identity in member order,
  // so re-serialized captures produce identical keys.
  for (const auto& [name, value] : obj.members()) {
    if (name == "bench") continue;
    if (value.is_string()) {
      rec.key += " " + name + "=" + value.AsString();
    } else if (value.is_number() && IsAxisKey(name)) {
      rec.key += " " + name + "=" + FormatNumber(value.AsDouble());
    } else if (value.is_number()) {
      rec.metrics.emplace_back(name, value.AsDouble());
    }
    // Bools / arrays / nested objects are carried in `raw` but not
    // compared.
  }
  rec.raw = std::move(obj);
  return rec;
}

Result<std::vector<BenchRecord>> ParseBenchInput(std::string_view text) {
  std::vector<std::string> lines;

  // Capture-file form first: a single JSON object with a "records"
  // array (as written by SerializeBenchRun).
  Result<JsonValue> as_doc = JsonParse(text);
  if (as_doc.ok() && as_doc->is_object() &&
      as_doc->Find("records") != nullptr) {
    const JsonValue* records = as_doc->Find("records");
    if (!records->is_array()) {
      return Status::InvalidArgument("capture file \"records\" is not an array");
    }
    for (const JsonValue& item : records->items()) {
      lines.push_back(item.Dump());
    }
  } else {
    lines = ExtractBenchJsonLines(text);
    if (lines.empty()) {
      return Status::InvalidArgument(
          "input is neither a capture file nor output containing "
          "BENCH_JSON lines");
    }
  }

  std::vector<BenchRecord> records;
  for (const std::string& line : lines) {
    Result<BenchRecord> rec = ParseBenchRecord(line);
    if (!rec.ok()) return rec.status();
    // Benches that loop re-emit a configuration; the last emission is
    // the final state and wins.
    auto it = std::find_if(
        records.begin(), records.end(),
        [&](const BenchRecord& r) { return r.key == rec->key; });
    if (it != records.end()) {
      *it = std::move(*rec);
    } else {
      records.push_back(std::move(*rec));
    }
  }
  return records;
}

std::string SerializeBenchRun(
    const std::vector<BenchRecord>& records,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  std::string out = "{\"meta\":{";
  bool first = true;
  for (const auto& [key, value] : meta) {
    if (!first) out += ',';
    first = false;
    out += common::JsonQuote(key);
    out += ':';
    out += common::JsonQuote(value);
  }
  out += "},\"records\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ',';
    out += records[i].raw.Dump();
  }
  out += "]}";
  return out;
}

MetricDirection DirectionForMetric(std::string_view name) {
  // Lower-is-better checks run first so "commit_latency_us_p99" and
  // "downtime_seconds" classify by the latency suffix even when a
  // rate-ish token also appears.
  if (ContainsToken(name, "latency") || ContainsToken(name, "downtime") ||
      ContainsToken(name, "p50") || ContainsToken(name, "p95") ||
      ContainsToken(name, "p99") || ContainsToken(name, "stall") ||
      ContainsToken(name, "errors") || ContainsToken(name, "aborts") ||
      ContainsToken(name, "bytes") || EndsWith(name, "_us") ||
      EndsWith(name, "_ms") || EndsWith(name, "_ns") ||
      EndsWith(name, "_s") || EndsWith(name, "_seconds") ||
      ContainsToken(name, "duration")) {
    return MetricDirection::kLowerIsBetter;
  }
  if (ContainsToken(name, "per_sec") || ContainsToken(name, "tput") ||
      ContainsToken(name, "throughput") || ContainsToken(name, "ops") ||
      ContainsToken(name, "rate") || ContainsToken(name, "per_second") ||
      ContainsToken(name, "speedup") || EndsWith(name, "_rps")) {
    return MetricDirection::kHigherIsBetter;
  }
  return MetricDirection::kNeutral;
}

const char* MetricDirectionName(MetricDirection direction) {
  switch (direction) {
    case MetricDirection::kHigherIsBetter:
      return "higher-better";
    case MetricDirection::kLowerIsBetter:
      return "lower-better";
    case MetricDirection::kNeutral:
      return "neutral";
  }
  return "?";
}

const char* DiffVerdictName(DiffVerdict verdict) {
  switch (verdict) {
    case DiffVerdict::kWithinNoise:
      return "within-noise";
    case DiffVerdict::kImproved:
      return "improved";
    case DiffVerdict::kRegressed:
      return "REGRESSED";
    case DiffVerdict::kMissingMetric:
      return "MISSING-METRIC";
    case DiffVerdict::kMissingRecord:
      return "MISSING-RECORD";
    case DiffVerdict::kNew:
      return "new";
    case DiffVerdict::kNeutral:
      return "neutral";
  }
  return "?";
}

namespace {

/// "bench=e3 engine=nvm threads=8" -> "e3"; used to resolve
/// "bench/metric" threshold overrides.
std::string_view BenchNameFromKey(std::string_view key) {
  if (key.substr(0, 6) != "bench=") return key;
  key.remove_prefix(6);
  size_t space = key.find(' ');
  return space == std::string_view::npos ? key : key.substr(0, space);
}

double ThresholdFor(const CompareOptions& options, std::string_view key,
                    std::string_view metric) {
  std::string scoped(BenchNameFromKey(key));
  scoped += '/';
  scoped += metric;
  auto it = options.metric_thresholds.find(scoped);
  if (it != options.metric_thresholds.end()) return it->second;
  it = options.metric_thresholds.find(std::string(metric));
  if (it != options.metric_thresholds.end()) return it->second;
  return options.default_threshold_pct;
}

}  // namespace

DiffReport CompareBenchRuns(const std::vector<BenchRecord>& base,
                            const std::vector<BenchRecord>& current,
                            const CompareOptions& options) {
  DiffReport report;

  auto find_current = [&](const std::string& key) -> const BenchRecord* {
    for (const BenchRecord& rec : current) {
      if (rec.key == key) return &rec;
    }
    return nullptr;
  };

  for (const BenchRecord& b : base) {
    const BenchRecord* c = find_current(b.key);
    if (c == nullptr) {
      MetricDiff d;
      d.key = b.key;
      d.verdict = DiffVerdict::kMissingRecord;
      report.missing++;
      report.diffs.push_back(std::move(d));
      continue;
    }
    for (const auto& [metric, base_value] : b.metrics) {
      MetricDiff d;
      d.key = b.key;
      d.metric = metric;
      d.base = base_value;
      d.direction = DirectionForMetric(metric);
      d.threshold_pct = ThresholdFor(options, b.key, metric);

      const double* cur_value = nullptr;
      for (const auto& [name, value] : c->metrics) {
        if (name == metric) {
          cur_value = &value;
          break;
        }
      }
      if (cur_value == nullptr) {
        d.verdict = DiffVerdict::kMissingMetric;
        report.missing++;
        report.diffs.push_back(std::move(d));
        continue;
      }
      d.current = *cur_value;

      if (base_value == 0.0) {
        // No baseline magnitude to compare against; informational only.
        d.change_pct = d.current == 0.0 ? 0.0 : 100.0;
        d.verdict = d.current == 0.0 ? DiffVerdict::kWithinNoise
                                     : DiffVerdict::kNeutral;
        if (d.verdict == DiffVerdict::kWithinNoise) report.within_noise++;
        report.diffs.push_back(std::move(d));
        continue;
      }
      d.change_pct = (d.current - base_value) / base_value * 100.0;

      if (d.direction == MetricDirection::kNeutral) {
        d.verdict = DiffVerdict::kNeutral;
      } else {
        bool worse = d.direction == MetricDirection::kHigherIsBetter
                         ? d.change_pct < -d.threshold_pct
                         : d.change_pct > d.threshold_pct;
        bool better = d.direction == MetricDirection::kHigherIsBetter
                          ? d.change_pct > d.threshold_pct
                          : d.change_pct < -d.threshold_pct;
        if (worse) {
          d.verdict = DiffVerdict::kRegressed;
          report.regressions++;
        } else if (better) {
          d.verdict = DiffVerdict::kImproved;
          report.improvements++;
        } else {
          d.verdict = DiffVerdict::kWithinNoise;
          report.within_noise++;
        }
      }
      report.diffs.push_back(std::move(d));
    }
    // Metrics only in the current run: informational.
    for (const auto& [metric, value] : c->metrics) {
      bool in_base = false;
      for (const auto& [name, unused] : b.metrics) {
        if (name == metric) {
          in_base = true;
          break;
        }
      }
      if (in_base) continue;
      MetricDiff d;
      d.key = b.key;
      d.metric = metric;
      d.current = value;
      d.verdict = DiffVerdict::kNew;
      report.diffs.push_back(std::move(d));
    }
  }

  // Records only in the current run: informational.
  for (const BenchRecord& c : current) {
    bool in_base = false;
    for (const BenchRecord& b : base) {
      if (b.key == c.key) {
        in_base = true;
        break;
      }
    }
    if (in_base) continue;
    MetricDiff d;
    d.key = c.key;
    d.verdict = DiffVerdict::kNew;
    report.diffs.push_back(std::move(d));
  }

  return report;
}

std::string RenderDiff(const DiffReport& report, bool show_noise) {
  std::string out;
  char buf[512];
  for (const MetricDiff& d : report.diffs) {
    bool noise = d.verdict == DiffVerdict::kWithinNoise ||
                 d.verdict == DiffVerdict::kNeutral ||
                 d.verdict == DiffVerdict::kNew;
    if (noise && !show_noise) continue;
    if (d.metric.empty()) {
      std::snprintf(buf, sizeof(buf), "%-14s  %s\n", DiffVerdictName(d.verdict),
                    d.key.c_str());
      out += buf;
      continue;
    }
    if (d.verdict == DiffVerdict::kMissingMetric) {
      std::snprintf(buf, sizeof(buf), "%-14s  %s  %s (base %s)\n",
                    DiffVerdictName(d.verdict), d.key.c_str(),
                    d.metric.c_str(), FormatNumber(d.base).c_str());
      out += buf;
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "%-14s  %s  %s: %s -> %s (%+.1f%%, threshold %.1f%%, %s)\n",
                  DiffVerdictName(d.verdict), d.key.c_str(), d.metric.c_str(),
                  FormatNumber(d.base).c_str(), FormatNumber(d.current).c_str(),
                  d.change_pct, d.threshold_pct,
                  MetricDirectionName(d.direction));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "summary: %zu compared, %zu regressed, %zu improved, "
                "%zu missing, %zu within noise -> %s\n",
                report.diffs.size(), report.regressions, report.improvements,
                report.missing, report.within_noise,
                report.failed() ? "FAIL" : "no regression");
  out += buf;
  return out;
}

}  // namespace hyrise_nv::obs
