#ifndef HYRISE_NV_OBS_BENCH_COMPARE_H_
#define HYRISE_NV_OBS_BENCH_COMPARE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace hyrise_nv::obs {

/// Bench-regression comparison (DESIGN.md §15.3): every bench binary
/// prints one `BENCH_JSON {...}` line per measured configuration; this
/// library captures those streams into structured result files and diffs
/// two captures with per-metric noise thresholds, direction-aware
/// (higher-is-better throughput vs lower-is-better latency). The
/// benchdiff tool and the CI bench-regression gate are thin shells over
/// these functions.

/// One BENCH_JSON line: the raw object plus its derived identity and
/// numeric measurements.
struct BenchRecord {
  common::JsonValue raw;
  /// Pairing identity across runs: the "bench" field, every string
  /// field, and the numeric *axis* fields (configuration dimensions
  /// like threads/connections/rows), formatted "bench=e3 engine=nvm
  /// threads=8".
  std::string key;
  /// Numeric non-axis fields — the measurements being compared.
  std::vector<std::pair<std::string, double>> metrics;
};

/// Numeric fields that are configuration axes, not measurements.
bool IsAxisKey(std::string_view key);

/// Extracts the JSON payloads of `BENCH_JSON {...}` lines from raw
/// bench output (other lines are ignored).
std::vector<std::string> ExtractBenchJsonLines(std::string_view output);

/// Parses one BENCH_JSON object into a record. Fails on malformed JSON
/// or a missing/non-string "bench" field.
Result<BenchRecord> ParseBenchRecord(std::string_view json_line);

/// Parses bench input in either accepted form: a capture file written
/// by SerializeBenchRun ({"meta":...,"records":[...]}), or raw bench
/// output containing BENCH_JSON lines. Duplicate identities keep the
/// last record (benches that loop emit the final state).
Result<std::vector<BenchRecord>> ParseBenchInput(std::string_view text);

/// Capture file: {"meta":{...},"records":[raw objects...]}.
std::string SerializeBenchRun(
    const std::vector<BenchRecord>& records,
    const std::vector<std::pair<std::string, std::string>>& meta);

// --- Comparison -----------------------------------------------------------

enum class MetricDirection {
  kHigherIsBetter,  // throughput, rates
  kLowerIsBetter,   // latency, durations, error counts, bytes
  kNeutral,         // informational; never regresses
};

/// Infers the direction from the metric name: *_per_sec/tput/ops/rate
/// are higher-is-better; latency/percentile/_us/_ms/_ns/_s/seconds/
/// bytes/errors/downtime are lower-is-better; everything else neutral.
MetricDirection DirectionForMetric(std::string_view name);

const char* MetricDirectionName(MetricDirection direction);

struct CompareOptions {
  /// Relative change (percent) below which a delta is noise.
  double default_threshold_pct = 10.0;
  /// Per-metric overrides, keyed by metric name (applies to all
  /// benches) or "bench/metric" (that bench only; wins over the bare
  /// name). A threshold >= 1e9 effectively marks the metric neutral.
  std::map<std::string, double> metric_thresholds;
};

enum class DiffVerdict {
  kWithinNoise,
  kImproved,
  kRegressed,
  kMissingMetric,  // metric present in base, absent in current
  kMissingRecord,  // whole record absent in current
  kNew,            // metric/record only in current (informational)
  kNeutral,
};

const char* DiffVerdictName(DiffVerdict verdict);

struct MetricDiff {
  std::string key;     // record identity
  std::string metric;  // metric name ("" for record-level verdicts)
  double base = 0;
  double current = 0;
  double change_pct = 0;  // (current - base) / base * 100
  double threshold_pct = 0;
  MetricDirection direction = MetricDirection::kNeutral;
  DiffVerdict verdict = DiffVerdict::kWithinNoise;
};

struct DiffReport {
  std::vector<MetricDiff> diffs;
  size_t regressions = 0;
  size_t improvements = 0;
  size_t missing = 0;
  size_t within_noise = 0;
  /// The gate signal: any regression, missing metric, or missing
  /// record. New metrics/records never fail.
  bool failed() const { return regressions + missing > 0; }
};

/// Diffs `current` against `base`. Records pair by identity key;
/// metrics pair by name within a record.
DiffReport CompareBenchRuns(const std::vector<BenchRecord>& base,
                            const std::vector<BenchRecord>& current,
                            const CompareOptions& options);

/// Human-readable diff table: one line per non-noise finding plus a
/// summary line (pass --verbose semantics by setting show_noise).
std::string RenderDiff(const DiffReport& report, bool show_noise = false);

}  // namespace hyrise_nv::obs

#endif  // HYRISE_NV_OBS_BENCH_COMPARE_H_
