#include "obs/request_stats.h"

namespace hyrise_nv::obs {

const char* RequestStageName(RequestStage stage) {
  switch (stage) {
    case RequestStage::kParse:
      return "parse";
    case RequestStage::kDispatch:
      return "dispatch";
    case RequestStage::kExecute:
      return "execute";
    case RequestStage::kWalSync:
      return "wal_sync";
    case RequestStage::kCommitPublish:
      return "commit_publish";
    case RequestStage::kWriteFlush:
      return "write_flush";
  }
  return "unknown";
}

const char* RequestStageName(size_t stage_index) {
  if (stage_index >= kNumRequestStages) return "unknown";
  return RequestStageName(static_cast<RequestStage>(stage_index));
}

}  // namespace hyrise_nv::obs
