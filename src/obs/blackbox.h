#ifndef HYRISE_NV_OBS_BLACKBOX_H_
#define HYRISE_NV_OBS_BLACKBOX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "nvm/pmem_region.h"
#include "obs/metrics.h"

namespace hyrise_nv::obs {

/// NVM-persisted flight recorder ("black box", DESIGN.md §9.4).
///
/// A carve-out at the *top* of every persistent region holds per-thread
/// rings of fixed-size binary events (txn begin/commit/abort, persist
/// barriers, WAL syncs, merges, fault-injection fires, open/close). The
/// same idea the paper applies to data — keep primary state on NVM so a
/// restart needs no replay — applied to diagnostics: the last seconds
/// before a crash are decodable from the image alone, with no log
/// shipping and no surviving process.
///
/// Durability/ordering rules (deliberately weaker than the data path):
///  - Events are written with plain stores; each 64-byte slot carries its
///    own masked CRC32C, written last, so a torn or half-evicted slot is
///    *detected* (dropped at decode), never silently accepted.
///  - A killed process loses nothing on a file-backed region: the stores
///    already sit in the kernel page cache (MAP_SHARED). This is the
///    SIGKILL/crash-forensics path.
///  - Under the strict shadow crash model (SimulateCrash), events persist
///    only up to the last flush. The writer amortises a flush+fence over
///    every `flush_every_` slots per ring, and flushes everything on
///    clean close, on each history-sampler tick, and from the fatal-
///    signal handler — real hardware would also write dirty lines back
///    opportunistically, so the shadow model under-approximates recorder
///    durability on purpose.
///  - The recorder is diagnostics, not data: a corrupt recorder header is
///    quarantined (reformatted) at attach and reported as an advisory
///    verify finding; it never fails an open.

/// Geometry of the recorder carve-out: a pure function of the region
/// size, so an offline decoder needs nothing but the file to find it —
/// even when the region header and roots are trash.
struct BlackboxGeometry {
  uint64_t ring_count = 0;
  uint64_t slots_per_ring = 0;  // power of two; 0 = recorder disabled
  uint64_t offset = 0;          // carve-out start; == region size if disabled
  uint64_t total_bytes = 0;     // header + ring slots
  bool enabled() const { return slots_per_ring != 0; }
};

constexpr uint64_t kBlackboxSlotSize = 64;  // one cache line per event
constexpr uint64_t kBlackboxHeaderBytes = 4096;
constexpr uint64_t kBlackboxRingCount = 8;
constexpr uint64_t kBlackboxMaxRings = 16;  // header reserves this many heads
constexpr uint64_t kBlackboxMaxSlotsPerRing = 2048;
constexpr uint64_t kBlackboxMinSlotsPerRing = 16;

/// Computes the recorder geometry for a region of `region_size` bytes.
/// The carve-out targets ~1/32 of the region (capped at ~1 MiB); regions
/// too small to host the minimum geometry get no recorder at all, so
/// tiny test heaps keep their full capacity.
BlackboxGeometry BlackboxGeometryFor(uint64_t region_size);

/// Bytes reserved at the top of the region (0 when disabled). The
/// persistent allocator's heap_end is region_size minus this.
uint64_t BlackboxBytesFor(uint64_t region_size);

/// Binary event types. Values are stable on-NVM format; append only.
enum class BlackboxEventType : uint16_t {
  kNone = 0,           // empty slot
  kOpen = 1,           // a=durability mode, b=recovered, c=prev clean
  kClose = 2,          // a=1 (clean close)
  kTxnBegin = 3,       // a=tid, b=snapshot cid
  kTxnCommit = 4,      // a=tid, b=cid, c=write count, d=latency ns
  kTxnAbort = 5,       // a=tid, b=write count
  kPersist = 6,        // a=offset, b=len, c=latency ns, d=sample period
  kWalSync = 7,        // a=synced commits, b=latency ns
  kWalDegraded = 8,    // a=1 (entered degraded/read-only mode)
  kMergeStart = 9,     // a=table id, b=delta rows
  kMergeEnd = 10,      // a=table id, b=rows after, c=dropped, d=duration ns
  kFaultFire = 11,     // a=FaultPoint, b=param
  kCheckpoint = 12,    // a=duration ns
  kTxnTrace = 13,      // a=tid, b=write-set ns, c=persist ns, d=publish ns,
                       // e=total ns (sampled span tree, compressed)
  kCrashSignal = 14,   // a=signal number
  kRecorderReset = 15, // a=1 corrupt header quarantined
  kConnOpen = 16,      // a=connection id, b=open connections after
  kConnClose = 17,     // a=connection id, b=1 if a txn was aborted
  kDrain = 18,         // a=open connections at drain start
  kTxnPublishBatch = 19,  // a=commits published, b=watermark cid, c=skips
  kCheckpointFallback = 20,  // a=1 (corrupt checkpoint; full replay from 0)
  kDegradedOpen = 21,     // a=pending rows, b=tables with pending rows
  kRecoveryDrainDone = 22,  // a=rows restored by drain, b=duration ns
  kWarmingShed = 23,      // a=requests in flight at the shed decision
  kSlowRequest = 24,   // a=opcode, b=dominant stage (RequestStage),
                       // c=total ns, d=dominant stage ns, e=connection id
  kCheckpointStart = 25,  // (no payload; kCheckpoint marks the end)
  kTxnPrepare = 26,   // a=tid, b=gtid, c=write count (2PC phase one)
  kTxnDecide = 27,    // a=gtid, b=1 commit / 0 abort, c=cid
};

const char* BlackboxEventName(uint16_t type);

/// One event slot: exactly one cache line, CRC-sealed. The CRC covers the
/// first 60 bytes and is written last; an all-zero slot is "never
/// written". Field order matters — it is the on-NVM format.
struct BlackboxEvent {
  uint64_t seqno;  // global order across rings; 0 = empty
  uint64_t ticks;  // FastClock::NowTicks() at record time
  uint64_t a, b, c, d, e;
  uint16_t type;  // BlackboxEventType
  uint16_t ring;
  uint32_t crc;  // masked CRC32C over the preceding 60 bytes
};
static_assert(sizeof(BlackboxEvent) == kBlackboxSlotSize,
              "event slot must be one cache line");

/// Recorder header at the carve-out start. Prologue (magic..slot_size) is
/// CRC-sealed at format time and immutable; session/clock fields are
/// refreshed on every attach; the seqno and per-ring heads are hot
/// atomics on their own cache lines, excluded from the CRC (same
/// discipline as the RegionHeader prologue).
struct BlackboxHeader {
  static constexpr uint64_t kMagic = 0x48594252424F5831ull;  // "HYBRBOX1"
  static constexpr uint32_t kVersion = 1;

  uint64_t magic;
  uint32_t version;
  uint32_t prologue_crc;
  uint64_t region_size;
  uint64_t ring_count;
  uint64_t slots_per_ring;
  uint64_t slot_size;

  uint64_t session_id;  // incremented on every writer attach
  uint64_t epoch_ns;    // wall clock (CLOCK_REALTIME) at last attach
  uint64_t base_ticks;  // FastClock ticks at last attach
  double ns_per_tick;   // FastClock calibration at last attach

  struct alignas(64) HotCounter {
    uint64_t value;
    uint64_t pad[7];
  };
  HotCounter next_seqno;
  HotCounter ring_heads[kBlackboxMaxRings];
};
static_assert(sizeof(BlackboxHeader) <= kBlackboxHeaderBytes,
              "recorder header must fit its reserved block");

/// Validates the recorder header of `base[0..region_size)`. OK when the
/// region hosts no recorder (nothing to validate).
Status ValidateBlackboxHeader(const uint8_t* base, uint64_t region_size);

/// The live writer: lock-free, multi-writer. Threads are spread across
/// rings round-robin; a slot claim is one relaxed fetch_add on the ring
/// head, the seqno another on the global counter.
class BlackboxWriter {
 public:
  /// Formats (zeroes + seals) the carve-out of a fresh region. No-op when
  /// the region is too small to host a recorder.
  static void Format(nvm::PmemRegion& region);

  /// Attaches to the recorder of an opened region: bumps the session id,
  /// refreshes the clock base, and resumes the seqno after the largest
  /// value visible in the rings (plain stores may have outrun the
  /// persisted header across a crash). A corrupt recorder header is
  /// reformatted — diagnostics must never block recovery. Returns nullptr
  /// when the region hosts no recorder.
  static std::unique_ptr<BlackboxWriter> Attach(nvm::PmemRegion& region);

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(BlackboxWriter);

  void Record(BlackboxEventType type, uint64_t a = 0, uint64_t b = 0,
              uint64_t c = 0, uint64_t d = 0, uint64_t e = 0);

  /// Async-signal-safe variant: writes the slot (atomics + memcpy only)
  /// and skips the amortised flush, which may take locks. Pair with
  /// EmergencyFlush().
  void RecordFromSignal(BlackboxEventType type, uint64_t a = 0);

  /// Flush + fence over the whole carve-out: everything recorded so far
  /// becomes durable under the strict shadow model too.
  void Flush();

  /// Async-signal-safe best effort: msync(2) the carve-out pages of a
  /// file-backed region. No locks, no allocation, no latency model.
  void EmergencyFlush();

  bool attached_with_reset() const { return reset_; }
  uint64_t session_id() const;
  const BlackboxGeometry& geometry() const { return geom_; }
  nvm::PmemRegion& region() { return *region_; }

  /// Process-wide current recorder, for instrumentation sites without a
  /// heap in reach (PmemRegion persists, WAL writer, fault injector).
  /// Set by PHeap on attach, cleared on heap destruction.
  static BlackboxWriter* Current();
  static void SetCurrent(BlackboxWriter* writer);

 private:
  BlackboxWriter() = default;

  void RecordImpl(BlackboxEventType type, uint64_t a, uint64_t b,
                  uint64_t c, uint64_t d, uint64_t e, bool allow_flush);
  void FlushRingWindow(uint32_t ring, uint64_t head_count);

  nvm::PmemRegion* region_ = nullptr;
  BlackboxGeometry geom_;
  BlackboxHeader* header_ = nullptr;
  uint8_t* slots_ = nullptr;
  uint64_t flush_every_ = 0;  // power of two, <= slots_per_ring
  std::atomic<uint32_t> next_ring_{0};
  bool reset_ = false;
};

// --- Offline decode -------------------------------------------------------

struct BlackboxDecodedEvent {
  uint64_t seqno = 0;
  uint64_t ticks = 0;
  uint16_t type = 0;
  uint16_t ring = 0;
  uint64_t a = 0, b = 0, c = 0, d = 0, e = 0;
};

struct BlackboxDecodeResult {
  bool present = false;       // region hosts a recorder carve-out
  bool header_valid = false;  // header magic/version/CRC check passed
  std::string header_error;
  BlackboxGeometry geometry;
  uint64_t session_id = 0;
  uint64_t epoch_ns = 0;
  uint64_t base_ticks = 0;
  double ns_per_tick = 1.0;
  uint64_t torn_slots = 0;   // non-empty slots failing their CRC
  uint64_t empty_slots = 0;  // all-zero (never written)
  std::vector<BlackboxDecodedEvent> events;  // ascending seqno

  /// Milliseconds of `ev` relative to the last attach (negative for
  /// events recorded by earlier sessions).
  double RelativeMs(const BlackboxDecodedEvent& ev) const;
};

/// Decodes the recorder of a (possibly corrupt) image: geometry comes
/// from the file size alone, every slot is CRC-checked, survivors are
/// merge-sorted by seqno. Never trusts anything it cannot verify.
BlackboxDecodeResult DecodeBlackbox(const uint8_t* base,
                                    uint64_t region_size);

/// Human-readable, detail-decoded event line for one event.
std::string BlackboxEventDetail(const BlackboxDecodedEvent& ev);

/// Indented human timeline (newest `limit` events; 0 = all).
std::string RenderBlackboxTimeline(const BlackboxDecodeResult& result,
                                   size_t limit = 0);

/// JSON: {"present":...,"valid":...,"events":[...]} (newest `limit`
/// events; 0 = all).
std::string BlackboxTimelineJson(const BlackboxDecodeResult& result,
                                 size_t limit = 0);

}  // namespace hyrise_nv::obs

#endif  // HYRISE_NV_OBS_BLACKBOX_H_
