#include "obs/trace.h"

#include <cstdio>

#include "common/macros.h"

namespace hyrise_nv::obs {

namespace {

void RenderInto(const SpanNode& node, int depth, std::string& out) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%*s%-*s %10.3f ms\n", depth * 2, "",
                36 - depth * 2, node.name.c_str(), node.seconds * 1e3);
  out += buf;
  for (const auto& child : node.children) {
    RenderInto(child, depth + 1, out);
  }
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

const SpanNode* SpanNode::Find(std::string_view span_name) const {
  if (name == span_name) return this;
  for (const auto& child : children) {
    if (const SpanNode* found = child.Find(span_name)) return found;
  }
  return nullptr;
}

std::string SpanNode::ToJson() const {
  std::string out = "{\"name\":\"";
  AppendEscaped(out, name);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\",\"seconds\":%.9f", seconds);
  out += buf;
  out += ",\"children\":[";
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) out += ',';
    out += children[i].ToJson();
  }
  out += "]}";
  return out;
}

std::string SpanNode::Render() const {
  std::string out;
  RenderInto(*this, 0, out);
  return out;
}

SpanTracer::SpanTracer(std::string root_name) {
  stack_.emplace_back();
  stack_.back().node.name = std::move(root_name);
}

void SpanTracer::Begin(std::string name) {
  HYRISE_NV_CHECK(!stack_.empty(), "span tracer already finished");
  stack_.emplace_back();
  stack_.back().node.name = std::move(name);
}

double SpanTracer::End() {
  HYRISE_NV_CHECK(stack_.size() > 1, "End without matching Begin");
  Frame frame = std::move(stack_.back());
  stack_.pop_back();
  frame.node.seconds = frame.watch.ElapsedSeconds();
  stack_.back().node.children.push_back(std::move(frame.node));
  return stack_.back().node.children.back().seconds;
}

void SpanTracer::Attach(SpanNode subtree) {
  HYRISE_NV_CHECK(!stack_.empty(), "span tracer already finished");
  stack_.back().node.children.push_back(std::move(subtree));
}

SpanNode SpanTracer::Finish() {
  HYRISE_NV_CHECK(!stack_.empty(), "span tracer already finished");
  while (stack_.size() > 1) {
    End();
  }
  Frame root = std::move(stack_.back());
  stack_.pop_back();
  root.node.seconds = root.watch.ElapsedSeconds();
  return std::move(root.node);
}

}  // namespace hyrise_nv::obs
