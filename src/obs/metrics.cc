#include "obs/metrics.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/json.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <x86intrin.h>
#endif

namespace hyrise_nv::obs {

namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t HardwareTicks() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t virtual_timer;
  asm volatile("mrs %0, cntvct_el0" : "=r"(virtual_timer));
  return virtual_timer;
#else
  return SteadyNowNanos();
#endif
}

bool HasInvariantHardwareClock() {
#if defined(__x86_64__) || defined(__i386__)
  // CPUID 0x80000007 EDX bit 8: the TSC runs at a constant rate across
  // P-states and deep C-states. Without it, durations computed from TSC
  // deltas are skewed by frequency scaling — fall back instead.
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000007, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (edx & (1u << 8)) != 0;
#elif defined(__aarch64__)
  return true;  // cntvct_el0 is architecturally constant-frequency
#else
  return false;
#endif
}

struct ClockConfig {
  bool steady_fallback = true;
  double ns_per_tick = 1.0;
};

ClockConfig DecideClockConfig() {
  ClockConfig config;
  if (!HasInvariantHardwareClock()) return config;
  const uint64_t ns0 = SteadyNowNanos();
  const uint64_t t0 = HardwareTicks();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const uint64_t ns1 = SteadyNowNanos();
  const uint64_t t1 = HardwareTicks();
  if (t1 <= t0 || ns1 <= ns0) return config;
  const double ns_per_tick =
      static_cast<double>(ns1 - ns0) / static_cast<double>(t1 - t0);
  // Plausibility: hardware counters run between 1 MHz and 100 GHz. A
  // rate outside that means the calibration itself cannot be trusted.
  if (ns_per_tick < 1e-2 || ns_per_tick > 1e3) return config;
  config.steady_fallback = false;
  config.ns_per_tick = ns_per_tick;
  return config;
}

const ClockConfig& Config() {
  static const ClockConfig config = DecideClockConfig();
  return config;
}

using common::AppendJsonEscaped;

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Description for the # HELP line. Known engine metrics get a real
/// sentence; everything else gets a generic one derived from the name.
std::string MetricHelp(std::string_view name) {
  struct Entry {
    const char* name;
    const char* help;
  };
  static constexpr Entry kHelp[] = {
      {"nvm.persist.count", "Flush+fence persist barriers issued"},
      {"nvm.persist.latency_ns", "Latency of persist barriers"},
      {"nvm.fence.count", "Store fences issued"},
      {"nvm.flush.lines", "Cache lines flushed to the NVM region"},
      {"nvm.flush.bytes", "Bytes covered by cache-line flushes"},
      {"wal.fsync.count", "WAL device syncs"},
      {"wal.fsync.latency_ns", "Latency of WAL device syncs"},
      {"wal.io.retries", "WAL I/O operations retried after a fault"},
      {"wal.degraded.flips", "Transitions into degraded (read-only) WAL mode"},
      {"wal.batch.bytes", "Bytes per group-commit batch"},
      {"txn.begin.count", "Transactions begun"},
      {"txn.commit.count", "Transactions committed"},
      {"txn.abort.count", "Transactions aborted"},
      {"txn.commit.latency_ns", "Commit critical-path latency"},
      {"merge.count", "Delta-to-main merges completed"},
      {"merge.duration_ns", "Duration of delta-to-main merges"},
      {"alloc.alloc.count", "Persistent heap allocations"},
      {"alloc.free.count", "Persistent heap frees"},
      {"alloc.heap_used.bytes", "Bytes between heap begin and heap top"},
      {"fault.fires.count", "Injected faults fired"},
      {"db.open.count", "Database opens (create, open, restart)"},
      {"blackbox.resets.count",
       "Flight-recorder headers quarantined at attach"},
  };
  for (const auto& entry : kHelp) {
    if (name == entry.name) return entry.help;
  }
  return "Engine metric " + std::string(name);
}

void AppendDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

uint64_t FastClock::NowTicks() {
  return Config().steady_fallback ? SteadyNowNanos() : HardwareTicks();
}

uint64_t FastClock::TicksToNanos(int64_t tick_delta) {
  if (tick_delta <= 0) return 0;
  return static_cast<uint64_t>(static_cast<double>(tick_delta) *
                               Config().ns_per_tick);
}

void FastClock::Calibrate() { (void)Config(); }

double FastClock::NsPerTick() { return Config().ns_per_tick; }

bool FastClock::UsingSteadyFallback() { return Config().steady_fallback; }

namespace internal {

size_t ThreadShardIndex() {
  static std::atomic<size_t> next_index{0};
  thread_local const size_t index =
      next_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace internal

// --- Histogram -----------------------------------------------------------

size_t Histogram::BucketIndex(uint64_t value) {
  constexpr uint64_t kLinearLimit = uint64_t{1} << (kSubBits + 1);
  if (value < kLinearLimit) return static_cast<size_t>(value);
  const int msb = 63 - __builtin_clzll(value);
  const uint64_t sub =
      (value >> (msb - kSubBits)) & ((uint64_t{1} << kSubBits) - 1);
  return kLinearLimit +
         static_cast<size_t>(msb - kSubBits - 1) * (size_t{1} << kSubBits) +
         static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  constexpr size_t kLinearLimit = size_t{1} << (kSubBits + 1);
  if (index >= kNumBuckets) return UINT64_MAX;  // one-past-last sentinel
  if (index < kLinearLimit) return index;
  const size_t rel = index - kLinearLimit;
  const size_t octave = (kSubBits + 1) + rel / (size_t{1} << kSubBits);
  const uint64_t sub = rel % (size_t{1} << kSubBits);
  return (uint64_t{1} << octave) +
         sub * (uint64_t{1} << (octave - kSubBits));
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  data.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    data.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    data.count += data.buckets[i];
  }
  data.sum = sum_.load(std::memory_order_relaxed);
  data.max = max_.load(std::memory_order_relaxed);
  const uint64_t min = min_.load(std::memory_order_relaxed);
  data.min = (data.count == 0 || min == UINT64_MAX) ? 0 : min;
  return data;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
}

namespace {

/// Shared rank-interpolation core: given the bucket [lo, hi) that holds
/// `rank` (with `before` observations in earlier buckets and `in_bucket`
/// in this one), place the percentile linearly within the bucket and
/// clamp it to the observed [min, max] envelope.
double InterpolateInBucket(double rank, double before, double in_bucket,
                           uint64_t lo, uint64_t hi, uint64_t min,
                           uint64_t max) {
  double frac = in_bucket > 0 ? (rank - before) / in_bucket : 0.0;
  if (frac < 0.0) frac = 0.0;
  if (frac > 1.0) frac = 1.0;
  double value = static_cast<double>(lo) +
                 (static_cast<double>(hi) - static_cast<double>(lo)) * frac;
  if (value < static_cast<double>(min)) value = static_cast<double>(min);
  if (value > static_cast<double>(max)) value = static_cast<double>(max);
  return value;
}

}  // namespace

double HistogramData::Percentile(double p) const {
  if (count == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= rank) {
      return InterpolateInBucket(rank, static_cast<double>(before),
                                 static_cast<double>(buckets[i]),
                                 Histogram::BucketLowerBound(i),
                                 Histogram::BucketLowerBound(i + 1), min, max);
    }
  }
  return static_cast<double>(max);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t before = 0;
  uint64_t lo = 0;  // exclusive upper bound of the previous bucket + 1
  for (const auto& [upper, cumulative] : cumulative_buckets) {
    if (static_cast<double>(cumulative) >= rank) {
      return InterpolateInBucket(rank, static_cast<double>(before),
                                 static_cast<double>(cumulative - before), lo,
                                 upper + 1, min, max);
    }
    before = cumulative;
    lo = upper + 1;
  }
  return static_cast<double>(max);
}

// --- Snapshot lookups & serialization ------------------------------------

const CounterSnapshot* MetricsSnapshot::FindCounter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  const CounterSnapshot* c = FindCounter(name);
  return c == nullptr ? 0 : c->value;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(out, c.name);
    out += "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(out, g.name);
    out += "\":" + std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(out, h.name);
    out += "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) + ",\"mean\":";
    AppendDouble(out, h.mean);
    out += ",\"p50\":";
    AppendDouble(out, h.p50);
    out += ",\"p95\":";
    AppendDouble(out, h.p95);
    out += ",\"p99\":";
    AppendDouble(out, h.p99);
    out += ",\"p999\":";
    AppendDouble(out, h.p999);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (const auto& [upper, cumulative] : h.cumulative_buckets) {
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += "[" + std::to_string(upper) + "," +
             std::to_string(cumulative) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string PrometheusEscapeLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& c : counters) {
    const std::string name = PrometheusName(c.name);
    out += "# HELP " + name + " " + MetricHelp(c.name) + "\n";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    const std::string name = PrometheusName(g.name);
    out += "# HELP " + name + " " + MetricHelp(g.name) + "\n";
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& h : histograms) {
    const std::string name = PrometheusName(h.name);
    out += "# HELP " + name + " " + MetricHelp(h.name) + "\n";
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [upper, cumulative] : h.cumulative_buckets) {
      out += name + "_bucket{le=\"" + std::to_string(upper) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[256];
  for (const auto& c : counters) {
    std::snprintf(buf, sizeof(buf), "%-34s %20llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const auto& g : gauges) {
    std::snprintf(buf, sizeof(buf), "%-34s %20lld\n", g.name.c_str(),
                  static_cast<long long>(g.value));
    out += buf;
  }
  for (const auto& h : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-34s count %-10llu p50 %-10.0f p95 %-10.0f p99 %-10.0f "
                  "max %llu\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.p50, h.p95, h.p99,
                  static_cast<unsigned long long>(h.max));
    out += buf;
  }
  return out;
}

// --- MetricsRegistry -----------------------------------------------------

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() {
  FastClock::Calibrate();
  // Pre-register the engine's core metrics so every export surface (in
  // particular `dbinspect stats --metrics-json` on a process that never
  // ran a workload) serializes them, if only as zeros.
  const char* counters[] = {
      "nvm.persist.count",   "nvm.fence.count",      "nvm.flush.lines",
      "nvm.flush.bytes",     "wal.fsync.count",      "wal.io.retries",
      "wal.degraded.flips",  "txn.begin.count",      "txn.commit.count",
      "txn.abort.count",     "merge.count",          "alloc.alloc.count",
      "alloc.free.count",    "fault.fires.count",    "db.open.count",
      "blackbox.resets.count",
  };
  for (const char* name : counters) {
    counters_.emplace(name, std::make_unique<Counter>());
  }
  const char* histograms[] = {
      "nvm.persist.latency_ns", "wal.fsync.latency_ns",
      "wal.batch.bytes",        "txn.commit.latency_ns",
      "merge.duration_ns",
  };
  for (const char* name : histograms) {
    histograms_.emplace(name, std::make_unique<Histogram>());
  }
  gauges_.emplace("alloc.heap_used.bytes", std::make_unique<Gauge>());
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> guard(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    const HistogramData data = histogram->Snapshot();
    HistogramSnapshot h;
    h.name = name;
    h.count = data.count;
    h.sum = data.sum;
    h.min = data.min;
    h.max = data.max;
    h.mean = data.Mean();
    h.p50 = data.Percentile(50);
    h.p95 = data.Percentile(95);
    h.p99 = data.Percentile(99);
    h.p999 = data.Percentile(99.9);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < data.buckets.size(); ++i) {
      if (data.buckets[i] == 0) continue;
      cumulative += data.buckets[i];
      h.cumulative_buckets.emplace_back(
          Histogram::BucketLowerBound(i + 1) - 1, cumulative);
    }
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace hyrise_nv::obs
