#include "obs/history.h"

#include <chrono>
#include <cstdio>

#include "obs/blackbox.h"
#include "obs/metrics.h"

namespace hyrise_nv::obs {

namespace {

uint64_t WallClockMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

HistorySampler::HistorySampler(uint64_t interval_ms, size_t capacity)
    : interval_ms_(interval_ms == 0 ? 1000 : interval_ms),
      capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

HistorySampler::~HistorySampler() { Stop(); }

void HistorySampler::Start() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void HistorySampler::Stop() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
}

void HistorySampler::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    lock.unlock();
    Capture();
    if (BlackboxWriter* bb = BlackboxWriter::Current()) bb->Flush();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_; });
  }
}

void HistorySampler::TickOnce() { Capture(); }

void HistorySampler::Capture() {
  const MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  HistorySample sample;
  sample.epoch_ms = WallClockMillis();
  const uint64_t commits = snap.CounterValue("txn.commit.count");
  const uint64_t aborts = snap.CounterValue("txn.abort.count");
  const uint64_t persists = snap.CounterValue("nvm.persist.count");
  const uint64_t wal_syncs = snap.CounterValue("wal.fsync.count");
  const uint64_t merges = snap.CounterValue("merge.count");
  const uint64_t fault_fires = snap.CounterValue("fault.fires.count");
  if (const GaugeSnapshot* g = snap.FindGauge("alloc.heap_used.bytes")) {
    sample.heap_used_bytes = g->value;
  }
  if (const HistogramSnapshot* h =
          snap.FindHistogram("txn.commit.latency_ns")) {
    sample.commit_p99_ns = h->p99;
  }
  if (const HistogramSnapshot* h =
          snap.FindHistogram("txn.trace.total_ns")) {
    sample.sampled_txn_total_ns = h->p99;
  }

  std::lock_guard<std::mutex> guard(mutex_);
  if (baseline_.valid) {
    sample.commits = commits - baseline_.commits;
    sample.aborts = aborts - baseline_.aborts;
    sample.persists = persists - baseline_.persists;
    sample.wal_syncs = wal_syncs - baseline_.wal_syncs;
    sample.merges = merges - baseline_.merges;
    sample.fault_fires = fault_fires - baseline_.fault_fires;
  }
  baseline_ = {commits, aborts,      persists, wal_syncs,
               merges,  fault_fires, true};
  ring_[next_] = sample;
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

std::vector<HistorySample> HistorySampler::Samples() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<HistorySample> out;
  out.reserve(count_);
  const size_t start = (next_ + capacity_ - count_) % capacity_;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::string HistorySampler::ToJson() const {
  const std::vector<HistorySample> samples = Samples();
  std::string out = "{\"interval_ms\":" + std::to_string(interval_ms_) +
                    ",\"capacity\":" + std::to_string(capacity_) +
                    ",\"samples\":[";
  char buf[384];
  for (size_t i = 0; i < samples.size(); ++i) {
    const HistorySample& s = samples[i];
    if (i != 0) out += ',';
    std::snprintf(
        buf, sizeof(buf),
        "{\"epoch_ms\":%llu,\"commits\":%llu,\"aborts\":%llu,"
        "\"persists\":%llu,\"wal_syncs\":%llu,\"merges\":%llu,"
        "\"fault_fires\":%llu,\"heap_used_bytes\":%lld,"
        "\"commit_p99_ns\":%.1f,\"sampled_txn_total_ns\":%.1f}",
        static_cast<unsigned long long>(s.epoch_ms),
        static_cast<unsigned long long>(s.commits),
        static_cast<unsigned long long>(s.aborts),
        static_cast<unsigned long long>(s.persists),
        static_cast<unsigned long long>(s.wal_syncs),
        static_cast<unsigned long long>(s.merges),
        static_cast<unsigned long long>(s.fault_fires),
        static_cast<long long>(s.heap_used_bytes), s.commit_p99_ns,
        s.sampled_txn_total_ns);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace hyrise_nv::obs
