#include "obs/timeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/json.h"

namespace hyrise_nv::obs {

namespace {

uint64_t WallClockMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Per-interval histogram view: the bucket-count delta between two
/// cumulative snapshots, packaged as a HistogramData so the shared
/// rank-interpolation percentile estimator applies unchanged. The
/// interval min/max envelope is reconstructed from the outermost
/// non-empty delta buckets (the cumulative min/max cover the process
/// lifetime, not the interval).
HistogramData IntervalDelta(const HistogramData& prev,
                            const HistogramData& cur) {
  HistogramData delta;
  delta.buckets.resize(cur.buckets.size());
  size_t lowest = cur.buckets.size();
  size_t highest = 0;
  for (size_t i = 0; i < cur.buckets.size(); ++i) {
    const uint64_t before = i < prev.buckets.size() ? prev.buckets[i] : 0;
    const uint64_t d = cur.buckets[i] >= before ? cur.buckets[i] - before : 0;
    delta.buckets[i] = d;
    if (d != 0) {
      delta.count += d;
      if (lowest == cur.buckets.size()) lowest = i;
      highest = i;
    }
  }
  delta.sum = cur.sum >= prev.sum ? cur.sum - prev.sum : 0;
  if (delta.count != 0) {
    delta.min = Histogram::BucketLowerBound(lowest);
    const uint64_t upper = Histogram::BucketLowerBound(highest + 1);
    delta.max = upper > 0 ? upper - 1 : 0;
    // The lifetime max is exact; use it when it falls inside the top
    // interval bucket (the common "this interval set the record" case).
    if (cur.max >= delta.min && cur.max <= delta.max) delta.max = cur.max;
  }
  return delta;
}

void AppendCsvField(std::string& out, const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

const char* PhaseKindName(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kBegin:
      return "begin";
    case PhaseKind::kEnd:
      return "end";
    case PhaseKind::kPoint:
      return "point";
  }
  return "?";
}

TimelineConfig TimelineConfig::Default() {
  TimelineConfig config;
  config.counters = {
      "txn.commit.count",  "txn.abort.count",
      "wal.fsync.count",   "nvm.persist.count",
      "net.requests.count", "merge.count",
      "recovery.restore.ondemand.rows",
  };
  config.gauges = {
      "alloc.heap_used.bytes",     "process.rss_bytes",
      "nvm.region.used_bytes",     "nvm.region.capacity_bytes",
      "recovery.pending.rows",     "db.serving_degraded",
      "net.connections.open",
  };
  config.histograms = {
      "txn.commit.latency_ns",
      "wal.fsync.latency_ns",
      "net.request.latency_ns",
  };
  return config;
}

bool PhaseFromBlackboxEvent(const BlackboxDecodedEvent& ev,
                            PhaseAnnotation* out) {
  switch (static_cast<BlackboxEventType>(ev.type)) {
    case BlackboxEventType::kMergeStart:
      *out = {"merge", PhaseKind::kBegin, 0, ev.a};
      return true;
    case BlackboxEventType::kMergeEnd:
      *out = {"merge", PhaseKind::kEnd, 0, ev.d};
      return true;
    case BlackboxEventType::kCheckpointStart:
      *out = {"checkpoint", PhaseKind::kBegin, 0, 0};
      return true;
    case BlackboxEventType::kCheckpoint:
      *out = {"checkpoint", PhaseKind::kEnd, 0, ev.a};
      return true;
    case BlackboxEventType::kCheckpointFallback:
      *out = {"checkpoint_fallback", PhaseKind::kPoint, 0, 0};
      return true;
    case BlackboxEventType::kDegradedOpen:
      *out = {"recovery_drain", PhaseKind::kBegin, 0, ev.a};
      return true;
    case BlackboxEventType::kRecoveryDrainDone:
      *out = {"recovery_drain", PhaseKind::kEnd, 0, ev.a};
      return true;
    case BlackboxEventType::kWalDegraded:
      *out = {"wal_degraded", PhaseKind::kPoint, 0, ev.a};
      return true;
    case BlackboxEventType::kFaultFire:
      *out = {"fault", PhaseKind::kPoint, 0, ev.a};
      return true;
    case BlackboxEventType::kCrashSignal:
      *out = {"crash_signal", PhaseKind::kPoint, 0, ev.a};
      return true;
    case BlackboxEventType::kDrain:
      *out = {"server_drain", PhaseKind::kPoint, 0, ev.a};
      return true;
    default:
      return false;
  }
}

TimelineRecorder::TimelineRecorder(TimelineConfig config)
    : config_([](TimelineConfig c) {
        if (c.interval_ms == 0) c.interval_ms = 1000;
        if (c.capacity == 0) c.capacity = 1;
        return c;
      }(std::move(config))) {
  auto& registry = MetricsRegistry::Instance();
  counters_.reserve(config_.counters.size());
  for (const std::string& name : config_.counters) {
    counters_.push_back(&registry.GetCounter(name));
  }
  counter_baseline_.resize(counters_.size(), 0);
  gauges_.reserve(config_.gauges.size());
  for (const std::string& name : config_.gauges) {
    gauges_.push_back(&registry.GetGauge(name));
  }
  hists_.reserve(config_.histograms.size());
  for (const std::string& name : config_.histograms) {
    HistState state;
    state.histogram = &registry.GetHistogram(name);
    hists_.push_back(std::move(state));
  }
  ring_.resize(config_.capacity);
}

TimelineRecorder::~TimelineRecorder() { Stop(); }

void TimelineRecorder::SetPreSampleHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> guard(mutex_);
  pre_sample_ = std::move(hook);
}

void TimelineRecorder::Start() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void TimelineRecorder::Stop() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
}

void TimelineRecorder::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    lock.unlock();
    Capture();
    if (BlackboxWriter* bb = BlackboxWriter::Current()) bb->Flush();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(config_.interval_ms),
                 [this] { return stop_; });
  }
}

void TimelineRecorder::TickOnce() { Capture(); }

void TimelineRecorder::Annotate(std::string phase, PhaseKind kind,
                                uint64_t detail) {
  std::lock_guard<std::mutex> guard(mutex_);
  pending_.push_back(
      {std::move(phase), kind, next_order_++, detail});
}

void TimelineRecorder::ApplyToActiveState(const PhaseAnnotation& ann) {
  switch (ann.kind) {
    case PhaseKind::kBegin:
      ++active_depth_[ann.phase];
      break;
    case PhaseKind::kEnd: {
      auto it = active_depth_.find(ann.phase);
      if (it != active_depth_.end() && --it->second <= 0) {
        active_depth_.erase(it);
      }
      break;
    }
    case PhaseKind::kPoint:
      break;
  }
}

void TimelineRecorder::SpliceBlackbox() {
  BlackboxWriter* bb = BlackboxWriter::Current();
  if (bb == nullptr) {
    bb_primed_ = true;
    return;
  }
  // Decode outside the lock: the rings are lock-free for writers, and a
  // torn in-flight slot fails its CRC and is dropped, never misread.
  const BlackboxDecodeResult decoded =
      DecodeBlackbox(bb->region().base(), bb->region().size());
  std::lock_guard<std::mutex> guard(mutex_);
  const bool priming = !bb_primed_;
  for (const BlackboxDecodedEvent& ev : decoded.events) {
    if (ev.seqno <= last_bb_seqno_) continue;
    last_bb_seqno_ = ev.seqno;
    PhaseAnnotation ann;
    if (!PhaseFromBlackboxEvent(ev, &ann)) continue;
    if (priming) {
      // Events from before the recorder existed establish which phases
      // are *currently* active (a drain begun at open must show as
      // active in the first sample) but are not themselves samples'
      // events. Earlier-session events (negative relative time) carry
      // no live phase state.
      if (decoded.RelativeMs(ev) >= 0) ApplyToActiveState(ann);
      continue;
    }
    ann.order = next_order_++;
    pending_.push_back(std::move(ann));
  }
  bb_primed_ = true;
}

void TimelineRecorder::Capture() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    hook = pre_sample_;
  }
  if (hook) hook();
  SpliceBlackbox();

  // Read the metric sources without the lock (they are lock-free).
  std::vector<uint64_t> counter_values(counters_.size());
  for (size_t i = 0; i < counters_.size(); ++i) {
    counter_values[i] = counters_[i]->Value();
  }
  std::vector<int64_t> gauge_values(gauges_.size());
  for (size_t i = 0; i < gauges_.size(); ++i) {
    gauge_values[i] = gauges_[i]->Value();
  }
  std::vector<HistogramData> hist_snaps(hists_.size());
  for (size_t i = 0; i < hists_.size(); ++i) {
    hist_snaps[i] = hists_[i].histogram->Snapshot();
  }

  TimelineSample sample;
  sample.epoch_ms = WallClockMillis();

  std::lock_guard<std::mutex> guard(mutex_);
  sample.elapsed_ms =
      baseline_valid_ && sample.epoch_ms > last_capture_ms_
          ? sample.epoch_ms - last_capture_ms_
          : 0;
  last_capture_ms_ = sample.epoch_ms;

  sample.counter_deltas.resize(counters_.size(), 0);
  if (baseline_valid_) {
    for (size_t i = 0; i < counters_.size(); ++i) {
      sample.counter_deltas[i] =
          counter_values[i] >= counter_baseline_[i]
              ? counter_values[i] - counter_baseline_[i]
              : 0;
    }
  }
  counter_baseline_ = counter_values;
  sample.gauge_values = std::move(gauge_values);

  sample.hist_stats.resize(hists_.size());
  for (size_t i = 0; i < hists_.size(); ++i) {
    if (hists_[i].valid) {
      const HistogramData delta =
          IntervalDelta(hists_[i].prev, hist_snaps[i]);
      IntervalHistStat& stat = sample.hist_stats[i];
      stat.count = delta.count;
      stat.p50 = delta.Percentile(50);
      stat.p99 = delta.Percentile(99);
      stat.p999 = delta.Percentile(99.9);
      stat.max = delta.max;
    }
    hists_[i].prev = std::move(hist_snaps[i]);
    hists_[i].valid = true;
  }
  baseline_valid_ = true;

  // Drain pending annotations into this sample: everything that arrived
  // since the previous tick belongs to the interval it closed.
  std::sort(pending_.begin(), pending_.end(),
            [](const PhaseAnnotation& a, const PhaseAnnotation& b) {
              return a.order < b.order;
            });
  // Active set: phases live at interval start plus any begun within it.
  std::vector<std::string> active;
  for (const auto& [phase, depth] : active_depth_) {
    if (depth > 0) active.push_back(phase);
  }
  for (const PhaseAnnotation& ann : pending_) {
    if (ann.kind == PhaseKind::kBegin) active.push_back(ann.phase);
    ApplyToActiveState(ann);
  }
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());
  sample.active_phases = std::move(active);
  sample.events = std::move(pending_);
  pending_.clear();

  ring_[next_] = std::move(sample);
  next_ = (next_ + 1) % config_.capacity;
  if (count_ < config_.capacity) ++count_;
}

std::vector<TimelineSample> TimelineRecorder::Samples() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<TimelineSample> out;
  out.reserve(count_);
  const size_t start = (next_ + config_.capacity - count_) % config_.capacity;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % config_.capacity]);
  }
  return out;
}

std::string TimelineRecorder::ToJson() const {
  using common::AppendJsonEscaped;
  const std::vector<TimelineSample> samples = Samples();
  std::string out = "{\"interval_ms\":" + std::to_string(config_.interval_ms) +
                    ",\"capacity\":" + std::to_string(config_.capacity) +
                    ",\"samples\":[";
  char buf[128];
  for (size_t s = 0; s < samples.size(); ++s) {
    const TimelineSample& sample = samples[s];
    if (s != 0) out += ',';
    out += "{\"epoch_ms\":" + std::to_string(sample.epoch_ms) +
           ",\"elapsed_ms\":" + std::to_string(sample.elapsed_ms) +
           ",\"counters\":{";
    for (size_t i = 0; i < config_.counters.size(); ++i) {
      if (i != 0) out += ',';
      out += '"';
      AppendJsonEscaped(out, config_.counters[i]);
      out += "\":" + std::to_string(sample.counter_deltas.size() > i
                                        ? sample.counter_deltas[i]
                                        : 0);
    }
    out += "},\"gauges\":{";
    for (size_t i = 0; i < config_.gauges.size(); ++i) {
      if (i != 0) out += ',';
      out += '"';
      AppendJsonEscaped(out, config_.gauges[i]);
      out += "\":" + std::to_string(sample.gauge_values.size() > i
                                        ? sample.gauge_values[i]
                                        : 0);
    }
    out += "},\"histograms\":{";
    for (size_t i = 0; i < config_.histograms.size(); ++i) {
      if (i != 0) out += ',';
      const IntervalHistStat stat = sample.hist_stats.size() > i
                                        ? sample.hist_stats[i]
                                        : IntervalHistStat{};
      out += '"';
      AppendJsonEscaped(out, config_.histograms[i]);
      std::snprintf(buf, sizeof(buf),
                    "\":{\"count\":%llu,\"p50\":%.1f,\"p99\":%.1f,"
                    "\"p999\":%.1f,\"max\":%llu}",
                    static_cast<unsigned long long>(stat.count), stat.p50,
                    stat.p99, stat.p999,
                    static_cast<unsigned long long>(stat.max));
      out += buf;
    }
    out += "},\"active_phases\":[";
    for (size_t i = 0; i < sample.active_phases.size(); ++i) {
      if (i != 0) out += ',';
      out += '"';
      AppendJsonEscaped(out, sample.active_phases[i]);
      out += '"';
    }
    out += "],\"events\":[";
    for (size_t i = 0; i < sample.events.size(); ++i) {
      const PhaseAnnotation& ann = sample.events[i];
      if (i != 0) out += ',';
      out += "{\"phase\":\"";
      AppendJsonEscaped(out, ann.phase);
      out += "\",\"kind\":\"";
      out += PhaseKindName(ann.kind);
      out += "\",\"order\":" + std::to_string(ann.order) +
             ",\"detail\":" + std::to_string(ann.detail) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string TimelineRecorder::ToCsv() const {
  const std::vector<TimelineSample> samples = Samples();
  std::string out = "epoch_ms,elapsed_ms";
  for (const std::string& name : config_.counters) {
    out += ',';
    AppendCsvField(out, name);
  }
  for (const std::string& name : config_.gauges) {
    out += ',';
    AppendCsvField(out, name);
  }
  for (const std::string& name : config_.histograms) {
    for (const char* suffix : {".count", ".p50", ".p99", ".p999"}) {
      out += ',';
      AppendCsvField(out, name + suffix);
    }
  }
  out += ",active_phases,events\n";
  char buf[64];
  for (const TimelineSample& sample : samples) {
    out += std::to_string(sample.epoch_ms) + ',' +
           std::to_string(sample.elapsed_ms);
    for (size_t i = 0; i < config_.counters.size(); ++i) {
      out += ',' + std::to_string(sample.counter_deltas.size() > i
                                      ? sample.counter_deltas[i]
                                      : 0);
    }
    for (size_t i = 0; i < config_.gauges.size(); ++i) {
      out += ',' + std::to_string(
                       sample.gauge_values.size() > i ? sample.gauge_values[i]
                                                      : 0);
    }
    for (size_t i = 0; i < config_.histograms.size(); ++i) {
      const IntervalHistStat stat =
          sample.hist_stats.size() > i ? sample.hist_stats[i]
                                       : IntervalHistStat{};
      out += ',' + std::to_string(stat.count);
      for (double p : {stat.p50, stat.p99, stat.p999}) {
        std::snprintf(buf, sizeof(buf), ",%.1f", p);
        out += buf;
      }
    }
    std::string phases;
    for (size_t i = 0; i < sample.active_phases.size(); ++i) {
      if (i != 0) phases += ';';
      phases += sample.active_phases[i];
    }
    out += ',';
    AppendCsvField(out, phases);
    std::string events;
    for (size_t i = 0; i < sample.events.size(); ++i) {
      if (i != 0) events += ';';
      events += sample.events[i].phase;
      events += ':';
      events += PhaseKindName(sample.events[i].kind);
    }
    out += ',';
    AppendCsvField(out, events);
    out += '\n';
  }
  return out;
}

// --- Offline phase timeline ------------------------------------------------

std::vector<PhaseSpan> PhaseSpansFromBlackbox(
    const BlackboxDecodeResult& decoded) {
  std::vector<PhaseSpan> out;
  // phase name -> index of the innermost open span of that phase.
  std::map<std::string, std::vector<size_t>> open_spans;
  for (const BlackboxDecodedEvent& ev : decoded.events) {
    PhaseAnnotation ann;
    if (!PhaseFromBlackboxEvent(ev, &ann)) continue;
    const double at_ms = decoded.RelativeMs(ev);
    switch (ann.kind) {
      case PhaseKind::kPoint: {
        PhaseSpan span;
        span.phase = ann.phase;
        span.start_ms = span.end_ms = at_ms;
        span.point = true;
        span.detail = ann.detail;
        out.push_back(std::move(span));
        break;
      }
      case PhaseKind::kBegin: {
        PhaseSpan span;
        span.phase = ann.phase;
        span.start_ms = at_ms;
        span.end_ms = at_ms;
        span.open = true;
        span.detail = ann.detail;
        open_spans[ann.phase].push_back(out.size());
        out.push_back(std::move(span));
        break;
      }
      case PhaseKind::kEnd: {
        auto it = open_spans.find(ann.phase);
        if (it == open_spans.end() || it->second.empty()) break;
        PhaseSpan& span = out[it->second.back()];
        it->second.pop_back();
        span.end_ms = at_ms;
        span.open = false;
        if (span.detail == 0) span.detail = ann.detail;
        break;
      }
    }
  }
  return out;
}

std::string PhaseSpansJson(const std::vector<PhaseSpan>& spans) {
  using common::AppendJsonEscaped;
  std::string out = "{\"spans\":[";
  bool first = true;
  for (const PhaseSpan& span : spans) {
    if (span.point) continue;
    if (!first) out += ',';
    first = false;
    char buf[128];
    out += "{\"phase\":\"";
    AppendJsonEscaped(out, span.phase);
    std::snprintf(buf, sizeof(buf),
                  "\",\"start_ms\":%.3f,\"end_ms\":%.3f,\"open\":%s,"
                  "\"detail\":%llu}",
                  span.start_ms, span.end_ms, span.open ? "true" : "false",
                  static_cast<unsigned long long>(span.detail));
    out += buf;
  }
  out += "],\"points\":[";
  first = true;
  for (const PhaseSpan& span : spans) {
    if (!span.point) continue;
    if (!first) out += ',';
    first = false;
    char buf[96];
    out += "{\"phase\":\"";
    AppendJsonEscaped(out, span.phase);
    std::snprintf(buf, sizeof(buf), "\",\"at_ms\":%.3f,\"detail\":%llu}",
                  span.start_ms,
                  static_cast<unsigned long long>(span.detail));
    out += buf;
  }
  out += "]}";
  return out;
}

std::string RenderPhaseSpans(const std::vector<PhaseSpan>& spans) {
  std::string out;
  char buf[192];
  if (spans.empty()) return "no phase events recorded\n";
  for (const PhaseSpan& span : spans) {
    if (span.point) {
      std::snprintf(buf, sizeof(buf), "  %10.1f ms  *  %-20s detail=%llu\n",
                    span.start_ms, span.phase.c_str(),
                    static_cast<unsigned long long>(span.detail));
    } else if (span.open) {
      std::snprintf(buf, sizeof(buf),
                    "  %10.1f ms  [  %-20s (open — never finished)\n",
                    span.start_ms, span.phase.c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  %10.1f ms  [] %-20s %.1f ms wide\n", span.start_ms,
                    span.phase.c_str(), span.end_ms - span.start_ms);
    }
    out += buf;
  }
  return out;
}

}  // namespace hyrise_nv::obs
