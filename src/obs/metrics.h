#ifndef HYRISE_NV_OBS_METRICS_H_
#define HYRISE_NV_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/macros.h"

/// Compile-time guard for hot-path instrumentation. Defaults to on; a
/// build with -DHYRISE_NV_DISABLE_METRICS=ON (CMake option) defines it
/// to 0 and every instrumentation site compiles to nothing. The registry
/// and snapshot types stay available either way so export surfaces link.
#ifndef HYRISE_NV_METRICS_ENABLED
#define HYRISE_NV_METRICS_ENABLED 1
#endif

namespace hyrise_nv::obs {

/// Cheap monotonic time source for hot-path latency measurement: raw TSC
/// on x86-64, the virtual counter on aarch64, steady_clock elsewhere.
/// Ticks are converted to nanoseconds with a once-per-process calibration
/// against steady_clock, so reading the clock costs ~10 cycles instead of
/// a vDSO call on the persist path.
///
/// The TSC is only trusted when the CPU advertises an *invariant* TSC
/// (CPUID 0x80000007 EDX bit 8) and the calibration result is plausible;
/// otherwise every reading silently falls back to steady_clock
/// (ns_per_tick == 1.0) instead of reporting skewed durations.
struct FastClock {
  static uint64_t NowTicks();
  /// Converts a tick *delta* to nanoseconds. Deltas that come out
  /// negative (TSC skew across cores) clamp to zero.
  static uint64_t TicksToNanos(int64_t tick_delta);
  /// Forces calibration now (otherwise it runs lazily on first use).
  static void Calibrate();
  /// Nanoseconds per tick from the one-shot calibration (1.0 under the
  /// steady_clock fallback).
  static double NsPerTick();
  /// Whether NowTicks() reads steady_clock instead of a hardware counter
  /// (no invariant TSC, or calibration produced an implausible rate).
  static bool UsingSteadyFallback();
};

namespace internal {
/// Dense per-thread index used to spread threads across counter shards.
size_t ThreadShardIndex();
}  // namespace internal

/// Monotonic counter, sharded across cache lines so concurrent writers
/// on different threads do not bounce a single line. Add is one relaxed
/// fetch_add on the caller's shard; Value sums the shards (approximate
/// while writers are active, exact once they stop).
class Counter {
 public:
  static constexpr size_t kShards = 8;

  Counter() = default;
  HYRISE_NV_DISALLOW_COPY_AND_MOVE(Counter);

  void Add(uint64_t n) {
    shards_[internal::ThreadShardIndex() & (kShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Overwrites the total. Only for counters that mirror an externally
  /// maintained cumulative value (e.g. NvmStats) at snapshot time — a
  /// Store racing concurrent Add calls can lose those increments.
  void Store(uint64_t total) {
    shards_[0].value.store(total, std::memory_order_relaxed);
    for (size_t i = 1; i < kShards; ++i) {
      shards_[i].value.store(0, std::memory_order_relaxed);
    }
  }

  void Reset() { Store(0); }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
};

/// Point-in-time signed value (bytes in use, read-only flag, ...).
class Gauge {
 public:
  Gauge() = default;
  HYRISE_NV_DISALLOW_COPY_AND_MOVE(Gauge);

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Immutable view of a histogram used for percentile math and export.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // per-bucket counts, kNumBuckets long

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Value at percentile `p` in [0,100]: linearly interpolated by rank
  /// within the log-scale bucket holding that rank, clamped to
  /// [min,max]. Exact for buckets of width 1; within one bucket width
  /// (relative error <= 25%) everywhere else.
  double Percentile(double p) const;
};

/// Fixed-bucket log-scale histogram: 4 sub-buckets per power of two,
/// covering the full uint64 range (relative bucket error <= 25%, which is
/// plenty for latency tails). Record is one relaxed fetch_add on the
/// bucket plus sum/min/max updates — lock-free, snapshot-while-writing
/// safe, cheap enough for the persist path.
class Histogram {
 public:
  static constexpr size_t kSubBits = 2;  // 2^2 sub-buckets per octave
  static constexpr size_t kNumBuckets =
      (1u << (kSubBits + 1)) + (64 - kSubBits - 1) * (1u << kSubBits);

  Histogram() = default;
  HYRISE_NV_DISALLOW_COPY_AND_MOVE(Histogram);

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  HistogramData Snapshot() const;
  void Reset();

  /// Bucket math, exposed for tests: BucketLowerBound(BucketIndex(v)) <=
  /// v < BucketLowerBound(BucketIndex(v) + 1).
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
};

// --- Snapshots -----------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;
  /// Non-empty buckets as (inclusive upper bound, cumulative count) —
  /// what a Prometheus classic histogram serializes.
  std::vector<std::pair<uint64_t, uint64_t>> cumulative_buckets;

  /// Rank-interpolated percentile reconstructed from cumulative_buckets
  /// (same estimator as HistogramData::Percentile, usable by consumers
  /// that only hold the serialized snapshot).
  double Percentile(double p) const;
};

/// A consistent-enough point-in-time copy of every registered metric.
/// Taken while writers are active it may smear concurrent increments,
/// but never tears a value.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* FindCounter(std::string_view name) const;
  const GaugeSnapshot* FindGauge(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
  uint64_t CounterValue(std::string_view name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}
  std::string ToJson() const;
  /// Prometheus text exposition ('.' in names becomes '_'), with # HELP
  /// and # TYPE lines per metric family.
  std::string ToPrometheusText() const;
  /// Human-readable table for CLI output.
  std::string ToText() const;
};

/// Escapes a Prometheus label value: backslash, double quote, and newline
/// get backslash escapes per the text exposition format.
std::string PrometheusEscapeLabel(std::string_view value);

/// Process-wide registry of named metrics. Names follow
/// `subsystem.metric.unit` (e.g. nvm.persist.latency_ns). Lookup takes a
/// mutex and is meant to run once per site (cache the reference, usually
/// as a function-local static); the returned references stay valid for
/// the life of the process.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();
  HYRISE_NV_DISALLOW_COPY_AND_MOVE(MetricsRegistry);

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations survive). Benchmarks
  /// call this between configurations; racing writers only smear the
  /// first samples after the reset.
  void ResetAll();

 private:
  MetricsRegistry();

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace hyrise_nv::obs

#endif  // HYRISE_NV_OBS_METRICS_H_
