#include "obs/blackbox.h"

#include <sys/mman.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "obs/request_stats.h"

namespace hyrise_nv::obs {

namespace {

constexpr size_t kPrologueBytes = offsetof(BlackboxHeader, session_id);
static_assert(kPrologueBytes <= 64, "prologue staging buffer too small");

uint64_t FloorPow2(uint64_t v) {
  if (v == 0) return 0;
  return uint64_t{1} << (63 - __builtin_clzll(v));
}

uint32_t ComputePrologueCrc(const BlackboxHeader* header) {
  uint8_t buf[64];
  std::memcpy(buf, header, kPrologueBytes);
  std::memset(buf + offsetof(BlackboxHeader, prologue_crc), 0,
              sizeof(uint32_t));
  return MaskCrc(Crc32c(buf, kPrologueBytes));
}

uint64_t WallClockNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint32_t EventCrc(const BlackboxEvent& ev) {
  return MaskCrc(
      Crc32c(&ev, kBlackboxSlotSize - sizeof(uint32_t)));
}

std::atomic<BlackboxWriter*> g_current{nullptr};

}  // namespace

BlackboxGeometry BlackboxGeometryFor(uint64_t region_size) {
  BlackboxGeometry geom;
  geom.offset = region_size;
  const uint64_t budget = region_size / 32;
  if (budget <= kBlackboxHeaderBytes) return geom;
  const uint64_t per_slot_budget =
      (budget - kBlackboxHeaderBytes) /
      (kBlackboxRingCount * kBlackboxSlotSize);
  uint64_t slots = FloorPow2(per_slot_budget);
  slots = std::min(slots, kBlackboxMaxSlotsPerRing);
  if (slots < kBlackboxMinSlotsPerRing) return geom;
  const uint64_t raw_bytes =
      kBlackboxHeaderBytes +
      kBlackboxRingCount * slots * kBlackboxSlotSize;
  // Page-align the carve-out start so fatal-signal msync covers exactly
  // the recorder pages; the tail padding belongs to the carve-out.
  const uint64_t offset = (region_size - raw_bytes) & ~uint64_t{4095};
  geom.ring_count = kBlackboxRingCount;
  geom.slots_per_ring = slots;
  geom.offset = offset;
  geom.total_bytes = region_size - offset;
  return geom;
}

uint64_t BlackboxBytesFor(uint64_t region_size) {
  return BlackboxGeometryFor(region_size).total_bytes;
}

const char* BlackboxEventName(uint16_t type) {
  switch (static_cast<BlackboxEventType>(type)) {
    case BlackboxEventType::kNone:
      return "none";
    case BlackboxEventType::kOpen:
      return "open";
    case BlackboxEventType::kClose:
      return "close";
    case BlackboxEventType::kTxnBegin:
      return "txn_begin";
    case BlackboxEventType::kTxnCommit:
      return "txn_commit";
    case BlackboxEventType::kTxnAbort:
      return "txn_abort";
    case BlackboxEventType::kPersist:
      return "persist";
    case BlackboxEventType::kWalSync:
      return "wal_sync";
    case BlackboxEventType::kWalDegraded:
      return "wal_degraded";
    case BlackboxEventType::kMergeStart:
      return "merge_start";
    case BlackboxEventType::kMergeEnd:
      return "merge_end";
    case BlackboxEventType::kFaultFire:
      return "fault_fire";
    case BlackboxEventType::kCheckpoint:
      return "checkpoint";
    case BlackboxEventType::kTxnTrace:
      return "txn_trace";
    case BlackboxEventType::kCrashSignal:
      return "crash_signal";
    case BlackboxEventType::kRecorderReset:
      return "recorder_reset";
    case BlackboxEventType::kConnOpen:
      return "conn_open";
    case BlackboxEventType::kConnClose:
      return "conn_close";
    case BlackboxEventType::kDrain:
      return "drain";
    case BlackboxEventType::kTxnPublishBatch:
      return "txn_publish_batch";
    case BlackboxEventType::kCheckpointFallback:
      return "checkpoint_fallback";
    case BlackboxEventType::kDegradedOpen:
      return "degraded_open";
    case BlackboxEventType::kRecoveryDrainDone:
      return "recovery_drain_done";
    case BlackboxEventType::kWarmingShed:
      return "warming_shed";
    case BlackboxEventType::kSlowRequest:
      return "slow_request";
    case BlackboxEventType::kCheckpointStart:
      return "checkpoint_start";
    case BlackboxEventType::kTxnPrepare:
      return "txn_prepare";
    case BlackboxEventType::kTxnDecide:
      return "txn_decide";
  }
  return "unknown";
}

Status ValidateBlackboxHeader(const uint8_t* base, uint64_t region_size) {
  const BlackboxGeometry geom = BlackboxGeometryFor(region_size);
  if (!geom.enabled()) return Status::OK();
  const auto* header =
      reinterpret_cast<const BlackboxHeader*>(base + geom.offset);
  if (header->magic != BlackboxHeader::kMagic) {
    return Status::Corruption("flight recorder magic mismatch");
  }
  if (header->version != BlackboxHeader::kVersion) {
    return Status::Corruption("flight recorder version " +
                              std::to_string(header->version) +
                              " unsupported");
  }
  if (header->prologue_crc != ComputePrologueCrc(header)) {
    return Status::Corruption("flight recorder header CRC mismatch");
  }
  if (header->region_size != region_size ||
      header->ring_count != geom.ring_count ||
      header->slots_per_ring != geom.slots_per_ring ||
      header->slot_size != kBlackboxSlotSize) {
    return Status::Corruption("flight recorder geometry mismatch");
  }
  return Status::OK();
}

// --- BlackboxWriter -------------------------------------------------------

void BlackboxWriter::Format(nvm::PmemRegion& region) {
  const BlackboxGeometry geom = BlackboxGeometryFor(region.size());
  if (!geom.enabled()) return;
  uint8_t* base = region.base() + geom.offset;
  std::memset(base, 0, geom.total_bytes);
  auto* header = reinterpret_cast<BlackboxHeader*>(base);
  header->magic = BlackboxHeader::kMagic;
  header->version = BlackboxHeader::kVersion;
  header->region_size = region.size();
  header->ring_count = geom.ring_count;
  header->slots_per_ring = geom.slots_per_ring;
  header->slot_size = kBlackboxSlotSize;
  header->prologue_crc = ComputePrologueCrc(header);
  region.Persist(base, geom.total_bytes);
}

std::unique_ptr<BlackboxWriter> BlackboxWriter::Attach(
    nvm::PmemRegion& region) {
  const BlackboxGeometry geom = BlackboxGeometryFor(region.size());
  if (!geom.enabled()) return nullptr;

  auto writer = std::unique_ptr<BlackboxWriter>(new BlackboxWriter());
  writer->region_ = &region;
  writer->geom_ = geom;
  writer->flush_every_ = std::min<uint64_t>(256, geom.slots_per_ring);

  Status valid = ValidateBlackboxHeader(region.base(), region.size());
  if (!valid.ok()) {
    // Quarantine: a trashed recorder must never block data recovery.
    Format(region);
    writer->reset_ = true;
#if HYRISE_NV_METRICS_ENABLED
    static Counter& resets =
        MetricsRegistry::Instance().GetCounter("blackbox.resets.count");
    resets.Inc();
#endif
  }

  auto* header =
      reinterpret_cast<BlackboxHeader*>(region.base() + geom.offset);
  writer->header_ = header;
  writer->slots_ = region.base() + geom.offset + kBlackboxHeaderBytes;

  // Seqno continuity: events are plain stores, so after a crash the rings
  // may hold seqnos newer than the (last-flushed) header counter. Resume
  // after the largest CRC-valid seqno anywhere, or decode order breaks.
  uint64_t max_seq = header->next_seqno.value;
  const uint64_t total_slots = geom.ring_count * geom.slots_per_ring;
  for (uint64_t i = 0; i < total_slots; ++i) {
    const auto* slot = reinterpret_cast<const BlackboxEvent*>(
        writer->slots_ + i * kBlackboxSlotSize);
    if (slot->seqno <= max_seq) continue;
    BlackboxEvent ev;
    std::memcpy(&ev, slot, sizeof(ev));
    if (ev.crc == EventCrc(ev)) max_seq = ev.seqno;
  }
  header->next_seqno.value = max_seq;

  header->session_id += 1;
  header->epoch_ns = WallClockNanos();
  header->base_ticks = FastClock::NowTicks();
  header->ns_per_tick = FastClock::NsPerTick();
  region.Persist(header, sizeof(BlackboxHeader));

  if (writer->reset_) {
    writer->Record(BlackboxEventType::kRecorderReset, 1);
  }
  return writer;
}

void BlackboxWriter::Record(BlackboxEventType type, uint64_t a, uint64_t b,
                            uint64_t c, uint64_t d, uint64_t e) {
  RecordImpl(type, a, b, c, d, e, /*allow_flush=*/true);
}

void BlackboxWriter::RecordFromSignal(BlackboxEventType type, uint64_t a) {
  RecordImpl(type, a, 0, 0, 0, 0, /*allow_flush=*/false);
}

void BlackboxWriter::RecordImpl(BlackboxEventType type, uint64_t a,
                                uint64_t b, uint64_t c, uint64_t d,
                                uint64_t e, bool allow_flush) {
#if HYRISE_NV_METRICS_ENABLED
  // Ring assignment: round-robin per thread, cached until the thread
  // meets a different writer (multiple databases in one process).
  struct RingCache {
    const BlackboxWriter* writer;
    uint32_t ring;
  };
  static thread_local RingCache cache{nullptr, 0};
  if (cache.writer != this) {
    cache.writer = this;
    cache.ring = next_ring_.fetch_add(1, std::memory_order_relaxed) %
                 static_cast<uint32_t>(geom_.ring_count);
  }

  const uint64_t n = __atomic_fetch_add(
      &header_->ring_heads[cache.ring].value, 1, __ATOMIC_RELAXED);
  const uint64_t slot_idx = n & (geom_.slots_per_ring - 1);
  auto* slot = reinterpret_cast<BlackboxEvent*>(
      slots_ + (cache.ring * geom_.slots_per_ring + slot_idx) *
                   kBlackboxSlotSize);

  BlackboxEvent ev;
  ev.seqno =
      __atomic_add_fetch(&header_->next_seqno.value, 1, __ATOMIC_RELAXED);
  ev.ticks = FastClock::NowTicks();
  ev.a = a;
  ev.b = b;
  ev.c = c;
  ev.d = d;
  ev.e = e;
  ev.type = static_cast<uint16_t>(type);
  ev.ring = static_cast<uint16_t>(cache.ring);
  ev.crc = EventCrc(ev);
  // Plain stores: one cache line, sealed by the CRC written with it. A
  // torn overwrite (crash mid-wrap) fails the CRC and is dropped at
  // decode — never accepted.
  std::memcpy(slot, &ev, sizeof(ev));

  // Amortised durability for the strict shadow crash model: every
  // flush_every_ claims per ring, flush+fence the window just filled.
  if (allow_flush && (n & (flush_every_ - 1)) == flush_every_ - 1) {
    FlushRingWindow(cache.ring, n);
  }
#else
  (void)type;
  (void)a;
  (void)b;
  (void)c;
  (void)d;
  (void)e;
  (void)allow_flush;
#endif
}

void BlackboxWriter::FlushRingWindow(uint32_t ring, uint64_t head_count) {
  const uint64_t slots = geom_.slots_per_ring;
  const uint64_t window = flush_every_;
  const uint64_t first = (head_count + 1 - window) & (slots - 1);
  uint8_t* ring_base = slots_ + ring * slots * kBlackboxSlotSize;
  if (first + window <= slots) {
    region_->Flush(ring_base + first * kBlackboxSlotSize,
                   window * kBlackboxSlotSize);
  } else {
    const uint64_t head_part = slots - first;
    region_->Flush(ring_base + first * kBlackboxSlotSize,
                   head_part * kBlackboxSlotSize);
    region_->Flush(ring_base, (window - head_part) * kBlackboxSlotSize);
  }
  region_->Fence();
}

void BlackboxWriter::Flush() {
  region_->Persist(region_->base() + geom_.offset, geom_.total_bytes);
}

void BlackboxWriter::EmergencyFlush() {
  if (region_->file_path().empty()) return;
  // Page-align down; the carve-out start is page-aligned by construction
  // but the region base only needs to be (mmap guarantees it).
  auto addr = reinterpret_cast<uintptr_t>(region_->base() + geom_.offset);
  const uintptr_t aligned = addr & ~uintptr_t{4095};
  ::msync(reinterpret_cast<void*>(aligned),
          geom_.total_bytes + (addr - aligned), MS_SYNC);
}

uint64_t BlackboxWriter::session_id() const { return header_->session_id; }

BlackboxWriter* BlackboxWriter::Current() {
  return g_current.load(std::memory_order_acquire);
}

void BlackboxWriter::SetCurrent(BlackboxWriter* writer) {
  g_current.store(writer, std::memory_order_release);
}

// --- Offline decode -------------------------------------------------------

BlackboxDecodeResult DecodeBlackbox(const uint8_t* base,
                                    uint64_t region_size) {
  BlackboxDecodeResult result;
  result.geometry = BlackboxGeometryFor(region_size);
  if (!result.geometry.enabled()) return result;
  result.present = true;

  Status valid = ValidateBlackboxHeader(base, region_size);
  const auto* header = reinterpret_cast<const BlackboxHeader*>(
      base + result.geometry.offset);
  if (valid.ok()) {
    result.header_valid = true;
    result.session_id = header->session_id;
    result.epoch_ns = header->epoch_ns;
    result.base_ticks = header->base_ticks;
    result.ns_per_tick =
        header->ns_per_tick > 0 ? header->ns_per_tick : 1.0;
  } else {
    result.header_error = valid.message();
  }

  // Slots are trusted one by one on their own CRC, independent of the
  // header: a corrupt header loses the clock base, not the events.
  const uint8_t* slots =
      base + result.geometry.offset + kBlackboxHeaderBytes;
  const uint64_t total_slots =
      result.geometry.ring_count * result.geometry.slots_per_ring;
  result.events.reserve(256);
  for (uint64_t i = 0; i < total_slots; ++i) {
    BlackboxEvent ev;
    std::memcpy(&ev, slots + i * kBlackboxSlotSize, sizeof(ev));
    if (ev.seqno == 0 && ev.type == 0 && ev.crc == 0) {
      ++result.empty_slots;
      continue;
    }
    if (ev.crc != EventCrc(ev)) {
      ++result.torn_slots;
      continue;
    }
    BlackboxDecodedEvent out;
    out.seqno = ev.seqno;
    out.ticks = ev.ticks;
    out.type = ev.type;
    out.ring = ev.ring;
    out.a = ev.a;
    out.b = ev.b;
    out.c = ev.c;
    out.d = ev.d;
    out.e = ev.e;
    result.events.push_back(out);
  }
  std::sort(result.events.begin(), result.events.end(),
            [](const BlackboxDecodedEvent& x, const BlackboxDecodedEvent& y) {
              return x.seqno < y.seqno;
            });
  return result;
}

double BlackboxDecodeResult::RelativeMs(
    const BlackboxDecodedEvent& ev) const {
  const double per_tick = ns_per_tick > 0 ? ns_per_tick : 1.0;
  return static_cast<double>(static_cast<int64_t>(ev.ticks - base_ticks)) *
         per_tick / 1e6;
}

std::string BlackboxEventDetail(const BlackboxDecodedEvent& ev) {
  char buf[192];
  using ULL = unsigned long long;
  switch (static_cast<BlackboxEventType>(ev.type)) {
    case BlackboxEventType::kOpen:
      std::snprintf(buf, sizeof(buf),
                    "mode=%llu recovered=%llu prev_clean=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b),
                    static_cast<ULL>(ev.c));
      break;
    case BlackboxEventType::kClose:
      std::snprintf(buf, sizeof(buf), "clean=%llu",
                    static_cast<ULL>(ev.a));
      break;
    case BlackboxEventType::kTxnBegin:
      std::snprintf(buf, sizeof(buf), "tid=%llu snapshot=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b));
      break;
    case BlackboxEventType::kTxnCommit:
      std::snprintf(buf, sizeof(buf),
                    "tid=%llu cid=%llu writes=%llu latency=%.1fus",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b),
                    static_cast<ULL>(ev.c),
                    static_cast<double>(ev.d) / 1e3);
      break;
    case BlackboxEventType::kTxnAbort:
      std::snprintf(buf, sizeof(buf), "tid=%llu writes=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b));
      break;
    case BlackboxEventType::kPersist:
      std::snprintf(buf, sizeof(buf),
                    "offset=%llu len=%llu latency=%.1fus (1/%llu sample)",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b),
                    static_cast<double>(ev.c) / 1e3,
                    static_cast<ULL>(ev.d));
      break;
    case BlackboxEventType::kWalSync:
      std::snprintf(buf, sizeof(buf),
                    "synced_commits=%llu latency=%.1fus",
                    static_cast<ULL>(ev.a),
                    static_cast<double>(ev.b) / 1e3);
      break;
    case BlackboxEventType::kWalDegraded:
      std::snprintf(buf, sizeof(buf), "entered degraded (read-only) mode");
      break;
    case BlackboxEventType::kMergeStart:
      std::snprintf(buf, sizeof(buf), "table=%llu delta_rows=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b));
      break;
    case BlackboxEventType::kMergeEnd:
      std::snprintf(buf, sizeof(buf),
                    "table=%llu rows_after=%llu dropped=%llu took=%.1fms",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b),
                    static_cast<ULL>(ev.c),
                    static_cast<double>(ev.d) / 1e6);
      break;
    case BlackboxEventType::kFaultFire:
      std::snprintf(buf, sizeof(buf), "point=%llu param=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b));
      break;
    case BlackboxEventType::kCheckpoint:
      std::snprintf(buf, sizeof(buf), "took=%.1fms",
                    static_cast<double>(ev.a) / 1e6);
      break;
    case BlackboxEventType::kTxnTrace:
      std::snprintf(buf, sizeof(buf),
                    "tid=%llu write_set=%.1fus persist=%.1fus "
                    "publish=%.1fus total=%.1fus",
                    static_cast<ULL>(ev.a),
                    static_cast<double>(ev.b) / 1e3,
                    static_cast<double>(ev.c) / 1e3,
                    static_cast<double>(ev.d) / 1e3,
                    static_cast<double>(ev.e) / 1e3);
      break;
    case BlackboxEventType::kCrashSignal:
      std::snprintf(buf, sizeof(buf), "signal=%llu",
                    static_cast<ULL>(ev.a));
      break;
    case BlackboxEventType::kRecorderReset:
      std::snprintf(buf, sizeof(buf),
                    "corrupt recorder header quarantined");
      break;
    case BlackboxEventType::kConnOpen:
      std::snprintf(buf, sizeof(buf), "conn=%llu open_after=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b));
      break;
    case BlackboxEventType::kConnClose:
      std::snprintf(buf, sizeof(buf), "conn=%llu aborted_txn=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b));
      break;
    case BlackboxEventType::kDrain:
      std::snprintf(buf, sizeof(buf), "open_connections=%llu",
                    static_cast<ULL>(ev.a));
      break;
    case BlackboxEventType::kTxnPublishBatch:
      std::snprintf(buf, sizeof(buf),
                    "published=%llu watermark=%llu skipped=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b),
                    static_cast<ULL>(ev.c));
      break;
    case BlackboxEventType::kCheckpointFallback:
      std::snprintf(buf, sizeof(buf),
                    "corrupt checkpoint ignored; full replay from offset 0");
      break;
    case BlackboxEventType::kDegradedOpen:
      std::snprintf(buf, sizeof(buf), "pending_rows=%llu tables=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b));
      break;
    case BlackboxEventType::kRecoveryDrainDone:
      std::snprintf(buf, sizeof(buf), "drained_rows=%llu took=%.1fms",
                    static_cast<ULL>(ev.a),
                    static_cast<double>(ev.b) / 1e6);
      break;
    case BlackboxEventType::kWarmingShed:
      std::snprintf(buf, sizeof(buf), "inflight=%llu",
                    static_cast<ULL>(ev.a));
      break;
    case BlackboxEventType::kSlowRequest:
      std::snprintf(buf, sizeof(buf),
                    "opcode=%llu dominant=%s total=%.1fus dominant_us=%.1f "
                    "conn=%llu",
                    static_cast<ULL>(ev.a),
                    RequestStageName(static_cast<size_t>(ev.b)),
                    static_cast<double>(ev.c) / 1e3,
                    static_cast<double>(ev.d) / 1e3, static_cast<ULL>(ev.e));
      break;
    case BlackboxEventType::kCheckpointStart:
      std::snprintf(buf, sizeof(buf), "checkpoint started");
      break;
    case BlackboxEventType::kTxnPrepare:
      std::snprintf(buf, sizeof(buf), "tid=%llu gtid=%llu writes=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b),
                    static_cast<ULL>(ev.c));
      break;
    case BlackboxEventType::kTxnDecide:
      std::snprintf(buf, sizeof(buf), "gtid=%llu commit=%llu cid=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b),
                    static_cast<ULL>(ev.c));
      break;
    default:
      std::snprintf(buf, sizeof(buf),
                    "a=%llu b=%llu c=%llu d=%llu e=%llu",
                    static_cast<ULL>(ev.a), static_cast<ULL>(ev.b),
                    static_cast<ULL>(ev.c), static_cast<ULL>(ev.d),
                    static_cast<ULL>(ev.e));
  }
  return buf;
}

std::string RenderBlackboxTimeline(const BlackboxDecodeResult& result,
                                   size_t limit) {
  std::string out;
  char buf[320];
  if (!result.present) {
    return "flight recorder: region too small to host one\n";
  }
  if (result.header_valid) {
    std::snprintf(buf, sizeof(buf),
                  "flight recorder: session %llu, %llu rings x %llu "
                  "slots, attached at epoch %llu ns\n",
                  static_cast<unsigned long long>(result.session_id),
                  static_cast<unsigned long long>(
                      result.geometry.ring_count),
                  static_cast<unsigned long long>(
                      result.geometry.slots_per_ring),
                  static_cast<unsigned long long>(result.epoch_ns));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "flight recorder: header CORRUPT (%s) — timestamps "
                  "are raw ticks, events decoded per-slot\n",
                  result.header_error.c_str());
  }
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  %zu event(s) decoded, %llu torn slot(s) dropped, "
                "%llu empty\n",
                result.events.size(),
                static_cast<unsigned long long>(result.torn_slots),
                static_cast<unsigned long long>(result.empty_slots));
  out += buf;

  size_t first = 0;
  if (limit != 0 && result.events.size() > limit) {
    first = result.events.size() - limit;
    std::snprintf(buf, sizeof(buf), "  ... (%zu older events omitted)\n",
                  first);
    out += buf;
  }
  for (size_t i = first; i < result.events.size(); ++i) {
    const auto& ev = result.events[i];
    std::snprintf(buf, sizeof(buf),
                  "  [%8llu] %+12.3f ms  %-14s ring=%-2u %s\n",
                  static_cast<unsigned long long>(ev.seqno),
                  result.RelativeMs(ev), BlackboxEventName(ev.type),
                  ev.ring, BlackboxEventDetail(ev).c_str());
    out += buf;
  }
  return out;
}

std::string BlackboxTimelineJson(const BlackboxDecodeResult& result,
                                 size_t limit) {
  std::string out = "{";
  char buf[256];
  out += result.present ? "\"present\":true" : "\"present\":false";
  out += result.header_valid ? ",\"valid\":true" : ",\"valid\":false";
  if (!result.header_valid && !result.header_error.empty()) {
    out += ",\"error\":\"";
    for (char c : result.header_error) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
    out += '"';
  }
  std::snprintf(
      buf, sizeof(buf),
      ",\"session\":%llu,\"epoch_ns\":%llu,\"ring_count\":%llu,"
      "\"slots_per_ring\":%llu,\"torn_slots\":%llu,\"empty_slots\":%llu,"
      "\"decoded_events\":%zu,\"events\":[",
      static_cast<unsigned long long>(result.session_id),
      static_cast<unsigned long long>(result.epoch_ns),
      static_cast<unsigned long long>(result.geometry.ring_count),
      static_cast<unsigned long long>(result.geometry.slots_per_ring),
      static_cast<unsigned long long>(result.torn_slots),
      static_cast<unsigned long long>(result.empty_slots),
      result.events.size());
  out += buf;
  size_t first = 0;
  if (limit != 0 && result.events.size() > limit) {
    first = result.events.size() - limit;
  }
  for (size_t i = first; i < result.events.size(); ++i) {
    const auto& ev = result.events[i];
    if (i != first) out += ',';
    std::snprintf(
        buf, sizeof(buf),
        "{\"seq\":%llu,\"t_ms\":%.3f,\"type\":\"%s\",\"ring\":%u,"
        "\"args\":[%llu,%llu,%llu,%llu,%llu]}",
        static_cast<unsigned long long>(ev.seqno), result.RelativeMs(ev),
        BlackboxEventName(ev.type), ev.ring,
        static_cast<unsigned long long>(ev.a),
        static_cast<unsigned long long>(ev.b),
        static_cast<unsigned long long>(ev.c),
        static_cast<unsigned long long>(ev.d),
        static_cast<unsigned long long>(ev.e));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace hyrise_nv::obs
