#ifndef HYRISE_NV_ALLOC_PALLOCATOR_H_
#define HYRISE_NV_ALLOC_PALLOCATOR_H_

#include <cstdint>
#include <mutex>

#include "common/macros.h"
#include "common/status.h"
#include "nvm/pmem_region.h"

namespace hyrise_nv::alloc {

/// Number of segregated size classes (powers of two from 32 B).
constexpr size_t kNumSizeClasses = 28;
/// Smallest payload class, bytes.
constexpr uint64_t kMinClassSize = 32;

/// Per-block on-NVM header preceding every payload.
struct BlockHeader {
  static constexpr uint64_t kMagicValue = 0xB10CB10CB10CB10Cull;
  static constexpr uint64_t kStateFree = 0;
  static constexpr uint64_t kStateAllocated = 1;

  uint64_t size;   // payload (class) size in bytes
  uint64_t state;  // kStateFree / kStateAllocated
  uint64_t next;   // next free block offset when on a free list
  uint64_t magic;  // corruption detector
};
static_assert(sizeof(BlockHeader) == 32, "block header layout");

/// Persistent allocator state, stored at a fixed offset after the region
/// header.
struct AllocMeta {
  uint64_t heap_top;   // offset of first never-allocated byte
  uint64_t heap_end;   // end of allocatable range (== region size)
  uint64_t free_heads[kNumSizeClasses];  // per-class free-list heads
  uint64_t meta_crc;   // seal tag over the fields above (0 = unsealed)
};

/// Handle for a two-phase (intent-protected) allocation.
struct IntentHandle {
  uint32_t slot = UINT32_MAX;
  bool valid() const { return slot != UINT32_MAX; }
};

/// Crash-consistent segregated-fit allocator over a formatted PmemRegion.
///
/// Allocation discipline (DESIGN.md §4.2): every mutation of persistent
/// allocator metadata is a single persisted 8-byte store, ordered so that a
/// crash at any instruction boundary leaves the free lists and bump pointer
/// in a state recovery can finish or roll back. Allocations made with
/// AllocWithIntent are reclaimed by Recover() if the caller never committed
/// the intent (i.e., never published the block into a reachable structure).
///
/// Thread safety: all operations take an internal (volatile) mutex; the
/// persistent state never requires cross-crash locks.
class PAllocator {
 public:
  /// Initialises allocator metadata in a freshly formatted region.
  static Status Format(nvm::PmemRegion& region);

  /// Attaches to an existing region. `Recover()` must be called before the
  /// first allocation if the region was not cleanly shut down.
  explicit PAllocator(nvm::PmemRegion& region);
  HYRISE_NV_DISALLOW_COPY_AND_MOVE(PAllocator);

  /// Validates metadata and reclaims allocations with pending intents.
  Status Recover();

  /// Allocates at least `size` bytes; returns the payload offset.
  /// The block may leak if the process crashes before the caller publishes
  /// the offset into a reachable persistent structure — use AllocWithIntent
  /// for structural allocations.
  Result<uint64_t> Alloc(uint64_t size);

  /// Two-phase allocation: the block is registered in a persistent intent
  /// slot, so Recover() frees it unless CommitIntent was called.
  Result<uint64_t> AllocWithIntent(uint64_t size, IntentHandle* handle);

  /// Marks the intent complete (the caller has persisted a reachable
  /// reference to the block).
  void CommitIntent(IntentHandle handle);

  /// Frees the block and releases the intent slot.
  void AbortIntent(IntentHandle handle);

  /// Returns the block at `payload_offset` to its size-class free list.
  Status Free(uint64_t payload_offset);

  /// Payload size of the given allocation.
  Result<uint64_t> AllocSize(uint64_t payload_offset) const;

  /// Bytes between heap start and the bump pointer (upper bound on live
  /// data; free-listed blocks are included).
  uint64_t HeapUsedBytes() const;

  /// Offset where the allocatable heap begins.
  static uint64_t HeapBegin();

  /// Offset of the AllocMeta block within the region.
  static uint64_t MetaOffset();

  nvm::PmemRegion& region() { return region_; }

 private:
  AllocMeta* meta();
  const AllocMeta* meta() const;

  // Returns the class index whose size is >= size.
  static Result<size_t> ClassFor(uint64_t size);
  static uint64_t ClassSize(size_t cls) { return kMinClassSize << cls; }

  // Core allocation with optional intent slot already reserved.
  Result<uint64_t> AllocLocked(uint64_t size, uint32_t intent_slot);

  // Reserves a free intent slot (volatile bookkeeping only).
  Result<uint32_t> ReserveIntentSlot();

  void FreeBlockLocked(uint64_t block_offset);

  nvm::PmemRegion& region_;
  std::mutex mutex_;
  uint64_t intent_busy_bitmap_ = 0;  // volatile; rebuilt empty on restart
};

}  // namespace hyrise_nv::alloc

#endif  // HYRISE_NV_ALLOC_PALLOCATOR_H_
