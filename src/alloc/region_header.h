#ifndef HYRISE_NV_ALLOC_REGION_HEADER_H_
#define HYRISE_NV_ALLOC_REGION_HEADER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "nvm/pmem_region.h"

namespace hyrise_nv::alloc {

/// Number of named root slots in a region.
constexpr size_t kMaxRoots = 16;
/// Bytes per root name (NUL-padded).
constexpr size_t kRootNameLen = 24;
/// Number of allocation-intent slots (see PAllocator::AllocWithIntent).
constexpr size_t kMaxIntents = 64;

/// Intent slot states.
enum IntentState : uint64_t {
  kIntentFree = 0,
  kIntentPending = 1,
};

/// On-NVM layout at offset 0 of every region.
///
/// The header is the recovery entry point: magic + version + CRC over the
/// immutable prologue validate the region; the root table maps names
/// ("catalog", "commit_table", ...) to offsets; intent slots let recovery
/// reclaim allocations whose publication never completed; the
/// clean_shutdown flag distinguishes a clean close from a crash.
struct RegionHeader {
  static constexpr uint64_t kMagic = 0x48595249534E5631ull;  // "HYRISNV1"
  // v2: the flight-recorder carve-out owns the top of the region and the
  // allocator's heap_end stops short of it (obs/blackbox.h).
  static constexpr uint32_t kFormatVersion = 2;

  uint64_t magic;
  uint32_t format_version;
  uint32_t prologue_crc;  // masked CRC32C over magic..region_size
  uint64_t region_size;
  uint64_t clean_shutdown;  // 1 after CloseClean, 0 while open for writing

  struct RootSlot {
    char name[kRootNameLen];
    uint64_t offset;
  };
  RootSlot roots[kMaxRoots];

  struct IntentSlot {
    uint64_t state;   // IntentState
    uint64_t offset;  // block offset being allocated
  };
  IntentSlot intents[kMaxIntents];

  // Persistent allocator state follows the header at a fixed offset; see
  // PAllocator.
};

/// Formats a fresh region: writes and persists the header, zeroed roots and
/// intents, clean_shutdown = 0 (the region is considered "in use" until
/// CloseClean).
Status FormatRegionHeader(nvm::PmemRegion& region);

/// Validates magic, version, CRC and recorded size against the mapped
/// region. Returns Corruption on mismatch.
Status ValidateRegionHeader(const nvm::PmemRegion& region);

/// Accessor for the header of a formatted region.
inline RegionHeader* HeaderOf(nvm::PmemRegion& region) {
  return reinterpret_cast<RegionHeader*>(region.base());
}
inline const RegionHeader* HeaderOf(const nvm::PmemRegion& region) {
  return reinterpret_cast<const RegionHeader*>(region.base());
}

/// Sets (or creates) the named root and persists the slot.
Status SetRoot(nvm::PmemRegion& region, std::string_view name,
               uint64_t offset);

/// Looks up a named root. NotFound if absent.
Result<uint64_t> GetRoot(const nvm::PmemRegion& region,
                         std::string_view name);

/// Marks the region dirty (in use). Persisted.
void MarkDirty(nvm::PmemRegion& region);

/// Marks the region cleanly shut down. Persisted.
void MarkClean(nvm::PmemRegion& region);

/// Whether the region was cleanly shut down before this open.
bool WasCleanShutdown(const nvm::PmemRegion& region);

}  // namespace hyrise_nv::alloc

#endif  // HYRISE_NV_ALLOC_REGION_HEADER_H_
