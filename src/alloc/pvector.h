#ifndef HYRISE_NV_ALLOC_PVECTOR_H_
#define HYRISE_NV_ALLOC_PVECTOR_H_

#include <cstring>
#include <type_traits>

#include "alloc/pallocator.h"
#include "common/macros.h"
#include "common/status.h"

namespace hyrise_nv::alloc {

/// On-NVM descriptor of a persistent dynamic array. Lives inline in the
/// owning structure at a stable offset; the payload buffer is allocated
/// from the persistent heap and republished on growth through an A/B slot
/// flip, so a crash at any point exposes either the old or the new buffer,
/// never a torn descriptor.
struct PVectorDesc {
  struct Slot {
    uint64_t data;      // payload offset of the element buffer (0 = none)
    uint64_t capacity;  // element capacity of that buffer
  };
  uint64_t version;  // active slot = version & 1; bumped atomically
  Slot slots[2];
  uint64_t size;  // committed element count; bumped atomically after data
  /// Seal tag over the fields above, written by the clean-shutdown walk
  /// (see recovery/verify.h). 0 = unsealed; mutations leave it stale,
  /// which is safe because the region is marked dirty first and seals are
  /// only authoritative after a clean shutdown.
  uint64_t seal;
};
static_assert(sizeof(PVectorDesc) == 56, "descriptor layout");

/// Typed handle over a PVectorDesc. The handle itself is volatile; all
/// state lives on NVM. Elements must be trivially copyable (they are
/// memcpy'd during growth and after restart no constructors rerun).
///
/// Persistence contract: after Append/Set/BulkAppend return, the new
/// contents and size are durable. A crash mid-call leaves the previous
/// committed state.
template <typename T>
class PVector {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "PVector elements must be trivially copyable");

  PVector() = default;
  PVector(nvm::PmemRegion* region, PAllocator* alloc, PVectorDesc* desc)
      : region_(region), alloc_(alloc), desc_(desc) {}

  /// Initialises a zeroed descriptor for a fresh vector.
  static void Format(nvm::PmemRegion& region, PVectorDesc* desc) {
    std::memset(desc, 0, sizeof(PVectorDesc));
    region.Persist(desc, sizeof(PVectorDesc));
  }

  /// Re-attaches after restart; validates the descriptor.
  Status Validate() const {
    const auto& slot = ActiveSlot();
    if (desc_->size > slot.capacity) {
      return Status::Corruption("PVector size exceeds capacity");
    }
    if (slot.capacity > 0) {
      const uint64_t end = slot.data + slot.capacity * sizeof(T);
      if (slot.data < PAllocator::HeapBegin() || end > region_->size()) {
        return Status::Corruption("PVector buffer out of range");
      }
    }
    return Status::OK();
  }

  uint64_t size() const { return desc_->size; }
  bool empty() const { return desc_->size == 0; }
  uint64_t capacity() const { return ActiveSlot().capacity; }
  nvm::PmemRegion* region() const { return region_; }

  T* data() {
    const auto& slot = ActiveSlot();
    return slot.data == 0
               ? nullptr
               : reinterpret_cast<T*>(region_->base() + slot.data);
  }
  const T* data() const {
    const auto& slot = ActiveSlot();
    return slot.data == 0
               ? nullptr
               : reinterpret_cast<const T*>(region_->base() + slot.data);
  }

  const T& Get(uint64_t index) const {
    HYRISE_NV_DCHECK(index < desc_->size, "PVector index out of range");
    return data()[index];
  }

  /// Overwrites an existing element and persists it.
  void Set(uint64_t index, const T& value) {
    HYRISE_NV_DCHECK(index < desc_->size, "PVector index out of range");
    T* slot = data() + index;
    *slot = value;
    region_->Persist(slot, sizeof(T));
  }

  /// Overwrites without persisting (caller batches a PersistRange).
  void SetUnpersisted(uint64_t index, const T& value) {
    HYRISE_NV_DCHECK(index < desc_->size, "PVector index out of range");
    data()[index] = value;
  }

  /// Persists elements [begin, end).
  void PersistRange(uint64_t begin, uint64_t end) {
    if (end <= begin) return;
    region_->Persist(data() + begin, (end - begin) * sizeof(T));
  }

  /// Appends one element durably. Two persist barriers: element, then
  /// size — the size bump is the commit point.
  Status Append(const T& value) {
    HYRISE_NV_RETURN_NOT_OK(EnsureCapacity(desc_->size + 1));
    T* slot = data() + desc_->size;
    *slot = value;
    region_->Persist(slot, sizeof(T));
    region_->AtomicPersist64(&desc_->size, desc_->size + 1);
    return Status::OK();
  }

  /// Appends one element with flushes but *no fence* (models CLWB without
  /// SFENCE). The caller must issue a region Fence before any dependent
  /// durable publication. Safe only for vectors whose committed length is
  /// bounded by another structure that recovery trusts instead (delta
  /// attribute/dictionary vectors, truncated to the MVCC row count) —
  /// without the fence, the size line may persist before the element
  /// line, so the trailing entries are garbage until the caller's fence.
  Status AppendUnfenced(const T& value) {
    HYRISE_NV_RETURN_NOT_OK(EnsureCapacity(desc_->size + 1));
    T* slot = data() + desc_->size;
    *slot = value;
    region_->Flush(slot, sizeof(T));
    __atomic_store_n(&desc_->size, desc_->size + 1, __ATOMIC_RELEASE);
    region_->Flush(&desc_->size, sizeof(desc_->size));
    return Status::OK();
  }

  /// Appends `count` elements with a single range persist and one size
  /// bump. The bulk path used by merge and checkpoint loading.
  Status BulkAppend(const T* values, uint64_t count) {
    if (count == 0) return Status::OK();
    HYRISE_NV_RETURN_NOT_OK(EnsureCapacity(desc_->size + count));
    std::memcpy(data() + desc_->size, values, count * sizeof(T));
    region_->Persist(data() + desc_->size, count * sizeof(T));
    region_->AtomicPersist64(&desc_->size, desc_->size + count);
    return Status::OK();
  }

  /// Appends `count` copies of `value` (e.g. kCidInfinity MVCC columns).
  Status AppendFill(const T& value, uint64_t count) {
    if (count == 0) return Status::OK();
    HYRISE_NV_RETURN_NOT_OK(EnsureCapacity(desc_->size + count));
    T* base = data() + desc_->size;
    for (uint64_t i = 0; i < count; ++i) base[i] = value;
    region_->Persist(base, count * sizeof(T));
    region_->AtomicPersist64(&desc_->size, desc_->size + count);
    return Status::OK();
  }

  /// Pre-grows the buffer to hold at least `n` elements.
  Status Reserve(uint64_t n) { return EnsureCapacity(n); }

  /// Truncates the committed size (used by recovery rollback). Does not
  /// shrink the buffer.
  void TruncateTo(uint64_t n) {
    HYRISE_NV_DCHECK(n <= desc_->size, "truncate cannot grow");
    region_->AtomicPersist64(&desc_->size, n);
  }

 private:
  const PVectorDesc::Slot& ActiveSlot() const {
    return desc_->slots[desc_->version & 1];
  }

  Status EnsureCapacity(uint64_t needed) {
    const auto& active = ActiveSlot();
    if (needed <= active.capacity) return Status::OK();
    uint64_t new_cap = active.capacity == 0 ? 16 : active.capacity * 2;
    while (new_cap < needed) new_cap *= 2;

    IntentHandle intent;
    auto alloc_result =
        alloc_->AllocWithIntent(new_cap * sizeof(T), &intent);
    if (!alloc_result.ok()) return alloc_result.status();
    const uint64_t new_data = alloc_result.ValueUnsafe();

    T* new_buf = reinterpret_cast<T*>(region_->base() + new_data);
    const uint64_t old_data = active.data;
    if (desc_->size > 0) {
      std::memcpy(new_buf, region_->base() + old_data,
                  desc_->size * sizeof(T));
      region_->Persist(new_buf, desc_->size * sizeof(T));
    }
    // Publish through the inactive slot, then flip the version. The flip
    // is the single atomic commit point; it also makes the intent's block
    // reachable, after which the intent can be retired.
    auto& inactive = desc_->slots[(desc_->version + 1) & 1];
    inactive.data = new_data;
    inactive.capacity = new_cap;
    region_->Persist(&inactive, sizeof(inactive));
    region_->AtomicPersist64(&desc_->version, desc_->version + 1);
    alloc_->CommitIntent(intent);
    if (old_data != 0) {
      // Best-effort: a crash exactly here leaks the old buffer.
      (void)alloc_->Free(old_data);
    }
    return Status::OK();
  }

  nvm::PmemRegion* region_ = nullptr;
  PAllocator* alloc_ = nullptr;
  PVectorDesc* desc_ = nullptr;
};

}  // namespace hyrise_nv::alloc

#endif  // HYRISE_NV_ALLOC_PVECTOR_H_
