#include "alloc/region_header.h"

#include <cstring>

#include "common/crc32.h"
#include "common/macros.h"

namespace hyrise_nv::alloc {

namespace {

uint32_t ComputePrologueCrc(const RegionHeader& header) {
  // CRC over the immutable fields only (magic, version, size); mutable
  // fields (roots, intents, clean flag) are individually persisted and
  // self-describing. Fields are hashed one by one to avoid struct padding.
  uint32_t crc = Crc32c(&header.magic, sizeof(header.magic));
  crc = Crc32c(&header.format_version, sizeof(header.format_version), crc);
  crc = Crc32c(&header.region_size, sizeof(header.region_size), crc);
  return MaskCrc(crc);
}

}  // namespace

Status FormatRegionHeader(nvm::PmemRegion& region) {
  if (region.size() < sizeof(RegionHeader) + 4096) {
    return Status::InvalidArgument("region too small for header");
  }
  auto* header = HeaderOf(region);
  std::memset(header, 0, sizeof(RegionHeader));
  header->magic = RegionHeader::kMagic;
  header->format_version = RegionHeader::kFormatVersion;
  header->region_size = region.size();
  header->clean_shutdown = 0;
  header->prologue_crc = ComputePrologueCrc(*header);
  region.Persist(header, sizeof(RegionHeader));
  return Status::OK();
}

Status ValidateRegionHeader(const nvm::PmemRegion& region) {
  if (region.size() < sizeof(RegionHeader)) {
    return Status::Corruption("region smaller than header");
  }
  const auto* header = HeaderOf(region);
  if (header->magic != RegionHeader::kMagic) {
    return Status::Corruption("bad region magic");
  }
  if (header->format_version != RegionHeader::kFormatVersion) {
    return Status::Corruption("unsupported region format version " +
                              std::to_string(header->format_version));
  }
  if (header->prologue_crc != ComputePrologueCrc(*header)) {
    return Status::Corruption("region header CRC mismatch");
  }
  if (header->region_size != region.size()) {
    return Status::Corruption("region size mismatch: header says " +
                              std::to_string(header->region_size) +
                              ", mapped " + std::to_string(region.size()));
  }
  return Status::OK();
}

Status SetRoot(nvm::PmemRegion& region, std::string_view name,
               uint64_t offset) {
  if (name.empty() || name.size() >= kRootNameLen) {
    return Status::InvalidArgument("root name length out of range");
  }
  auto* header = HeaderOf(region);
  RegionHeader::RootSlot* free_slot = nullptr;
  for (auto& slot : header->roots) {
    if (slot.name[0] == '\0') {
      if (free_slot == nullptr) free_slot = &slot;
      continue;
    }
    if (name == slot.name) {
      // Existing root: the offset is updated with a single atomic persist,
      // so a crash mid-update leaves either the old or the new value.
      region.AtomicPersist64(&slot.offset, offset);
      return Status::OK();
    }
  }
  if (free_slot == nullptr) {
    return Status::OutOfMemory("root table full");
  }
  // New root: write offset first, then the name. The slot only becomes
  // discoverable once the (persisted) name is non-empty.
  free_slot->offset = offset;
  region.Persist(&free_slot->offset, sizeof(free_slot->offset));
  std::memset(free_slot->name, 0, kRootNameLen);
  std::memcpy(free_slot->name, name.data(), name.size());
  region.Persist(free_slot->name, kRootNameLen);
  return Status::OK();
}

Result<uint64_t> GetRoot(const nvm::PmemRegion& region,
                         std::string_view name) {
  const auto* header = HeaderOf(region);
  for (const auto& slot : header->roots) {
    if (slot.name[0] != '\0' && name == slot.name) {
      return slot.offset;
    }
  }
  return Status::NotFound("no root named '" + std::string(name) + "'");
}

void MarkDirty(nvm::PmemRegion& region) {
  auto* header = HeaderOf(region);
  region.AtomicPersist64(&header->clean_shutdown, 0);
}

void MarkClean(nvm::PmemRegion& region) {
  auto* header = HeaderOf(region);
  region.AtomicPersist64(&header->clean_shutdown, 1);
}

bool WasCleanShutdown(const nvm::PmemRegion& region) {
  return HeaderOf(region)->clean_shutdown == 1;
}

}  // namespace hyrise_nv::alloc
