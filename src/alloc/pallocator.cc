#include "alloc/pallocator.h"

#include <cstring>

#include "alloc/region_header.h"
#include "common/bit_util.h"
#include "common/logging.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"

namespace hyrise_nv::alloc {

namespace {

constexpr uint64_t kBlockAlign = 64;

#if HYRISE_NV_METRICS_ENABLED
void NoteAllocated(uint64_t class_size) {
  static obs::Counter& alloc_count =
      obs::MetricsRegistry::Instance().GetCounter("alloc.alloc.count");
  static obs::Gauge& bytes_in_use =
      obs::MetricsRegistry::Instance().GetGauge("alloc.bytes_in_use");
  alloc_count.Inc();
  bytes_in_use.Add(static_cast<int64_t>(class_size));
}
#endif

uint64_t HeapBeginOffset() {
  return AlignUp(PAllocator::MetaOffset() + sizeof(AllocMeta),
                 kBlockAlign);
}

BlockHeader* BlockAt(nvm::PmemRegion& region, uint64_t block_offset) {
  return reinterpret_cast<BlockHeader*>(region.base() + block_offset);
}

}  // namespace

uint64_t PAllocator::HeapBegin() { return HeapBeginOffset(); }

uint64_t PAllocator::MetaOffset() {
  return AlignUp(sizeof(RegionHeader), kBlockAlign);
}

AllocMeta* PAllocator::meta() {
  return reinterpret_cast<AllocMeta*>(region_.base() + MetaOffset());
}
const AllocMeta* PAllocator::meta() const {
  return reinterpret_cast<const AllocMeta*>(region_.base() + MetaOffset());
}

Status PAllocator::Format(nvm::PmemRegion& region) {
  // The flight-recorder carve-out (obs/blackbox.h) owns the top of the
  // region; the heap ends where it begins. Zero for small regions.
  const uint64_t heap_end =
      region.size() - obs::BlackboxBytesFor(region.size());
  if (heap_end <= HeapBeginOffset() + kMinClassSize) {
    return Status::InvalidArgument("region too small for allocator");
  }
  auto* meta =
      reinterpret_cast<AllocMeta*>(region.base() + MetaOffset());
  std::memset(meta, 0, sizeof(AllocMeta));
  meta->heap_top = HeapBeginOffset();
  meta->heap_end = heap_end;
  region.Persist(meta, sizeof(AllocMeta));
  return Status::OK();
}

PAllocator::PAllocator(nvm::PmemRegion& region) : region_(region) {}

Result<size_t> PAllocator::ClassFor(uint64_t size) {
  if (size == 0) return Status::InvalidArgument("zero-size allocation");
  uint64_t cls_size = kMinClassSize;
  for (size_t cls = 0; cls < kNumSizeClasses; ++cls) {
    if (cls_size >= size) return cls;
    cls_size <<= 1;
  }
  return Status::InvalidArgument("allocation of " + std::to_string(size) +
                                 " bytes exceeds largest size class");
}

Status PAllocator::Recover() {
  auto* m = meta();
  if (m->heap_top < HeapBeginOffset() || m->heap_top > m->heap_end ||
      m->heap_end !=
          region_.size() - obs::BlackboxBytesFor(region_.size())) {
    return Status::Corruption("allocator metadata out of range");
  }
  // Reclaim allocations whose publication never completed.
  auto* header = HeaderOf(region_);
  for (auto& intent : header->intents) {
    if (intent.state != kIntentPending) continue;
    const uint64_t off = intent.offset;
    if (off != 0 && off < m->heap_top) {
      auto* block = BlockAt(region_, off);
      if (block->magic == BlockHeader::kMagicValue) {
        auto cls_result = ClassFor(block->size);
        if (!cls_result.ok()) return cls_result.status();
        const size_t cls = cls_result.ValueUnsafe();
        std::lock_guard<std::mutex> guard(mutex_);
        if (block->state == BlockHeader::kStateAllocated) {
          // The pop (or bump) completed but the owner never published:
          // roll the allocation back.
          FreeBlockLocked(off);
        } else if (m->free_heads[cls] != off) {
          // The crash hit between the head advance and the
          // allocated-mark: the block is off-list but still marked free.
          // Relink it.
          block->next = m->free_heads[cls];
          region_.Persist(&block->next, sizeof(block->next));
          region_.AtomicPersist64(&m->free_heads[cls], off);
        }
        // Otherwise (state free, still at head): the pop never took
        // durable effect; nothing to do.
      }
    }
    // off >= heap_top means the bump never completed: nothing allocated.
    region_.AtomicPersist64(&intent.state, kIntentFree);
  }
  return Status::OK();
}

Result<uint32_t> PAllocator::ReserveIntentSlot() {
  for (uint32_t i = 0; i < kMaxIntents; ++i) {
    if ((intent_busy_bitmap_ & (uint64_t{1} << i)) == 0) {
      intent_busy_bitmap_ |= (uint64_t{1} << i);
      return i;
    }
  }
  return Status::OutOfMemory("all allocation intent slots busy");
}

Result<uint64_t> PAllocator::AllocLocked(uint64_t size,
                                         uint32_t intent_slot) {
  HYRISE_NV_ASSIGN_OR_RETURN(const size_t cls, ClassFor(size));
  auto* m = meta();
  auto* header = HeaderOf(region_);
  const bool with_intent = intent_slot != UINT32_MAX;

  const uint64_t head = m->free_heads[cls];
  if (head != 0) {
    // Free-list pop. Ordering: (1) record intent, (2) advance head,
    // (3) mark allocated. A crash between (2) and (3) merely leaks the
    // block for intent-free allocations (it is off-list and still marked
    // free — no later pop can return it); intent-protected allocations
    // are rolled back or relinked by Recover(). The head must advance
    // *before* the allocated-mark, or a crash in between would leave the
    // durable head pointing at an allocated block — corruption for the
    // next pop.
    auto* block = BlockAt(region_, head);
    if (block->magic != BlockHeader::kMagicValue ||
        block->state != BlockHeader::kStateFree) {
      return Status::Corruption("free list head is not a free block");
    }
    if (with_intent) {
      auto& intent = header->intents[intent_slot];
      intent.offset = head;
      region_.Persist(&intent.offset, sizeof(intent.offset));
      region_.AtomicPersist64(&intent.state, kIntentPending);
    }
    region_.AtomicPersist64(&m->free_heads[cls], block->next);
    region_.AtomicPersist64(&block->state, BlockHeader::kStateAllocated);
#if HYRISE_NV_METRICS_ENABLED
    static obs::Counter& freelist_reuse =
        obs::MetricsRegistry::Instance().GetCounter(
            "alloc.freelist_reuse.count");
    freelist_reuse.Inc();
    NoteAllocated(ClassSize(cls));
#endif
    return head + sizeof(BlockHeader);
  }

  // Bump allocation. Ordering: (1) record intent at the future block
  // offset, (2) write + persist the block header, (3) advance heap_top.
  // A crash before (3) allocated nothing (intent offset >= heap_top).
  const uint64_t block_off = AlignUp(m->heap_top, kBlockAlign);
  const uint64_t new_top =
      block_off + sizeof(BlockHeader) + ClassSize(cls);
  if (new_top > m->heap_end) {
    return Status::OutOfMemory(
        "NVM region exhausted: need " + std::to_string(size) +
        " bytes, heap_top=" + std::to_string(m->heap_top) +
        ", end=" + std::to_string(m->heap_end));
  }
  if (with_intent) {
    auto& intent = header->intents[intent_slot];
    intent.offset = block_off;
    region_.Persist(&intent.offset, sizeof(intent.offset));
    region_.AtomicPersist64(&intent.state, kIntentPending);
  }
  auto* block = BlockAt(region_, block_off);
  block->size = ClassSize(cls);
  block->state = BlockHeader::kStateAllocated;
  block->next = 0;
  block->magic = BlockHeader::kMagicValue;
  region_.Persist(block, sizeof(BlockHeader));
  region_.AtomicPersist64(&m->heap_top, new_top);
#if HYRISE_NV_METRICS_ENABLED
  NoteAllocated(ClassSize(cls));
#endif
  return block_off + sizeof(BlockHeader);
}

Result<uint64_t> PAllocator::Alloc(uint64_t size) {
  std::lock_guard<std::mutex> guard(mutex_);
  return AllocLocked(size, UINT32_MAX);
}

Result<uint64_t> PAllocator::AllocWithIntent(uint64_t size,
                                             IntentHandle* handle) {
  std::lock_guard<std::mutex> guard(mutex_);
  HYRISE_NV_ASSIGN_OR_RETURN(const uint32_t slot, ReserveIntentSlot());
  auto result = AllocLocked(size, slot);
  if (!result.ok()) {
    intent_busy_bitmap_ &= ~(uint64_t{1} << slot);
    return result.status();
  }
  handle->slot = slot;
  return result;
}

void PAllocator::CommitIntent(IntentHandle handle) {
  if (!handle.valid()) return;
  std::lock_guard<std::mutex> guard(mutex_);
  auto& intent = HeaderOf(region_)->intents[handle.slot];
  region_.AtomicPersist64(&intent.state, kIntentFree);
  intent_busy_bitmap_ &= ~(uint64_t{1} << handle.slot);
}

void PAllocator::AbortIntent(IntentHandle handle) {
  if (!handle.valid()) return;
  std::lock_guard<std::mutex> guard(mutex_);
  auto& intent = HeaderOf(region_)->intents[handle.slot];
  if (intent.state == kIntentPending && intent.offset != 0) {
    FreeBlockLocked(intent.offset);
  }
  region_.AtomicPersist64(&intent.state, kIntentFree);
  intent_busy_bitmap_ &= ~(uint64_t{1} << handle.slot);
}

void PAllocator::FreeBlockLocked(uint64_t block_offset) {
  auto* m = meta();
  auto* block = BlockAt(region_, block_offset);
  HYRISE_NV_CHECK(block->magic == BlockHeader::kMagicValue,
                  "freeing a non-block");
  auto cls_result = ClassFor(block->size);
  HYRISE_NV_CHECK(cls_result.ok(), "freeing block with invalid size");
  const size_t cls = cls_result.ValueUnsafe();
  // Ordering: link the block to the current head, persist, then swing the
  // head. A crash between the two leaks the block (documented); it never
  // corrupts the list.
  block->next = m->free_heads[cls];
  block->state = BlockHeader::kStateFree;
  region_.Persist(block, sizeof(BlockHeader));
  region_.AtomicPersist64(&m->free_heads[cls], block_offset);
#if HYRISE_NV_METRICS_ENABLED
  static obs::Counter& free_count =
      obs::MetricsRegistry::Instance().GetCounter("alloc.free.count");
  static obs::Gauge& bytes_in_use =
      obs::MetricsRegistry::Instance().GetGauge("alloc.bytes_in_use");
  free_count.Inc();
  bytes_in_use.Add(-static_cast<int64_t>(ClassSize(cls)));
#endif
}

Status PAllocator::Free(uint64_t payload_offset) {
  if (payload_offset < HeapBeginOffset() + sizeof(BlockHeader) ||
      payload_offset >= region_.size()) {
    return Status::InvalidArgument("offset outside heap");
  }
  const uint64_t block_off = payload_offset - sizeof(BlockHeader);
  // Blocks are kBlockAlign-aligned; a misaligned offset can never name a
  // block (and must not be dereferenced as one).
  if (block_off % kBlockAlign != 0) {
    return Status::InvalidArgument("misaligned offset");
  }
  std::lock_guard<std::mutex> guard(mutex_);
  auto* block = BlockAt(region_, block_off);
  if (block->magic != BlockHeader::kMagicValue) {
    return Status::Corruption("free of non-allocated offset");
  }
  if (block->state != BlockHeader::kStateAllocated) {
    return Status::InvalidArgument("double free");
  }
  FreeBlockLocked(block_off);
  return Status::OK();
}

Result<uint64_t> PAllocator::AllocSize(uint64_t payload_offset) const {
  if (payload_offset < HeapBeginOffset() + sizeof(BlockHeader) ||
      payload_offset >= region_.size()) {
    return Status::InvalidArgument("offset outside heap");
  }
  if ((payload_offset - sizeof(BlockHeader)) % kBlockAlign != 0) {
    return Status::InvalidArgument("misaligned offset");
  }
  const auto* block = BlockAt(region_, payload_offset - sizeof(BlockHeader));
  if (block->magic != BlockHeader::kMagicValue) {
    return Status::Corruption("not an allocation");
  }
  return block->size;
}

uint64_t PAllocator::HeapUsedBytes() const {
  return meta()->heap_top - HeapBeginOffset();
}

}  // namespace hyrise_nv::alloc
