#ifndef HYRISE_NV_ALLOC_PPTR_H_
#define HYRISE_NV_ALLOC_PPTR_H_

#include <cstdint>

#include "nvm/pmem_region.h"

namespace hyrise_nv::alloc {

/// Offset-based persistent pointer.
///
/// NVM-resident structures never store virtual addresses: a region may be
/// mapped at a different address after restart. A PPtr stores the byte
/// offset inside the region; offset 0 (the region header) doubles as null,
/// since no allocation can ever start there.
template <typename T>
struct PPtr {
  uint64_t offset = 0;

  bool IsNull() const { return offset == 0; }

  T* Resolve(nvm::PmemRegion& region) const {
    return IsNull() ? nullptr
                    : reinterpret_cast<T*>(region.base() + offset);
  }
  const T* Resolve(const nvm::PmemRegion& region) const {
    return IsNull() ? nullptr
                    : reinterpret_cast<const T*>(region.base() + offset);
  }

  static PPtr<T> FromPtr(const nvm::PmemRegion& region, const T* ptr) {
    PPtr<T> p;
    p.offset = ptr == nullptr ? 0 : region.OffsetOf(ptr);
    return p;
  }
};

static_assert(sizeof(PPtr<int>) == 8, "PPtr must be a bare offset");

}  // namespace hyrise_nv::alloc

#endif  // HYRISE_NV_ALLOC_PPTR_H_
