#ifndef HYRISE_NV_ALLOC_PHEAP_H_
#define HYRISE_NV_ALLOC_PHEAP_H_

#include <memory>
#include <string>
#include <string_view>

#include "alloc/pallocator.h"
#include "alloc/region_header.h"
#include "common/macros.h"
#include "common/status.h"
#include "nvm/pmem_region.h"
#include "obs/blackbox.h"

namespace hyrise_nv::alloc {

/// A formatted persistent heap: region + header + allocator, the unit the
/// storage engine builds on. Create() formats a fresh region; Open()
/// validates an existing one and runs allocator recovery (reclaiming
/// pending allocation intents) before handing it out.
class PHeap {
 public:
  static Result<std::unique_ptr<PHeap>> Create(
      size_t size, const nvm::PmemRegionOptions& options);

  static Result<std::unique_ptr<PHeap>> Open(
      const nvm::PmemRegionOptions& options);

  /// Maps and validates the region without running allocator recovery or
  /// marking it dirty — the image stays byte-identical, so callers can
  /// deep-verify it first and walk away from a corrupt one. Follow with
  /// FinishOpen() before the first allocation.
  static Result<std::unique_ptr<PHeap>> OpenForInspection(
      const nvm::PmemRegionOptions& options);

  /// Completes an OpenForInspection: allocator intent recovery + dirty
  /// mark. After this the heap is equivalent to one from Open().
  Status FinishOpen();

  ~PHeap();

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(PHeap);

  nvm::PmemRegion& region() { return *region_; }
  PAllocator& allocator() { return *allocator_; }

  /// The flight recorder of this heap's region; nullptr when the region
  /// is too small to host one (obs/blackbox.h). Attached by Create(),
  /// FinishOpen(), and instant restart.
  obs::BlackboxWriter* blackbox() { return blackbox_.get(); }

  /// Attaches (or re-attaches after a simulated crash) the flight
  /// recorder and publishes it as the process-wide current writer.
  void AttachBlackbox();

  /// Whether the previous session ended with CloseClean(). Captured at
  /// open time, before this session marks the region dirty.
  bool was_clean_shutdown() const { return was_clean_; }

  Status SetRoot(std::string_view name, uint64_t offset) {
    return alloc::SetRoot(*region_, name, offset);
  }
  Result<uint64_t> GetRoot(std::string_view name) const {
    return alloc::GetRoot(*region_, name);
  }

  template <typename T>
  T* Resolve(uint64_t offset) {
    HYRISE_NV_DCHECK(offset != 0 && offset < region_->size(),
                     "bad resolve offset");
    return reinterpret_cast<T*>(region_->base() + offset);
  }

  /// Marks the clean-shutdown flag and syncs file-backed regions.
  Status CloseClean();

 private:
  PHeap() = default;

  std::unique_ptr<nvm::PmemRegion> region_;
  std::unique_ptr<PAllocator> allocator_;
  std::unique_ptr<obs::BlackboxWriter> blackbox_;
  bool was_clean_ = false;
};

}  // namespace hyrise_nv::alloc

#endif  // HYRISE_NV_ALLOC_PHEAP_H_
