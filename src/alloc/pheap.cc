#include "alloc/pheap.h"

namespace hyrise_nv::alloc {

PHeap::~PHeap() {
  if (blackbox_ &&
      obs::BlackboxWriter::Current() == blackbox_.get()) {
    obs::BlackboxWriter::SetCurrent(nullptr);
  }
}

void PHeap::AttachBlackbox() {
  blackbox_ = obs::BlackboxWriter::Attach(*region_);
  obs::BlackboxWriter::SetCurrent(blackbox_.get());
}

Result<std::unique_ptr<PHeap>> PHeap::Create(
    size_t size, const nvm::PmemRegionOptions& options) {
  auto heap = std::unique_ptr<PHeap>(new PHeap());
  auto region_result = nvm::PmemRegion::Create(size, options);
  if (!region_result.ok()) return region_result.status();
  heap->region_ = std::move(region_result).ValueUnsafe();
  HYRISE_NV_RETURN_NOT_OK(FormatRegionHeader(*heap->region_));
  HYRISE_NV_RETURN_NOT_OK(PAllocator::Format(*heap->region_));
  obs::BlackboxWriter::Format(*heap->region_);
  heap->allocator_ = std::make_unique<PAllocator>(*heap->region_);
  heap->was_clean_ = false;
  heap->AttachBlackbox();
  return heap;
}

Result<std::unique_ptr<PHeap>> PHeap::OpenForInspection(
    const nvm::PmemRegionOptions& options) {
  auto heap = std::unique_ptr<PHeap>(new PHeap());
  auto region_result = nvm::PmemRegion::Open(options);
  if (!region_result.ok()) return region_result.status();
  heap->region_ = std::move(region_result).ValueUnsafe();
  HYRISE_NV_RETURN_NOT_OK(ValidateRegionHeader(*heap->region_));
  heap->was_clean_ = WasCleanShutdown(*heap->region_);
  heap->allocator_ = std::make_unique<PAllocator>(*heap->region_);
  return heap;
}

Status PHeap::FinishOpen() {
  HYRISE_NV_RETURN_NOT_OK(allocator_->Recover());
  MarkDirty(*region_);
  AttachBlackbox();
  return Status::OK();
}

Result<std::unique_ptr<PHeap>> PHeap::Open(
    const nvm::PmemRegionOptions& options) {
  auto heap_result = OpenForInspection(options);
  if (!heap_result.ok()) return heap_result.status();
  auto heap = std::move(heap_result).ValueUnsafe();
  HYRISE_NV_RETURN_NOT_OK(heap->FinishOpen());
  return heap;
}

Status PHeap::CloseClean() {
  if (blackbox_) {
    blackbox_->Record(obs::BlackboxEventType::kClose, 1);
    blackbox_->Flush();
  }
  MarkClean(*region_);
  if (!region_->file_path().empty()) {
    return region_->SyncToFile();
  }
  return Status::OK();
}

}  // namespace hyrise_nv::alloc
