#ifndef HYRISE_NV_NET_WIRE_H_
#define HYRISE_NV_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/types.h"

namespace hyrise_nv::net {

/// Binary wire protocol for the serving layer (DESIGN.md §10, §17).
///
/// Version 1 frames every message as:
///
///   [u32 payload_len][u32 masked CRC32C(payload)][payload bytes]
///
/// Version 2 (negotiated at handshake) extends the header with a
/// client-chosen request tag, CRC-covered so a corrupted tag cannot
/// misroute a response:
///
///   [u32 payload_len][u32 masked CRC32C(tag || payload)][u32 tag][payload]
///
/// Integers are little-endian. The CRC is masked (LevelDB-style, same as
/// the storage seals) so a frame whose payload itself carries CRCs never
/// accidentally verifies. `payload_len` counts payload bytes only (the
/// tag is header) and is bounded by kMaxFrameBytes; a peer announcing
/// more is a protocol error and the connection is closed without reading
/// the body.
///
/// Request payload:  [u8 opcode][body...]
/// Response payload: [u8 opcode (echoed)][u8 wire code][body... | error msg]
///
/// A non-OK wire code carries a length-prefixed UTF-8 message as its
/// body. The wire code space is the engine's StatusCode byte-for-byte,
/// plus serving-layer-only codes (kOverloaded, kDraining) that map back
/// to richer Status messages in the client (DESIGN.md §10.2).
///
/// The first frame on a connection must be kHello (protocol version
/// negotiation). Everything else before a successful handshake is a
/// protocol error. The hello exchange itself is ALWAYS v1-framed in both
/// directions — the framing switches to v2 only after both sides know the
/// negotiated version. A v2 hello request appends [u32 requested_window]
/// and a v2 hello response appends [u32 granted_window]; a v1 peer never
/// sees either field (DESIGN.md §17).

// --- Protocol constants ---------------------------------------------------

constexpr uint32_t kHelloMagic = 0x4C51564E;  // "NVQL" little-endian
constexpr uint16_t kProtocolVersionMin = 1;
constexpr uint16_t kProtocolVersionMax = 2;
constexpr uint32_t kFrameHeaderBytes = 8;
/// v2 tagged-frame header: [u32 len][u32 crc][u32 tag].
constexpr uint32_t kFrameHeaderBytesV2 = 12;
constexpr uint32_t kMaxFrameBytes = 8u << 20;  // 8 MiB payload cap
/// Pipeline window bounds (v2). The window is the number of requests a
/// connection may have outstanding (received by the server, response not
/// yet handed to the socket); requests beyond it are shed with the
/// retryable kOverloaded code, never a connection close.
constexpr uint32_t kDefaultPipelineWindow = 32;
constexpr uint32_t kMaxPipelineWindow = 256;

/// Request opcodes. Values are wire format; append only.
enum class Opcode : uint8_t {
  kHello = 1,
  kPing = 2,
  kBegin = 3,
  kCommit = 4,
  kAbort = 5,
  kInsert = 6,
  kUpdate = 7,
  kDelete = 8,
  kScanEqual = 9,
  kScanRange = 10,
  kCount = 11,
  kCreateTable = 12,
  kCreateIndex = 13,
  kStats = 14,
  kRecoveryInfo = 15,
  kCheckpoint = 16,
  kDrain = 17,
  // Two-phase commit (DESIGN.md §16). kPrepare seals the session
  // transaction's writes durably under a coordinator-issued global txn id;
  // kDecide commits or aborts a prepared transaction by gtid (idempotent —
  // unknown gtids answer OK so coordinator retries and reconnect races are
  // harmless); kInDoubt lists prepared-but-undecided gtids for the
  // coordinator's recovery handshake.
  kPrepare = 18,
  kDecide = 19,
  kInDoubt = 20,
  // Pipelined autocommit write (v2 only). One frame carries a whole DML
  // batch: the server begins a transaction, applies every op, and
  // commits once — one group-commit fsync and one ordered publish for
  // the batch, atomically (any failure aborts the whole batch). Body:
  // [u32 count] then per op [u8 kind: 1=insert 2=update 3=delete]
  // followed by the op's body without a tid (insert: [str table][row],
  // update: [str table][loc][row], delete: [str table][loc]). Response
  // body: [u32 count][loc]*count [u64 cid]; an error response carries
  // the failing op index as "op N: message".
  kDmlBatch = 21,
};

constexpr Opcode kLastOpcode = Opcode::kDmlBatch;

const char* OpcodeName(Opcode op);
bool IsKnownOpcode(uint8_t op);

/// Wire error codes. 0..10 mirror StatusCode values exactly; the serving
/// layer appends its own codes above them.
enum class WireCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kIOError = 5,
  kOutOfMemory = 6,
  kTransactionConflict = 7,
  kAborted = 8,
  kNotSupported = 9,
  kInternal = 10,
  // Serving-layer codes (no StatusCode twin).
  kOverloaded = 32,  // 503-style admission-control rejection; retryable
  kDraining = 33,    // server is shutting down gracefully; retryable
  kProtocolError = 34,  // malformed frame/handshake; connection closes
  kWarming = 35,  // serving degraded during recovery drain; retryable
};

/// Status → wire code. Every engine StatusCode maps byte-for-byte.
WireCode WireCodeFromStatus(const Status& status);
/// Wire code + message → Status. Serving-layer codes come back as
/// kIOError ("overloaded: ...", "draining: ...", "warming: ...") so
/// existing retry logic branching on StatusCode keeps working;
/// IsRetryableWireCode tells transient rejections apart from hard
/// failures.
Status StatusFromWire(WireCode code, const std::string& message);
bool IsRetryableWireCode(WireCode code);
const char* WireCodeName(WireCode code);

// --- Serialization primitives ---------------------------------------------

/// Append-only little-endian encoder over a byte vector.
class WireWriter {
 public:
  explicit WireWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Value(const storage::Value& v);
  void Row(const std::vector<storage::Value>& row);
  void Loc(storage::RowLocation loc) {
    U8(loc.in_main ? 1 : 0);
    U64(loc.row);
  }

 private:
  void Raw(const void* data, size_t len) {
    const auto* bytes = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), bytes, bytes + len);
  }
  std::vector<uint8_t>* out_;
};

/// Bounds-checked little-endian decoder. Any out-of-bounds read latches
/// the error flag and returns zero values; callers check ok() once at the
/// end instead of after every field. Never reads past the buffer.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint16_t U16() {
    uint16_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string Str();
  storage::Value Value();
  std::vector<storage::Value> Row();
  storage::RowLocation Loc() {
    storage::RowLocation loc;
    loc.in_main = U8() != 0;
    loc.row = U64();
    return loc;
  }

  bool ok() const { return !error_; }
  /// True when the whole buffer was consumed and no read overran.
  bool Exhausted() const { return ok() && pos_ == len_; }
  size_t remaining() const { return len_ - pos_; }

 private:
  void Raw(void* out, size_t n) {
    if (error_ || len_ - pos_ < n) {
      error_ = true;
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool error_ = false;
};

// --- Framing --------------------------------------------------------------

/// Wraps `payload` in a v1 frame (length prefix + masked CRC).
std::vector<uint8_t> EncodeFrame(const std::vector<uint8_t>& payload);

/// Wraps `payload` in a v2 tagged frame. The CRC covers tag || payload.
std::vector<uint8_t> EncodeTaggedFrame(uint32_t tag,
                                       const std::vector<uint8_t>& payload);

/// Parses the frame header's length word (shared by v1 and v2 — the
/// length is the first field of both). Fails with InvalidArgument when
/// the announced length exceeds `max_payload` (oversized frames are
/// rejected before any body byte is read).
Result<uint32_t> DecodeFrameHeader(const uint8_t header[kFrameHeaderBytes],
                                   uint32_t max_payload = kMaxFrameBytes);

/// Verifies the payload against the masked CRC from the frame header.
Status CheckFrameCrc(const uint8_t header[kFrameHeaderBytes],
                     const uint8_t* payload, uint32_t len);

/// The tag field of a v2 header.
uint32_t TaggedFrameTag(const uint8_t header[kFrameHeaderBytesV2]);

/// Verifies a v2 frame: the masked CRC must cover tag || payload, so a
/// flipped tag bit fails exactly like a flipped payload bit.
Status CheckTaggedFrameCrc(const uint8_t header[kFrameHeaderBytesV2],
                           const uint8_t* payload, uint32_t len);

// --- Message helpers ------------------------------------------------------

/// Builds a response payload: opcode echo + wire code (+ error message
/// for non-OK codes). OK responses append their body via the returned
/// WireWriter by the caller.
std::vector<uint8_t> MakeErrorPayload(Opcode op, WireCode code,
                                      const std::string& message);
std::vector<uint8_t> MakeStatusPayload(Opcode op, const Status& status);

/// One scanned row on the wire: location + materialised values.
struct WireRow {
  storage::RowLocation loc;
  std::vector<storage::Value> values;
};

}  // namespace hyrise_nv::net

#endif  // HYRISE_NV_NET_WIRE_H_
