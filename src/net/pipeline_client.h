#ifndef HYRISE_NV_NET_PIPELINE_CLIENT_H_
#define HYRISE_NV_NET_PIPELINE_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/net_util.h"
#include "net/wire.h"
#include "storage/types.h"

namespace hyrise_nv::net {

struct PipelineClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2'000;
  /// Per-completion read timeout. 0 waits forever.
  int read_timeout_ms = 10'000;
  /// Pipeline window to request at the handshake (0 = server default).
  /// The server may grant less; window() has the negotiated value and
  /// Submit() respects it.
  uint32_t request_window = 0;
};

/// Async pipelined client for NVQL wire v2 (DESIGN.md §17).
///
/// Submit() hands a request payload to the connection and returns its
/// tag immediately — the slot. Up to window() requests ride the wire at
/// once; when the window is full, Submit blocks reading completions
/// until a slot frees. Completions are delivered by Next() in SUBMIT
/// order regardless of the order the server finished them in (v2 lets
/// ad-hoc reads complete out of order; this client stashes early
/// arrivals), or by Await(tag) for a specific request.
///
/// Not thread-safe: one PipelinedClient per thread. A response carrying
/// a tag that was never submitted (or already completed) means the
/// stream is out of sync — the client surfaces IOError and closes.
class PipelinedClient {
 public:
  PipelinedClient() = default;
  explicit PipelinedClient(PipelineClientOptions options)
      : options_(std::move(options)) {}
  ~PipelinedClient() { Close(); }

  HYRISE_NV_DISALLOW_COPY(PipelinedClient);
  PipelinedClient(PipelinedClient&&) = default;
  PipelinedClient& operator=(PipelinedClient&&) = default;

  /// Dials and handshakes. Fails with kNotSupported if the server only
  /// speaks v1 — pipelining needs tagged frames.
  Status Connect();
  void Close();
  bool connected() const { return fd_.valid(); }

  /// Negotiated pipeline window (after Connect).
  uint32_t window() const { return window_; }
  uint8_t server_mode() const { return server_mode_; }
  uint64_t session_id() const { return session_id_; }
  /// Requests submitted whose completions have not been consumed.
  size_t outstanding() const { return order_.size(); }

  struct Completion {
    uint32_t tag = 0;
    Opcode op = Opcode::kPing;
    WireCode code = WireCode::kOk;
    /// Response body after [opcode][code] — the error message for a
    /// non-OK code.
    std::vector<uint8_t> body;
    /// The wire code as an engine Status (OK for kOk).
    Status ToStatus() const;
  };

  /// Queues one request; returns its tag. Blocks draining completions
  /// into the stash only when the window is full.
  Result<uint32_t> Submit(const std::vector<uint8_t>& payload);

  /// Completion of the OLDEST not-yet-consumed submission (FIFO by
  /// submit order). Blocks until it arrives, stashing out-of-order
  /// completions for later Next/Await calls.
  Result<Completion> Next();

  /// Completion of a specific submitted tag.
  Result<Completion> Await(uint32_t tag);

  /// Convenience: drains every outstanding completion, returning the
  /// first non-OK status (transport or wire) and OK otherwise.
  Status DrainAll();

 private:
  /// Reads one tagged frame into the stash.
  Status ReadOne();

  PipelineClientOptions options_;
  OwnedFd fd_;
  uint32_t window_ = 0;
  uint8_t server_mode_ = 0;
  uint64_t session_id_ = 0;
  uint32_t next_tag_ = 1;
  /// Submitted-but-unconsumed tags, oldest first.
  std::deque<uint32_t> order_;
  /// Completions that arrived before their Next()/Await() turn.
  std::unordered_map<uint32_t, Completion> stash_;
};

/// Request-payload builders for pipelined submission (the blocking
/// Client hides payloads behind its typed API; a pipelined caller hands
/// them to Submit directly).
std::vector<uint8_t> MakePingPayload();
std::vector<uint8_t> MakeScanEqualPayload(const std::string& table,
                                          uint32_t column,
                                          const storage::Value& value,
                                          uint32_t limit = 0);
std::vector<uint8_t> MakeCountPayload(const std::string& table);
/// Single-insert kDmlBatch frame (autocommit).
std::vector<uint8_t> MakeInsertBatchPayload(
    const std::string& table, const std::vector<storage::Value>& row);

}  // namespace hyrise_nv::net

#endif  // HYRISE_NV_NET_PIPELINE_CLIENT_H_
