#ifndef HYRISE_NV_NET_NET_UTIL_H_
#define HYRISE_NV_NET_NET_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/wire.h"

namespace hyrise_nv::net {

/// RAII file descriptor. -1 means "none".
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  HYRISE_NV_DISALLOW_COPY(OwnedFd);

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to host:port (port 0 picks an
/// ephemeral port) with SO_REUSEADDR, non-blocking, backlog 128.
Result<OwnedFd> CreateListener(const std::string& host, uint16_t port);

/// The port a bound socket actually listens on (resolves port 0).
Result<uint16_t> LocalPort(int fd);

/// Blocking TCP connect with a millisecond timeout. TCP_NODELAY is set:
/// the protocol is request/response and Nagle would serialise it against
/// delayed ACKs.
Result<OwnedFd> ConnectTcp(const std::string& host, uint16_t port,
                           int timeout_ms);

Status SetNonBlocking(int fd);
Status SetNoDelay(int fd);
/// True when TCP_NODELAY is set on `fd` (socket-option regression tests).
Result<bool> GetNoDelay(int fd);

/// One place for every accept path (server, router) to configure a
/// freshly accepted socket. Sets TCP_NODELAY — a single Nagle socket
/// serialises the pipelined protocol against delayed ACKs and hides the
/// whole batching win, so this is asserted by a regression test rather
/// than sprinkled per call site.
Status ConfigureAcceptedSocket(int fd);

/// Writes all of `data` (blocking; MSG_NOSIGNAL, EINTR-safe).
Status SendAll(int fd, const void* data, size_t len);

/// Reads exactly `len` bytes (blocking). A clean peer close mid-read
/// returns IOError "connection closed"; `timeout_ms` > 0 bounds the wait
/// per read via SO_RCVTIMEO semantics (poll-based, so it composes with
/// blocking sockets).
Status RecvAll(int fd, void* out, size_t len, int timeout_ms = 0);

/// Blocking frame I/O for clients and tests. WriteFrame frames and sends
/// `payload`; ReadFrame receives one frame, validating length cap and
/// CRC.
Status WriteFrame(int fd, const std::vector<uint8_t>& payload);
Result<std::vector<uint8_t>> ReadFrame(int fd, int timeout_ms = 0,
                                       uint32_t max_payload =
                                           kMaxFrameBytes);

/// Blocking v2 tagged-frame I/O (post-handshake on a v2 connection).
struct TaggedFrame {
  uint32_t tag = 0;
  std::vector<uint8_t> payload;
};
Status WriteTaggedFrame(int fd, uint32_t tag,
                        const std::vector<uint8_t>& payload);
Result<TaggedFrame> ReadTaggedFrame(int fd, int timeout_ms = 0,
                                    uint32_t max_payload = kMaxFrameBytes);

/// Raises RLIMIT_NOFILE's soft limit towards min(want, hard limit).
/// Best-effort: returns the soft limit in effect afterwards, which may be
/// below `want` on constrained systems — callers decide whether that is
/// fatal for their connection count.
uint64_t RaiseFdLimit(uint64_t want);

}  // namespace hyrise_nv::net

#endif  // HYRISE_NV_NET_NET_UTIL_H_
