#include "net/wire.h"

#include "common/crc32.h"

namespace hyrise_nv::net {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kHello:
      return "hello";
    case Opcode::kPing:
      return "ping";
    case Opcode::kBegin:
      return "begin";
    case Opcode::kCommit:
      return "commit";
    case Opcode::kAbort:
      return "abort";
    case Opcode::kInsert:
      return "insert";
    case Opcode::kUpdate:
      return "update";
    case Opcode::kDelete:
      return "delete";
    case Opcode::kScanEqual:
      return "scan_equal";
    case Opcode::kScanRange:
      return "scan_range";
    case Opcode::kCount:
      return "count";
    case Opcode::kCreateTable:
      return "create_table";
    case Opcode::kCreateIndex:
      return "create_index";
    case Opcode::kStats:
      return "stats";
    case Opcode::kRecoveryInfo:
      return "recovery_info";
    case Opcode::kCheckpoint:
      return "checkpoint";
    case Opcode::kDrain:
      return "drain";
    case Opcode::kPrepare:
      return "prepare";
    case Opcode::kDecide:
      return "decide";
    case Opcode::kInDoubt:
      return "in_doubt";
    case Opcode::kDmlBatch:
      return "dml_batch";
  }
  return "unknown";
}

bool IsKnownOpcode(uint8_t op) {
  return op >= static_cast<uint8_t>(Opcode::kHello) &&
         op <= static_cast<uint8_t>(kLastOpcode);
}

WireCode WireCodeFromStatus(const Status& status) {
  // StatusCode values 0..10 are the wire format for engine errors; the
  // static_asserts pin the correspondence so a StatusCode edit cannot
  // silently shift what peers see.
  static_assert(static_cast<int>(StatusCode::kOk) ==
                static_cast<int>(WireCode::kOk));
  static_assert(static_cast<int>(StatusCode::kInternal) ==
                static_cast<int>(WireCode::kInternal));
  return static_cast<WireCode>(static_cast<uint8_t>(status.code()));
}

Status StatusFromWire(WireCode code, const std::string& message) {
  switch (code) {
    case WireCode::kOk:
      return Status::OK();
    case WireCode::kOverloaded:
      return Status::IOError("overloaded: " + message);
    case WireCode::kDraining:
      return Status::IOError("draining: " + message);
    case WireCode::kWarming:
      return Status::IOError("warming: " + message);
    case WireCode::kProtocolError:
      return Status::InvalidArgument("protocol error: " + message);
    default:
      break;
  }
  const auto raw = static_cast<uint8_t>(code);
  if (raw > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Internal("unknown wire code " + std::to_string(raw) +
                            ": " + message);
  }
  return Status(static_cast<StatusCode>(raw), message);
}

bool IsRetryableWireCode(WireCode code) {
  return code == WireCode::kOverloaded || code == WireCode::kDraining ||
         code == WireCode::kWarming;
}

const char* WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOverloaded:
      return "Overloaded";
    case WireCode::kDraining:
      return "Draining";
    case WireCode::kWarming:
      return "Warming";
    case WireCode::kProtocolError:
      return "ProtocolError";
    default:
      return StatusCodeName(static_cast<StatusCode>(code));
  }
}

void WireWriter::Value(const storage::Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    U8(1);
    U64(static_cast<uint64_t>(*i));
  } else if (const auto* d = std::get_if<double>(&v)) {
    U8(2);
    F64(*d);
  } else {
    U8(3);
    Str(std::get<std::string>(v));
  }
}

void WireWriter::Row(const std::vector<storage::Value>& row) {
  U16(static_cast<uint16_t>(row.size()));
  for (const auto& v : row) Value(v);
}

std::string WireReader::Str() {
  const uint32_t n = U32();
  if (error_ || len_ - pos_ < n) {
    error_ = true;
    return std::string();
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

storage::Value WireReader::Value() {
  switch (U8()) {
    case 1:
      return storage::Value(static_cast<int64_t>(U64()));
    case 2:
      return storage::Value(F64());
    case 3:
      return storage::Value(Str());
    default:
      error_ = true;
      return storage::Value(int64_t{0});
  }
}

std::vector<storage::Value> WireReader::Row() {
  const uint16_t n = U16();
  std::vector<storage::Value> row;
  // A malicious count cannot make us allocate past the frame: each value
  // is at least 2 bytes on the wire, so cap the reserve by what is left.
  if (error_ || n > remaining()) {
    error_ = true;
    return row;
  }
  row.reserve(n);
  for (uint16_t i = 0; i < n && !error_; ++i) row.push_back(Value());
  return row;
}

std::vector<uint8_t> EncodeFrame(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  WireWriter writer(&frame);
  writer.U32(static_cast<uint32_t>(payload.size()));
  writer.U32(MaskCrc(Crc32c(payload.data(), payload.size())));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::vector<uint8_t> EncodeTaggedFrame(uint32_t tag,
                                       const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytesV2 + payload.size());
  WireWriter writer(&frame);
  writer.U32(static_cast<uint32_t>(payload.size()));
  const uint32_t tag_crc = Crc32c(&tag, sizeof(tag));
  writer.U32(MaskCrc(Crc32c(payload.data(), payload.size(), tag_crc)));
  writer.U32(tag);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

uint32_t TaggedFrameTag(const uint8_t header[kFrameHeaderBytesV2]) {
  uint32_t tag;
  std::memcpy(&tag, header + 8, sizeof(tag));
  return tag;
}

Status CheckTaggedFrameCrc(const uint8_t header[kFrameHeaderBytesV2],
                           const uint8_t* payload, uint32_t len) {
  uint32_t masked;
  std::memcpy(&masked, header + 4, sizeof(masked));
  const uint32_t expected = UnmaskCrc(masked);
  const uint32_t tag_crc = Crc32c(header + 8, sizeof(uint32_t));
  const uint32_t actual = Crc32c(payload, len, tag_crc);
  if (expected != actual) {
    return Status::Corruption("tagged frame CRC mismatch");
  }
  return Status::OK();
}

Result<uint32_t> DecodeFrameHeader(const uint8_t header[kFrameHeaderBytes],
                                   uint32_t max_payload) {
  uint32_t len;
  std::memcpy(&len, header, sizeof(len));
  if (len > max_payload) {
    return Status::InvalidArgument(
        "frame announces " + std::to_string(len) + " bytes (cap " +
        std::to_string(max_payload) + ")");
  }
  if (len == 0) {
    return Status::InvalidArgument("empty frame (no opcode)");
  }
  return len;
}

Status CheckFrameCrc(const uint8_t header[kFrameHeaderBytes],
                     const uint8_t* payload, uint32_t len) {
  uint32_t masked;
  std::memcpy(&masked, header + 4, sizeof(masked));
  const uint32_t expected = UnmaskCrc(masked);
  const uint32_t actual = Crc32c(payload, len);
  if (expected != actual) {
    return Status::Corruption("frame CRC mismatch");
  }
  return Status::OK();
}

std::vector<uint8_t> MakeErrorPayload(Opcode op, WireCode code,
                                      const std::string& message) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(op));
  writer.U8(static_cast<uint8_t>(code));
  writer.Str(message);
  return payload;
}

std::vector<uint8_t> MakeStatusPayload(Opcode op, const Status& status) {
  if (!status.ok()) {
    return MakeErrorPayload(op, WireCodeFromStatus(status),
                            status.message());
  }
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(op));
  writer.U8(static_cast<uint8_t>(WireCode::kOk));
  return payload;
}

}  // namespace hyrise_nv::net
