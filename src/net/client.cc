#include "net/client.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

namespace hyrise_nv::net {

namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

Status Client::ConnectOnce() {
  Close();
  auto fd_result =
      ConnectTcp(options_.host, options_.port, options_.connect_timeout_ms);
  if (!fd_result.ok()) return fd_result.status();
  fd_ = std::move(fd_result).ValueUnsafe();
  Status status = Handshake();
  if (!status.ok()) Close();
  return status;
}

Status Client::Connect() {
  int backoff_ms = options_.retry_base_ms;
  Status last;
  last_connect_attempts_ = 0;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    ++last_connect_attempts_;
    last = ConnectOnce();
    if (last.ok()) return last;
    // A draining server will never come back on this address during this
    // process's lifetime less often than a restarting one; both are
    // worth retrying. Hard protocol errors (version mismatch) are not.
    if (last.code() == StatusCode::kNotSupported) return last;
    if (attempt == options_.max_retries) break;
    SleepMs(backoff_ms);
    backoff_ms = std::min(backoff_ms * 2, options_.retry_cap_ms);
  }
  return last;
}

void Client::Close() {
  fd_.Reset();
  session_id_ = 0;
  current_tid_ = 0;
}

Status Client::Handshake() {
  // The hello exchange is ALWAYS v1-framed in both directions; framing
  // switches to tagged v2 only after both sides know the negotiated
  // version (DESIGN.md §17).
  const uint16_t offer_max =
      std::min(options_.protocol_max, kProtocolVersionMax);
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kHello));
  writer.U32(kHelloMagic);
  writer.U16(kProtocolVersionMin);
  writer.U16(std::max(offer_max, kProtocolVersionMin));
  if (offer_max >= 2) {
    writer.U32(options_.request_window);
  }
  HYRISE_NV_RETURN_NOT_OK(WriteFrame(fd_.get(), payload));
  auto frame_result = ReadFrame(fd_.get(), options_.read_timeout_ms);
  if (!frame_result.ok()) return frame_result.status();
  WireReader reader(frame_result->data(), frame_result->size());
  const uint8_t op = reader.U8();
  const WireCode code = static_cast<WireCode>(reader.U8());
  last_wire_code_ = code;
  if (!reader.ok() || op != static_cast<uint8_t>(Opcode::kHello)) {
    return Status::IOError("malformed handshake response");
  }
  if (code != WireCode::kOk) {
    return StatusFromWire(code, reader.Str());
  }
  protocol_version_ = reader.U16();
  server_mode_ = reader.U8();
  session_id_ = reader.U64();
  pipeline_window_ = 0;
  if (reader.ok() && protocol_version_ >= 2) {
    pipeline_window_ = reader.U32();
  }
  if (!reader.ok()) {
    return Status::IOError("truncated handshake response");
  }
  next_tag_ = 1;
  return Status::OK();
}

Result<std::vector<uint8_t>> Client::Roundtrip(
    const std::vector<uint8_t>& payload) {
  if (!connected()) {
    return Status::IOError("client is not connected");
  }
  const auto rtt_start = std::chrono::steady_clock::now();
  const auto stamp_rtt = [&] {
    last_rtt_ns_ = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - rtt_start)
            .count());
  };
  Status status;
  if (protocol_version_ >= 2) {
    // One outstanding request at a time, but over the negotiated tagged
    // framing: the server echoes the tag and a mismatch means the
    // session's response stream is out of sync — unrecoverable here.
    const uint32_t tag = next_tag_++;
    if (next_tag_ == 0) next_tag_ = 1;  // 0 is fine but keep tags nonzero
    status = WriteTaggedFrame(fd_.get(), tag, payload);
    if (status.ok()) {
      auto frame_result =
          ReadTaggedFrame(fd_.get(), options_.read_timeout_ms);
      stamp_rtt();
      if (frame_result.ok()) {
        if (frame_result->tag != tag) {
          status = Status::IOError(
              "response tag mismatch: sent " + std::to_string(tag) +
              ", got " + std::to_string(frame_result->tag));
        } else {
          return std::move(frame_result->payload);
        }
      } else {
        status = frame_result.status();
      }
    } else {
      stamp_rtt();
    }
  } else {
    status = WriteFrame(fd_.get(), payload);
    if (status.ok()) {
      auto frame_result = ReadFrame(fd_.get(), options_.read_timeout_ms);
      stamp_rtt();
      if (frame_result.ok()) return frame_result;
      status = frame_result.status();
    } else {
      stamp_rtt();
    }
  }
  // Transport failure: this connection is gone. Re-dial so the next
  // request works, but surface the failure — the request may or may not
  // have executed server-side, and only the caller can decide whether it
  // is safe to replay.
  Close();
  if (options_.auto_reconnect) {
    (void)Connect();
  }
  return status;
}

Result<std::vector<uint8_t>> Client::Call(
    Opcode op, const std::vector<uint8_t>& payload) {
  auto response_result = Roundtrip(payload);
  if (!response_result.ok()) return response_result.status();
  std::vector<uint8_t>& response = *response_result;
  WireReader reader(response.data(), response.size());
  const uint8_t echoed = reader.U8();
  const WireCode code = static_cast<WireCode>(reader.U8());
  if (!reader.ok()) {
    return Status::IOError("truncated response header");
  }
  last_wire_code_ = code;
  if (echoed != static_cast<uint8_t>(op)) {
    return Status::IOError("response opcode mismatch: sent " +
                           std::string(OpcodeName(op)) + ", got " +
                           std::to_string(echoed));
  }
  if (code != WireCode::kOk) {
    return StatusFromWire(code, reader.Str());
  }
  // Body = everything after [opcode][code].
  return std::vector<uint8_t>(response.begin() + 2, response.end());
}

Result<Client::BeginInfo> Client::Begin() {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kBegin));
  auto body_result = Call(Opcode::kBegin, payload);
  if (!body_result.ok()) return body_result.status();
  WireReader reader(body_result->data(), body_result->size());
  BeginInfo info;
  info.tid = reader.U64();
  info.snapshot = reader.U64();
  if (!reader.ok()) return Status::IOError("truncated begin response");
  current_tid_ = info.tid;
  return info;
}

Result<uint64_t> Client::Commit() {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kCommit));
  writer.U64(0);  // 0 = the session's open transaction
  auto body_result = Call(Opcode::kCommit, payload);
  // The transaction ends either way: a conflict aborts it server-side.
  current_tid_ = 0;
  if (!body_result.ok()) return body_result.status();
  WireReader reader(body_result->data(), body_result->size());
  const uint64_t cid = reader.U64();
  if (!reader.ok()) return Status::IOError("truncated commit response");
  return cid;
}

Status Client::Abort() {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kAbort));
  writer.U64(0);
  current_tid_ = 0;
  return Call(Opcode::kAbort, payload).status();
}

Status Client::Prepare(uint64_t gtid) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kPrepare));
  writer.U64(0);  // 0 = the session's open transaction
  writer.U64(gtid);
  Status status = Call(Opcode::kPrepare, payload).status();
  // A successful prepare detaches the transaction from this session.
  if (status.ok()) current_tid_ = 0;
  return status;
}

Status Client::Decide(uint64_t gtid, bool commit) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kDecide));
  writer.U64(gtid);
  writer.U8(commit ? 1 : 0);
  return Call(Opcode::kDecide, payload).status();
}

Result<std::vector<uint64_t>> Client::InDoubt() {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kInDoubt));
  auto body_result = Call(Opcode::kInDoubt, payload);
  if (!body_result.ok()) return body_result.status();
  WireReader reader(body_result->data(), body_result->size());
  const uint32_t count = reader.U32();
  std::vector<uint64_t> gtids;
  gtids.reserve(count);
  for (uint32_t i = 0; i < count && reader.ok(); ++i) {
    gtids.push_back(reader.U64());
  }
  if (!reader.ok() || gtids.size() != count) {
    return Status::IOError("truncated in_doubt response");
  }
  return gtids;
}

Result<storage::RowLocation> Client::Insert(
    const std::string& table, const std::vector<storage::Value>& row) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kInsert));
  writer.U64(0);
  writer.Str(table);
  writer.Row(row);
  auto body_result = Call(Opcode::kInsert, payload);
  if (!body_result.ok()) return body_result.status();
  WireReader reader(body_result->data(), body_result->size());
  const storage::RowLocation loc = reader.Loc();
  if (!reader.ok()) return Status::IOError("truncated insert response");
  return loc;
}

Result<storage::RowLocation> Client::Update(
    const std::string& table, storage::RowLocation loc,
    const std::vector<storage::Value>& row) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kUpdate));
  writer.U64(0);
  writer.Str(table);
  writer.Loc(loc);
  writer.Row(row);
  auto body_result = Call(Opcode::kUpdate, payload);
  if (!body_result.ok()) return body_result.status();
  WireReader reader(body_result->data(), body_result->size());
  const storage::RowLocation new_loc = reader.Loc();
  if (!reader.ok()) return Status::IOError("truncated update response");
  return new_loc;
}

Status Client::Delete(const std::string& table, storage::RowLocation loc) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kDelete));
  writer.U64(0);
  writer.Str(table);
  writer.Loc(loc);
  return Call(Opcode::kDelete, payload).status();
}

Result<Client::DmlBatchResult> Client::DmlBatch(
    const std::vector<DmlOp>& ops) {
  if (ops.empty()) {
    return Status::InvalidArgument("empty dml batch");
  }
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kDmlBatch));
  writer.U32(static_cast<uint32_t>(ops.size()));
  for (const DmlOp& op : ops) {
    writer.U8(op.kind);
    writer.Str(op.table);
    switch (op.kind) {
      case DmlOp::kInsert:
        writer.Row(op.row);
        break;
      case DmlOp::kUpdate:
        writer.Loc(op.loc);
        writer.Row(op.row);
        break;
      case DmlOp::kDelete:
        writer.Loc(op.loc);
        break;
      default:
        return Status::InvalidArgument("bad dml op kind " +
                                       std::to_string(op.kind));
    }
  }
  auto body_result = Call(Opcode::kDmlBatch, payload);
  if (!body_result.ok()) return body_result.status();
  WireReader reader(body_result->data(), body_result->size());
  DmlBatchResult result;
  const uint32_t count = reader.U32();
  if (!reader.ok() || count != ops.size()) {
    return Status::IOError("truncated dml_batch response");
  }
  result.locs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) result.locs.push_back(reader.Loc());
  result.cid = reader.U64();
  if (!reader.ok()) return Status::IOError("truncated dml_batch response");
  return result;
}

namespace {

Result<ScanResult> ParseScanBody(const std::vector<uint8_t>& body) {
  WireReader reader(body.data(), body.size());
  ScanResult result;
  result.truncated = reader.U8() != 0;
  const uint32_t n = reader.U32();
  for (uint32_t i = 0; i < n && reader.ok(); ++i) {
    WireRow row;
    row.loc = reader.Loc();
    row.values = reader.Row();
    result.rows.push_back(std::move(row));
  }
  if (!reader.ok()) return Status::IOError("truncated scan response");
  return result;
}

}  // namespace

Result<ScanResult> Client::ScanEqual(const std::string& table,
                                     uint32_t column,
                                     const storage::Value& value,
                                     bool in_txn, uint32_t limit) {
  if (in_txn && current_tid_ == 0) {
    return Status::InvalidArgument("no open transaction on this client");
  }
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kScanEqual));
  writer.U64(in_txn ? current_tid_ : 0);
  writer.Str(table);
  writer.U32(column);
  writer.Value(value);
  writer.U32(limit);
  auto body_result = Call(Opcode::kScanEqual, payload);
  if (!body_result.ok()) return body_result.status();
  return ParseScanBody(*body_result);
}

Result<ScanResult> Client::ScanRange(const std::string& table,
                                     uint32_t column,
                                     const storage::Value& lo,
                                     const storage::Value& hi, bool in_txn,
                                     uint32_t limit) {
  if (in_txn && current_tid_ == 0) {
    return Status::InvalidArgument("no open transaction on this client");
  }
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kScanRange));
  writer.U64(in_txn ? current_tid_ : 0);
  writer.Str(table);
  writer.U32(column);
  writer.Value(lo);
  writer.Value(hi);
  writer.U32(limit);
  auto body_result = Call(Opcode::kScanRange, payload);
  if (!body_result.ok()) return body_result.status();
  return ParseScanBody(*body_result);
}

Result<uint64_t> Client::Count(const std::string& table, bool in_txn) {
  if (in_txn && current_tid_ == 0) {
    return Status::InvalidArgument("no open transaction on this client");
  }
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kCount));
  writer.U64(in_txn ? current_tid_ : 0);
  writer.Str(table);
  auto body_result = Call(Opcode::kCount, payload);
  if (!body_result.ok()) return body_result.status();
  WireReader reader(body_result->data(), body_result->size());
  const uint64_t count = reader.U64();
  if (!reader.ok()) return Status::IOError("truncated count response");
  return count;
}

Result<uint64_t> Client::CreateTable(
    const std::string& name,
    const std::vector<std::pair<std::string, storage::DataType>>& columns) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kCreateTable));
  writer.Str(name);
  writer.U16(static_cast<uint16_t>(columns.size()));
  for (const auto& [col_name, type] : columns) {
    writer.Str(col_name);
    writer.U8(static_cast<uint8_t>(type));
  }
  auto body_result = Call(Opcode::kCreateTable, payload);
  if (!body_result.ok()) return body_result.status();
  WireReader reader(body_result->data(), body_result->size());
  const uint64_t id = reader.U64();
  if (!reader.ok()) {
    return Status::IOError("truncated create-table response");
  }
  return id;
}

Status Client::CreateIndex(const std::string& table, uint32_t column,
                           uint8_t kind) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kCreateIndex));
  writer.Str(table);
  writer.U32(column);
  writer.U8(kind);
  return Call(Opcode::kCreateIndex, payload).status();
}

Status Client::Ping() {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kPing));
  return Call(Opcode::kPing, payload).status();
}

Result<std::string> Client::Stats() {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kStats));
  auto body_result = Call(Opcode::kStats, payload);
  if (!body_result.ok()) return body_result.status();
  WireReader reader(body_result->data(), body_result->size());
  std::string json = reader.Str();
  if (!reader.ok()) return Status::IOError("truncated stats response");
  return json;
}

Result<std::string> Client::RecoveryInfo() {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kRecoveryInfo));
  auto body_result = Call(Opcode::kRecoveryInfo, payload);
  if (!body_result.ok()) return body_result.status();
  WireReader reader(body_result->data(), body_result->size());
  std::string json = reader.Str();
  if (!reader.ok()) {
    return Status::IOError("truncated recovery-info response");
  }
  return json;
}

Status Client::WaitUntilReady(int timeout_ms, int poll_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    auto info_result = RecoveryInfo();
    if (info_result.ok()) {
      // Servers predating the serving_state field have no degraded mode:
      // an absent key means ready.
      if (info_result->find("\"serving_state\":\"degraded\"") ==
          std::string::npos) {
        return Status::OK();
      }
    } else if (!IsRetryableWireCode(last_wire_code_)) {
      return info_result.status();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Aborted("timed out waiting for the server to finish "
                             "its recovery drain");
    }
    SleepMs(std::max(1, poll_ms));
  }
}

Status Client::Checkpoint() {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kCheckpoint));
  return Call(Opcode::kCheckpoint, payload).status();
}

Status Client::Drain() {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kDrain));
  return Call(Opcode::kDrain, payload).status();
}

}  // namespace hyrise_nv::net
