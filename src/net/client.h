#ifndef HYRISE_NV_NET_CLIENT_H_
#define HYRISE_NV_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/net_util.h"
#include "net/wire.h"
#include "storage/types.h"

namespace hyrise_nv::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Per-attempt TCP connect timeout.
  int connect_timeout_ms = 2'000;
  /// Per-response read timeout. 0 waits forever.
  int read_timeout_ms = 10'000;
  /// Connect()/reconnect retry budget. Attempts back off exponentially
  /// from retry_base_ms, doubling up to retry_cap_ms. This is what makes
  /// a client ride out a server kill -9 + instant restart: it keeps
  /// knocking until the recovered server answers the handshake.
  int max_retries = 30;
  int retry_base_ms = 20;
  int retry_cap_ms = 1'000;
  /// Automatically re-dial + re-handshake when a request hits a dead
  /// connection, then surface the original error (the request itself is
  /// NOT replayed: the client cannot know whether it executed).
  bool auto_reconnect = true;
  /// Highest protocol version to offer at the handshake. Lower it to 1
  /// to speak v1 framing against any server (cross-version compat
  /// tests); by default the client negotiates up to v2 tagged frames.
  uint16_t protocol_max = kProtocolVersionMax;
  /// Pipeline window to request in a v2 hello. 0 asks for the server
  /// default; the granted window is readable via pipeline_window().
  /// The blocking client itself never has more than one request in
  /// flight — this matters when the fd is handed to a pipelined driver.
  uint32_t request_window = 0;
};

/// Result shape of a scan over the wire.
struct ScanResult {
  std::vector<WireRow> rows;
  /// The server hit the row limit or the response payload cap; the
  /// result is a prefix.
  bool truncated = false;
};

/// Blocking call-and-response client for the Hyrise-NV wire protocol.
///
/// Not thread-safe: one Client per thread (or external locking). A
/// Client owns at most one server session, which in turn owns at most
/// one open transaction; Begin() returns the tid for bookkeeping but the
/// session is the real scope.
///
/// Error model: engine errors come back as the engine's own Status
/// (byte-identical StatusCode over the wire). Transport and serving
/// rejections surface as IOError; last_wire_code() tells retryable
/// rejections (overloaded/draining) apart from hard transport failures.
class Client {
 public:
  explicit Client(ClientOptions options) : options_(std::move(options)) {}
  Client() = default;

  HYRISE_NV_DISALLOW_COPY(Client);
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Dials and handshakes, retrying with exponential backoff per
  /// ClientOptions. On success the negotiated protocol version, server
  /// durability mode and session id are readable below.
  Status Connect();
  /// Single connect attempt, no retries (probes in tests/benches).
  Status ConnectOnce();
  void Close();
  bool connected() const { return fd_.valid(); }

  uint16_t protocol_version() const { return protocol_version_; }
  /// Pipeline window granted by a v2 handshake (0 on a v1 session).
  uint32_t pipeline_window() const { return pipeline_window_; }
  /// core::DurabilityMode of the server, as a raw byte.
  uint8_t server_mode() const { return server_mode_; }
  uint64_t session_id() const { return session_id_; }
  /// Tid of the open session transaction, 0 when none. Maintained by
  /// Begin/Commit/Abort; used to route in_txn reads.
  uint64_t current_tid() const { return current_tid_; }
  /// Wire code of the most recent response (kOk after a success).
  WireCode last_wire_code() const { return last_wire_code_; }
  /// True when the last rejection was the server warming up (recovery
  /// drain in progress) — retryable, and distinct from kOverloaded: the
  /// right backoff is "wait for the drain", not "reduce offered load".
  bool last_warming() const {
    return last_wire_code_ == WireCode::kWarming;
  }
  /// Connect attempts made by the last Connect() (restart-downtime
  /// probes read this).
  int last_connect_attempts() const { return last_connect_attempts_; }
  /// Wall-clock round-trip of the most recent request (send → full
  /// response frame read), 0 before the first request. Survives request
  /// failures: a timed-out roundtrip reports the time until the failure.
  uint64_t last_rtt_ns() const { return last_rtt_ns_; }

  // --- Transactions (session-scoped) ---------------------------------------

  struct BeginInfo {
    uint64_t tid = 0;
    uint64_t snapshot = 0;
  };
  Result<BeginInfo> Begin();
  /// Returns the commit CID.
  Result<uint64_t> Commit();
  Status Abort();

  // --- Two-phase commit (coordinator-side verbs) ---------------------------

  /// Phase one: durably prepares the session's open transaction under
  /// the coordinator-issued gtid. On success the transaction detaches
  /// from this session; only Decide moves it further. On failure it
  /// stays open (abort it).
  Status Prepare(uint64_t gtid);
  /// Phase two: commit or abort the prepared transaction `gtid`. Not
  /// session-bound — valid on any connection, idempotent by gtid.
  Status Decide(uint64_t gtid, bool commit);
  /// Every prepared-but-undecided gtid on the server (recovery
  /// handshake).
  Result<std::vector<uint64_t>> InDoubt();

  // --- DML -----------------------------------------------------------------

  Result<storage::RowLocation> Insert(const std::string& table,
                                      const std::vector<storage::Value>& row);
  Result<storage::RowLocation> Update(const std::string& table,
                                      storage::RowLocation loc,
                                      const std::vector<storage::Value>& row);
  Status Delete(const std::string& table, storage::RowLocation loc);

  /// One operation of a kDmlBatch frame. `kind` uses the wire values.
  struct DmlOp {
    static constexpr uint8_t kInsert = 1;
    static constexpr uint8_t kUpdate = 2;
    static constexpr uint8_t kDelete = 3;
    uint8_t kind = kInsert;
    std::string table;
    storage::RowLocation loc;              // update/delete
    std::vector<storage::Value> row;       // insert/update
  };
  struct DmlBatchResult {
    /// One location per op, in op order (a delete echoes the location it
    /// removed).
    std::vector<storage::RowLocation> locs;
    uint64_t cid = 0;
  };
  /// Sends the whole batch as ONE frame; the server applies it as one
  /// transaction (one group-commit fsync, one publish) and the batch is
  /// atomic — any failing op aborts it all, and the error message names
  /// the op index. Requires no open session transaction (autocommit).
  Result<DmlBatchResult> DmlBatch(const std::vector<DmlOp>& ops);

  // --- Queries -------------------------------------------------------------

  /// in_txn reads through the session transaction; otherwise the server
  /// takes an ad-hoc snapshot. limit 0 means server default (unbounded
  /// up to the payload cap).
  Result<ScanResult> ScanEqual(const std::string& table, uint32_t column,
                               const storage::Value& value,
                               bool in_txn = false, uint32_t limit = 0);
  Result<ScanResult> ScanRange(const std::string& table, uint32_t column,
                               const storage::Value& lo,
                               const storage::Value& hi,
                               bool in_txn = false, uint32_t limit = 0);
  Result<uint64_t> Count(const std::string& table, bool in_txn = false);

  // --- DDL / admin ---------------------------------------------------------

  Result<uint64_t> CreateTable(
      const std::string& name,
      const std::vector<std::pair<std::string, storage::DataType>>& columns);
  Status CreateIndex(const std::string& table, uint32_t column,
                     uint8_t kind = 0);
  Status Ping();
  /// Server + engine stats as JSON.
  Result<std::string> Stats();
  /// The server's last RecoveryReport as JSON (shows the instant-restart
  /// span after an NVM recovery), extended with the live serving state
  /// and recovery-drain progress.
  Result<std::string> RecoveryInfo();
  /// Polls RecoveryInfo until the server reports serving_state "ready"
  /// (recovery drain complete). Returns immediately on servers without a
  /// degraded mode. Fails with Aborted on timeout.
  Status WaitUntilReady(int timeout_ms, int poll_ms = 50);
  Status Checkpoint();
  /// Asks the server to drain. The connection is expected to die shortly
  /// after the OK ack.
  Status Drain();

  /// Raw request/response escape hatch (tests). Sends `payload` as one
  /// frame and returns the response payload.
  Result<std::vector<uint8_t>> Roundtrip(const std::vector<uint8_t>& payload);

 private:
  Status Handshake();
  /// Sends `payload`, reads one response frame, checks the opcode echo
  /// and wire code. Returns the response body reader position: a reader
  /// over the bytes after [opcode][code]. On transport failure with
  /// auto_reconnect, re-dials once (without replaying) so the NEXT
  /// request finds a live connection.
  Result<std::vector<uint8_t>> Call(Opcode op,
                                    const std::vector<uint8_t>& payload);

  ClientOptions options_;
  OwnedFd fd_;
  uint16_t protocol_version_ = 0;
  uint32_t pipeline_window_ = 0;
  uint32_t next_tag_ = 1;
  uint8_t server_mode_ = 0;
  uint64_t session_id_ = 0;
  uint64_t current_tid_ = 0;
  WireCode last_wire_code_ = WireCode::kOk;
  int last_connect_attempts_ = 0;
  uint64_t last_rtt_ns_ = 0;
};

}  // namespace hyrise_nv::net

#endif  // HYRISE_NV_NET_CLIENT_H_
