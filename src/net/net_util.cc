#include "net/net_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hyrise_nv::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void OwnedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Result<bool> GetNoDelay(int fd) {
  int value = 0;
  socklen_t len = sizeof(value);
  if (::getsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &value, &len) < 0) {
    return Errno("getsockopt(TCP_NODELAY)");
  }
  return value != 0;
}

Status ConfigureAcceptedSocket(int fd) { return SetNoDelay(fd); }

Result<OwnedFd> CreateListener(const std::string& host, uint16_t port) {
  auto addr_result = MakeAddr(host, port);
  if (!addr_result.ok()) return addr_result.status();
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&*addr_result),
             sizeof(*addr_result)) < 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), 128) < 0) return Errno("listen");
  HYRISE_NV_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<OwnedFd> ConnectTcp(const std::string& host, uint16_t port,
                           int timeout_ms) {
  auto addr_result = MakeAddr(host, port);
  if (!addr_result.ok()) return addr_result.status();
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  // Non-blocking connect so the timeout is enforceable, then back to
  // blocking for the simple call-and-response client.
  HYRISE_NV_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&*addr_result),
                     sizeof(*addr_result));
  if (rc < 0 && errno != EINPROGRESS) {
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  if (rc < 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (rc == 0) {
      return Status::IOError("connect timeout to " + host + ":" +
                             std::to_string(port));
    }
    if (rc < 0) return Errno("poll(connect)");
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::IOError("connect " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(err));
    }
  }
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) < 0) {
    return Errno("fcntl(blocking)");
  }
  HYRISE_NV_RETURN_NOT_OK(SetNoDelay(fd.get()));
  return fd;
}

Status SendAll(int fd, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvAll(int fd, void* out, size_t len, int timeout_ms) {
  auto* p = static_cast<uint8_t*>(out);
  size_t got = 0;
  while (got < len) {
    if (timeout_ms > 0) {
      pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc == 0) return Status::IOError("read timeout");
      if (rc < 0 && errno != EINTR) return Errno("poll(read)");
      if (rc < 0) continue;
    }
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n == 0) return Status::IOError("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFrame(int fd, const std::vector<uint8_t>& payload) {
  const std::vector<uint8_t> frame = EncodeFrame(payload);
  return SendAll(fd, frame.data(), frame.size());
}

Result<std::vector<uint8_t>> ReadFrame(int fd, int timeout_ms,
                                       uint32_t max_payload) {
  uint8_t header[kFrameHeaderBytes];
  HYRISE_NV_RETURN_NOT_OK(RecvAll(fd, header, sizeof(header), timeout_ms));
  auto len_result = DecodeFrameHeader(header, max_payload);
  if (!len_result.ok()) return len_result.status();
  std::vector<uint8_t> payload(*len_result);
  HYRISE_NV_RETURN_NOT_OK(
      RecvAll(fd, payload.data(), payload.size(), timeout_ms));
  HYRISE_NV_RETURN_NOT_OK(
      CheckFrameCrc(header, payload.data(),
                    static_cast<uint32_t>(payload.size())));
  return payload;
}

Status WriteTaggedFrame(int fd, uint32_t tag,
                        const std::vector<uint8_t>& payload) {
  const std::vector<uint8_t> frame = EncodeTaggedFrame(tag, payload);
  return SendAll(fd, frame.data(), frame.size());
}

Result<TaggedFrame> ReadTaggedFrame(int fd, int timeout_ms,
                                    uint32_t max_payload) {
  uint8_t header[kFrameHeaderBytesV2];
  HYRISE_NV_RETURN_NOT_OK(RecvAll(fd, header, sizeof(header), timeout_ms));
  auto len_result = DecodeFrameHeader(header, max_payload);
  if (!len_result.ok()) return len_result.status();
  TaggedFrame frame;
  frame.tag = TaggedFrameTag(header);
  frame.payload.resize(*len_result);
  HYRISE_NV_RETURN_NOT_OK(
      RecvAll(fd, frame.payload.data(), frame.payload.size(), timeout_ms));
  HYRISE_NV_RETURN_NOT_OK(
      CheckTaggedFrameCrc(header, frame.payload.data(),
                          static_cast<uint32_t>(frame.payload.size())));
  return frame;
}

uint64_t RaiseFdLimit(uint64_t want) {
  struct rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur >= want) return lim.rlim_cur;
  const rlim_t target =
      lim.rlim_max == RLIM_INFINITY || want < lim.rlim_max
          ? static_cast<rlim_t>(want)
          : lim.rlim_max;
  rlim_t old = lim.rlim_cur;
  lim.rlim_cur = target;
  if (::setrlimit(RLIMIT_NOFILE, &lim) != 0) return old;
  return lim.rlim_cur;
}

}  // namespace hyrise_nv::net
