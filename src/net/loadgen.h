#ifndef HYRISE_NV_NET_LOADGEN_H_
#define HYRISE_NV_NET_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace hyrise_nv::net {

/// Open-loop load options. The generator drives `connections` sockets
/// from one epoll loop at a fixed offered rate: operation i's intended
/// send time is start + i/rate_rps regardless of server behaviour, and
/// latency is measured from that intended time (coordinated-omission
/// safe — a server stall charges every queued operation its full wait).
struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connections = 64;
  /// Offered load in operations per second (the arrival schedule).
  double rate_rps = 1000;
  /// Measurement window, preceded by `warmup_s` whose completions are
  /// discarded (both phases run the same schedule).
  double duration_s = 5;
  double warmup_s = 1;
  /// Fraction of operations that are point reads (ScanEqual on column
  /// 0); the rest are write transactions (begin + insert + commit).
  double read_pct = 0.8;
  /// Zipfian key space: keys in [0, keys), skew theta (0 = uniform-ish,
  /// 0.99 = YCSB default).
  uint64_t keys = 10'000;
  double zipf_theta = 0.99;
  uint64_t seed = 42;
  std::string table = "kv";
  /// Payload bytes of the string column written by inserts.
  uint32_t value_bytes = 16;
  /// Row cap for read responses.
  uint32_t scan_limit = 4;
  /// Collect a per-second completion/latency timeline of the measure
  /// window (LoadgenReport::timeline).
  bool timeline = false;
  /// After the schedule ends, wait at most this long for in-flight
  /// operations to complete before giving up on them.
  double drain_timeout_s = 10;
  int connect_timeout_ms = 5000;
  /// Requests a connection may have in flight at once (wire v2
  /// pipelining). Depth 1 is classic call-and-response; higher depths
  /// keep the connection's window full so one socket amortises
  /// syscalls, wakeups, and group commits across many requests. Forced
  /// to 1 when the negotiated protocol is v1 (strict FIFO framing).
  int pipeline_depth = 1;
  /// Highest protocol version to offer. 1 = legacy framing (v1-compat
  /// runs); 2 = tagged frames, single-frame ops (reads stay ScanEqual,
  /// writes become one-op kDmlBatch autocommit frames).
  uint16_t protocol_max = 2;
};

struct LoadgenTimelineBucket {
  uint64_t completed = 0;
  uint64_t errors = 0;
  double max_us = 0;
  double sum_us = 0;
};

struct LoadgenReport {
  uint64_t ops_offered = 0;    // schedule length (rate × total seconds)
  uint64_t ops_completed = 0;  // completions inside the measure window
  uint64_t errors = 0;         // hard failures (non-ok, non-retryable)
  uint64_t shed = 0;           // kOverloaded / kWarming / kDraining
  uint64_t protocol_errors = 0;
  uint64_t abandoned = 0;      // still in flight at drain timeout
  double measure_s = 0;
  double tput_rps = 0;  // completed / measure_s
  /// Every successful completion, warmup included. With an offered rate
  /// past the server's capacity, `ops_completed` is gated by intended
  /// times that the run may never reach before the drain cutoff —
  /// `completed_total / elapsed_s` stays an honest service-rate probe
  /// there, which is what the pipeline depth sweep reports.
  uint64_t completed_total = 0;
  double elapsed_s = 0;      // wall time from start to loop exit
  double capacity_rps = 0;   // completed_total / elapsed_s
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;
  double mean_us = 0;
  /// Peak number of due operations queued waiting for a free
  /// connection — the open-loop backlog the server's slowness created.
  uint64_t backlog_peak = 0;
  /// Latency distribution (nanoseconds, from intended send time) of the
  /// measure window; use HistogramData::Percentile for other quantiles.
  obs::HistogramData latency;
  std::vector<LoadgenTimelineBucket> timeline;  // 1s buckets, measure only
};

/// Runs the open-loop load against a live server. Blocking; returns once
/// the schedule and the drain window are done. Fails if the target is
/// unreachable or every connection dies.
Result<LoadgenReport> RunOpenLoopLoad(const LoadgenOptions& options);

}  // namespace hyrise_nv::net

#endif  // HYRISE_NV_NET_LOADGEN_H_
