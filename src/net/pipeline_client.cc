#include "net/pipeline_client.h"

#include <algorithm>

namespace hyrise_nv::net {

Status PipelinedClient::Completion::ToStatus() const {
  if (code == WireCode::kOk) return Status::OK();
  WireReader reader(body.data(), body.size());
  return StatusFromWire(code, reader.Str());
}

Status PipelinedClient::Connect() {
  Close();
  auto fd_result =
      ConnectTcp(options_.host, options_.port, options_.connect_timeout_ms);
  if (!fd_result.ok()) return fd_result.status();
  fd_ = std::move(fd_result).ValueUnsafe();
  // v1-framed hello (both directions, always — DESIGN.md §17).
  std::vector<uint8_t> hello;
  WireWriter writer(&hello);
  writer.U8(static_cast<uint8_t>(Opcode::kHello));
  writer.U32(kHelloMagic);
  writer.U16(kProtocolVersionMin);
  writer.U16(kProtocolVersionMax);
  writer.U32(options_.request_window);
  Status status = WriteFrame(fd_.get(), hello);
  if (!status.ok()) {
    Close();
    return status;
  }
  auto frame_result = ReadFrame(fd_.get(), options_.read_timeout_ms);
  if (!frame_result.ok()) {
    Close();
    return frame_result.status();
  }
  WireReader reader(frame_result->data(), frame_result->size());
  const uint8_t op = reader.U8();
  const WireCode code = static_cast<WireCode>(reader.U8());
  if (!reader.ok() || op != static_cast<uint8_t>(Opcode::kHello)) {
    Close();
    return Status::IOError("malformed handshake response");
  }
  if (code != WireCode::kOk) {
    status = StatusFromWire(code, reader.Str());
    Close();
    return status;
  }
  const uint16_t version = reader.U16();
  server_mode_ = reader.U8();
  session_id_ = reader.U64();
  if (!reader.ok()) {
    Close();
    return Status::IOError("truncated handshake response");
  }
  if (version < 2) {
    Close();
    return Status::NotSupported(
        "server negotiated protocol v" + std::to_string(version) +
        "; pipelining needs v2 tagged frames");
  }
  window_ = reader.U32();
  if (!reader.ok() || window_ == 0) {
    Close();
    return Status::IOError("v2 handshake response carries no window");
  }
  next_tag_ = 1;
  order_.clear();
  stash_.clear();
  return Status::OK();
}

void PipelinedClient::Close() {
  fd_.Reset();
  window_ = 0;
  session_id_ = 0;
  order_.clear();
  stash_.clear();
}

Result<uint32_t> PipelinedClient::Submit(
    const std::vector<uint8_t>& payload) {
  if (!connected()) return Status::IOError("client is not connected");
  // The window counts submissions not yet completed BY THE SERVER; a
  // stashed completion has freed its slot even if the caller has not
  // consumed it yet.
  while (order_.size() - stash_.size() >= window_) {
    HYRISE_NV_RETURN_NOT_OK(ReadOne());
  }
  const uint32_t tag = next_tag_++;
  if (next_tag_ == 0) next_tag_ = 1;
  Status status = WriteTaggedFrame(fd_.get(), tag, payload);
  if (!status.ok()) {
    Close();
    return status;
  }
  order_.push_back(tag);
  return tag;
}

Status PipelinedClient::ReadOne() {
  auto frame_result = ReadTaggedFrame(fd_.get(), options_.read_timeout_ms);
  if (!frame_result.ok()) {
    Close();
    return frame_result.status();
  }
  const uint32_t tag = frame_result->tag;
  const bool known =
      std::find(order_.begin(), order_.end(), tag) != order_.end() &&
      stash_.find(tag) == stash_.end();
  if (!known) {
    Close();
    return Status::IOError("response carries unknown tag " +
                           std::to_string(tag) +
                           "; pipeline stream out of sync");
  }
  WireReader reader(frame_result->payload.data(),
                    frame_result->payload.size());
  Completion completion;
  completion.tag = tag;
  completion.op = static_cast<Opcode>(reader.U8());
  completion.code = static_cast<WireCode>(reader.U8());
  if (!reader.ok()) {
    Close();
    return Status::IOError("truncated response header");
  }
  completion.body.assign(frame_result->payload.begin() + 2,
                         frame_result->payload.end());
  stash_.emplace(tag, std::move(completion));
  return Status::OK();
}

Result<PipelinedClient::Completion> PipelinedClient::Await(uint32_t tag) {
  const auto it = std::find(order_.begin(), order_.end(), tag);
  if (it == order_.end()) {
    return Status::InvalidArgument("tag " + std::to_string(tag) +
                                   " is not outstanding");
  }
  while (stash_.find(tag) == stash_.end()) {
    HYRISE_NV_RETURN_NOT_OK(ReadOne());
  }
  // ReadOne may have invalidated `it` via stash growth only (order_ is
  // untouched by reads), but keep the lookup fresh anyway.
  order_.erase(std::find(order_.begin(), order_.end(), tag));
  auto node = stash_.extract(tag);
  return std::move(node.mapped());
}

Result<PipelinedClient::Completion> PipelinedClient::Next() {
  if (order_.empty()) {
    return Status::InvalidArgument("no outstanding requests");
  }
  return Await(order_.front());
}

Status PipelinedClient::DrainAll() {
  Status first;
  while (!order_.empty()) {
    auto completion_result = Next();
    if (!completion_result.ok()) return completion_result.status();
    if (first.ok()) first = completion_result->ToStatus();
  }
  return first;
}

std::vector<uint8_t> MakePingPayload() {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kPing));
  return payload;
}

std::vector<uint8_t> MakeScanEqualPayload(const std::string& table,
                                          uint32_t column,
                                          const storage::Value& value,
                                          uint32_t limit) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kScanEqual));
  writer.U64(0);  // ad-hoc snapshot — eligible for out-of-order completion
  writer.Str(table);
  writer.U32(column);
  writer.Value(value);
  writer.U32(limit);
  return payload;
}

std::vector<uint8_t> MakeCountPayload(const std::string& table) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kCount));
  writer.U64(0);
  writer.Str(table);
  return payload;
}

std::vector<uint8_t> MakeInsertBatchPayload(
    const std::string& table, const std::vector<storage::Value>& row) {
  std::vector<uint8_t> payload;
  WireWriter writer(&payload);
  writer.U8(static_cast<uint8_t>(Opcode::kDmlBatch));
  writer.U32(1);
  writer.U8(1);  // insert
  writer.Str(table);
  writer.Row(row);
  return payload;
}

}  // namespace hyrise_nv::net
