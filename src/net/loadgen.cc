#include "net/loadgen.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>

#include "common/macros.h"
#include "common/random.h"
#include "net/net_util.h"
#include "net/wire.h"
#include "storage/types.h"
#include "workload/open_loop.h"
#include "workload/zipf.h"

namespace hyrise_nv::net {

namespace {

using Clock = std::chrono::steady_clock;

/// One response frame the generator is waiting for. A read op expects
/// one frame; a write op expects three (begin, insert, commit); `last`
/// marks the frame whose arrival completes the operation.
struct ExpectedFrame {
  uint64_t op_id = 0;
  uint8_t opcode = 0;
  bool last = false;
};

struct LoadConn {
  OwnedFd fd;
  std::vector<uint8_t> in;
  size_t in_pos = 0;
  std::vector<uint8_t> out;
  size_t out_pos = 0;
  std::deque<ExpectedFrame> expected;
  bool want_write = false;
  bool dead = false;
  /// Aggregated outcome of the op currently completing (a write triple
  /// fails as one op even if only its begin frame failed).
  bool op_failed = false;
  bool op_shed = false;
};

class OpenLoopDriver {
 public:
  explicit OpenLoopDriver(const LoadgenOptions& options)
      : options_(options),
        schedule_(options.rate_rps,
                  static_cast<uint64_t>(std::llround(
                      options.rate_rps *
                      (options.warmup_s + options.duration_s)))),
        zipf_(options.keys == 0 ? 1 : options.keys, options.zipf_theta,
              options.seed),
        rng_(options.seed ^ 0x9e3779b97f4a7c15ull),
        value_payload_(options.value_bytes, 'x') {}

  Result<LoadgenReport> Run() {
    HYRISE_NV_RETURN_NOT_OK(ConnectAll());
    const uint64_t warmup_ns =
        static_cast<uint64_t>(options_.warmup_s * 1e9);
    const uint64_t measure_end_ns = static_cast<uint64_t>(
        (options_.warmup_s + options_.duration_s) * 1e9);
    if (options_.timeline) {
      timeline_.resize(static_cast<size_t>(options_.duration_s) + 2);
    }

    start_ = Clock::now();
    const uint64_t schedule_end_ns = measure_end_ns;
    const uint64_t hard_end_ns =
        schedule_end_ns +
        static_cast<uint64_t>(options_.drain_timeout_s * 1e9);
    uint64_t issued = 0;

    while (true) {
      const uint64_t now_ns = NowNs();
      // Issue every operation whose intended time has arrived — late or
      // not. Ops that find no free connection queue in the backlog with
      // their intended time unchanged; that wait is measured latency.
      const uint64_t due = schedule_.DueCount(now_ns);
      while (issued < due) {
        const uint64_t op_id = issued++;
        if (!idle_.empty()) {
          LoadConn* conn = idle_.back();
          idle_.pop_back();
          SendOp(conn, op_id);
        } else {
          backlog_.push_back(op_id);
          if (backlog_.size() > report_.backlog_peak) {
            report_.backlog_peak = backlog_.size();
          }
        }
      }

      const bool schedule_done = issued >= schedule_.total_ops();
      if (schedule_done && InFlight() == 0 && backlog_.empty()) break;
      if (schedule_done && now_ns >= hard_end_ns) {
        report_.abandoned = InFlight() + backlog_.size();
        break;
      }
      if (alive_ == 0) {
        return Status::IOError("load generator: every connection died");
      }

      PollOnce(now_ns, issued);
    }

    FinishReport(warmup_ns, measure_end_ns);
    return report_;
  }

 private:
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  uint64_t InFlight() const { return in_flight_; }

  Status ConnectAll() {
    epoll_fd_ = OwnedFd(::epoll_create1(EPOLL_CLOEXEC));
    if (!epoll_fd_.valid()) {
      return Status::IOError("epoll_create1: " +
                             std::string(std::strerror(errno)));
    }
    // Handshake frame shared by every connection.
    std::vector<uint8_t> hello;
    WireWriter writer(&hello);
    writer.U8(static_cast<uint8_t>(Opcode::kHello));
    writer.U32(kHelloMagic);
    writer.U16(kProtocolVersionMin);
    writer.U16(kProtocolVersionMax);

    conns_.reserve(static_cast<size_t>(options_.connections));
    for (int i = 0; i < options_.connections; ++i) {
      auto fd_result = ConnectTcp(options_.host, options_.port,
                                  options_.connect_timeout_ms);
      if (!fd_result.ok()) {
        return Status::IOError(
            "connect " + std::to_string(i + 1) + " of " +
            std::to_string(options_.connections) + " failed: " +
            std::string(fd_result.status().message()));
      }
      auto conn = std::make_unique<LoadConn>();
      conn->fd = std::move(fd_result).ValueUnsafe();
      // Blocking handshake: at thousands of connections this is still
      // fast (sub-millisecond each) and keeps the state machine simple.
      HYRISE_NV_RETURN_NOT_OK(WriteFrame(conn->fd.get(), hello));
      auto response = ReadFrame(conn->fd.get(), options_.connect_timeout_ms);
      if (!response.ok()) return response.status();
      if (response->size() < 2 ||
          (*response)[1] != static_cast<uint8_t>(WireCode::kOk)) {
        return Status::IOError("handshake rejected by server");
      }
      HYRISE_NV_RETURN_NOT_OK(SetNonBlocking(conn->fd.get()));
      HYRISE_NV_RETURN_NOT_OK(SetNoDelay(conn->fd.get()));
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, conn->fd.get(), &ev) !=
          0) {
        return Status::IOError("epoll_ctl: " +
                               std::string(std::strerror(errno)));
      }
      idle_.push_back(conn.get());
      conns_.push_back(std::move(conn));
    }
    alive_ = options_.connections;
    return Status::OK();
  }

  /// Builds and queues the frames of operation `op_id` on `conn`.
  void SendOp(LoadConn* conn, uint64_t op_id) {
    const bool is_read = rng_.NextDouble() < options_.read_pct;
    const int64_t key = static_cast<int64_t>(zipf_.Next());
    conn->op_failed = false;
    conn->op_shed = false;
    if (is_read) {
      std::vector<uint8_t> payload;
      WireWriter writer(&payload);
      writer.U8(static_cast<uint8_t>(Opcode::kScanEqual));
      writer.U64(0);  // ad-hoc snapshot
      writer.Str(options_.table);
      writer.U32(0);
      writer.Value(storage::Value(key));
      writer.U32(options_.scan_limit);
      AppendFrame(conn, payload);
      conn->expected.push_back(
          {op_id, static_cast<uint8_t>(Opcode::kScanEqual), true});
    } else {
      std::vector<uint8_t> payload;
      WireWriter begin_writer(&payload);
      begin_writer.U8(static_cast<uint8_t>(Opcode::kBegin));
      AppendFrame(conn, payload);
      conn->expected.push_back(
          {op_id, static_cast<uint8_t>(Opcode::kBegin), false});

      payload.clear();
      WireWriter insert_writer(&payload);
      insert_writer.U8(static_cast<uint8_t>(Opcode::kInsert));
      insert_writer.U64(0);  // session transaction
      insert_writer.Str(options_.table);
      insert_writer.Row({storage::Value(key),
                         storage::Value(value_payload_)});
      AppendFrame(conn, payload);
      conn->expected.push_back(
          {op_id, static_cast<uint8_t>(Opcode::kInsert), false});

      payload.clear();
      WireWriter commit_writer(&payload);
      commit_writer.U8(static_cast<uint8_t>(Opcode::kCommit));
      commit_writer.U64(0);
      AppendFrame(conn, payload);
      conn->expected.push_back(
          {op_id, static_cast<uint8_t>(Opcode::kCommit), true});
    }
    ++in_flight_;
    FlushConn(conn);
  }

  static void AppendFrame(LoadConn* conn,
                          const std::vector<uint8_t>& payload) {
    const std::vector<uint8_t> frame = EncodeFrame(payload);
    conn->out.insert(conn->out.end(), frame.begin(), frame.end());
  }

  void FlushConn(LoadConn* conn) {
    while (conn->out_pos < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd.get(), conn->out.data() + conn->out_pos,
                 conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        KillConn(conn);
        return;
      }
      conn->out_pos += static_cast<size_t>(n);
    }
    if (conn->out_pos == conn->out.size()) {
      conn->out.clear();
      conn->out_pos = 0;
    }
    SetWantWrite(conn, !conn->out.empty());
  }

  void SetWantWrite(LoadConn* conn, bool want) {
    if (conn->dead || want == conn->want_write) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.ptr = conn;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev);
    conn->want_write = want;
  }

  /// A connection hard-failed: every operation still expected on it is
  /// an error, and the socket leaves the loop.
  void KillConn(LoadConn* conn) {
    if (conn->dead) return;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, conn->fd.get(), nullptr);
    uint64_t ops_lost = 0;
    uint64_t last_op = UINT64_MAX;
    for (const ExpectedFrame& exp : conn->expected) {
      if (exp.op_id != last_op) {
        ++ops_lost;
        last_op = exp.op_id;
      }
    }
    report_.errors += ops_lost;
    in_flight_ -= ops_lost;
    conn->expected.clear();
    conn->dead = true;
    conn->fd.Reset();
    --alive_;
  }

  void PollOnce(uint64_t now_ns, uint64_t issued) {
    // Sleep until the next intended send (or 50ms when the schedule is
    // done and the loop is just draining responses).
    int timeout_ms = 50;
    if (issued < schedule_.total_ops()) {
      const uint64_t next_ns = schedule_.IntendedNs(issued);
      timeout_ms =
          next_ns > now_ns
              ? static_cast<int>((next_ns - now_ns) / 1'000'000)
              : 0;
      if (timeout_ms > 50) timeout_ms = 50;
    }
    epoll_event events[256];
    const int n =
        ::epoll_wait(epoll_fd_.get(), events, 256, timeout_ms);
    for (int i = 0; i < n; ++i) {
      auto* conn = static_cast<LoadConn*>(events[i].data.ptr);
      if (conn->dead) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        KillConn(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) FlushConn(conn);
      if (conn->dead) continue;
      if (events[i].events & EPOLLIN) OnReadable(conn);
    }
  }

  void OnReadable(LoadConn* conn) {
    uint8_t buf[16384];
    while (true) {
      const ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn->in.insert(conn->in.end(), buf, buf + n);
        continue;
      }
      if (n == 0) {
        KillConn(conn);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      KillConn(conn);
      return;
    }
    ParseResponses(conn);
    if (conn->dead) return;
    if (conn->in_pos > 0) {
      conn->in.erase(conn->in.begin(),
                     conn->in.begin() +
                         static_cast<std::ptrdiff_t>(conn->in_pos));
      conn->in_pos = 0;
    }
  }

  void ParseResponses(LoadConn* conn) {
    while (conn->in.size() - conn->in_pos >= kFrameHeaderBytes) {
      const uint8_t* header = conn->in.data() + conn->in_pos;
      auto len_result = DecodeFrameHeader(header, kMaxFrameBytes);
      if (!len_result.ok()) {
        ++report_.protocol_errors;
        KillConn(conn);
        return;
      }
      const uint32_t len = *len_result;
      if (conn->in.size() - conn->in_pos < kFrameHeaderBytes + len) break;
      const uint8_t* payload = header + kFrameHeaderBytes;
      if (!CheckFrameCrc(header, payload, len).ok()) {
        ++report_.protocol_errors;
        KillConn(conn);
        return;
      }
      conn->in_pos += kFrameHeaderBytes + len;
      OnResponseFrame(conn, payload, len);
      if (conn->dead) return;
    }
  }

  void OnResponseFrame(LoadConn* conn, const uint8_t* payload,
                       uint32_t len) {
    if (conn->expected.empty() || len < 2) {
      ++report_.protocol_errors;
      KillConn(conn);
      return;
    }
    const ExpectedFrame exp = conn->expected.front();
    conn->expected.pop_front();
    if (payload[0] != exp.opcode) {
      ++report_.protocol_errors;
      KillConn(conn);
      return;
    }
    const WireCode code = static_cast<WireCode>(payload[1]);
    if (code != WireCode::kOk) {
      if (IsRetryableWireCode(code)) {
        conn->op_shed = true;
      } else {
        conn->op_failed = true;
      }
    }
    if (!exp.last) return;

    // Operation complete: attribute the outcome and the open-loop
    // latency, then put the connection back to work.
    --in_flight_;
    const uint64_t now_ns = NowNs();
    const uint64_t intended_ns = schedule_.IntendedNs(exp.op_id);
    const uint64_t warmup_ns =
        static_cast<uint64_t>(options_.warmup_s * 1e9);
    const bool in_measure = intended_ns >= warmup_ns;
    if (conn->op_failed) {
      if (in_measure) ++report_.errors;
    } else if (conn->op_shed) {
      if (in_measure) ++report_.shed;
    } else if (in_measure) {
      ++report_.ops_completed;
      const uint64_t latency_ns =
          workload::OpenLoopSchedule::LatencyNs(intended_ns, now_ns);
      latency_hist_.Record(latency_ns);
      if (!timeline_.empty() && now_ns >= warmup_ns) {
        const size_t bucket = static_cast<size_t>(
            (now_ns - warmup_ns) / 1'000'000'000ull);
        if (bucket < timeline_.size()) {
          auto& slot = timeline_[bucket];
          ++slot.completed;
          const double us = static_cast<double>(latency_ns) / 1e3;
          slot.sum_us += us;
          if (us > slot.max_us) slot.max_us = us;
        }
      }
    }
    if (!backlog_.empty()) {
      const uint64_t next_op = backlog_.front();
      backlog_.pop_front();
      SendOp(conn, next_op);
    } else {
      idle_.push_back(conn);
    }
  }

  void FinishReport(uint64_t warmup_ns, uint64_t measure_end_ns) {
    (void)warmup_ns;
    (void)measure_end_ns;
    report_.ops_offered = schedule_.total_ops();
    report_.measure_s = options_.duration_s;
    report_.tput_rps =
        static_cast<double>(report_.ops_completed) / options_.duration_s;
    report_.latency = latency_hist_.Snapshot();
    const obs::HistogramData& lat = report_.latency;
    report_.p50_us = lat.Percentile(50) / 1e3;
    report_.p99_us = lat.Percentile(99) / 1e3;
    report_.p999_us = lat.Percentile(99.9) / 1e3;
    report_.max_us = static_cast<double>(lat.count ? lat.max : 0) / 1e3;
    report_.mean_us = lat.Mean() / 1e3;
    report_.timeline = std::move(timeline_);
  }

  const LoadgenOptions options_;
  const workload::OpenLoopSchedule schedule_;
  workload::ZipfGenerator zipf_;
  Rng rng_;
  const std::string value_payload_;

  OwnedFd epoll_fd_;
  std::vector<std::unique_ptr<LoadConn>> conns_;
  std::vector<LoadConn*> idle_;
  std::deque<uint64_t> backlog_;
  Clock::time_point start_;
  int alive_ = 0;
  uint64_t in_flight_ = 0;

  obs::Histogram latency_hist_;
  std::vector<LoadgenTimelineBucket> timeline_;
  LoadgenReport report_;
};

}  // namespace

Result<LoadgenReport> RunOpenLoopLoad(const LoadgenOptions& options) {
  if (options.connections <= 0) {
    return Status::InvalidArgument("loadgen needs at least one connection");
  }
  if (options.rate_rps <= 0 || options.duration_s <= 0) {
    return Status::InvalidArgument("loadgen needs a positive rate/duration");
  }
  OpenLoopDriver driver(options);
  return driver.Run();
}

}  // namespace hyrise_nv::net
