#include "net/loadgen.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>

#include "common/macros.h"
#include "common/random.h"
#include "net/net_util.h"
#include "net/wire.h"
#include "storage/types.h"
#include "workload/open_loop.h"
#include "workload/zipf.h"

namespace hyrise_nv::net {

namespace {

using Clock = std::chrono::steady_clock;

/// One response frame the generator is waiting for. A read op expects
/// one frame; a write op expects three (begin, insert, commit); `last`
/// marks the frame whose arrival completes the operation.
struct ExpectedFrame {
  uint64_t op_id = 0;
  uint8_t opcode = 0;
  bool last = false;
};

struct LoadConn {
  OwnedFd fd;
  std::vector<uint8_t> in;
  size_t in_pos = 0;
  std::vector<uint8_t> out;
  size_t out_pos = 0;
  std::deque<ExpectedFrame> expected;
  bool want_write = false;
  bool dead = false;
  /// Queued for the next FlushDirty pass (batched send coalescing).
  bool flush_pending = false;
  /// Aggregated outcome of the op currently completing (a write triple
  /// fails as one op even if only its begin frame failed). v1 only —
  /// a v2 op is a single frame, so its outcome needs no aggregation.
  bool op_failed = false;
  bool op_shed = false;
  /// Negotiated protocol version; v2 connections carry `slots`
  /// concurrently pipelined ops, matched to responses by tag.
  uint16_t version = 1;
  int slots = 1;
  uint32_t next_tag = 1;
  std::unordered_map<uint32_t, uint64_t> tag_to_op;
};

class OpenLoopDriver {
 public:
  explicit OpenLoopDriver(const LoadgenOptions& options)
      : options_(options),
        schedule_(options.rate_rps,
                  static_cast<uint64_t>(std::llround(
                      options.rate_rps *
                      (options.warmup_s + options.duration_s)))),
        zipf_(options.keys == 0 ? 1 : options.keys, options.zipf_theta,
              options.seed),
        rng_(options.seed ^ 0x9e3779b97f4a7c15ull),
        value_payload_(options.value_bytes, 'x') {}

  Result<LoadgenReport> Run() {
    HYRISE_NV_RETURN_NOT_OK(ConnectAll());
    const uint64_t warmup_ns =
        static_cast<uint64_t>(options_.warmup_s * 1e9);
    const uint64_t measure_end_ns = static_cast<uint64_t>(
        (options_.warmup_s + options_.duration_s) * 1e9);
    if (options_.timeline) {
      timeline_.resize(static_cast<size_t>(options_.duration_s) + 2);
    }

    start_ = Clock::now();
    const uint64_t schedule_end_ns = measure_end_ns;
    const uint64_t hard_end_ns =
        schedule_end_ns +
        static_cast<uint64_t>(options_.drain_timeout_s * 1e9);
    uint64_t issued = 0;

    while (true) {
      const uint64_t now_ns = NowNs();
      // Issue every operation whose intended time has arrived — late or
      // not. Ops that find no free connection queue in the backlog with
      // their intended time unchanged; that wait is measured latency.
      const uint64_t due = schedule_.DueCount(now_ns);
      while (issued < due) {
        const uint64_t op_id = issued++;
        LoadConn* conn = TakeIdleSlot();
        if (conn != nullptr) {
          SendOp(conn, op_id);
        } else {
          backlog_.push_back(op_id);
          if (backlog_.size() > report_.backlog_peak) {
            report_.backlog_peak = backlog_.size();
          }
        }
      }
      FlushDirty();

      const bool schedule_done = issued >= schedule_.total_ops();
      if (schedule_done && InFlight() == 0 && backlog_.empty()) break;
      if (schedule_done && now_ns >= hard_end_ns) {
        report_.abandoned = InFlight() + backlog_.size();
        break;
      }
      if (alive_ == 0) {
        return Status::IOError("load generator: every connection died");
      }

      PollOnce(now_ns, issued);
    }

    FinishReport(warmup_ns, measure_end_ns);
    return report_;
  }

 private:
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  uint64_t InFlight() const { return in_flight_; }

  /// Pops the next usable send slot. idle_ holds one token per free
  /// pipeline slot; a dead connection's tokens are skipped lazily here
  /// instead of being hunted down at kill time.
  LoadConn* TakeIdleSlot() {
    while (!idle_.empty()) {
      LoadConn* conn = idle_.back();
      idle_.pop_back();
      if (!conn->dead) return conn;
    }
    return nullptr;
  }

  Status ConnectAll() {
    epoll_fd_ = OwnedFd(::epoll_create1(EPOLL_CLOEXEC));
    if (!epoll_fd_.valid()) {
      return Status::IOError("epoll_create1: " +
                             std::string(std::strerror(errno)));
    }
    // Handshake frame shared by every connection.
    const int depth = std::max(1, options_.pipeline_depth);
    const uint16_t offer_max = std::max(
        kProtocolVersionMin,
        std::min(options_.protocol_max, kProtocolVersionMax));
    std::vector<uint8_t> hello;
    WireWriter writer(&hello);
    writer.U8(static_cast<uint8_t>(Opcode::kHello));
    writer.U32(kHelloMagic);
    writer.U16(kProtocolVersionMin);
    writer.U16(offer_max);
    if (offer_max >= 2) {
      // Ask for headroom beyond the depth so the server never sheds the
      // generator's own window (2x, capped by the protocol maximum).
      writer.U32(std::min<uint32_t>(2u * static_cast<uint32_t>(depth),
                                    kMaxPipelineWindow));
    }

    conns_.reserve(static_cast<size_t>(options_.connections));
    for (int i = 0; i < options_.connections; ++i) {
      auto fd_result = ConnectTcp(options_.host, options_.port,
                                  options_.connect_timeout_ms);
      if (!fd_result.ok()) {
        return Status::IOError(
            "connect " + std::to_string(i + 1) + " of " +
            std::to_string(options_.connections) + " failed: " +
            std::string(fd_result.status().message()));
      }
      auto conn = std::make_unique<LoadConn>();
      conn->fd = std::move(fd_result).ValueUnsafe();
      // Blocking handshake: at thousands of connections this is still
      // fast (sub-millisecond each) and keeps the state machine simple.
      HYRISE_NV_RETURN_NOT_OK(WriteFrame(conn->fd.get(), hello));
      auto response = ReadFrame(conn->fd.get(), options_.connect_timeout_ms);
      if (!response.ok()) return response.status();
      if (response->size() < 2 ||
          (*response)[1] != static_cast<uint8_t>(WireCode::kOk)) {
        return Status::IOError("handshake rejected by server");
      }
      WireReader hello_reader(response->data(), response->size());
      hello_reader.U8();  // opcode echo
      hello_reader.U8();  // wire code (kOk, checked above)
      conn->version = hello_reader.U16();
      hello_reader.U8();   // server mode
      hello_reader.U64();  // session id
      conn->slots = 1;
      if (conn->version >= 2 && hello_reader.ok()) {
        const uint32_t granted = hello_reader.U32();
        if (!hello_reader.ok() || granted == 0) {
          return Status::IOError("v2 handshake carries no window");
        }
        conn->slots = static_cast<int>(
            std::min<uint32_t>(static_cast<uint32_t>(depth), granted));
      }
      HYRISE_NV_RETURN_NOT_OK(SetNonBlocking(conn->fd.get()));
      HYRISE_NV_RETURN_NOT_OK(SetNoDelay(conn->fd.get()));
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, conn->fd.get(), &ev) !=
          0) {
        return Status::IOError("epoll_ctl: " +
                               std::string(std::strerror(errno)));
      }
      for (int slot = 0; slot < conn->slots; ++slot) {
        idle_.push_back(conn.get());
      }
      conns_.push_back(std::move(conn));
    }
    alive_ = options_.connections;
    return Status::OK();
  }

  /// Builds and queues the frames of operation `op_id` on `conn`.
  void SendOp(LoadConn* conn, uint64_t op_id) {
    const bool is_read = rng_.NextDouble() < options_.read_pct;
    const int64_t key = static_cast<int64_t>(zipf_.Next());
    if (conn->version >= 2) {
      // v2: every op is ONE tagged frame. Reads keep ScanEqual; the
      // write triple collapses into a one-op kDmlBatch (the server runs
      // begin+insert+commit in a single transaction-stage pass).
      std::vector<uint8_t> payload;
      WireWriter writer(&payload);
      if (is_read) {
        writer.U8(static_cast<uint8_t>(Opcode::kScanEqual));
        writer.U64(0);  // ad-hoc snapshot
        writer.Str(options_.table);
        writer.U32(0);
        writer.Value(storage::Value(key));
        writer.U32(options_.scan_limit);
      } else {
        writer.U8(static_cast<uint8_t>(Opcode::kDmlBatch));
        writer.U32(1);
        writer.U8(1);  // insert
        writer.Str(options_.table);
        writer.Row({storage::Value(key),
                    storage::Value(value_payload_)});
      }
      const uint32_t tag = conn->next_tag++;
      if (conn->next_tag == 0) conn->next_tag = 1;
      const std::vector<uint8_t> frame = EncodeTaggedFrame(tag, payload);
      conn->out.insert(conn->out.end(), frame.begin(), frame.end());
      conn->tag_to_op.emplace(tag, op_id);
      ++in_flight_;
      MarkDirty(conn);
      return;
    }
    conn->op_failed = false;
    conn->op_shed = false;
    if (is_read) {
      std::vector<uint8_t> payload;
      WireWriter writer(&payload);
      writer.U8(static_cast<uint8_t>(Opcode::kScanEqual));
      writer.U64(0);  // ad-hoc snapshot
      writer.Str(options_.table);
      writer.U32(0);
      writer.Value(storage::Value(key));
      writer.U32(options_.scan_limit);
      AppendFrame(conn, payload);
      conn->expected.push_back(
          {op_id, static_cast<uint8_t>(Opcode::kScanEqual), true});
    } else {
      std::vector<uint8_t> payload;
      WireWriter begin_writer(&payload);
      begin_writer.U8(static_cast<uint8_t>(Opcode::kBegin));
      AppendFrame(conn, payload);
      conn->expected.push_back(
          {op_id, static_cast<uint8_t>(Opcode::kBegin), false});

      payload.clear();
      WireWriter insert_writer(&payload);
      insert_writer.U8(static_cast<uint8_t>(Opcode::kInsert));
      insert_writer.U64(0);  // session transaction
      insert_writer.Str(options_.table);
      insert_writer.Row({storage::Value(key),
                         storage::Value(value_payload_)});
      AppendFrame(conn, payload);
      conn->expected.push_back(
          {op_id, static_cast<uint8_t>(Opcode::kInsert), false});

      payload.clear();
      WireWriter commit_writer(&payload);
      commit_writer.U8(static_cast<uint8_t>(Opcode::kCommit));
      commit_writer.U64(0);
      AppendFrame(conn, payload);
      conn->expected.push_back(
          {op_id, static_cast<uint8_t>(Opcode::kCommit), true});
    }
    ++in_flight_;
    MarkDirty(conn);
  }

  /// SendOp only queues bytes; the actual ::send happens once per
  /// event-loop round via FlushDirty. Without this, every completion
  /// refills its slot with its own small send, each send wakes the
  /// server for one frame, and the per-wake overhead never amortises —
  /// measured, that caps one pipelined connection at the same
  /// throughput as depth 1. Coalescing the refills into one send per
  /// parsed batch is what makes the window actually pipeline.
  void MarkDirty(LoadConn* conn) {
    if (conn->flush_pending || conn->dead) return;
    conn->flush_pending = true;
    dirty_.push_back(conn);
  }

  void FlushDirty() {
    for (LoadConn* conn : dirty_) {
      conn->flush_pending = false;
      if (!conn->dead) FlushConn(conn);
    }
    dirty_.clear();
  }

  static void AppendFrame(LoadConn* conn,
                          const std::vector<uint8_t>& payload) {
    const std::vector<uint8_t> frame = EncodeFrame(payload);
    conn->out.insert(conn->out.end(), frame.begin(), frame.end());
  }

  void FlushConn(LoadConn* conn) {
    while (conn->out_pos < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd.get(), conn->out.data() + conn->out_pos,
                 conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        KillConn(conn);
        return;
      }
      conn->out_pos += static_cast<size_t>(n);
    }
    if (conn->out_pos == conn->out.size()) {
      conn->out.clear();
      conn->out_pos = 0;
    }
    SetWantWrite(conn, !conn->out.empty());
  }

  void SetWantWrite(LoadConn* conn, bool want) {
    if (conn->dead || want == conn->want_write) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.ptr = conn;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev);
    conn->want_write = want;
  }

  /// A connection hard-failed: every operation still expected on it is
  /// an error, and the socket leaves the loop.
  void KillConn(LoadConn* conn) {
    if (conn->dead) return;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, conn->fd.get(), nullptr);
    uint64_t ops_lost = conn->tag_to_op.size();
    conn->tag_to_op.clear();
    uint64_t last_op = UINT64_MAX;
    for (const ExpectedFrame& exp : conn->expected) {
      if (exp.op_id != last_op) {
        ++ops_lost;
        last_op = exp.op_id;
      }
    }
    report_.errors += ops_lost;
    in_flight_ -= ops_lost;
    conn->expected.clear();
    conn->dead = true;
    conn->fd.Reset();
    --alive_;
  }

  void PollOnce(uint64_t now_ns, uint64_t issued) {
    // Sleep until the next intended send (or 50ms when the schedule is
    // done and the loop is just draining responses).
    int timeout_ms = 50;
    if (issued < schedule_.total_ops()) {
      const uint64_t next_ns = schedule_.IntendedNs(issued);
      timeout_ms =
          next_ns > now_ns
              ? static_cast<int>((next_ns - now_ns) / 1'000'000)
              : 0;
      if (timeout_ms > 50) timeout_ms = 50;
    }
    epoll_event events[256];
    const int n =
        ::epoll_wait(epoll_fd_.get(), events, 256, timeout_ms);
    for (int i = 0; i < n; ++i) {
      auto* conn = static_cast<LoadConn*>(events[i].data.ptr);
      if (conn->dead) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        KillConn(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) FlushConn(conn);
      if (conn->dead) continue;
      if (events[i].events & EPOLLIN) OnReadable(conn);
    }
  }

  void OnReadable(LoadConn* conn) {
    uint8_t buf[16384];
    while (true) {
      const ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn->in.insert(conn->in.end(), buf, buf + n);
        continue;
      }
      if (n == 0) {
        KillConn(conn);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      KillConn(conn);
      return;
    }
    ParseResponses(conn);
    // Flush the refill ops queued by the completions just parsed as ONE
    // send — see MarkDirty for why per-op sends defeat pipelining.
    FlushDirty();
    if (conn->dead) return;
    if (conn->in_pos > 0) {
      conn->in.erase(conn->in.begin(),
                     conn->in.begin() +
                         static_cast<std::ptrdiff_t>(conn->in_pos));
      conn->in_pos = 0;
    }
  }

  void ParseResponses(LoadConn* conn) {
    const size_t header_bytes =
        conn->version >= 2 ? kFrameHeaderBytesV2 : kFrameHeaderBytes;
    while (conn->in.size() - conn->in_pos >= header_bytes) {
      const uint8_t* header = conn->in.data() + conn->in_pos;
      auto len_result = DecodeFrameHeader(header, kMaxFrameBytes);
      if (!len_result.ok()) {
        ++report_.protocol_errors;
        KillConn(conn);
        return;
      }
      const uint32_t len = *len_result;
      if (conn->in.size() - conn->in_pos < header_bytes + len) break;
      const uint8_t* payload = header + header_bytes;
      const Status crc = conn->version >= 2
                             ? CheckTaggedFrameCrc(header, payload, len)
                             : CheckFrameCrc(header, payload, len);
      if (!crc.ok()) {
        ++report_.protocol_errors;
        KillConn(conn);
        return;
      }
      conn->in_pos += header_bytes + len;
      if (conn->version >= 2) {
        OnTaggedResponseFrame(conn, TaggedFrameTag(header), payload, len);
      } else {
        OnResponseFrame(conn, payload, len);
      }
      if (conn->dead) return;
    }
  }

  /// v2 completion: one frame = one op, matched by tag (responses may
  /// arrive out of submission order).
  void OnTaggedResponseFrame(LoadConn* conn, uint32_t tag,
                             const uint8_t* payload, uint32_t len) {
    const auto it = conn->tag_to_op.find(tag);
    if (it == conn->tag_to_op.end() || len < 2) {
      ++report_.protocol_errors;
      KillConn(conn);
      return;
    }
    const uint64_t op_id = it->second;
    conn->tag_to_op.erase(it);
    const WireCode code = static_cast<WireCode>(payload[1]);
    const bool ok = code == WireCode::kOk;
    CompleteOp(conn, op_id, !ok && !IsRetryableWireCode(code),
               !ok && IsRetryableWireCode(code));
  }

  void OnResponseFrame(LoadConn* conn, const uint8_t* payload,
                       uint32_t len) {
    if (conn->expected.empty() || len < 2) {
      ++report_.protocol_errors;
      KillConn(conn);
      return;
    }
    const ExpectedFrame exp = conn->expected.front();
    conn->expected.pop_front();
    if (payload[0] != exp.opcode) {
      ++report_.protocol_errors;
      KillConn(conn);
      return;
    }
    const WireCode code = static_cast<WireCode>(payload[1]);
    if (code != WireCode::kOk) {
      if (IsRetryableWireCode(code)) {
        conn->op_shed = true;
      } else {
        conn->op_failed = true;
      }
    }
    if (!exp.last) return;
    CompleteOp(conn, exp.op_id, conn->op_failed, conn->op_shed);
  }

  /// Operation complete: attribute the outcome and the open-loop
  /// latency, then put the freed pipeline slot back to work.
  void CompleteOp(LoadConn* conn, uint64_t op_id, bool failed, bool shed) {
    --in_flight_;
    const uint64_t now_ns = NowNs();
    const uint64_t intended_ns = schedule_.IntendedNs(op_id);
    const uint64_t warmup_ns =
        static_cast<uint64_t>(options_.warmup_s * 1e9);
    const bool in_measure = intended_ns >= warmup_ns;
    if (failed) {
      if (in_measure) ++report_.errors;
    } else if (shed) {
      if (in_measure) ++report_.shed;
    } else {
      ++report_.completed_total;
    }
    if (!failed && !shed && in_measure) {
      ++report_.ops_completed;
      const uint64_t latency_ns =
          workload::OpenLoopSchedule::LatencyNs(intended_ns, now_ns);
      latency_hist_.Record(latency_ns);
      if (!timeline_.empty() && now_ns >= warmup_ns) {
        const size_t bucket = static_cast<size_t>(
            (now_ns - warmup_ns) / 1'000'000'000ull);
        if (bucket < timeline_.size()) {
          auto& slot = timeline_[bucket];
          ++slot.completed;
          const double us = static_cast<double>(latency_ns) / 1e3;
          slot.sum_us += us;
          if (us > slot.max_us) slot.max_us = us;
        }
      }
    }
    if (!backlog_.empty()) {
      const uint64_t next_op = backlog_.front();
      backlog_.pop_front();
      SendOp(conn, next_op);
    } else {
      idle_.push_back(conn);
    }
  }

  void FinishReport(uint64_t warmup_ns, uint64_t measure_end_ns) {
    (void)warmup_ns;
    (void)measure_end_ns;
    report_.ops_offered = schedule_.total_ops();
    report_.measure_s = options_.duration_s;
    report_.tput_rps =
        static_cast<double>(report_.ops_completed) / options_.duration_s;
    report_.elapsed_s = static_cast<double>(NowNs()) / 1e9;
    report_.capacity_rps =
        report_.elapsed_s > 0
            ? static_cast<double>(report_.completed_total) /
                  report_.elapsed_s
            : 0;
    report_.latency = latency_hist_.Snapshot();
    const obs::HistogramData& lat = report_.latency;
    report_.p50_us = lat.Percentile(50) / 1e3;
    report_.p99_us = lat.Percentile(99) / 1e3;
    report_.p999_us = lat.Percentile(99.9) / 1e3;
    report_.max_us = static_cast<double>(lat.count ? lat.max : 0) / 1e3;
    report_.mean_us = lat.Mean() / 1e3;
    report_.timeline = std::move(timeline_);
  }

  const LoadgenOptions options_;
  const workload::OpenLoopSchedule schedule_;
  workload::ZipfGenerator zipf_;
  Rng rng_;
  const std::string value_payload_;

  OwnedFd epoll_fd_;
  std::vector<std::unique_ptr<LoadConn>> conns_;
  std::vector<LoadConn*> idle_;
  std::deque<uint64_t> backlog_;
  /// Connections with queued-but-unsent frames, flushed once per
  /// event-loop round (send coalescing).
  std::vector<LoadConn*> dirty_;
  Clock::time_point start_;
  int alive_ = 0;
  uint64_t in_flight_ = 0;

  obs::Histogram latency_hist_;
  std::vector<LoadgenTimelineBucket> timeline_;
  LoadgenReport report_;
};

}  // namespace

Result<LoadgenReport> RunOpenLoopLoad(const LoadgenOptions& options) {
  if (options.connections <= 0) {
    return Status::InvalidArgument("loadgen needs at least one connection");
  }
  if (options.rate_rps <= 0 || options.duration_s <= 0) {
    return Status::InvalidArgument("loadgen needs a positive rate/duration");
  }
  if (options.pipeline_depth < 1) {
    return Status::InvalidArgument("pipeline depth must be >= 1");
  }
  if (options.pipeline_depth > 1 && options.protocol_max < 2) {
    return Status::InvalidArgument(
        "pipeline depth > 1 needs protocol v2 (tagged frames)");
  }
  OpenLoopDriver driver(options);
  return driver.Run();
}

}  // namespace hyrise_nv::net
