#ifndef HYRISE_NV_NET_SERVER_H_
#define HYRISE_NV_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/database.h"
#include "net/wire.h"

namespace hyrise_nv::net {

/// Serving-layer configuration.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Server::port().
  uint16_t port = 0;
  /// Epoll event-loop threads. Connections are spread round-robin; each
  /// connection is owned by exactly one worker, so per-connection state
  /// needs no locking.
  int num_workers = 2;
  /// Accept cap: further connections get an Overloaded error frame and
  /// an immediate close.
  int max_connections = 256;
  /// Admission control: requests executing concurrently across all
  /// workers. Excess requests are rejected with kOverloaded (503-style)
  /// instead of queueing unboundedly.
  int max_inflight = 256;
  /// Connections idle (no complete request) longer than this are closed;
  /// an open transaction on such a session is aborted. 0 disables.
  int idle_timeout_ms = 60'000;
  /// Payload cap enforced on receive, before the body is read.
  uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Cap on the per-connection pipeline window granted at a v2
  /// handshake (requests outstanding per connection before the excess
  /// is shed with the retryable kOverloaded code).
  uint32_t max_pipeline_window = kMaxPipelineWindow;
  /// Tighter inflight cap while the engine serves degraded (recovery
  /// drain in progress): on-demand restores contend with the drain for
  /// the table locks, so the warming server sheds load early with the
  /// retryable kWarming code instead of queueing. 0 derives the cap as
  /// max(1, max_inflight / 8).
  int degraded_max_inflight = 0;
  /// Requests whose end-to-end latency (frame-read-complete → response
  /// fully handed to the socket) exceeds this threshold are captured: a
  /// kSlowRequest blackbox event with the dominant stage plus an entry
  /// in the in-memory slow-request ring surfaced by the stats op.
  /// 0 disables capture.
  uint64_t slow_request_us = 100'000;
};

/// Point-in-time serving counters (tests and the stats op).
struct ServerCounters {
  uint64_t accepted = 0;
  uint64_t overload_rejected = 0;
  uint64_t warming_rejected = 0;
  uint64_t protocol_errors = 0;
  uint64_t requests = 0;
  int open_connections = 0;
  int open_transactions = 0;
};

class ServerImpl;

/// Epoll-based multi-threaded request server over a Database.
///
/// Lifecycle: Start() binds + spawns the acceptor and workers and
/// returns immediately. Drain() initiates a graceful shutdown: the
/// listener closes, the request in flight on each worker completes,
/// every session's open transaction is aborted, and connections close.
/// Wait() blocks until that has happened. The caller owns the Database
/// and closes it after Wait() — by then no session holds a transaction,
/// so Close() seals a clean image (DESIGN.md §10.3).
///
/// Sessions: one connection = one session = at most one open
/// transaction. A connection that dies mid-transaction (client crash,
/// network drop, idle timeout) has its transaction aborted by the
/// server, so its unstamped versions stay invisible forever.
///
/// kill -9 tolerance is inherited from the engine: the server adds no
/// volatile commit state, so a SIGKILL at any point leaves the NVM image
/// recoverable by the normal instant-restart path.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Start(core::Database* db,
                                               const ServerOptions& options);
  ~Server();

  HYRISE_NV_DISALLOW_COPY_AND_MOVE(Server);

  /// The bound port (resolves port 0).
  uint16_t port() const;

  /// Initiates a graceful drain (idempotent, returns immediately).
  void Drain();

  /// Blocks until the server has fully drained and all threads joined.
  void Wait();

  bool draining() const;

  ServerCounters counters() const;

 private:
  explicit Server(std::unique_ptr<ServerImpl> impl);
  std::unique_ptr<ServerImpl> impl_;
};

}  // namespace hyrise_nv::net

#endif  // HYRISE_NV_NET_SERVER_H_
